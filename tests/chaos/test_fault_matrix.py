"""The fault matrix: seeded chaos plans against a real service stack.

Each test runs a real :class:`~repro.engine.service.SimService` (its own
socket, worker pool, cache, journal) under a deterministic
:mod:`repro.engine.faults` plan and asserts the ISSUE's acceptance bar:

* **survivable** faults — worker crashes/hangs/slowdowns, dropped or
  torn socket responses, journal/cache write failures, shm
  attach/materialise failures — end in :class:`SimResult`s
  **bit-identical** to the fault-free run;
* **fatal** faults — a job that crashes its worker on every dispatch —
  end in a clean typed error within a bounded deadline, never a hang;
* a daemon past its queue bound sheds load with an explicit
  ``overloaded`` response instead of growing without bound.

The daemon runs *in-process* (a background thread with its own event
loop) so a test can install a fault plan at an exact point in the
operation sequence — the plan's counters then line up with the requests
the test makes, which is what keeps the matrix deterministic.  The
worker processes are real ``spawn`` children either way; worker-side
sites activate through the exported ``$REPRO_FAULTS``.
"""

import asyncio
import os
import socket as socket_module
import threading
import time

import pytest

from repro.engine import faults
from repro.engine.api import Engine
from repro.engine.cache import ResultCache
from repro.engine.client import (
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
    wait_for_service,
)
from repro.engine.executors import SerialExecutor
from repro.engine.job import SimJob
from repro.engine.service import SimService
from repro.pipeline.result import SimResult

SMALL = dict(n_uops=2000, warmup=1000)

#: The standard six-job batch most matrix entries run (two predictors
#: over three workloads — enough to keep both workers busy and exercise
#: requeue ordering, small enough to keep the matrix fast).
JOBS = [SimJob.make(w, p, **SMALL)
        for p in ("lvp", "2dstride") for w in ("gzip", "gcc", "crafty")]


@pytest.fixture(scope="module")
def expected():
    """The fault-free answer, computed once in-process."""
    engine = Engine(executor=SerialExecutor(), cache=ResultCache(None))
    return [r.to_dict() for r in engine.run_jobs(JOBS)]


@pytest.fixture(autouse=True)
def clean_fault_state():
    """No plan (or exported spec) leaks between matrix entries."""
    faults.reset()
    yield
    faults.install_plan(None, export_env=True)
    faults.reset()


class Daemon:
    """An in-process daemon on a background thread (real socket, real
    spawn workers), so tests can install fault plans mid-flight."""

    def __init__(self, socket_path, **kwargs):
        self.service = SimService(socket_path, **kwargs)
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.error = None

    def _run(self):
        try:
            asyncio.run(self.service.serve_until_shutdown())
        except BaseException as exc:  # noqa: BLE001 - surfaced by stop()
            self.error = exc

    def __enter__(self):
        self.thread.start()
        try:
            wait_for_service(self.service.socket_path, timeout=60)
        except ServiceError:
            if self.error is not None:
                raise self.error from None
            raise
        return self

    def __exit__(self, *exc):
        try:
            with ServiceClient(self.service.socket_path, timeout=10.0) as c:
                c.shutdown()
        except ServiceError:
            pass
        self.thread.join(timeout=60)
        assert not self.thread.is_alive(), "daemon failed to shut down"


def _results(response):
    return response["results"]


class TestSurvivableWorkerFaults:
    def test_worker_crash_is_requeued_bit_identically(self, tmp_path,
                                                      expected):
        with Daemon(tmp_path / "d.sock", workers=2) as d:
            faults.install_plan("worker.execute:crash@2", seed=0)
            with ServiceClient(d.service.socket_path) as client:
                response = client.submit(JOBS)
                health = client.health()
        assert _results(response) == expected
        assert health["restarts"] >= 1
        assert not health["degraded_mode"]  # a crash is routine, not degraded

    def test_worker_slowdown_changes_nothing(self, tmp_path, expected):
        with Daemon(tmp_path / "d.sock", workers=2) as d:
            faults.install_plan("worker.execute:slow:0.05@every=2", seed=0)
            with ServiceClient(d.service.socket_path) as client:
                response = client.submit(JOBS)
        assert _results(response) == expected

    def test_hung_worker_is_killed_by_the_job_timeout(self, tmp_path,
                                                      expected):
        # The timeout must clear a worker's worst legitimate job (fresh
        # spawn + first trace build) while still catching the 60s hang.
        with Daemon(tmp_path / "d.sock", workers=2, job_timeout=5.0) as d:
            faults.install_plan("worker.execute:hang:60@1", seed=0)
            with ServiceClient(d.service.socket_path) as client:
                response = client.submit(JOBS)
                health = client.health()
        assert _results(response) == expected
        assert health["timeouts"] >= 1
        assert health["restarts"] >= 1


class TestFatalWorkerFaults:
    def test_always_crashing_job_fails_typed_not_hanging(self, tmp_path):
        with Daemon(tmp_path / "d.sock", workers=1) as d:
            faults.install_plan("worker.execute:crash@every=1", seed=0)
            client = ServiceClient(d.service.socket_path, timeout=120.0,
                                   retry=RetryPolicy(attempts=1))
            with pytest.raises(ServiceError, match="lost its worker"):
                client.submit([JOBS[0]])
            client.close()
            faults.install_plan(None)
            # The daemon survived its pool melting down: the same job
            # succeeds once the fault clears.
            with ServiceClient(d.service.socket_path) as client:
                response = client.submit([JOBS[0]])
        assert len(_results(response)) == 1


class TestSocketFaults:
    @pytest.mark.parametrize("action", ["drop", "partial"])
    def test_lost_response_is_retried_idempotently(self, tmp_path, expected,
                                                   action):
        with Daemon(tmp_path / "d.sock", workers=2) as d:
            with ServiceClient(d.service.socket_path) as probe:
                before = probe.status()["queue"]["stats"]["executed"]
            # Installed *after* the probe: the very next response the
            # daemon sends (our submit's) is the one that dies.
            faults.install_plan(f"service.send:{action}@1", seed=0)
            client = ServiceClient(d.service.socket_path,
                                   retry=RetryPolicy(attempts=3, base=0.01))
            results = client.run_jobs(JOBS)
            client.close()
            faults.install_plan(None)
            with ServiceClient(d.service.socket_path) as probe:
                after = probe.status()["queue"]["stats"]["executed"]
        assert [r.to_dict() for r in results] == expected
        # Exactly-once execution: the retried batch coalesced/cache-hit,
        # it did not re-run the simulations.
        assert after - before == len(JOBS)

    def test_stalled_response_times_out_typed(self, tmp_path):
        with Daemon(tmp_path / "d.sock", workers=1) as d:
            faults.install_plan("service.send:stall:30@1", seed=0)
            client = ServiceClient(d.service.socket_path, timeout=1.0,
                                   retry=RetryPolicy(attempts=1))
            with pytest.raises(ServiceTimeout):
                client.ping()
            client.close()


class TestStorageFaults:
    def test_torn_journal_write_degrades_and_recovers(self, tmp_path,
                                                      expected):
        journal = tmp_path / "svc.jsonl"
        with Daemon(tmp_path / "d.sock", workers=1,
                    journal_path=journal) as d:
            faults.install_plan("journal.write:torn@1", seed=0)
            with ServiceClient(d.service.socket_path) as client:
                response = client.submit(JOBS)
                health = client.health()
        assert _results(response) == expected          # served regardless
        assert health["degraded"]["journal_failures"] == 1
        assert health["degraded_mode"]
        faults.install_plan(None)
        # The torn half-record sits at EOF (journaling stopped at the
        # first failure, so nothing fused with it); a restarted daemon
        # truncates the tear, replays nothing, and re-serves correctly.
        with Daemon(tmp_path / "d.sock", workers=1,
                    journal_path=journal) as d:
            assert d.service.replayed == 0
            with ServiceClient(d.service.socket_path) as client:
                again = client.submit(JOBS)
        assert _results(again) == expected

    def test_failing_cache_persist_stays_in_memory(self, tmp_path, expected):
        with Daemon(tmp_path / "d.sock", workers=2,
                    cache=ResultCache(tmp_path / "cache")) as d:
            faults.install_plan("cache.write:error@every=1", seed=0)
            with ServiceClient(d.service.socket_path) as client:
                first = client.submit(JOBS)
                health = client.health()
                # Every persist failed, but the memory layer answers.
                second = client.submit(JOBS)
        assert _results(first) == expected
        assert _results(second) == expected
        assert second["summary"]["cache_hits"] == len(JOBS)
        assert health["degraded"]["cache_write_failures"] >= 1
        assert health["degraded_mode"]
        assert not list((tmp_path / "cache").glob("??/*.json"))


class TestShmDegradationLadder:
    """Tier by tier: shm → local rebuild → (fail job only if both die)."""

    def test_attach_failure_degrades_to_local_rebuild(self, tmp_path,
                                                      expected):
        # Worker-side site: must arrive via the environment the spawned
        # workers inherit, before the pool starts.
        faults.install_plan("shm.attach:fail@every=1", seed=0,
                            export_env=True)
        faults.reset()  # parent re-resolves from env like a worker would
        with Daemon(tmp_path / "d.sock", workers=2) as d:
            with ServiceClient(d.service.socket_path) as client:
                response = client.submit(JOBS)
        assert _results(response) == expected

    def test_materialize_failure_degrades_to_bare_dispatch(self, tmp_path,
                                                           expected):
        with Daemon(tmp_path / "d.sock", workers=2) as d:
            faults.install_plan("shm.materialize:fail@every=1", seed=0)
            with ServiceClient(d.service.socket_path) as client:
                response = client.submit(JOBS)
                health = client.health()
        assert _results(response) == expected
        assert health["degraded"]["shm_failures"] >= 1


class TestBackpressure:
    def test_over_bound_submit_is_shed_with_overloaded(self, tmp_path):
        big = [SimJob.make(w, "vtage", n_uops=30000, warmup=15000)
               for w in ("gzip", "gcc")]
        with Daemon(tmp_path / "d.sock", workers=1, max_depth=2) as d:
            with ServiceClient(d.service.socket_path) as client:
                ticket = client.submit(big, wait=False)["ticket"]
                # The queue is now full: a batch of new jobs is rejected
                # whole, with the typed backpressure error.
                extra = [SimJob.make(w, "lvp", **SMALL)
                         for w in ("crafty", "applu")]
                with pytest.raises(ServiceOverloaded):
                    client.submit(extra)
                health = client.health()
                assert health["rejected"] >= 1
                # Cache hits and coalesced jobs are free — resubmitting
                # the *in-flight* batch is admitted even at the bound.
                coalesced = client.submit(big, wait=False)
                assert coalesced["summary"]["coalesced"] == len(big)
                # Once the queue drains, the shed batch is admitted.
                import time
                deadline = time.monotonic() + 120.0
                while client.results(ticket).get("pending"):
                    assert time.monotonic() < deadline
                    time.sleep(0.05)
                accepted = client.submit(extra)
        assert len(_results(accepted)) == len(extra)

    def test_client_retry_rides_out_backpressure(self, tmp_path):
        big = [SimJob.make(w, "vtage", n_uops=30000, warmup=15000)
               for w in ("gzip", "gcc")]
        extra = [SimJob.make("crafty", "lvp", **SMALL)]
        with Daemon(tmp_path / "d.sock", workers=1, max_depth=2) as d:
            with ServiceClient(d.service.socket_path) as filler:
                filler.submit(big, wait=False)
            client = ServiceClient(
                d.service.socket_path,
                retry=RetryPolicy(attempts=8, base=0.5, cap=8.0))
            # run_jobs absorbs the overloaded responses and backs off
            # until the big batch drains; no caller-side special-casing.
            results = client.run_jobs(extra)
            client.close()
        assert len(results) == 1


class TestSingleWriterLocks:
    def test_second_daemon_on_same_socket_is_refused(self, tmp_path):
        socket_path = tmp_path / "d.sock"
        with Daemon(socket_path, workers=1):
            with pytest.raises(ServiceError, match="lock|already listening"):
                asyncio.run(SimService(socket_path, workers=1).start())

    def test_two_daemons_cannot_share_a_journal(self, tmp_path):
        from repro.engine.checkpoint import JournalError

        journal = tmp_path / "svc.jsonl"
        with Daemon(tmp_path / "a.sock", workers=1, journal_path=journal):
            with pytest.raises(JournalError, match="already being written"):
                asyncio.run(SimService(tmp_path / "b.sock", workers=1,
                                       journal_path=journal).start())

    def test_stale_socket_is_cleaned_and_rebound(self, tmp_path):
        socket_path = tmp_path / "d.sock"
        # Leave a dead socket behind, as a SIGKILLed daemon would.
        stale = socket_module.socket(socket_module.AF_UNIX,
                                     socket_module.SOCK_STREAM)
        stale.bind(str(socket_path))
        stale.close()
        assert socket_path.exists()
        with Daemon(socket_path, workers=1) as d:
            with ServiceClient(d.service.socket_path) as client:
                assert client.ping()["pid"] == os.getpid()


class TestChaosIntrospection:
    def test_chaos_op_reports_the_live_plan(self, tmp_path):
        with Daemon(tmp_path / "d.sock", workers=1, chaos=True) as d:
            faults.install_plan("journal.write:torn@7", seed=3)
            with ServiceClient(d.service.socket_path) as client:
                plan = client.chaos()
                health = client.health()
        assert plan["seed"] == 3
        assert plan["rules"] == ["journal.write:torn@7"]
        assert health["chaos"] is True

    def test_chaos_op_is_refused_without_the_flag(self, tmp_path):
        with Daemon(tmp_path / "d.sock", workers=1) as d:
            with ServiceClient(d.service.socket_path) as client:
                with pytest.raises(ServiceError, match="disabled"):
                    client.chaos()


class TcpShardDaemon(Daemon):
    """A :class:`Daemon` on the TCP transport (a cluster shard)."""

    def __init__(self, **kwargs):
        kwargs.setdefault("listen", "127.0.0.1:0")
        super().__init__(None, **kwargs)

    def __enter__(self):
        self.thread.start()
        while self.service.listen_address is None:
            if self.error is not None:
                raise self.error
            threading.Event().wait(0.02)
        wait_for_service(self.service.listen_address, timeout=60,
                         token=self.service.token)
        return self

    def __exit__(self, *exc):
        try:
            with ServiceClient(self.service.listen_address, timeout=10.0,
                               token=self.service.token) as client:
                client.shutdown()
        except ServiceError:
            pass
        self.thread.join(timeout=60)
        assert not self.thread.is_alive(), "shard failed to shut down"


class TestClusterFaults:
    """Shard-level fault sites: peer federation and router routing.

    Same bar as the rest of the matrix: every survivable cluster fault
    — an unreachable federation peer, a *hung* federation peer, a
    misrouted or dropped routing decision — must end in results
    bit-identical to the fault-free run, with the failure visible in
    the metrics surface rather than in the answers.
    """

    def test_peer_lookup_failure_fails_open(self, expected):
        with TcpShardDaemon(workers=1) as upstream:
            with TcpShardDaemon(
                    workers=1,
                    peers=[upstream.service.listen_address]) as shard:
                faults.install_plan("peer.lookup:fail@every=1", seed=0)
                with ServiceClient(shard.service.listen_address) as client:
                    response = client.submit(JOBS)
                    metrics = client.metrics()
        assert _results(response) == expected
        assert response["summary"]["peer_hits"] == 0
        assert metrics["peers"]["failures"] == 1

    def test_hung_peer_is_abandoned_within_the_deadline(self, expected):
        with TcpShardDaemon(workers=1) as upstream:
            with TcpShardDaemon(
                    workers=1,
                    peers=[upstream.service.listen_address]) as shard:
                faults.install_plan("peer.lookup:stall:30@1", seed=0)
                with ServiceClient(shard.service.listen_address) as client:
                    start = time.monotonic()
                    response = client.submit(JOBS)
                    stalled_for = time.monotonic() - start
                    metrics = client.metrics()
        assert _results(response) == expected
        assert metrics["peers"]["failures"] == 1
        # The submit absorbed the peer deadline (a few seconds), not the
        # injected 30-second stall.
        assert stalled_for < 25.0

    def test_federation_survives_a_sigkilled_peer(self, expected):
        # An upstream shard that vanishes *between* requests: the first
        # submit federates from it, the second finds it dead and falls
        # back to local execution — bit-identically both times.
        upstream = TcpShardDaemon(workers=1).__enter__()
        address = upstream.service.listen_address
        with ServiceClient(address) as client:
            client.submit(JOBS[:3])
        with TcpShardDaemon(workers=1, peers=[address]) as shard:
            with ServiceClient(shard.service.listen_address) as client:
                first = client.submit(JOBS[:3])
                upstream.__exit__()  # clean stop: the peer is simply gone
                second = client.submit(JOBS[3:])
                metrics = client.metrics()
        assert _results(first) == expected[:3]
        assert _results(second) == expected[3:]
        assert first["summary"]["peer_hits"] == 3
        assert metrics["peers"]["failures"] >= 1

    def test_routing_faults_keep_results_bit_identical(self, expected):
        from repro.engine.cluster import ShardRouter

        with TcpShardDaemon(workers=1) as a, TcpShardDaemon(workers=1) as b:
            router = ShardRouter([a.service.listen_address,
                                  b.service.listen_address])
            faults.install_plan(
                "cluster.route:misroute@2;cluster.route:drop@5", seed=0)
            results = router.run_jobs(JOBS)
            router.close()
        assert [r.to_dict() for r in results] == expected
        assert router.stats["misrouted_jobs"] == 1
        assert router.stats["failovers"] == 1
        assert len(router.alive_shards()) == 1


class TestSelfHealingFaults:
    """Gossip and failover-replay fault sites: the membership plane must
    converge through dropped/delayed heartbeats, and a torn journal read
    during failover replay must cost entries, never correctness."""

    @staticmethod
    def _wait_for(predicate, timeout=30.0, message="condition"):
        deadline = time.monotonic() + timeout
        while not predicate():
            assert time.monotonic() < deadline, f"timed out: {message}"
            time.sleep(0.05)

    def test_dropped_heartbeats_only_slow_convergence(self):
        # Every second heartbeat is dropped; the fleet's views must still
        # converge to both-alive, with the drops visible in the counters.
        faults.install_plan("gossip.heartbeat:drop@every=2", seed=0)
        with TcpShardDaemon(workers=1, heartbeat_interval=0.1) as a:
            with TcpShardDaemon(
                    workers=1, heartbeat_interval=0.1,
                    peers=[a.service.listen_address]) as b:
                self._wait_for(
                    lambda: len(a.service.membership.alive()) == 2
                    and len(b.service.membership.alive()) == 2,
                    message="membership convergence under drops")
                # Convergence can land on the very first (undropped)
                # heartbeat, so wait for a drop rather than asserting
                # one already happened: heartbeats keep flowing, so
                # every=2 must fire soon after.
                self._wait_for(
                    lambda: (a.service.gossip_dropped
                             + b.service.gossip_dropped) >= 1,
                    message="an every=2 heartbeat drop")

    def test_delayed_heartbeats_only_slow_convergence(self):
        faults.install_plan("gossip.heartbeat:delay:0.05@every=2", seed=0)
        with TcpShardDaemon(workers=1, heartbeat_interval=0.1) as a:
            with TcpShardDaemon(
                    workers=1, heartbeat_interval=0.1,
                    peers=[a.service.listen_address]) as b:
                self._wait_for(
                    lambda: len(a.service.membership.alive()) == 2
                    and len(b.service.membership.alive()) == 2,
                    message="membership convergence under delays")

    def test_torn_replay_read_fails_open_bit_identically(self, tmp_path,
                                                         expected):
        # Shard A executes the batch into a shared journal dir, then
        # dies.  Shard B (peering at the corpse) claims it down and
        # replays its journal — but the replay read is torn in half.
        # The replay seeds what survived the tear and B still serves
        # the full batch bit-identically (re-simulating the rest); the
        # on-disk journal is never damaged by the torn *read*.
        with TcpShardDaemon(workers=1, journal_dir=tmp_path,
                            heartbeat_interval=0) as a:
            dead = a.service.listen_address
            with ServiceClient(dead) as client:
                client.submit(JOBS)
        journal = next(tmp_path.glob("*.journal"))
        size_before = journal.stat().st_size
        faults.install_plan("journal.replay:torn@1", seed=0)
        with TcpShardDaemon(workers=1, journal_dir=tmp_path,
                            heartbeat_interval=0.1,
                            peers=[dead]) as b:
            self._wait_for(
                lambda: b.service.peer_journals_replayed >= 1,
                message="failover replay of the dead peer")
            torn_seeded = b.service.replay_keys_seeded
            assert torn_seeded < len(JOBS)  # the tear cost entries...
            with ServiceClient(b.service.listen_address) as client:
                response = client.submit(JOBS)
        assert _results(response) == expected  # ...but never bits
        assert journal.stat().st_size == size_before
