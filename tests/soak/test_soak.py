"""The soak harness as a pytest suite.

A short default run keeps CI honest — a real multi-process fleet,
seeded chaos, serial-oracle comparison — while the full ISSUE-scale
configuration (3 shards, hundreds of client threads, minutes of chaos)
stays behind ``REPRO_SOAK_FULL=1`` so interactive runs finish fast.
The assertions mirror :meth:`SoakReport.passed` plus the accounting
invariants: every batch completes, every result is bit-identical to the
serial engine, and re-simulation stays bounded by what the journals
actually lost (never the whole key space).
"""

import os

import pytest

from repro.engine.soak import SoakConfig, run_soak

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SOAK", "1") == "0",
    reason="soak disabled via REPRO_SOAK=0")


def _run(config, tmp_path):
    lines = []
    report = run_soak(config, tmp_path / "journals", log=lines.append)
    return report, lines


def test_short_soak_zero_loss_bit_identical(tmp_path):
    config = SoakConfig(shards=2, clients=4, batches_per_client=4,
                        batch_jobs=6, chaos_interval_s=0.5,
                        deadline_s=120.0, seed=20260808)
    report, lines = _run(config, tmp_path)
    assert report.passed(), report.to_dict()
    assert report.batches_completed == config.clients * \
        config.batches_per_client
    assert report.batches_lost == 0
    assert report.mismatched_keys == []
    # Chaos actually happened and the fleet absorbed it.
    assert report.kills + report.stalls >= 1
    assert report.jobs_completed == config.clients * \
        config.batches_per_client * config.batch_jobs
    # Re-simulation is bounded: duplicate journal records can only come
    # from re-homed work, never exceed what was ever journaled.
    assert 0 <= report.resimulated <= report.journal_records
    assert any("soak" in line or "chaos" in line for line in lines) or lines


def test_minimal_fleet_also_survives(tmp_path):
    """The degenerate shape — two shards, light pressure, another seed —
    still finishes with zero loss (guards against the harness only
    passing at one tuned configuration)."""
    config = SoakConfig(shards=2, clients=2, batches_per_client=2,
                        batch_jobs=4, chaos_interval_s=0.5,
                        deadline_s=120.0, seed=7)
    report, _ = _run(config, tmp_path / "a")
    assert report.passed(), report.to_dict()


@pytest.mark.skipif(os.environ.get("REPRO_SOAK_FULL") != "1",
                    reason="ISSUE-scale soak only under REPRO_SOAK_FULL=1")
def test_full_scale_soak(tmp_path):
    config = SoakConfig()  # 3 shards x 8 clients x 6 batches, 120 s cap
    report, _ = _run(config, tmp_path)
    assert report.passed(), report.to_dict()
    assert report.kills >= 1 and report.revives >= 1
    assert 0 <= report.resimulated <= report.journal_records
