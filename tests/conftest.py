"""Test-suite hermeticity: keep the persistent result cache out of tests.

The drivers under test route simulations through the process-wide default
engine, which is normally built from ``REPRO_JOBS``/``REPRO_CACHE_DIR``.
A developer's persistent cache must not leak into assertions (stale
results from an older simulator would mask regressions) nor test runs
into their cache, so ``REPRO_CACHE_DIR`` is scrubbed for the whole
session.  This is session-scoped on purpose: class-scoped driver
fixtures run before any function-scoped fixture could repin the engine.

``REPRO_JOBS`` deliberately passes through: executor backends are
bit-identical, and CI exploits that by re-running the experiment tests
under ``REPRO_JOBS=2``.
"""

import os

import pytest

from repro.engine.api import reset_default_engine


@pytest.fixture(scope="session", autouse=True)
def _no_persistent_cache_during_tests():
    saved = os.environ.pop("REPRO_CACHE_DIR", None)
    reset_default_engine()
    yield
    if saved is not None:
        os.environ["REPRO_CACHE_DIR"] = saved
    reset_default_engine()
