"""The fast-path dispatch matrix, pinned exhaustively.

``CoreModel.run`` picks between three loop implementations at call time;
which configurations are eligible is a contract the fuzzer and the CLI
``--profile`` output both rely on.  These tests enumerate every
experiment predictor × recovery × fpc combination and assert the static
dispatch decision (:func:`fastsim.fallback_reason`), then exercise the
dynamic half: structured fallback counters, ``REPRO_FAST_SIM=require``
escalation, the stage-trace hook and the disabled-by-env path.
"""

import pytest

from repro.experiments.runner import PREDICTOR_NAMES, make_predictor
from repro.pipeline import fastsim
from repro.pipeline.config import CoreConfig, RecoveryMode
from repro.pipeline.core import CoreModel, simulate
from repro.workloads.catalog import build_trace

#: Families the vectorised loops inline (exact type checks in
#: ``fastsim._classify``) — everything else must fall back, silently by
#: default, loudly under ``REPRO_FAST_SIM=require``.
FAST = frozenset({"none", "oracle", "lvp", "stride", "2dstride", "vtage"})
FALLBACK = frozenset(PREDICTOR_NAMES) - FAST

_N = 600
_WARMUP = 100


def _model(name: str, recovery: str = "squash", fpc: bool = True) -> CoreModel:
    predictor = make_predictor(name, fpc=fpc, recovery=recovery)
    return CoreModel(config=CoreConfig(recovery=RecoveryMode(recovery)),
                     predictor=predictor)


@pytest.fixture(autouse=True)
def _clean_counters():
    fastsim.reset_fallback_stats()
    yield
    fastsim.reset_fallback_stats()


# -- static half: predictor family × recovery × fpc -------------------------


@pytest.mark.parametrize("fpc", (True, False), ids=("fpc", "3bit"))
@pytest.mark.parametrize("recovery", ("squash", "reissue"))
@pytest.mark.parametrize("name", PREDICTOR_NAMES)
def test_dispatch_matrix(name, recovery, fpc):
    """Eligibility depends only on the predictor family — never on the
    recovery mechanism or the confidence policy."""
    model = _model(name, recovery=recovery, fpc=fpc)
    reason = fastsim.fallback_reason(model)
    if name in FAST:
        assert reason is None
    else:
        expected = f"unsupported-predictor:{type(model.predictor).__name__}"
        assert reason == expected


@pytest.mark.parametrize("name", sorted(FAST))
def test_fast_family_rejects_prewarmed_branch_unit(name):
    model = _model(name)
    model.branch_unit.cond_branches = 7
    assert fastsim.fallback_reason(model) == "non-default-branch-state"


# -- dynamic half: counters and require-mode escalation ---------------------


def test_fallback_counter_records_unsupported(monkeypatch):
    monkeypatch.delenv(fastsim.FAST_SIM_ENV, raising=False)
    trace = build_trace("gcc", _N)
    result = simulate(trace, make_predictor("fcm"), warmup=_WARMUP,
                      workload="gcc")
    assert result.cycles > 0
    stats = fastsim.fallback_stats()
    assert stats.get("unsupported-predictor:FCMPredictor") == 1
    assert fastsim.last_fallback() == "unsupported-predictor:FCMPredictor"


def test_fast_run_records_no_fallback(monkeypatch):
    monkeypatch.delenv(fastsim.FAST_SIM_ENV, raising=False)
    trace = build_trace("gcc", _N)
    simulate(trace, make_predictor("vtage"), warmup=_WARMUP, workload="gcc")
    assert fastsim.fallback_stats() == {}


def test_disabled_by_env_is_counted(monkeypatch):
    monkeypatch.setenv(fastsim.FAST_SIM_ENV, "0")
    trace = build_trace("gcc", _N)
    simulate(trace, make_predictor("vtage"), warmup=_WARMUP, workload="gcc")
    assert fastsim.fallback_stats().get("disabled-by-env") == 1


def test_stage_trace_hook_is_counted(monkeypatch):
    monkeypatch.delenv(fastsim.FAST_SIM_ENV, raising=False)
    trace = build_trace("gcc", _N)
    hook: list = []
    _model("vtage").run(trace, warmup=_WARMUP, workload="gcc",
                        stage_trace=hook)
    assert len(hook) > 0
    assert fastsim.fallback_stats().get("stage-trace-hook") == 1


def test_require_mode_passes_supported(monkeypatch):
    monkeypatch.setenv(fastsim.FAST_SIM_ENV, "require")
    assert fastsim.fast_sim_mode() == "require"
    trace = build_trace("gcc", _N)
    result = simulate(trace, make_predictor("vtage"), warmup=_WARMUP,
                      workload="gcc")
    assert result.cycles > 0
    assert fastsim.fallback_stats() == {}


@pytest.mark.parametrize("name", sorted(FALLBACK))
def test_require_mode_raises_unsupported(monkeypatch, name):
    monkeypatch.setenv(fastsim.FAST_SIM_ENV, "require")
    trace = build_trace("gcc", _N)
    with pytest.raises(fastsim.FastPathRequired) as excinfo:
        simulate(trace, make_predictor(name), warmup=_WARMUP, workload="gcc")
    assert excinfo.value.reason.startswith("unsupported-predictor:")


def test_require_mode_raises_on_stage_trace(monkeypatch):
    monkeypatch.setenv(fastsim.FAST_SIM_ENV, "require")
    trace = build_trace("gcc", _N)
    with pytest.raises(fastsim.FastPathRequired) as excinfo:
        _model("vtage").run(trace, warmup=_WARMUP, workload="gcc",
                            stage_trace=[])
    assert excinfo.value.reason == "stage-trace-hook"


def test_require_mode_raises_on_prewarmed_branch_unit(monkeypatch):
    monkeypatch.setenv(fastsim.FAST_SIM_ENV, "require")
    trace = build_trace("gcc", _N)
    model = _model("vtage")
    model.branch_unit.cond_branches = 7
    with pytest.raises(fastsim.FastPathRequired) as excinfo:
        model.run(trace, warmup=_WARMUP, workload="gcc")
    assert excinfo.value.reason == "non-default-branch-state"


def test_reset_clears_counters(monkeypatch):
    monkeypatch.setenv(fastsim.FAST_SIM_ENV, "0")
    trace = build_trace("gcc", _N)
    simulate(trace, None, warmup=_WARMUP, workload="gcc")
    assert fastsim.fallback_stats()
    fastsim.reset_fallback_stats()
    assert fastsim.fallback_stats() == {}
    assert fastsim.last_fallback() is None
