"""Incremental folded-history registers (util/history.py).

The contract under test: at every point in time, the incrementally (or
lane-) maintained folded values equal the from-scratch
``fold_value(ghist & mask_L, 16)`` the seed model computed per lookup —
that equality is what makes the optimized TAGE/VTAGE hashing bit-identical.
"""

import random

import pytest

from repro.predictors.base import PredictionContext
from repro.util.bits import MASK64, fold_value
from repro.util.hashing import _MIX1, _MIX2, table_index, tag_hash
from repro.util.history import (
    FOLD_HORIZON,
    FOLD_WIDTH,
    FoldedHistoryRegister,
    FoldedHistorySet,
    fold_wide,
)


def _reference_compressed(ghist: int, path: int, length: int) -> int:
    """The seed model's compress()/compress_context() formula, verbatim."""
    hist = ghist & ((1 << length) - 1)
    path_bits = min(length, 16)
    return (
        fold_value(hist, 16)
        ^ ((path & ((1 << path_bits) - 1)) << 1)
        ^ (length << 17)
    )


class TestFoldWide:
    def test_matches_fold_value_in_64_bit_domain(self):
        rng = random.Random(1)
        for _ in range(200):
            v = rng.getrandbits(64)
            assert fold_wide(v, 16) == fold_value(v, 16)

    def test_folds_beyond_64_bits(self):
        # fold_value truncates; fold_wide does not.
        v = 1 << 70
        assert fold_value(v, 16) == 0
        assert fold_wide(v, 16) == 1 << 6

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            fold_wide(1, 0)


class TestFoldedHistoryRegister:
    def test_push_tracks_from_scratch_fold(self):
        rng = random.Random(2)
        for length in (1, 2, 7, 15, 16, 17, 31, 32, 33, 63, 64):
            reg = FoldedHistoryRegister(length)
            ghist = 0
            for _ in range(300):
                bit = rng.getrandbits(1)
                out_bit = (ghist >> (length - 1)) & 1
                ghist = (ghist << 1) | bit
                reg.push(bit, out_bit)
                assert reg.folded == fold_wide(ghist & ((1 << length) - 1),
                                               FOLD_WIDTH)

    def test_resync_recovers_from_arbitrary_history(self):
        reg = FoldedHistoryRegister(24)
        reg.resync(0xDEADBEEF)
        assert reg.folded == fold_wide(0xDEADBEEF & ((1 << 24) - 1), FOLD_WIDTH)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FoldedHistoryRegister(0)
        with pytest.raises(ValueError):
            FoldedHistoryRegister(4, width=0)


class TestFoldedHistorySet:
    LENGTHS_TAGE = (4, 6, 9, 12, 18, 26, 39, 56, 82, 120, 175, 256)
    LENGTHS_VTAGE = (2, 4, 8, 16, 32, 64)

    def _check_pairs(self, s, lengths, ghist, path):
        triples = s.pairs(lengths, ghist, path)
        for i, length in enumerate(lengths):
            compressed = _reference_compressed(ghist, path, length)
            assert triples[3 * i] == (compressed * _MIX2) & MASK64
            assert triples[3 * i + 1] == (compressed * _MIX1) & MASK64
            assert triples[3 * i + 2] == compressed

    def test_pairs_match_reference_over_pushes(self):
        rng = random.Random(3)
        s = FoldedHistorySet()
        ghist = path = 0
        for _ in range(400):
            bit = rng.getrandbits(1)
            pc = rng.getrandbits(16)
            old = ghist
            ghist = ((ghist << 1) | bit) & ((1 << 256) - 1)
            path = ((path << 3) ^ pc) & 0xFFFFFFFF
            s.push(bit, old, ghist, path)
            self._check_pairs(s, self.LENGTHS_TAGE, ghist, path)
            self._check_pairs(s, self.LENGTHS_VTAGE, ghist, path)

    def test_pairs_inline_scramble_matches_table_index_and_tag_hash(self):
        """The fused consumer arithmetic in tage/vtage, checked end to end."""
        rng = random.Random(4)
        s = FoldedHistorySet()
        ghist = rng.getrandbits(256)
        path = rng.getrandbits(32)
        triples = s.pairs(self.LENGTHS_VTAGE, ghist, path)
        for i, length in enumerate(self.LENGTHS_VTAGE):
            compressed = triples[3 * i + 2]
            for key in (rng.getrandbits(40) for _ in range(20)):
                x = key ^ triples[3 * i]
                x ^= x >> 33
                x = (x * _MIX1) & MASK64
                x ^= x >> 29
                x = (x * _MIX2) & MASK64
                x ^= x >> 32
                assert x & 1023 == table_index(key, 10, extra=compressed)
                kt = (key * 0x2545F4914F6CDD1D) & MASK64
                y = kt ^ triples[3 * i + 1]
                y ^= y >> 33
                y = (y * _MIX1) & MASK64
                y ^= y >> 29
                y = (y * _MIX2) & MASK64
                y ^= y >> 32
                assert (y >> 17) & 0xFFF == tag_hash(key, 12, extra=compressed)

    def test_external_mutation_resyncs(self):
        """A context mutated behind the set's back still hashes correctly."""
        s = FoldedHistorySet()
        s.pairs(self.LENGTHS_VTAGE, 0, 0)
        # No push ever saw this history: the staleness check must catch it.
        self._check_pairs(s, self.LENGTHS_VTAGE, 0b1011011, 0x1234)

    def test_on_squash_rewinds(self):
        rng = random.Random(5)
        s = FoldedHistorySet()
        ghist = path = 0
        for _ in range(50):
            bit = rng.getrandbits(1)
            old = ghist
            ghist = (ghist << 1) | bit
            path = ((path << 3) ^ rng.getrandbits(16)) & 0xFFFFFFFF
            s.push(bit, old, ghist, path)
        arch_ghist, arch_path = 0b1100, 0x40
        s.on_squash(arch_ghist, arch_path)
        self._check_pairs(s, self.LENGTHS_TAGE, arch_ghist, arch_path)

    def test_folded_uses_the_64_bit_horizon(self):
        s = FoldedHistorySet()
        ghist = (1 << 200) | 0b101  # bits beyond 64 are invisible to fold_value
        for length in (2, 64, 256):
            assert s.folded(length, ghist) == fold_value(
                ghist & ((1 << length) - 1), FOLD_WIDTH
            )
        assert FOLD_HORIZON == 64

    def test_shared_lanes_for_long_windows(self):
        """Lengths beyond the horizon share one 64-bit lane (same fold)."""
        s = FoldedHistorySet()
        ghist = random.Random(6).getrandbits(256)
        assert s.folded(82, ghist) == s.folded(256, ghist)


class TestLongHistoryMemoKeys:
    """History lengths >= 512 widen the compressed context beyond 26
    bits; the memo keys must keep the key and compressed fields disjoint
    (regression: a fixed 26-bit shift let positions of different PCs
    collide)."""

    def test_tage_positions_match_reference_for_long_histories(self):
        from repro.branch.tage import TAGEBranchPredictor, TAGEConfig

        config = TAGEConfig(min_history=4, max_history=1024, n_components=10)
        tage = TAGEBranchPredictor(config)
        ctx = PredictionContext()
        rng = random.Random(13)
        for _ in range(300):
            ctx.push_branch(bool(rng.getrandbits(1)), rng.getrandbits(20))
        for pc in (4, 5, 0x400000, 0x400004):
            _, payload = tage.predict(pc, ctx)
            positions = payload[3]
            for comp, pos in zip(tage.components, positions):
                assert pos == comp.position(pc, ctx), (pc, comp.history_length)

    def test_vtage_positions_match_reference_for_long_histories(self):
        from repro.core.vtage import VTAGEPredictor

        v = VTAGEPredictor(history_lengths=(16, 128, 512, 1024))
        ctx = PredictionContext()
        rng = random.Random(14)
        for _ in range(300):
            ctx.push_branch(bool(rng.getrandbits(1)), rng.getrandbits(20))
        for key in (4, 5, (0x400000 << 2), (0x400000 << 2) ^ 1):
            pred = v.lookup(key, ctx)
            positions = pred.payload[3]
            for comp, pos in zip(v.components, positions):
                assert pos == comp.index_and_tag(key, ctx), (key, comp.history_length)


class TestPredictionContextIntegration:
    def test_fold_set_attaches_and_tracks_push_branch(self):
        ctx = PredictionContext()
        folds = ctx.fold_set()
        assert ctx.folds is folds
        rng = random.Random(7)
        for _ in range(100):
            ctx.push_branch(bool(rng.getrandbits(1)), rng.getrandbits(20))
            for length in (4, 16, 64):
                assert folds.folded(length, ctx.ghist) == fold_value(
                    ctx.ghist & ((1 << length) - 1), FOLD_WIDTH
                )

    def test_snapshot_does_not_share_fold_state(self):
        ctx = PredictionContext()
        ctx.fold_set()
        snap = ctx.snapshot()
        assert snap.folds is None
        assert snap == PredictionContext(ctx.ghist, ctx.path, ctx.ghist_length)

    def test_equality_ignores_fold_cache(self):
        a = PredictionContext(ghist=0b1010, ghist_length=4)
        b = PredictionContext(ghist=0b1010, ghist_length=4)
        a.fold_set()
        assert a == b
