"""The precompute plane is bit-identical to the scalar front end.

The fast paths (``pipeline/fastsim.py`` and the compiled kernel) trust
the plane completely: redirect codes stand in for the branch unit, the
``(ghist, path)`` columns stand in for the live prediction context, and
the VTAGE plane stands in for ``_TaggedComponent.index_and_tag``.  These
tests pin each of those equivalences against the *object-level* APIs the
sequential model uses, plus the caching/persistence plumbing around them.
"""

import numpy as np
import pytest

from repro.branch.unit import BranchUnit
from repro.core.confidence import ConfidencePolicy
from repro.core.vtage import VTAGEPredictor
from repro.isa.uop import OpClass
from repro.pipeline.core import CoreModel
from repro.pipeline.precompute import (
    PRECOMPUTE_VERSION,
    apply_branch_state,
    default_branch_state,
    precompute_nbytes,
    trace_plane,
    vtage_plane,
    vtage_signature,
)
from repro.predictors.base import PredictionContext
from repro.util.bits import MASK64
from repro.util.hashing import scramble_array
from repro.workloads import catalog
from repro.workloads.catalog import build_trace
from repro.workloads.store import TRACE_DIR_ENV, TraceStore

_CTRL = {OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET}


@pytest.fixture(scope="module")
def trace():
    return build_trace("gcc", 6000)


def test_trace_plane_matches_branch_unit_walk(trace):
    """Redirect codes and per-µop context vs a µop-object BranchUnit walk."""
    plane = trace_plane(trace)
    unit = BranchUnit()
    ghist, path = 0, 0
    for i, uop in enumerate(trace):
        code = 0
        if uop.op_class in _CTRL:
            res = unit.process(uop)
            code = (1 if res.direction_mispredict
                    else (2 if res.target_mispredict else 0))
            if uop.op_class is OpClass.BRANCH:
                ghist = unit.context.ghist & MASK64
                path = unit.context.path & 0xFFFF
        assert plane.redirect[i] == code, f"redirect diverged at µop {i}"
        assert plane.ghist64[i] == ghist, f"ghist diverged at µop {i}"
        assert plane.path16[i] == path, f"path diverged at µop {i}"
    assert plane.cond_branches == unit.cond_branches
    assert plane.direction_mispredicts == unit.direction_mispredicts
    assert plane.target_mispredicts == unit.target_mispredicts
    assert plane.final_ghist == unit.context.ghist
    assert plane.final_path == unit.context.path
    assert plane.final_ghist_length == unit.context.ghist_length


def test_trace_plane_hash_columns(trace):
    """scr_pc / scr_pkey match the scalar scramble of pc and predictor key."""
    plane = trace_plane(trace)
    a = trace.packed().arrays
    pkeys = (a["pcs"] << np.uint64(2)) ^ a["uop_indexes"].astype(np.uint64)
    assert np.array_equal(plane.scr_pc, scramble_array(a["pcs"]))
    assert np.array_equal(plane.scr_pkey, scramble_array(pkeys))


def test_vtage_plane_matches_scalar_index_and_tag(trace):
    """Vectorised per-component positions vs ``index_and_tag`` on a live
    context walked over the same trace (sampled — the scalar path memoises
    per key and would dominate the suite at every µop)."""
    predictor = VTAGEPredictor(base_entries=1024, tagged_entries=256,
                               confidence=ConfidencePolicy())
    plane = vtage_plane(trace, predictor)
    assert len(plane.idx) == len(predictor.components)
    ctx = PredictionContext()
    checked = 0
    for i, uop in enumerate(trace):
        if uop.op_class is OpClass.BRANCH:
            ctx.push_branch(uop.taken, uop.pc)
        if i % 97:
            continue
        key = ((uop.pc << 2) ^ uop.uop_index) & MASK64
        for c, comp in enumerate(predictor.components):
            idx, tag = comp.index_and_tag(key, ctx)
            assert (plane.idx[c][i], plane.tag[c][i]) == (idx, tag), \
                f"component {c} diverged at µop {i}"
        checked += 1
    assert checked > 50


def test_planes_cached_on_trace_and_counted(trace):
    """Planes attach once per trace and the catalog LRU charges them."""
    plane = trace_plane(trace)
    assert trace_plane(trace) is plane
    predictor = VTAGEPredictor(base_entries=1024, tagged_entries=256,
                               confidence=ConfidencePolicy())
    vplane = vtage_plane(trace, predictor)
    assert vtage_plane(trace, predictor) is vplane
    # A same-geometry predictor shares the plane; the signature is the key.
    twin = VTAGEPredictor(base_entries=1024, tagged_entries=256,
                          confidence=ConfidencePolicy())
    assert vtage_signature(twin) == vtage_signature(predictor)
    assert vtage_plane(trace, twin) is vplane

    attached = precompute_nbytes(trace)
    assert attached == plane.nbytes + vplane.nbytes
    stats = catalog.trace_cache_stats()
    assert stats["precompute_bytes"] >= attached
    assert stats["bytes"] >= trace.nbytes + attached


def test_trace_plane_persists_to_store(tmp_path, monkeypatch):
    """A catalog-built trace's plane round-trips through the aux store."""
    monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
    catalog.clear_trace_cache()
    try:
        first = build_trace("gzip", 3000)
        plane = trace_plane(first)
        name, n_uops, seed = first.store_identity
        store = TraceStore(str(tmp_path))
        assert store.get_aux(name, n_uops, seed, "plane",
                             PRECOMPUTE_VERSION) is not None
        catalog.clear_trace_cache()
        reloaded = build_trace("gzip", 3000)
        assert reloaded is not first
        loaded = trace_plane(reloaded)
        assert np.array_equal(loaded.redirect, plane.redirect)
        assert np.array_equal(loaded.ghist64, plane.ghist64)
        assert np.array_equal(loaded.path16, plane.path16)
        assert np.array_equal(loaded.scr_pkey, plane.scr_pkey)
        assert loaded.final_ghist == plane.final_ghist
        assert loaded.final_ghist_length == plane.final_ghist_length
    finally:
        catalog.clear_trace_cache()


def test_default_branch_state_guard_and_writeback(trace):
    """Fast paths only run on a fresh unit, and leave the walked state."""
    model = CoreModel()
    assert default_branch_state(model)
    model.branch_unit.process_scalar(int(OpClass.BRANCH), 0x400, True, 0x500)
    assert not default_branch_state(model)

    fresh = CoreModel()
    plane = trace_plane(trace)
    apply_branch_state(fresh, plane)
    unit = fresh.branch_unit
    assert unit.cond_branches == plane.cond_branches
    assert unit.direction_mispredicts == plane.direction_mispredicts
    assert unit.context.ghist == plane.final_ghist
    assert unit.context.path == plane.final_path
