"""Unit tests for the µop model and trace container."""

from repro.isa.trace import Trace
from repro.isa.uop import FP_REG_BASE, MicroOp, OpClass, is_fp_class, is_mem_class


def uop(seq=0, pc=0x400, op=OpClass.INT_ALU, dst=1, **kwargs):
    return MicroOp(seq=seq, pc=pc, op_class=op, dst=dst, **kwargs)


class TestMicroOp:
    def test_produces_value(self):
        assert uop().produces_value
        assert not uop(op=OpClass.STORE, dst=None).produces_value
        assert not uop(op=OpClass.BRANCH, dst=None).produces_value

    def test_branch_with_dst_not_eligible(self):
        """Branches are never value-predicted (Section 7.2)."""
        call = uop(op=OpClass.CALL, dst=3)
        assert not call.produces_value

    def test_class_predicates(self):
        assert uop(op=OpClass.LOAD).is_load
        assert uop(op=OpClass.STORE, dst=None).is_store
        assert uop(op=OpClass.BRANCH, dst=None).is_cond_branch
        assert uop(op=OpClass.JUMP, dst=None).is_branch
        assert not uop(op=OpClass.JUMP, dst=None).is_cond_branch

    def test_fp_and_mem_class_helpers(self):
        assert is_fp_class(OpClass.FP_MUL)
        assert not is_fp_class(OpClass.INT_MUL)
        assert is_mem_class(OpClass.LOAD)
        assert not is_mem_class(OpClass.BRANCH)

    def test_predictor_key_mixes_uop_index(self):
        """Section 7.2: PC << 2 XOR µop number, so µops of one macro-op get
        distinct predictor entries."""
        a = uop(pc=0x1000, dst=1)
        b = MicroOp(seq=1, pc=0x1000, uop_index=1, dst=2)
        assert a.predictor_key() != b.predictor_key()
        assert a.predictor_key() == (0x1000 << 2)

    def test_fp_register_space(self):
        assert FP_REG_BASE == 32


class TestTrace:
    def make_trace(self):
        uops = [
            uop(seq=0, dst=1),
            uop(seq=1, op=OpClass.LOAD, dst=2, mem_addr=0x100),
            uop(seq=2, op=OpClass.BRANCH, dst=None, taken=True),
            uop(seq=3, op=OpClass.STORE, dst=None, mem_addr=0x100),
        ]
        return Trace(uops, name="t")

    def test_len_iter_getitem(self):
        trace = self.make_trace()
        assert len(trace) == 4
        assert [u.seq for u in trace] == [0, 1, 2, 3]
        assert trace[1].is_load
        assert isinstance(trace[:2], Trace)

    def test_split(self):
        trace = self.make_trace()
        head, tail = trace.split(1)
        assert len(head) == 1 and len(tail) == 3

    def test_stats(self):
        stats = self.make_trace().stats()
        assert stats.n_uops == 4
        assert stats.n_loads == 1
        assert stats.n_stores == 1
        assert stats.n_branches == 1
        assert stats.n_taken == 1
        assert stats.n_value_producers == 2

    def test_back_to_back_fraction(self):
        # The same producing µop twice in a row: 1 of 2 eligible is b2b.
        uops = [
            MicroOp(seq=0, pc=0x500, dst=1),
            MicroOp(seq=1, pc=0x500, dst=1),
        ]
        assert Trace(uops).back_to_back_fraction(fetch_width=8) == 0.5

    def test_back_to_back_far_occurrence_not_counted(self):
        uops = [MicroOp(seq=0, pc=0x500, dst=1)]
        uops += [MicroOp(seq=1 + i, pc=0x900 + 4 * i, dst=1) for i in range(20)]
        uops += [MicroOp(seq=21, pc=0x500, dst=1)]
        frac = Trace(uops).back_to_back_fraction(fetch_width=8)
        assert frac == 0.0
