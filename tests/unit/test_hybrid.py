"""Unit tests for the hybrid combiner (Section 7.1.2)."""

from repro.core.confidence import ConfidencePolicy
from repro.core.hybrid import HybridPredictor
from repro.core.vtage import VTAGEPredictor
from repro.predictors.base import Prediction, PredictionContext
from repro.predictors.stride import TwoDeltaStridePredictor


def make_hybrid():
    return HybridPredictor(
        VTAGEPredictor(base_entries=512, tagged_entries=64,
                       confidence=ConfidencePolicy()),
        TwoDeltaStridePredictor(entries=512, confidence=ConfidencePolicy()),
    )


class TestArbitration:
    def test_only_confident_component_selected(self):
        a = Prediction(value=1, confident=True, source="A")
        b = Prediction(value=2, confident=False, source="B")
        chosen = HybridPredictor._arbitrate(a, b)
        assert chosen.value == 1 and chosen.confident

    def test_agreement_proceeds(self):
        a = Prediction(value=9, confident=True, source="A")
        b = Prediction(value=9, confident=True, source="B")
        chosen = HybridPredictor._arbitrate(a, b)
        assert chosen.confident and chosen.value == 9

    def test_disagreement_abstains(self):
        """"When both predictors predict and if they do not agree, no
        prediction is made." (Section 7.1.2)"""
        a = Prediction(value=1, confident=True, source="A")
        b = Prediction(value=2, confident=True, source="B")
        chosen = HybridPredictor._arbitrate(a, b)
        assert not chosen.confident

    def test_none_components(self):
        assert HybridPredictor._arbitrate(None, None) is None
        b = Prediction(value=3, confident=True, source="B")
        assert HybridPredictor._arbitrate(None, b).value == 3


class TestHybridBehaviour:
    def test_covers_union_of_component_strengths(self):
        """Strided stream -> stride side; constant stream -> both; the
        hybrid should confidently cover both µops."""
        hybrid = make_hybrid()
        ctx = PredictionContext()
        stride_hits = const_hits = 0
        for i in range(200):
            # µop 1: arithmetic sequence.
            pred = hybrid.lookup(0x10, ctx)
            hybrid.speculate(0x10, pred)
            if pred.confident and pred.value == i * 8:
                stride_hits += 1
            hybrid.train(0x10, i * 8, pred)
            # µop 2: constant.
            pred = hybrid.lookup(0x20, ctx)
            hybrid.speculate(0x20, pred)
            if pred.confident and pred.value == 321:
                const_hits += 1
            hybrid.train(0x20, 321, pred)
        assert stride_hits > 100
        assert const_hits > 100

    def test_trains_both_components(self):
        hybrid = make_hybrid()
        ctx = PredictionContext()
        for i in range(50):
            pred = hybrid.lookup(0x30, ctx)
            hybrid.train(0x30, 7, pred)
        # Each component must have learned the constant on its own.
        assert hybrid.first.lookup(0x30, ctx).value == 7
        assert hybrid.second.lookup(0x30, ctx).value == 7

    def test_storage_is_sum_of_components(self):
        hybrid = make_hybrid()
        assert hybrid.storage_bits() == (
            hybrid.first.storage_bits() + hybrid.second.storage_bits()
        )

    def test_on_squash_propagates(self):
        hybrid = make_hybrid()
        ctx = PredictionContext()
        for i in range(60):
            pred = hybrid.lookup(0x10, ctx)
            hybrid.speculate(0x10, pred)
            hybrid.train(0x10, i * 4, pred)
        pred = hybrid.lookup(0x10, ctx)
        hybrid.speculate(0x10, pred)
        hybrid.on_squash()
        after = hybrid.lookup(0x10, ctx)
        assert after.value == pred.value  # committed state rules again

    def test_name_composition(self):
        hybrid = make_hybrid()
        assert "VTAGE" in hybrid.name and "2D-Stride" in hybrid.name
