"""Bit-identity of the numpy-backed trace columns and packed transport.

PR 5 rebuilt :class:`~repro.isa.trace.TraceColumns` on top of the packed
numpy representation (:class:`~repro.isa.trace.PackedColumns`).  The
contract is that every list-facing value is *bit-identical* to the
original pure-list implementation — the scheduler loop must not be able
to tell generated, store-loaded and shm-attached traces apart.  This
module pins that contract three ways: against a reference
reimplementation of the seed columnizer, across the golden-grid traces,
and through the pack → µops / pack → buffer → unpack round trips.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.isa.trace import COLUMN_SCHEMA, PackedColumns, Trace, TraceColumns
from repro.isa.uop import MicroOp, OpClass
from repro.util.bits import MASK64
from repro.workloads.catalog import build_trace

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "golden" / "simresults.json"

_CTRL = frozenset({OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET})

#: Every list attribute the scheduler reads off the columns.
_LIST_FIELDS = (
    "seqs", "pcs", "pc_lines", "ops", "srcs", "dsts", "values",
    "mem_addrs", "mem_sizes", "takens", "targets", "dst_is_fp",
    "is_branch", "is_cond_branch", "produces_value", "pkeys",
)


def reference_columns(uops):
    """The seed (pre-numpy) columnizer, kept verbatim as the oracle."""
    ref = {
        "n": len(uops),
        "seqs": [u.seq for u in uops],
        "pcs": [u.pc for u in uops],
        "pc_lines": [u.pc >> 6 for u in uops],
        "ops": [int(u.op_class) for u in uops],
        "srcs": [u.srcs for u in uops],
        "dsts": [u.dst for u in uops],
        "values": [u.value for u in uops],
        "mem_addrs": [u.mem_addr for u in uops],
        "mem_sizes": [u.mem_size for u in uops],
        "takens": [u.taken for u in uops],
        "targets": [u.target for u in uops],
        "dst_is_fp": [u.dst_is_fp for u in uops],
        "is_branch": [u.op_class in _CTRL for u in uops],
        "is_cond_branch": [u.op_class is OpClass.BRANCH for u in uops],
        "produces_value": [
            u.dst is not None and u.op_class not in _CTRL for u in uops
        ],
        "pkeys": [((u.pc << 2) ^ u.uop_index) & MASK64 for u in uops],
    }
    return ref


def assert_columns_match_reference(trace: Trace) -> None:
    cols = trace.columns()
    ref = reference_columns(trace.uops)
    assert cols.n == ref["n"]
    for field in _LIST_FIELDS:
        got = getattr(cols, field)
        want = ref[field]
        assert got == want, f"column {field} diverged"
        # Values must also be *plain Python* objects (the scheduler's hot
        # loop relies on int/bool semantics, not numpy scalars).
        for value in got[:64]:
            assert not isinstance(value, np.generic), (
                f"column {field} leaked numpy scalar {type(value)}"
            )


def _golden_trace_identities():
    entries = json.loads(GOLDEN_PATH.read_text())
    return sorted({
        (e["job"]["workload"], e["job"]["warmup"] + e["job"]["n_uops"],
         e["job"]["seed"])
        for e in entries
    })


class TestColumnsBitIdentity:
    @pytest.mark.parametrize(
        "workload,total,seed", _golden_trace_identities(),
        ids=lambda v: str(v),
    )
    def test_golden_grid_traces_match_reference(self, workload, total, seed):
        assert_columns_match_reference(build_trace(workload, total, seed=seed))

    def test_scenario_trace_matches_reference(self):
        assert_columns_match_reference(build_trace("scenario-c4-e25-l90", 3000))

    def test_fp_heavy_trace_matches_reference(self):
        assert_columns_match_reference(build_trace("wupwise", 3000))


class TestPackedRoundTrip:
    def test_to_uops_is_dataclass_equal(self):
        trace = build_trace("gcc", 2500)
        rebuilt = trace.packed().to_uops()
        assert rebuilt == trace.uops

    def test_from_packed_trace_simulates_like_the_original(self):
        from repro.pipeline.core import simulate

        original = build_trace("gzip", 2500)
        clone = Trace.from_packed(
            PackedColumns.from_uops(original.uops), name=original.name
        )
        a = simulate(original, None, warmup=500, workload="gzip")
        b = simulate(clone, None, warmup=500, workload="gzip")
        assert a.to_dict() == b.to_dict()

    def test_buffer_transport_round_trip(self):
        trace = build_trace("crafty", 2000)
        packed = trace.packed()
        layout, total = packed.buffer_layout()
        buf = bytearray(total)
        packed.write_into(buf)
        back = PackedColumns.from_buffer(buf, layout, packed.n)
        back.validate()
        for name, _ in COLUMN_SCHEMA:
            assert np.array_equal(back.arrays[name], packed.arrays[name])
        # Copies, not views: mutating the buffer must not touch the copy.
        buf[:16] = b"\xff" * 16
        assert back.arrays[COLUMN_SCHEMA[0][0]].tolist() == \
            packed.arrays[COLUMN_SCHEMA[0][0]].tolist()

    def test_mem_addr_none_and_zero_are_distinguished(self):
        uops = [
            MicroOp(seq=0, pc=0x400, op_class=OpClass.LOAD, srcs=(), dst=1,
                    value=7, mem_addr=0, mem_size=8),
            MicroOp(seq=1, pc=0x404, op_class=OpClass.INT_ALU, srcs=(1,),
                    dst=2, value=9),
        ]
        packed = PackedColumns.from_uops(uops)
        rebuilt = packed.to_uops()
        assert rebuilt[0].mem_addr == 0
        assert rebuilt[1].mem_addr is None
        assert rebuilt == uops

    def test_validate_rejects_wrong_dtype(self):
        packed = build_trace("gzip", 1000).packed()
        bad = PackedColumns(
            packed.n,
            {**packed.arrays, "ops": packed.arrays["ops"].astype(np.int32)},
        )
        with pytest.raises(ValueError):
            bad.validate()


class TestLazyTrace:
    def test_len_iter_and_stats_without_materialised_uops(self):
        source = build_trace("gcc", 2000)
        clone = Trace.from_packed(source.packed(), name="gcc")
        assert len(clone) == len(source)
        packed_stats = clone.stats()          # vectorised path
        loop_stats = source.stats() if source._packed is None else None
        # Force the µop loop on a fresh list-backed trace for comparison.
        plain = Trace(list(source.uops), name="gcc")
        assert packed_stats == plain.stats()
        if loop_stats is not None:
            assert packed_stats == loop_stats
        assert [u.pc for u in clone] == [u.pc for u in source]

    def test_append_after_from_packed_invalidate_views(self):
        source = build_trace("gzip", 1000)
        clone = Trace.from_packed(source.packed(), name="gzip")
        n = len(clone)
        clone.append(MicroOp(seq=n, pc=0x9999, op_class=OpClass.NOP))
        assert len(clone) == n + 1
        assert clone.columns().n == n + 1
