"""The shared-memory trace plane: registry, adoption, crash cleanup.

Covers the parent-side :class:`~repro.engine.shm.SharedTraceRegistry`
(lease/release refcounts, idle LRU eviction, shutdown unlink), the
worker-side :func:`~repro.engine.shm.adopt_shared_trace`, the pool
executor fan-out, and the service queue's lease lifecycle under worker
``SIGKILL`` + respawn.
"""

import asyncio
import os
import signal
import time
from multiprocessing import shared_memory

import pytest

from repro.engine.cache import ResultCache
from repro.engine.executors import PoolExecutor, SerialExecutor
from repro.engine.job import SimJob, execute_job
from repro.engine.queue import JobQueue, WorkerPool
from repro.engine.shm import (
    SHM_ENV,
    SharedTraceRegistry,
    adopt_shared_trace,
    shm_enabled,
)
from repro.workloads import catalog

TINY = dict(n_uops=800, warmup=400)


def tiny_job(workload="gzip", predictor="lvp", **kw):
    return SimJob.make(workload, predictor, **{**TINY, **kw})


def _segment_exists(name: str) -> bool:
    # Probing attaches (and so re-registers with the shared resource
    # tracker — idempotent); the owner's unlink is what unregisters.
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


@pytest.fixture(autouse=True)
def fresh_caches():
    catalog.clear_trace_cache()
    yield
    catalog.clear_trace_cache()


class TestShmEnabled:
    def test_default_on_and_off_switch(self, monkeypatch):
        monkeypatch.delenv(SHM_ENV, raising=False)
        assert shm_enabled()
        for off in ("0", "off", "false", "no"):
            monkeypatch.setenv(SHM_ENV, off)
            assert not shm_enabled()
        monkeypatch.setenv(SHM_ENV, "1")
        assert shm_enabled()


class TestRegistry:
    def test_lease_share_release_and_close(self):
        registry = SharedTraceRegistry()
        try:
            first = registry.lease("gzip", 1200)
            assert first is not None
            key, spec = first
            again = registry.lease("gzip", 1200)
            assert again is not None and again[0] == key
            assert again[1]["shm"] == spec["shm"]  # same segment, no rebuild
            stats = registry.stats()
            assert stats["segments"] == 1
            assert stats["materialized"] == 1
            assert stats["shared"] == 2
            registry.release(key)
            registry.release(key)
            assert registry.stats()["leased"] == 0
            assert _segment_exists(spec["shm"])  # idle, kept for reuse
        finally:
            registry.close()
        assert not _segment_exists(spec["shm"])
        assert registry.lease("gzip", 1200) is None  # closed registries refuse

    def test_idle_byte_budget_evicts_lru(self):
        registry = SharedTraceRegistry(idle_bytes=1)  # nothing may idle
        try:
            key, spec = registry.lease("gzip", 1200)
            registry.release(key)
            assert not _segment_exists(spec["shm"])
            assert registry.stats()["segments"] == 0
        finally:
            registry.close()

    def test_leased_segments_survive_eviction_pressure(self):
        registry = SharedTraceRegistry(idle_bytes=1)
        try:
            key_a, spec_a = registry.lease("gzip", 1200)
            key_b, spec_b = registry.lease("gcc", 1200)
            registry.release(key_b)  # evicted immediately (budget = 1 byte)
            assert _segment_exists(spec_a["shm"])  # still leased: pinned
            assert not _segment_exists(spec_b["shm"])
        finally:
            registry.close()

    def test_unknown_workload_degrades_to_none(self):
        registry = SharedTraceRegistry()
        try:
            assert registry.lease("no-such-workload", 1000) is None
        finally:
            registry.close()

    def test_disabled_plane_leases_nothing(self, monkeypatch):
        monkeypatch.setenv(SHM_ENV, "0")
        registry = SharedTraceRegistry()
        try:
            assert registry.lease("gzip", 1200) is None
        finally:
            registry.close()


class TestAdoption:
    def test_adopt_seeds_the_local_trace_cache(self):
        registry = SharedTraceRegistry()
        try:
            key, spec = registry.lease("gcc", 1500)
            catalog.clear_trace_cache()
            assert catalog.cached_trace("gcc", 1500) is None
            assert adopt_shared_trace(spec)
            adopted = catalog.cached_trace("gcc", 1500)
            assert adopted is not None
            reference = catalog.build_trace("gcc", 1500, cache=False)
            assert adopted.columns().values == reference.columns().values
        finally:
            registry.close()

    def test_adopted_trace_outlives_the_segment(self):
        registry = SharedTraceRegistry()
        key, spec = registry.lease("gzip", 1200)
        catalog.clear_trace_cache()
        assert adopt_shared_trace(spec)
        registry.close()  # segment unlinked; the adopted copy must survive
        trace = catalog.cached_trace("gzip", 1200)
        result = execute_job(tiny_job())
        catalog.clear_trace_cache()
        assert result.to_dict() == execute_job(tiny_job()).to_dict()
        assert trace is not None

    def test_adopt_of_a_dead_segment_degrades(self):
        registry = SharedTraceRegistry()
        key, spec = registry.lease("gzip", 1200)
        registry.close()
        catalog.clear_trace_cache()
        assert not adopt_shared_trace(spec)  # False: caller rebuilds locally


class TestPoolExecutorFanOut:
    def test_pool_results_identical_with_and_without_shm(self, monkeypatch):
        jobs = [tiny_job(w, p) for w in ("gzip", "gcc")
                for p in ("none", "lvp")]
        reference = [r.to_dict() for r in SerialExecutor().run(jobs)]
        monkeypatch.setenv(SHM_ENV, "0")
        legacy = [r.to_dict() for r in PoolExecutor(2).run(jobs)]
        monkeypatch.setenv(SHM_ENV, "1")
        shared = [r.to_dict() for r in PoolExecutor(2).run(jobs)]
        assert legacy == reference
        assert shared == reference

    def test_pool_run_leaves_no_segments_behind(self):
        jobs = [tiny_job("gzip", p) for p in ("none", "lvp")]
        registry_probe = SharedTraceRegistry()
        registry_probe.close()
        PoolExecutor(2).run(jobs)
        # Nothing of ours should remain in /dev/shm (psm_* segments).
        leaked = [n for n in os.listdir("/dev/shm") if n.startswith("psm_")] \
            if os.path.isdir("/dev/shm") else []
        assert leaked == []


class TestQueueLeaseLifecycle:
    def test_completion_releases_leases_and_stop_unlinks(self):
        async def scenario():
            q = JobQueue(WorkerPool(1), cache=ResultCache(None))
            await q.start()
            try:
                await q.run_jobs([tiny_job(), tiny_job("gcc")])
                stats = q.traces.stats()
                return stats, [s.spec["shm"]
                               for s in q.traces._segments.values()]
            finally:
                await q.stop()

        stats, names = asyncio.run(scenario())
        assert stats["materialized"] == 2
        assert stats["shared"] == 2
        assert stats["leased"] == 0  # both released on completion
        for name in names:
            assert not _segment_exists(name)  # stop() unlinked everything

    def test_cold_traces_prepare_off_the_event_loop(self):
        async def scenario():
            q = JobQueue(WorkerPool(1), cache=ResultCache(None))
            await q.start()
            try:
                results = await q.run_jobs([tiny_job(), tiny_job("gcc")])
                return results, q.traces.stats(), set(q._preparing), \
                    set(q._prepare_failed)
            finally:
                await q.stop()

        results, stats, preparing, failed = asyncio.run(scenario())
        # Both cold traces were generated via the deferred-prepare path
        # (thread executor), then materialised and leased — not built
        # synchronously on the loop, and nothing failed or leaked.
        assert stats["materialized"] == 2
        assert stats["shared"] == 2
        assert preparing == set()
        assert failed == set()
        assert [r.to_dict() for r in results] == \
            [execute_job(tiny_job()).to_dict(),
             execute_job(tiny_job("gcc")).to_dict()]

    def test_prepare_failure_degrades_to_bare_dispatch(self, monkeypatch):
        import repro.engine.queue as queue_mod

        monkeypatch.setattr(queue_mod, "prepare_trace",
                            lambda *a, **kw: None)

        async def scenario():
            q = JobQueue(WorkerPool(1), cache=ResultCache(None))
            await q.start()
            try:
                results = await q.run_jobs([tiny_job()])
                return results, q.traces.stats(), set(q._prepare_failed)
            finally:
                await q.stop()

        results, stats, failed = asyncio.run(scenario())
        assert len(failed) == 1          # the identity was marked failed...
        assert stats["failures"] >= 1
        assert stats["materialized"] == 0
        # ...and the worker still produced the correct result locally.
        assert results[0].to_dict() == execute_job(tiny_job()).to_dict()

    def test_sigkilled_worker_releases_lease_and_requeues(self):
        async def scenario():
            q = JobQueue(WorkerPool(2), cache=ResultCache(None))
            await q.start()
            try:
                jobs = [SimJob.make(w, "vtage", n_uops=12000, warmup=6000)
                        for w in ("gzip", "gcc", "crafty", "applu")]
                futures, _ = q.submit(jobs)
                victim = None
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    busy = [w for w in q.pool.describe()
                            if w["task"] and w["alive"]]
                    if busy:
                        victim = busy[0]["pid"]
                        break
                    await asyncio.sleep(0.01)
                assert victim is not None, "no worker ever went busy"
                os.kill(victim, signal.SIGKILL)
                results = await asyncio.gather(*futures)
                return jobs, results, q.stats, q.traces.stats()
            finally:
                await q.stop()

        jobs, results, stats, trace_stats = asyncio.run(scenario())
        assert stats.requeued >= 1
        assert trace_stats["leased"] == 0  # dead worker's lease was returned
        # Requeued assignments re-lease (reusing resident segments), so the
        # plane served at least one lease per job despite the crash.
        assert trace_stats["shared"] >= len(jobs)
        expected = [execute_job(j) for j in jobs]
        assert [r.to_dict() for r in results] == \
            [e.to_dict() for e in expected]
