"""Unit tests for text report rendering."""

import pytest

from repro.analysis.report import ascii_bar_chart, format_table, geometric_mean


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [["x", "1"], ["yyyy", "22"]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "yyyy" in lines[-1]

    def test_title(self):
        out = format_table(["c"], [["v"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_non_string_cells(self):
        out = format_table(["n"], [[3.5], [7]])
        assert "3.5" in out and "7" in out


class TestBarChart:
    def test_bars_scale(self):
        out = ascii_bar_chart({"a": 2.0, "b": 1.5}, baseline=1.0)
        line_a, line_b = out.splitlines()
        assert line_a.count("#") > line_b.count("#")

    def test_slowdown_marked(self):
        out = ascii_bar_chart({"slow": 0.8}, baseline=1.0)
        assert "<" in out

    def test_empty(self):
        assert ascii_bar_chart({}, title="t") == "t"

    def test_value_formatting(self):
        out = ascii_bar_chart({"a": 1.234}, fmt="{:.1f}")
        assert "1.2" in out


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_identity(self):
        assert geometric_mean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
