"""The content-addressed trace store: round trips, healing, CLI, catalog.

The store's contract is *cost, never correctness*: a hit loads packed
columns bit-identical to generation (pinned by simulating both), a
corrupt entry quarantines itself and the generator heals it, and version
bumps orphan old entries instead of misreading them.
"""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.engine.job import SimJob, execute_job
from repro.pipeline.core import simulate
from repro.workloads import catalog
from repro.workloads.store import (
    TRACE_DIR_ENV,
    TraceStore,
    default_trace_store,
    trace_key,
)


@pytest.fixture(autouse=True)
def fresh_trace_state(monkeypatch, tmp_path):
    """Isolate every test: no ambient store, empty trace cache."""
    monkeypatch.delenv(TRACE_DIR_ENV, raising=False)
    catalog.clear_trace_cache()
    yield
    catalog.clear_trace_cache()


def build_uncached(name="gzip", total=2000, seed=None):
    return catalog.build_trace(name, total, seed=seed, cache=False)


class TestStoreRoundTrip:
    def test_put_get_simulates_bit_identically(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = build_uncached("gcc", 2500)
        store.put(trace, "gcc", 2500, 403)
        loaded = store.get("gcc", 2500, 403)  # mmap-backed by default
        assert loaded is not None
        a = simulate(trace, None, warmup=500, workload="gcc")
        b = simulate(loaded, None, warmup=500, workload="gcc")
        assert a.to_dict() == b.to_dict()

    def test_get_without_mmap_matches(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = build_uncached()
        store.put(trace, "gzip", 2000, 164)
        loaded = store.get("gzip", 2000, 164, mmap=False)
        assert loaded.columns().pkeys == trace.columns().pkeys

    def test_miss_returns_none(self, tmp_path):
        assert TraceStore(tmp_path).get("gzip", 999, 164) is None

    def test_put_is_idempotent(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = build_uncached()
        first = store.put(trace, "gzip", 2000, 164)
        second = store.put(trace, "gzip", 2000, 164)
        assert first == second
        assert store.stats()["entries"] == 1

    def test_key_depends_on_identity_and_versions(self, monkeypatch):
        base = trace_key("gzip", 2000, 164)
        assert trace_key("gzip", 2000, 165) != base
        assert trace_key("gzip", 2001, 164) != base
        assert trace_key("gcc", 2000, 164) != base
        import repro.workloads.store as store_mod

        monkeypatch.setattr(store_mod, "TRACE_GENERATOR_VERSION", 999)
        assert trace_key("gzip", 2000, 164) != base


class TestCorruptionHealing:
    def _stored(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = build_uncached()
        entry = store.put(trace, "gzip", 2000, 164)
        return store, entry

    def test_truncated_column_is_quarantined(self, tmp_path):
        store, entry = self._stored(tmp_path)
        (entry / "values.npy").write_bytes(b"\x93NUMPY garbage")
        assert store.get("gzip", 2000, 164) is None
        assert store.corrupt == 1
        assert not entry.exists()  # quarantine-deleted

    def test_bad_meta_is_quarantined(self, tmp_path):
        store, entry = self._stored(tmp_path)
        (entry / "meta.json").write_text("{not json")
        assert store.get("gzip", 2000, 164) is None
        assert not entry.exists()

    def test_orphaned_tmp_dirs_are_not_listed(self, tmp_path):
        store, entry = self._stored(tmp_path)
        # Simulate a writer SIGKILLed between meta write and rename.
        orphan = entry.with_name(f"{entry.name}.tmp.9999")
        orphan.mkdir()
        (orphan / "meta.json").write_text(
            (entry / "meta.json").read_text()
        )
        assert store.stats()["entries"] == 1  # the orphan is invisible
        assert all(".tmp." not in row["key"] for row in store.entries())
        store.clear()
        assert not orphan.exists()  # clear() still sweeps it

    def test_missing_column_is_quarantined(self, tmp_path):
        store, entry = self._stored(tmp_path)
        (entry / "takens.npy").unlink()
        assert store.get("gzip", 2000, 164) is None

    def test_build_trace_regenerates_and_reheals(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        reference = catalog.build_trace("gzip", 2000).columns().values
        store = default_trace_store()
        assert store.stats()["entries"] == 1
        entry = next(tmp_path.glob("??/*"))
        (entry / "meta.json").write_text("{not json")
        catalog.clear_trace_cache()
        healed = catalog.build_trace("gzip", 2000)  # regenerates + re-persists
        assert healed.columns().values == reference
        assert default_trace_store().stats()["entries"] == 1


class TestFaultInjectedHealing:
    """The same healing paths, driven through the chaos plane.

    These use :mod:`repro.engine.faults` to damage entries *through the
    production injection sites* — the read path quarantines real on-disk
    corruption, the write path survives injected ``ENOSPC``/partial
    writes — proving the seeded plans the chaos suite runs exercise the
    identical code the hand-damage tests above pin.
    """

    @pytest.fixture(autouse=True)
    def clean_plan(self):
        from repro.engine import faults

        faults.reset()
        yield
        faults.install_plan(None)
        faults.reset()

    def _stored(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = build_uncached()
        entry = store.put(trace, "gzip", 2000, 164)
        return store, trace, entry

    def test_injected_truncation_quarantines_and_regenerates(self, tmp_path):
        from repro.engine import faults

        store, trace, entry = self._stored(tmp_path)
        faults.install_plan("store.read:truncate@1")
        assert store.get("gzip", 2000, 164) is None
        assert store.corrupt == 1
        assert not entry.exists()
        # Regeneration heals: the next put/get round trip is clean and
        # bit-identical to the original trace.
        store.put(trace, "gzip", 2000, 164)
        healed = store.get("gzip", 2000, 164)
        assert healed is not None
        assert healed.columns().values == trace.columns().values

    def test_injected_garbage_meta_quarantines(self, tmp_path):
        from repro.engine import faults

        store, _trace, entry = self._stored(tmp_path)
        faults.install_plan("store.read:garbage-meta@1")
        assert store.get("gzip", 2000, 164) is None
        assert not entry.exists()

    def test_injected_enospc_during_put_leaves_no_entry(self, tmp_path):
        from repro.engine import faults

        store = TraceStore(tmp_path)
        trace = build_uncached()
        faults.install_plan("store.write:enospc@1")
        store.put(trace, "gzip", 2000, 164)  # swallowed, never raises
        assert store.get("gzip", 2000, 164) is None
        faults.install_plan(None)
        # The failed persist left nothing behind that blocks a retry.
        store.put(trace, "gzip", 2000, 164)
        assert store.get("gzip", 2000, 164) is not None

    def test_injected_partial_write_never_renames_into_place(self, tmp_path):
        from repro.engine import faults

        store = TraceStore(tmp_path)
        trace = build_uncached()
        faults.install_plan("store.write:partial@1")
        store.put(trace, "gzip", 2000, 164)
        # The half-written column set stayed in (cleaned) tmp space: no
        # committed entry, no tmp debris, and contains() agrees.
        assert not store.contains("gzip", 2000, 164)
        assert not list(tmp_path.glob("??/*.tmp.*"))

    def test_fault_free_plan_run_is_bit_identical(self, tmp_path):
        """A survivable-fault run heals back to the fault-free answer."""
        from repro.engine import faults

        store, trace, _entry = self._stored(tmp_path)
        # Copy the clean answer out *before* injecting damage: an
        # mmap-backed view would SIGBUS once the file under it shrinks.
        clean = store.get("gzip", 2000, 164, mmap=False)
        clean_pkeys = clean.columns().pkeys
        clean_values = clean.columns().values
        faults.install_plan("store.read:truncate@1")
        assert store.get("gzip", 2000, 164) is None  # quarantined
        store.put(trace, "gzip", 2000, 164)          # healed
        healed = store.get("gzip", 2000, 164)
        assert healed.columns().pkeys == clean_pkeys
        assert healed.columns().values == clean_values


class TestCatalogIntegration:
    def test_warm_store_skips_generation(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        first = catalog.build_trace("gcc", 2500)
        catalog.clear_trace_cache()
        before = catalog.generation_count()
        second = catalog.build_trace("gcc", 2500)
        assert catalog.generation_count() == before  # loaded, not generated
        assert second.columns().values == first.columns().values

    def test_store_loaded_job_results_match(self, tmp_path, monkeypatch):
        job = SimJob.make("gzip", "lvp", n_uops=1500, warmup=500)
        cold = execute_job(job)
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        catalog.clear_trace_cache()
        execute_job(job)              # populates the store
        catalog.clear_trace_cache()
        warm = execute_job(job)       # served from the store
        assert warm.to_dict() == cold.to_dict()


class TestLRUTraceCache:
    def test_entry_budget_evicts_least_recently_used(self, monkeypatch):
        monkeypatch.setenv(catalog.TRACE_CACHE_ENTRIES_ENV, "2")
        catalog.build_trace("gzip", 1000)
        catalog.build_trace("gcc", 1000)
        catalog.build_trace("gzip", 1000)       # refresh gzip
        catalog.build_trace("crafty", 1000)     # evicts gcc (LRU)
        assert catalog.cached_trace("gzip", 1000) is not None
        assert catalog.cached_trace("crafty", 1000) is not None
        assert catalog.cached_trace("gcc", 1000) is None
        assert catalog.trace_cache_stats()["entries"] == 2

    def test_byte_budget_bounds_the_cache(self, monkeypatch):
        # ~70 KB per 1000-µop packed trace; a 0.1 MB budget holds one.
        monkeypatch.setenv(catalog.TRACE_CACHE_MB_ENV, "0.1")
        catalog.build_trace("gzip", 1000)
        catalog.build_trace("gcc", 1000)
        stats = catalog.trace_cache_stats()
        assert stats["entries"] == 1
        assert catalog.cached_trace("gcc", 1000) is not None

    def test_single_oversized_trace_still_caches(self, monkeypatch):
        monkeypatch.setenv(catalog.TRACE_CACHE_MB_ENV, "0.01")
        trace = catalog.build_trace("gzip", 2000)
        assert catalog.cached_trace("gzip", 2000) is trace

    def test_seed_trace_installs_under_resolved_identity(self):
        trace = build_uncached("gzip", 1200)
        catalog.seed_trace("gzip", 1200, None, trace)
        assert catalog.cached_trace("gzip", 1200, 164) is trace
        assert catalog.build_trace("gzip", 1200) is trace


class TestTraceCLI:
    def test_build_ls_clear(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert cli_main(["trace", "build", "--workloads", "gzip,gcc",
                         "--uops", "1000", "--warmup", "500",
                         "--trace-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "built and stored" in out
        # Rebuilding is a no-op.
        assert cli_main(["trace", "build", "--workloads", "gzip",
                         "--uops", "1000", "--warmup", "500",
                         "--trace-dir", store_dir]) == 0
        assert "already stored" in capsys.readouterr().out
        assert cli_main(["trace", "ls", "--stats",
                         "--trace-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "gcc" in out
        assert "total: 2 trace(s)" in out
        assert cli_main(["trace", "clear", "--trace-dir", store_dir]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert TraceStore(store_dir).stats()["entries"] == 0

    def test_trace_without_dir_errors(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["trace", "ls"])

    def test_env_var_supplies_the_dir(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        assert cli_main(["trace", "ls"]) == 0
        assert "no stored traces" in capsys.readouterr().out
