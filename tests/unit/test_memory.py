"""Unit tests for the memory substrate: caches, DRAM, prefetcher, store sets."""

import pytest

from repro.memory.cache import Cache, CacheConfig
from repro.memory.dram import DRAMModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.prefetcher import StridePrefetcher
from repro.memory.storesets import StoreSets


def flat_miss_handler(latency=100):
    def handler(line_addr, cycle):
        return cycle + latency
    return handler


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache(CacheConfig(name="t", size_bytes=4096, ways=2, hit_latency=2))
        first = cache.access(0x1000, cycle=0, miss_handler=flat_miss_handler())
        assert first >= 100
        second = cache.access(0x1000, cycle=first, miss_handler=flat_miss_handler())
        assert second == first + 2
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_shares_fill(self):
        cache = Cache(CacheConfig(name="t", size_bytes=4096, ways=2))
        cache.access(0x1000, 0, flat_miss_handler())
        # Another word in the same 64B line: a hit, no second miss.
        cache.access(0x1008, 5, flat_miss_handler())
        assert cache.misses == 1

    def test_access_during_fill_waits(self):
        cache = Cache(CacheConfig(name="t", size_bytes=4096, ways=2))
        ready = cache.access(0x1000, 0, flat_miss_handler(100))
        early = cache.access(0x1000, 10, flat_miss_handler(100))
        assert early >= ready

    def test_lru_eviction(self):
        cfg = CacheConfig(name="t", size_bytes=2 * 64, ways=2, line_bytes=64)
        cache = Cache(cfg)  # 1 set, 2 ways
        cache.access(0x0000, 0, flat_miss_handler(1))
        cache.access(0x1000, 10, flat_miss_handler(1))
        cache.access(0x0000, 20, flat_miss_handler(1))  # refresh line 0
        cache.access(0x2000, 30, flat_miss_handler(1))  # evicts 0x1000
        before = cache.misses
        cache.access(0x0000, 40, flat_miss_handler(1))
        assert cache.misses == before  # still resident
        cache.access(0x1000, 50, flat_miss_handler(1))
        assert cache.misses == before + 1  # was evicted

    def test_mshr_limit_delays(self):
        cfg = CacheConfig(name="t", size_bytes=1 << 20, ways=4, mshrs=2)
        cache = Cache(cfg)
        r1 = cache.access(0x0000, 0, flat_miss_handler(100))
        r2 = cache.access(0x10000, 0, flat_miss_handler(100))
        r3 = cache.access(0x20000, 0, flat_miss_handler(100))  # must wait
        assert r3 > max(r1, r2) - 5
        assert cache.mshr_stalls >= 1

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=3000, ways=4)


class TestDRAM:
    def test_latency_within_paper_bounds(self):
        dram = DRAMModel()
        for i in range(200):
            addr = i * 8192 * 3
            done = dram.read(addr, cycle=i * 200)
            latency = done - i * 200
            assert 75 <= latency <= 185

    def test_row_hit_faster_than_conflict(self):
        dram = DRAMModel()
        base = dram.read(0x0, 0)
        hit = dram.read(0x40, base + 50) - (base + 50)
        conflict_addr = 8192 * dram.n_banks  # same bank, different row
        conflict = dram.read(conflict_addr, base + 1000) - (base + 1000)
        assert hit < conflict

    def test_row_hit_rate_tracked(self):
        dram = DRAMModel()
        for i in range(10):
            dram.read(i * 64, i * 300)
        assert dram.row_hit_rate > 0.5


class TestPrefetcher:
    def test_detects_constant_stride(self):
        pf = StridePrefetcher(degree=4)
        issued = []
        for i in range(8):
            issued = pf.observe(0x400, 0x1000 + i * 64)
        assert len(issued) == 4
        assert issued[0] == 0x1000 + 8 * 64

    def test_no_prefetch_for_random(self):
        pf = StridePrefetcher(degree=4)
        import random
        rng = random.Random(5)
        total = 0
        for _ in range(50):
            total += len(pf.observe(0x400, rng.randrange(1 << 30)))
        assert total == 0

    def test_streams_tracked_per_pc(self):
        pf = StridePrefetcher(degree=2)
        for i in range(6):
            a = pf.observe(0x400, 0x1000 + i * 64)
            b = pf.observe(0x404, 0x9000 + i * 128)
        assert a and b
        assert a[0] != b[0]


class TestStoreSets:
    def test_violation_creates_set(self):
        ss = StoreSets()
        assert ss.predicted_store(0x100) is None
        ss.train_violation(load_pc=0x100, store_pc=0x200)
        ss.store_fetched(0x200, seq=42)
        assert ss.predicted_store(0x100) == 42

    def test_store_retirement_clears_lfst(self):
        ss = StoreSets()
        ss.train_violation(0x100, 0x200)
        ss.store_fetched(0x200, 42)
        ss.store_retired(0x200, 42)
        assert ss.predicted_store(0x100) is None

    def test_newer_store_takes_over(self):
        ss = StoreSets()
        ss.train_violation(0x100, 0x200)
        ss.store_fetched(0x200, 42)
        ss.store_fetched(0x200, 77)
        assert ss.predicted_store(0x100) == 77
        ss.store_retired(0x200, 42)  # stale retirement must not clear
        assert ss.predicted_store(0x100) == 77

    def test_flush_clears_inflight(self):
        ss = StoreSets()
        ss.train_violation(0x100, 0x200)
        ss.store_fetched(0x200, 42)
        ss.flush_inflight()
        assert ss.predicted_store(0x100) is None

    def test_merge_two_sets(self):
        ss = StoreSets()
        ss.train_violation(0x100, 0x200)
        ss.train_violation(0x300, 0x400)
        ss.train_violation(0x100, 0x400)  # merge
        ss.store_fetched(0x400, 9)
        assert ss.predicted_store(0x100) == 9


class TestHierarchy:
    def test_l1_hit_fast(self):
        mem = MemoryHierarchy()
        first = mem.load(0x400, 0x10000, 0)
        again = mem.load(0x400, 0x10000, first.ready_cycle + 10)
        assert again.l1_hit
        assert again.ready_cycle - (first.ready_cycle + 10) == 2

    def test_miss_goes_through_l2_to_dram(self):
        mem = MemoryHierarchy()
        result = mem.load(0x400, 0x5000000, 0)
        assert not result.l1_hit
        assert result.ready_cycle >= 75

    def test_prefetcher_warms_l2(self):
        mem = MemoryHierarchy()
        cycle = 0
        # Strided miss stream trains the L2 prefetcher.
        for i in range(32):
            r = mem.load(0x400, 0x800000 + i * 64, cycle)
            cycle = r.ready_cycle + 5
        assert mem.prefetcher.issued > 0

    def test_instruction_fetch_path(self):
        mem = MemoryHierarchy()
        t1 = mem.fetch(0x400000, 0)
        t2 = mem.fetch(0x400000, t1 + 1)
        assert t2 - (t1 + 1) <= 2  # L1I hit
