"""Unit tests for the core timing model on hand-built micro-traces."""

import pytest

from repro.core.confidence import ConfidencePolicy
from repro.isa.trace import Trace
from repro.isa.uop import MicroOp, OpClass
from repro.pipeline.config import CoreConfig, RecoveryMode
from repro.pipeline.core import CoreModel, simulate
from repro.predictors.lvp import LastValuePredictor
from repro.predictors.oracle import OraclePredictor


def chain_trace(n, latency_class=OpClass.INT_ALU, value=7):
    """A pure serial dependence chain: uop i reads uop i-1's register."""
    uops = []
    for i in range(n):
        uops.append(
            MicroOp(seq=i, pc=0x400 + 4 * (i % 16), op_class=latency_class,
                    srcs=(0,), dst=0, value=value)
        )
    return Trace(uops, name="chain")


def independent_trace(n):
    """Fully independent single-cycle µops."""
    uops = [
        MicroOp(seq=i, pc=0x400 + 4 * (i % 16), op_class=OpClass.INT_ALU,
                srcs=(), dst=i % 8, value=i)
        for i in range(n)
    ]
    return Trace(uops, name="indep")


class TestBaselineTiming:
    def test_independent_stream_reaches_fetch_width(self):
        result = simulate(independent_trace(6000), warmup=1000)
        assert result.ipc > 6.0  # 8-wide minus startup effects

    def test_serial_chain_limited_to_one_ipc(self):
        result = simulate(chain_trace(4000), warmup=500)
        assert 0.8 < result.ipc <= 1.05

    def test_mul_chain_limited_by_latency(self):
        result = simulate(chain_trace(3000, OpClass.INT_MUL), warmup=500)
        assert result.ipc == pytest.approx(1 / 3, rel=0.15)

    def test_branch_mispredicts_cost_cycles(self):
        import random
        rng = random.Random(9)
        uops = []
        for i in range(6000):
            taken = rng.random() < 0.5
            uops.append(MicroOp(seq=len(uops), pc=0x400, op_class=OpClass.INT_ALU,
                                srcs=(), dst=0, value=i))
            uops.append(MicroOp(seq=len(uops), pc=0x404, op_class=OpClass.BRANCH,
                                srcs=(0,), taken=taken, target=0x400))
        random_branches = simulate(Trace(uops, name="rnd"), warmup=1000)
        biased = [MicroOp(seq=i, pc=0x400 + 4 * (i % 2), op_class=(
            OpClass.BRANCH if i % 2 else OpClass.INT_ALU),
            srcs=(0,) if i % 2 else (), dst=None if i % 2 else 0,
            taken=bool(i % 2), target=0x400, value=0) for i in range(12000)]
        biased_branches = simulate(Trace(biased, name="biased"), warmup=1000)
        assert random_branches.ipc < biased_branches.ipc
        assert random_branches.branch_mispredicts > 500


class TestValuePredictionTiming:
    def test_oracle_breaks_serial_chain(self):
        trace = chain_trace(4000)
        base = simulate(trace, warmup=500)
        oracle = simulate(trace, OraclePredictor(), warmup=500)
        assert oracle.ipc > base.ipc * 2

    def test_lvp_on_constant_chain(self):
        trace = chain_trace(4000, value=99)
        base = simulate(trace, warmup=500)
        lvp = simulate(trace, LastValuePredictor(entries=256,
                                                 confidence=ConfidencePolicy()),
                       warmup=500)
        assert lvp.ipc > base.ipc * 1.5
        assert lvp.accuracy == pytest.approx(1.0)
        assert lvp.coverage > 0.8

    def test_wrong_used_predictions_squash(self):
        """A value stream that traps the confidence counters: saturate on a
        run of constants, then switch."""
        uops = []
        for i in range(6000):
            value = (i // 40) * 1000  # switches every 40 occurrences
            uops.append(MicroOp(seq=2 * i, pc=0x400, op_class=OpClass.INT_ALU,
                                srcs=(), dst=0, value=value))
            uops.append(MicroOp(seq=2 * i + 1, pc=0x404, op_class=OpClass.INT_ALU,
                                srcs=(0,), dst=1, value=i))
        trace = Trace(uops, name="trap")
        lvp = LastValuePredictor(entries=256, confidence=ConfidencePolicy())
        result = simulate(trace, lvp, warmup=1000)
        assert result.vp_squashes > 20

    def test_unused_wrong_prediction_harmless(self):
        """Wrong predictions that no dependent consumed before execution
        must not squash (Section 7.2.1)."""
        uops = []
        for i in range(3000):
            value = (i // 40) * 1000
            # Producer with NO consumers at all.
            uops.append(MicroOp(seq=i, pc=0x400, op_class=OpClass.INT_ALU,
                                srcs=(), dst=5, value=value))
        trace = Trace(uops, name="noconsumer")
        lvp = LastValuePredictor(entries=256, confidence=ConfidencePolicy())
        result = simulate(trace, lvp, warmup=500)
        assert result.vp_squashes == 0

    def test_selective_reissue_cheaper_than_squash(self):
        uops = []
        for i in range(6000):
            value = (i // 40) * 1000
            uops.append(MicroOp(seq=2 * i, pc=0x400, op_class=OpClass.INT_ALU,
                                srcs=(), dst=0, value=value))
            uops.append(MicroOp(seq=2 * i + 1, pc=0x404, op_class=OpClass.INT_ALU,
                                srcs=(0,), dst=1, value=i))
        trace = Trace(uops, name="trap")

        def run(mode):
            cfg = CoreConfig(recovery=mode)
            lvp = LastValuePredictor(entries=256, confidence=ConfidencePolicy())
            return simulate(trace, lvp, config=cfg, warmup=1000)

        squash = run(RecoveryMode.SQUASH_COMMIT)
        reissue = run(RecoveryMode.SELECTIVE_REISSUE)
        assert reissue.ipc >= squash.ipc
        assert reissue.vp_reissues > 0
        assert squash.vp_squashes > 0

    def test_stats_accounting_consistent(self):
        trace = chain_trace(2000, value=5)
        lvp = LastValuePredictor(entries=64, confidence=ConfidencePolicy())
        r = simulate(trace, lvp, warmup=200)
        assert r.vp_used == r.vp_correct_used + r.vp_wrong_used
        assert r.vp_used <= r.vp_predicted <= r.vp_eligible
        assert r.n_uops == 1800


class TestStageTrace:
    def test_stage_ordering_invariants(self):
        trace = chain_trace(500)
        stages = []
        model = CoreModel(CoreConfig(), None)
        model.run(trace, stage_trace=stages)
        for seq, fetch, dispatch, ready, issue, complete, commit in stages:
            assert fetch <= dispatch <= issue <= complete <= commit
            assert dispatch - fetch >= 15  # front-end depth

    def test_commit_monotone(self):
        trace = independent_trace(500)
        stages = []
        CoreModel(CoreConfig(), None).run(trace, stage_trace=stages)
        commits = [s[-1] for s in stages]
        assert commits == sorted(commits)


class TestLoadStoreTiming:
    def _mem_trace(self, n, same_addr=True):
        """A slow producer feeds each store, so a blind load to the same
        address genuinely reads before the store data is ready."""
        uops = []
        for i in range(n):
            addr = 0x1000 if same_addr else 0x1000 + i * 64
            uops.append(MicroOp(seq=3 * i, pc=0x3F8, op_class=OpClass.INT_DIV,
                                srcs=(), dst=1, value=i))
            uops.append(MicroOp(seq=3 * i + 1, pc=0x400, op_class=OpClass.STORE,
                                srcs=(1,), dst=None, mem_addr=addr, value=0))
            uops.append(MicroOp(seq=3 * i + 2, pc=0x404, op_class=OpClass.LOAD,
                                srcs=(), dst=2, mem_addr=addr, value=i))
        return Trace(uops, name="mem")

    def test_store_load_violation_detected_then_learned(self):
        result = simulate(self._mem_trace(2000), warmup=0)
        assert result.mem_violations >= 1
        # Store sets learn the dependence: violations stay rare.
        assert result.mem_violations < 50

    def test_speedup_over_requires_same_workload(self):
        a = simulate(self._mem_trace(100), warmup=0)
        b = simulate(independent_trace(100), warmup=0)
        with pytest.raises(ValueError):
            a.speedup_over(b)
