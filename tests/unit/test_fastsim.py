"""The fast cycle loops are drop-in replacements for the legacy model.

Three implementations of the same scheduler exist: the legacy sequential
``CoreModel._run``, the precompute-driven pure-Python loop
(``fastsim._run_python``) and the optional compiled kernel
(``pipeline/ckernel.py``).  Selection is environment-driven
(``REPRO_FAST_SIM`` / ``REPRO_FAST_KERNEL``), so these tests run the
*same* configuration under every mode and require dataclass-equal
results — the tier-1 complement to the full golden grid, which CI also
replays per mode.  Fallback rules (unsupported predictor families,
pre-warmed branch state) are pinned here too: falling back must be
silent and produce the legacy answer, never a wrong fast one.
"""

import pytest

from repro.experiments.runner import make_predictor
from repro.pipeline import ckernel, fastsim
from repro.pipeline.config import CoreConfig, RecoveryMode
from repro.pipeline.core import CoreModel, simulate
from repro.workloads.catalog import build_trace

_N = 4000
_WARMUP = 1000

#: (workload, predictor name, recovery) triples covering every family the
#: fast paths inline — LVP, stride, 2Δ-stride, VTAGE, oracle, no-VP — and
#: both recovery mechanisms.
_CONFIGS = (
    ("gcc", "vtage", "squash"),
    ("gcc", "vtage", "reissue"),
    ("wupwise", "2dstride", "squash"),
    ("gzip", "stride", "reissue"),
    ("crafty", "lvp", "squash"),
    ("milc", "oracle", "squash"),
    ("h264ref", "none", "squash"),
)

_MODES = ("legacy", "python", "kernel")


def _set_mode(monkeypatch, mode: str) -> None:
    if mode == "legacy":
        monkeypatch.setenv(fastsim.FAST_SIM_ENV, "0")
        monkeypatch.delenv(fastsim.FAST_KERNEL_ENV, raising=False)
    elif mode == "python":
        monkeypatch.delenv(fastsim.FAST_SIM_ENV, raising=False)
        monkeypatch.setenv(fastsim.FAST_KERNEL_ENV, "0")
    else:
        monkeypatch.delenv(fastsim.FAST_SIM_ENV, raising=False)
        monkeypatch.delenv(fastsim.FAST_KERNEL_ENV, raising=False)


def _run(workload: str, predictor_name: str, recovery: str):
    trace = build_trace(workload, _N + _WARMUP)
    predictor = make_predictor(predictor_name, recovery=recovery)
    config = CoreConfig(recovery=RecoveryMode(recovery))
    return simulate(trace, predictor, config=config, warmup=_WARMUP,
                    workload=workload)


@pytest.mark.parametrize("workload,predictor_name,recovery", _CONFIGS)
def test_modes_bit_identical(monkeypatch, workload, predictor_name, recovery):
    """legacy / fast-python / kernel produce dataclass-equal results."""
    results = {}
    for mode in _MODES:
        _set_mode(monkeypatch, mode)
        results[mode] = _run(workload, predictor_name, recovery)
    assert results["python"] == results["legacy"]
    assert results["kernel"] == results["legacy"]


def test_unsupported_predictor_falls_back(monkeypatch):
    """Hybrids are outside the inlined families: try_run declines."""
    monkeypatch.delenv(fastsim.FAST_SIM_ENV, raising=False)
    trace = build_trace("gcc", 2000)
    model = CoreModel(predictor=make_predictor("vtage-2dstride"))
    assert fastsim._classify(model.predictor) is None
    assert fastsim.try_run(model, trace, 0, "gcc") is None


def test_prewarmed_branch_unit_falls_back(monkeypatch):
    """The plane assumes a fresh branch unit; warmed state declines."""
    monkeypatch.delenv(fastsim.FAST_SIM_ENV, raising=False)
    trace = build_trace("gcc", 2000)
    model = CoreModel(predictor=None)
    model.branch_unit.process_scalar(8, 0x400, True, 0x440)
    assert fastsim.try_run(model, trace, 0, "gcc") is None


def test_kernel_mode_reports_selected_path(monkeypatch):
    monkeypatch.setenv(fastsim.FAST_SIM_ENV, "0")
    assert fastsim.kernel_mode() == "off"
    monkeypatch.delenv(fastsim.FAST_SIM_ENV, raising=False)
    monkeypatch.setenv(fastsim.FAST_KERNEL_ENV, "0")
    assert fastsim.kernel_mode() == "python"
    monkeypatch.delenv(fastsim.FAST_KERNEL_ENV, raising=False)
    expected = "c" if ckernel.kernel_available() else "python"
    assert fastsim.kernel_mode() == expected


def test_compiled_kernel_actually_runs(monkeypatch):
    """When a C toolchain exists, the kernel path must not silently fall
    back to Python for a supported config (that would erase the speedup
    this PR exists for)."""
    if not ckernel.kernel_available():
        pytest.skip("no C toolchain: compiled kernel unavailable")
    monkeypatch.delenv(fastsim.FAST_SIM_ENV, raising=False)
    monkeypatch.delenv(fastsim.FAST_KERNEL_ENV, raising=False)
    trace = build_trace("gcc", 3000)
    model = CoreModel(predictor=make_predictor("vtage"))
    from repro.pipeline.precompute import trace_plane, vtage_plane

    plane = trace_plane(trace)
    vplane = vtage_plane(trace, model.predictor)
    result = ckernel.try_run(model, trace, 500, "gcc", fastsim._P_VTAGE,
                             plane, vplane)
    assert result is not None
    assert result.cycles > 0
