"""Unit tests for the workload builder, catalog and invariant injection."""

import pytest

from repro.isa.uop import OpClass
from repro.workloads.builder import TraceBuilder
from repro.workloads.catalog import (
    ALL_WORKLOADS,
    FP_WORKLOADS,
    INT_WORKLOADS,
    WORKLOADS,
    build_trace,
    get_spec,
)
from repro.workloads.invariants import inject_invariants


class TestTraceBuilder:
    def test_stable_pcs_per_label(self):
        b = TraceBuilder("t")
        b.alu("op1", "x", [], 1)
        b.alu("op2", "y", [], 2)
        b.alu("op1", "x", [], 3)
        uops = b.trace.uops
        assert uops[0].pc == uops[2].pc
        assert uops[0].pc != uops[1].pc

    def test_register_dependence_tracking(self):
        b = TraceBuilder("t")
        b.imm("a", "x", 5)
        b.alu("b", "y", ["x"], 6)
        uops = b.trace.uops
        assert uops[1].srcs == (uops[0].dst,)

    def test_fp_registers_offset(self):
        b = TraceBuilder("t")
        b.fadd("f", "acc", [], 1)
        assert b.trace.uops[0].dst >= 32
        assert b.trace.uops[0].dst_is_fp

    def test_alloc_alignment_and_disjointness(self):
        b = TraceBuilder("t")
        r1 = b.alloc(100)
        r2 = b.alloc(100)
        assert r1 % 64 == 0
        assert r2 >= r1 + 100

    def test_call_ret_return_addresses(self):
        b = TraceBuilder("t")
        b.call("site", "fn")
        b.ret("fn_ret")
        call, ret = b.trace.uops
        assert ret.target == call.pc + 4

    def test_values_masked_to_64_bits(self):
        b = TraceBuilder("t")
        b.imm("big", "x", 1 << 100)
        assert b.trace.uops[0].value < (1 << 64)

    def test_store_has_no_dst(self):
        b = TraceBuilder("t")
        b.imm("v", "x", 1)
        b.store("st", 0x1000, "x")
        assert b.trace.uops[1].dst is None
        assert b.trace.uops[1].op_class is OpClass.STORE


class TestInvariantInjection:
    def test_blocks_inserted_at_rate(self):
        b = TraceBuilder("t")
        for i in range(100):
            b.alu(f"op", "x", [], i)
        out = inject_invariants(b.trace, every=10, count=3)
        loads = sum(1 for u in out.uops if u.is_load)
        assert loads == 30  # 10 blocks x 3 loads

    def test_seq_renumbered(self):
        b = TraceBuilder("t")
        for i in range(30):
            b.alu("op", "x", [], i)
        out = inject_invariants(b.trace, every=7, count=2)
        assert [u.seq for u in out.uops] == list(range(len(out)))

    def test_values_stable_across_blocks(self):
        b = TraceBuilder("t")
        for i in range(100):
            b.alu("op", "x", [], i)
        out = inject_invariants(b.trace, every=10, count=2, seed=3)
        load_values = {}
        for u in out.uops:
            if u.is_load:
                load_values.setdefault(u.pc, set()).add(u.value)
        # Every invariant load PC always returns the same value.
        assert all(len(vals) == 1 for vals in load_values.values())

    def test_zero_every_is_identity(self):
        b = TraceBuilder("t")
        b.alu("op", "x", [], 1)
        assert inject_invariants(b.trace, every=0) is b.trace

    def test_rejects_zero_count(self):
        b = TraceBuilder("t")
        with pytest.raises(ValueError):
            inject_invariants(b.trace, every=5, count=0)


class TestCatalog:
    def test_table3_composition(self):
        """Table 3: 12 INT + 7 FP = 19 benchmarks."""
        assert len(WORKLOADS) == 19
        assert len(INT_WORKLOADS) == 12
        assert len(FP_WORKLOADS) == 7

    def test_spec_names_match_table3(self):
        names = {spec.spec_name for spec in WORKLOADS}
        expected = {
            "164.gzip", "168.wupwise", "173.applu", "175.vpr", "179.art",
            "186.crafty", "197.parser", "255.vortex", "401.bzip2", "403.gcc",
            "416.gamess", "429.mcf", "433.milc", "444.namd", "445.gobmk",
            "456.hmmer", "458.sjeng", "464.h264ref", "470.lbm",
        }
        assert names == expected

    def test_get_spec_unknown_raises(self):
        with pytest.raises(KeyError):
            get_spec("nonexistent")

    def test_build_trace_deterministic(self):
        a = build_trace("gzip", 2000, cache=False)
        b = build_trace("gzip", 2000, cache=False)
        assert len(a) == len(b)
        assert all(
            (x.pc, x.value, x.op_class) == (y.pc, y.value, y.op_class)
            for x, y in zip(a.uops, b.uops)
        )

    def test_build_trace_cached(self):
        a = build_trace("gzip", 2000)
        b = build_trace("gzip", 2000)
        assert a is b

    def test_build_trace_length(self):
        trace = build_trace("vpr", 3000, cache=False)
        assert len(trace) >= 3000 * 0.95

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_every_kernel_generates(self, name):
        trace = build_trace(name, 1500, cache=False)
        assert len(trace) >= 1400
        stats = trace.stats()
        assert stats.n_value_producers > 0
        assert stats.n_branches > 0

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_kernel_register_consistency(self, name):
        """Sources must reference registers in the flat 0..63 space."""
        trace = build_trace(name, 1500, cache=False)
        for u in trace.uops:
            for src in u.srcs:
                assert 0 <= src < 64
            if u.dst is not None:
                assert 0 <= u.dst < 64
            if u.is_load or u.is_store:
                assert u.mem_addr is not None
