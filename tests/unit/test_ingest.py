"""Real-trace ingestion: parsing, classification, lowering, store wiring.

The bundled fixtures under ``tests/fixtures/traces/`` are the acceptance
anchor: both must ingest to packed columns, register under a
digest-bearing workload name, round-trip through the catalog (exact,
sliced and tiled lengths), re-ingest bit-identically, and run through
``repro run``'s code path with all three cycle-loop implementations
producing dataclass-equal results.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.isa.uop import OpClass
from repro.pipeline import fastsim
from repro.pipeline.config import CoreConfig, RecoveryMode
from repro.pipeline.core import simulate
from repro.workloads import catalog, ingest
from repro.workloads.store import TraceStore

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "traces"
FIXTURE_LOGS = sorted(FIXTURES.glob("*.log"))


@pytest.fixture()
def store(tmp_path, monkeypatch):
    """A fresh trace store wired up as the process default."""
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
    catalog.clear_trace_cache()
    yield TraceStore(tmp_path / "traces")
    catalog.clear_trace_cache()


# ---------------------------------------------------------------------------
# Line parsing
# ---------------------------------------------------------------------------

def test_parse_cva6_line():
    insn = ingest.parse_line("80000000 00000297 auipc t0,0x0", 1)
    assert insn.addr == 0x80000000
    assert insn.code == 0x297
    assert insn.mnemonic == "auipc"
    assert insn.operands == "t0,0x0"
    assert insn.size == 4


def test_parse_objdump_line_strips_annotations():
    insn = ingest.parse_line(
        "    10074:\t00000297          \tauipc\tt0,0x0 # 10074 <_start>", 7)
    assert insn.addr == 0x10074
    assert insn.mnemonic == "auipc"
    assert insn.operands == "t0,0x0"


def test_compressed_instruction_size():
    insn = ingest.parse_line("80002000 1141 c.addi sp,-16", 1)
    assert insn.size == 2


def test_noise_lines_skipped_not_quarantined():
    text = "\n".join([
        "Disassembly of section .text:",
        "0000000080002000 <crc32>:",
        "",
        "80002000 00000297 auipc t0,0x0",
    ]) + "\n"
    insns, skipped, quarantined = ingest.parse_log(text)
    assert len(insns) == 1
    assert skipped == 2
    assert quarantined == []


def test_malformed_lines_quarantined_with_reason():
    text = (
        "80000000 00000297 auipc t0,0x0\n"
        "not an instruction at all\n"
        "80000008 zzzz nop\n"
        "80000010 00000013\n"          # hex code but no mnemonic
        "8000001 00500113 addi sp"     # truncated final line (no newline)
    )
    insns, _skipped, quarantined = ingest.parse_log(text)
    assert len(insns) == 2             # first and last still parse
    reasons = {line_no: reason for line_no, reason, _ in quarantined}
    assert 2 in reasons and 3 in reasons and 4 in reasons
    assert all(isinstance(r, str) and r for r in reasons.values())


def test_truncated_final_line_flagged():
    text = "80000000 00000297 auipc t0,0x0\n8000000"
    _insns, _skipped, quarantined = ingest.parse_log(text)
    assert len(quarantined) == 1
    assert "truncated" in quarantined[0][1]


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------

def _cls(line):
    return ingest.classify(ingest.parse_line(line, 1))


def test_classify_load_store():
    load = _cls("80000000 00052503 lw a0,0(a1)")
    assert load.op_class is OpClass.LOAD
    assert load.dst == 10 and load.srcs == (11,) and load.mem_size == 4
    store = _cls("80000004 00a5b023 sd a0,0(a1)")
    assert store.op_class is OpClass.STORE
    assert store.dst is None and set(store.srcs) == {10, 11}
    assert store.mem_size == 8
    fload = _cls("80000008 0005b507 fld fa0,0(a1)")
    assert fload.op_class is OpClass.LOAD and fload.dst_is_fp
    assert fload.dst == 32 + 10


def test_classify_control():
    br = _cls("80000000 00b51463 bne a0,a1,80000010")
    assert br.op_class is OpClass.BRANCH
    assert set(br.srcs) == {10, 11}
    assert br.target_hint == 0x80000010
    assert _cls("80000000 00c000ef jal ra,8000000c").op_class is OpClass.CALL
    assert _cls("80000000 00c0006f jal zero,8000000c").op_class is OpClass.JUMP
    assert _cls("80000000 00008067 ret").op_class is OpClass.RET
    assert _cls("80000000 a001 c.j 80000000").op_class is OpClass.JUMP


def test_classify_arithmetic_families():
    assert _cls("80000000 02b50533 mul a0,a0,a1").op_class is OpClass.INT_MUL
    assert _cls("80000000 02b54533 div a0,a0,a1").op_class is OpClass.INT_DIV
    assert _cls("80000000 1ab57553 fdiv.d fa0,fa0,fa1").op_class is OpClass.FP_DIV
    assert _cls("80000000 12b57553 fmul.d fa0,fa0,fa1").op_class is OpClass.FP_MUL
    fadd = _cls("80000000 02b57553 fadd.d fa0,fa0,fa1")
    assert fadd.op_class is OpClass.FP_ADD
    assert fadd.dst == 32 + 10 and fadd.dst_is_fp
    alu = _cls("80000000 00b50533 add a0,a0,a1")
    assert alu.op_class is OpClass.INT_ALU and alu.dst == 10


def test_writes_to_x0_produce_no_destination():
    assert _cls("80000000 00b00033 add zero,zero,a1").dst is None
    assert _cls("80000000 00052003 lw x0,0(a0)").dst is None


def test_nop_class_has_no_registers():
    nop = _cls("80000000 00000013 nop")
    assert nop.op_class is OpClass.NOP
    assert nop.dst is None and nop.srcs == ()


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------

def test_branch_direction_from_next_address():
    text = (
        "80000000 00b51463 bne a0,a1,80000010\n"   # next != fallthrough: taken
        "80000010 00b50533 add a0,a0,a1\n"
        "80000014 00b51463 bne a0,a1,80000010\n"   # next == fallthrough: not
        "80000018 00b50533 add a0,a0,a1\n"
    )
    insns, _, _ = ingest.parse_log(text)
    trace = ingest.lower(insns, seed=1, name="t")
    first, _, second, _ = trace.uops
    assert first.taken and first.target == 0x80000010
    assert not second.taken


def test_lowering_is_deterministic_and_seed_sensitive():
    insns, _, _ = ingest.parse_log(
        "80000000 00052503 lw a0,0(a1)\n" * 8)
    a = ingest.lower(insns, seed=5, name="t").packed()
    b = ingest.lower(insns, seed=5, name="t").packed()
    c = ingest.lower(insns, seed=6, name="t").packed()
    assert np.array_equal(a.arrays["values"], b.arrays["values"])
    assert not np.array_equal(a.arrays["values"], c.arrays["values"])


def test_tile_trace_repeats_with_continuous_seqs():
    insns, _, _ = ingest.parse_log(
        "80000000 00052503 lw a0,0(a1)\n"
        "80000004 00b50533 add a0,a0,a1\n")
    base = ingest.lower(insns, seed=1, name="t")
    tiled = ingest.tile_trace(base, 5)
    assert len(tiled) == 5
    assert [u.seq for u in tiled.uops] == [0, 1, 2, 3, 4]
    assert tiled.uops[2].pc == base.uops[0].pc
    assert tiled.uops[2].value == base.uops[0].value


# ---------------------------------------------------------------------------
# Naming, registry, catalog integration
# ---------------------------------------------------------------------------

def test_ingest_names_cover_source_seed_and_version():
    name_a = ingest.ingest_name("memcpy.log", b"bytes", 1)
    assert ingest.is_ingest_name(name_a)
    assert name_a.startswith("ingest-memcpy-")
    assert ingest.ingest_name("memcpy.log", b"bytes", 2) != name_a
    assert ingest.ingest_name("memcpy.log", b"other", 1) != name_a
    assert ingest.ingest_name("other/dir/memcpy.log", b"bytes", 1) == name_a


def test_non_ingest_names_rejected():
    assert not ingest.is_ingest_name("gcc")
    assert not ingest.is_ingest_name("scenario-c4-e25-l90")
    assert not ingest.is_ingest_name("ingest-foo")          # no digest
    assert not ingest.is_ingest_name("ingest-foo-XYZ")      # bad digest


def test_ingest_registers_and_catalog_resolves(store):
    text = "80000000 00052503 lw a0,0(a1)\n" * 50
    trace, report = ingest.ingest_text(text, "fifty.log", store, seed=3)
    assert report.stored
    assert catalog.known_workload(report.name)
    assert catalog.resolve_seed(report.name) == 3
    entry = json.loads(
        (store.directory / "ingest" / f"{report.name}.json").read_text())
    assert entry["n_uops"] == 50 and entry["seed"] == 3
    rows = store.entries()
    assert [r["provenance"] for r in rows] == ["ingested"]

    exact = catalog.build_trace(report.name, 50)
    assert np.array_equal(exact.packed().arrays["values"],
                          trace.packed().arrays["values"])
    assert len(catalog.build_trace(report.name, 20)) == 20
    tiled = catalog.build_trace(report.name, 120)
    assert len(tiled) == 120
    assert tiled.uops[50].pc == trace.uops[0].pc


def test_unregistered_ingest_name_raises(store):
    fake = ingest.ingest_name("ghost.log", b"never ingested", 1)
    with pytest.raises(ingest.IngestError):
        catalog.build_trace(fake, 100)


def test_ingest_without_store_raises_on_resolve(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
    catalog.clear_trace_cache()
    fake = ingest.ingest_name("nostore.log", b"bytes", 1)
    with pytest.raises(ingest.IngestError, match="REPRO_TRACE_DIR"):
        catalog.build_trace(fake, 100)


def test_empty_log_raises(store):
    with pytest.raises(ingest.IngestError, match="no parseable"):
        ingest.ingest_text("garbage\nmore garbage\n", "bad.log", store)


def test_clear_by_provenance(store):
    text = "80000000 00052503 lw a0,0(a1)\n" * 30
    _, report = ingest.ingest_text(text, "keepme.log", store, seed=1)
    generated = catalog.build_trace("gcc", 500)
    store.put(generated, "gcc", 500, catalog.resolve_seed("gcc"))
    stats = store.stats()
    assert stats["ingested_entries"] == 1
    assert stats["generated_entries"] == 1

    assert store.clear(provenance="generated") == 1
    assert [r["name"] for r in store.entries()] == [report.name]
    assert ingest.registered_names(store) == [report.name]

    assert store.clear(provenance="ingested") == 1
    assert store.entries() == []
    assert ingest.registered_names(store) == []


# ---------------------------------------------------------------------------
# Bundled fixtures: the end-to-end acceptance tests
# ---------------------------------------------------------------------------

def test_two_fixture_logs_are_bundled():
    assert len(FIXTURE_LOGS) >= 2


@pytest.mark.parametrize("log", FIXTURE_LOGS, ids=lambda p: p.stem)
def test_fixture_reingests_bit_identical(log, store, tmp_path):
    trace_a, report_a = ingest.ingest_file(log, store)
    other = TraceStore(tmp_path / "other-store")
    trace_b, report_b = ingest.ingest_file(log, other)
    assert report_a.name == report_b.name
    for col, arr in trace_a.packed().arrays.items():
        assert np.array_equal(arr, trace_b.packed().arrays[col]), col
    loaded = store.get(report_a.name, report_a.n_uops, report_a.seed)
    for col, arr in trace_a.packed().arrays.items():
        assert np.array_equal(arr, loaded.packed().arrays[col]), col


@pytest.mark.parametrize("log", FIXTURE_LOGS, ids=lambda p: p.stem)
def test_fixture_runs_bit_identical_across_implementations(
        log, store, monkeypatch):
    _, report = ingest.ingest_file(log, store)
    results = {}
    for mode in ("legacy", "python", "kernel"):
        if mode == "legacy":
            monkeypatch.setenv(fastsim.FAST_SIM_ENV, "0")
            monkeypatch.setenv(fastsim.FAST_KERNEL_ENV, "0")
        elif mode == "python":
            monkeypatch.setenv(fastsim.FAST_SIM_ENV, "1")
            monkeypatch.setenv(fastsim.FAST_KERNEL_ENV, "0")
        else:
            monkeypatch.setenv(fastsim.FAST_SIM_ENV, "1")
            monkeypatch.setenv(fastsim.FAST_KERNEL_ENV, "1")
        from repro.experiments.runner import make_predictor

        trace = catalog.build_trace(report.name, 3000)
        predictor = make_predictor("vtage")
        results[mode] = simulate(
            trace, predictor,
            config=CoreConfig(recovery=RecoveryMode("squash")),
            warmup=1000, workload=report.name)
    assert results["python"] == results["legacy"]
    assert results["kernel"] == results["legacy"]
    assert results["legacy"].cycles > 0


def test_fixture_ingest_and_run_through_cli(store, capsys):
    """`repro ingest` + `repro run` on the resulting name (the CLI path)."""
    from repro.cli import main

    log = FIXTURE_LOGS[0]
    assert main(["ingest", str(log)]) == 0
    name = capsys.readouterr().out.split(":", 1)[0]
    assert ingest.is_ingest_name(name)
    assert main(["run", name, "--predictor", "lvp",
                 "--uops", "2000", "--warmup", "500"]) == 0
    out = capsys.readouterr().out
    assert name in out and "speedup over no-VP baseline" in out
