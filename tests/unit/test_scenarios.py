"""Parameterised scenario workloads: names, determinism, knob behaviour."""

import pytest

from repro.analysis.metrics import evaluate_predictor
from repro.core.confidence import ConfidencePolicy
from repro.engine.job import SimJob, execute_job
from repro.predictors.lvp import LastValuePredictor
from repro.workloads.catalog import build_trace, known_workload
from repro.workloads.scenarios import (
    ScenarioParams,
    is_scenario_name,
    parse_scenario_name,
    scenario_axis,
)

TINY = {"n_uops": 3000, "warmup": 1500}


class TestNames:
    def test_name_round_trips(self):
        params = ScenarioParams(chase=4, entropy=25, locality=90)
        assert params.name == "scenario-c4-e25-l90"
        assert parse_scenario_name(params.name) == params

    @pytest.mark.parametrize("bad", [
        "scenario-c4-e25",          # missing knob
        "scenario-c4-e25-l90-x1",   # trailing junk
        "scenario-c4-e101-l90",     # entropy out of range
        "gzip",                     # catalog name
        "scenario-c4-e25-l-90",     # malformed number
    ])
    def test_invalid_names_rejected(self, bad):
        assert parse_scenario_name(bad) is None
        assert not is_scenario_name(bad)

    def test_knob_bounds_validated(self):
        with pytest.raises(ValueError):
            ScenarioParams(chase=-1)
        with pytest.raises(ValueError):
            ScenarioParams(locality=101)

    def test_scenario_axis_builds_the_grid(self):
        names = scenario_axis(chase=(1, 8), entropy=(5,), locality=(90, 40))
        assert names == [
            "scenario-c1-e5-l90", "scenario-c1-e5-l40",
            "scenario-c8-e5-l90", "scenario-c8-e5-l40",
        ]
        assert all(known_workload(n) for n in names)

    def test_catalog_accepts_scenario_names(self):
        assert known_workload("scenario-c2-e10-l50")
        assert not known_workload("scenario-c2-e10-l999")


class TestTraces:
    def test_traces_are_deterministic(self):
        name = "scenario-c3-e30-l70"
        a = build_trace(name, 4000, cache=False)
        b = build_trace(name, 4000, cache=False)
        assert len(a) == len(b) == 4000
        assert [u.value for u in a] == [u.value for u in b]
        assert [u.pc for u in a] == [u.pc for u in b]

    def test_seed_changes_the_stream(self):
        name = "scenario-c3-e30-l70"
        a = build_trace(name, 4000, seed=1, cache=False)
        b = build_trace(name, 4000, seed=2, cache=False)
        assert [u.value for u in a] != [u.value for u in b]

    def test_simjob_runs_scenarios_end_to_end(self):
        result = execute_job(SimJob.make("scenario-c2-e10-l80", "lvp", **TINY))
        assert result.workload == "scenario-c2-e10-l80"
        assert result.cycles > 0


class TestKnobs:
    def test_locality_dials_lvp_coverage(self):
        """More value locality -> more last-value coverage."""
        coverages = {}
        for locality in (95, 10):
            trace = build_trace(ScenarioParams(2, 10, locality).name, 12_000)
            stats = evaluate_predictor(
                trace, LastValuePredictor(confidence=ConfidencePolicy()),
                warmup=4000,
            )
            coverages[locality] = stats.coverage
        assert coverages[95] > coverages[10] + 0.05

    def test_chase_depth_dials_ipc_down(self):
        """Deeper dependent-load chains -> lower baseline IPC."""
        ipcs = {
            chase: execute_job(
                SimJob.make(ScenarioParams(chase, 10, 90).name, "none", **TINY)
            ).ipc
            for chase in (1, 12)
        }
        assert ipcs[12] < ipcs[1] * 0.7

    def test_entropy_dials_branch_mispredicts_up(self):
        """More branch entropy -> higher misprediction rate, monotonically
        across the whole knob range (100 is a fair coin, not a
        deterministic inversion)."""
        mpki = {
            entropy: execute_job(
                SimJob.make(ScenarioParams(1, entropy, 90).name, "none", **TINY)
            ).branch_mpki
            for entropy in (0, 50, 100)
        }
        assert mpki[0] < 1.0
        assert mpki[50] > 10.0
        assert mpki[100] >= mpki[50]
