"""Unit tests for self-healing membership: gossip, probation, warming.

In-process shards (real TCP sockets, background threads — the same
harness as ``test_cluster.py``) drive the new planes end to end:

* the ``gossip`` op merges views and answers with epochs;
* router down-marking is probation with exponentially backed-off
  half-open probes, not a death sentence — a revived shard is
  re-admitted automatically, and ``refresh_membership`` grows the ring
  from the gossiped view;
* a restarted shard's journal-persisted epoch supersedes its own death
  notice;
* completed results are warm-pushed to ring successors and folded in
  via the bounded ``seed`` op.
"""

import asyncio
import threading
import time

import pytest

from repro.engine import faults
from repro.engine.client import (
    ServiceClient,
    ServiceError,
    wait_for_service,
)
from repro.engine.cluster import (
    MemberState,
    MembershipView,
    ShardRouter,
    probe_backoff,
)
from repro.engine.job import SimJob
from repro.engine.service import (
    SimService,
    journal_slug,
    resolve_heartbeat_interval,
    resolve_warm_push_budget,
)

SMALL = dict(n_uops=2000, warmup=1000)


@pytest.fixture(autouse=True)
def clean_fault_state():
    faults.reset()
    yield
    faults.install_plan(None, export_env=True)
    faults.reset()


class TcpShard:
    """One in-process cluster shard on a background thread."""

    def __init__(self, **kwargs):
        kwargs.setdefault("listen", "127.0.0.1:0")
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("heartbeat_interval", 0)  # explicit per test
        self.service = SimService(**kwargs)
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.error = None

    def _run(self):
        try:
            asyncio.run(self.service.serve_until_shutdown())
        except BaseException as exc:  # noqa: BLE001 - surfaced on enter
            self.error = exc

    @property
    def address(self):
        return self.service.listen_address

    def __enter__(self):
        self.thread.start()
        while self.service.listen_address is None:
            if self.error is not None:
                raise self.error
            threading.Event().wait(0.02)
        wait_for_service(self.address, timeout=60,
                         token=self.service.token)
        return self

    def __exit__(self, *exc):
        try:
            with ServiceClient(self.address, timeout=10.0,
                               token=self.service.token) as client:
                client.shutdown()
        except ServiceError:
            pass
        self.thread.join(timeout=60)
        assert not self.thread.is_alive(), "shard failed to shut down"


def _wait_for(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out: {message}"
        time.sleep(0.05)


class TestMemberState:
    def test_supersedes_orders_by_version_then_down(self):
        base = MemberState("a", epoch=1, beat=3, status="up")
        assert MemberState("a", 2, 0, "up").supersedes(base)
        assert MemberState("a", 1, 4, "up").supersedes(base)
        assert not MemberState("a", 1, 2, "up").supersedes(base)
        # Same version: down wins, up does not re-win.
        assert MemberState("a", 1, 3, "down").supersedes(base)
        down = MemberState("a", 1, 3, "down")
        assert not MemberState("a", 1, 3, "up").supersedes(down)
        assert base.supersedes(None)

    def test_wire_round_trip_and_junk_rejection(self):
        state = MemberState("tcp://h:1", 2, 5, "down")
        assert MemberState.from_dict(state.to_dict()) == state
        assert MemberState.from_dict({"address": "x", "status": "zombie"}) \
            is None
        assert MemberState.from_dict({"epoch": 1}) is None
        assert MemberState.from_dict("not a dict") is None


class TestMembershipView:
    def test_merge_counts_only_real_changes(self):
        view = MembershipView()
        assert view.observe(MemberState("a", 1, 1, "up"))
        other = MembershipView()
        other.observe(MemberState("a", 1, 2, "up"))
        other.observe(MemberState("b", 1, 0, "up"))
        assert view.merge(other) == 2
        assert view.merge(other) == 0  # idempotent
        assert view.alive() == ["a", "b"]
        assert len(view) == 2

    def test_merge_accepts_wire_dicts_and_none(self):
        view = MembershipView()
        assert view.merge(None) == 0
        assert view.merge({"members": "garbage"}) == 0
        wire = {"members": [MemberState("a", 1, 1, "up").to_dict(),
                            {"bogus": True}]}
        assert view.merge(wire) == 1
        assert view.get("a").epoch == 1


class TestGossipOp:
    def test_gossip_op_merges_and_answers_with_identity(self):
        with TcpShard() as shard:
            with ServiceClient(shard.address) as client:
                claim = MemberState("tcp://10.9.9.9:1", 3, 1, "up")
                response = client.gossip(
                    {"members": [claim.to_dict()]})
        assert response["epoch"] == 1
        assert response["merged"] == 1
        members = {m["address"]: m for m in response["view"]["members"]}
        assert members["tcp://10.9.9.9:1"]["epoch"] == 3
        assert members[shard.address]["status"] == "up"

    def test_gossip_op_refutes_claims_about_the_shard_itself(self):
        with TcpShard() as shard:
            death = MemberState(shard.address, 1, 0, "down")
            with ServiceClient(shard.address) as client:
                response = client.gossip({"members": [death.to_dict()]})
        me = {m["address"]: m for m in response["view"]["members"]}
        assert me[shard.address]["status"] == "up"
        assert (me[shard.address]["epoch"],
                me[shard.address]["beat"]) > (1, 0)

    def test_heartbeat_loop_converges_two_shards(self):
        with TcpShard(heartbeat_interval=0.1) as a:
            with TcpShard(heartbeat_interval=0.1,
                          peers=[a.address]) as b:
                _wait_for(
                    lambda: len(a.service.membership.alive()) == 2
                    and len(b.service.membership.alive()) == 2,
                    message="two-shard gossip convergence")
                assert b.service.gossip_sent >= 1
                assert a.service.membership.get(b.address).epoch == 1


class TestEpochPersistence:
    def test_restart_bumps_the_journaled_epoch(self, tmp_path):
        with TcpShard(journal_dir=tmp_path) as shard:
            address = shard.address
            port = int(address.rsplit(":", 1)[1])
            assert shard.service.epoch == 1
        expected_journal = tmp_path / journal_slug(address)
        assert expected_journal.exists()
        # Same port, same journal: the revival must outrank its corpse.
        with TcpShard(listen=f"127.0.0.1:{port}",
                      journal_dir=tmp_path) as revived:
            assert revived.address == address
            assert revived.service.epoch == 2

    def test_journal_slug_flattens_addresses(self):
        assert journal_slug("tcp://127.0.0.1:7101") == \
            "127.0.0.1-7101.journal"
        assert journal_slug("127.0.0.1:7101") == "127.0.0.1-7101.journal"


class TestProbation:
    def test_probe_backoff_doubles_to_a_cap(self):
        assert [probe_backoff(n) for n in range(4)] == [0.5, 1.0, 2.0, 4.0]
        assert probe_backoff(99) == 30.0

    def test_down_marking_opens_a_probation_record(self):
        router = ShardRouter(["tcp://127.0.0.1:9", "tcp://127.0.0.1:10"])
        router.mark_down("tcp://127.0.0.1:9", "boom")
        assert router.down == {"tcp://127.0.0.1:9": "boom"}
        record = router.probation["tcp://127.0.0.1:9"]
        assert record["failures"] == 0
        assert record["next_probe"] > 0
        router.close()

    def test_failed_probes_back_off_exponentially(self):
        router = ShardRouter(["tcp://127.0.0.1:9", "tcp://127.0.0.1:10"],
                             probe_base=0.01, probe_timeout=0.2)
        router.mark_down("tcp://127.0.0.1:9", "boom")
        before = router.probation["tcp://127.0.0.1:9"]["next_probe"]
        assert router.maybe_probe(force=True) == []  # nothing listens there
        record = router.probation["tcp://127.0.0.1:9"]
        assert record["failures"] == 1
        assert record["next_probe"] > before
        assert router.stats["probes"] == 1
        router.close()

    def test_revived_shard_is_readmitted_by_a_probe(self):
        with TcpShard() as a, TcpShard() as b:
            router = ShardRouter([a.address, b.address], probe_base=0.01)
            router.mark_down(a.address, "injected outage")
            assert router.alive_shards() == [b.address]
            _wait_for(lambda: router.maybe_probe() == [a.address],
                      message="probation probe re-admission")
            assert router.down == {}
            assert router.stats["readmissions"] == 1
            assert sorted(router.alive_shards()) == \
                sorted([a.address, b.address])
            router.close()

    def test_flapping_shard_earns_longer_probation(self):
        with TcpShard() as a, TcpShard() as b:
            router = ShardRouter([a.address, b.address], probe_base=0.01)
            router.mark_down(a.address, "flap 1")
            first = router.probation[a.address]["next_probe"] \
                - time.monotonic()
            router.readmit(a.address)
            router.mark_down(a.address, "flap 2")
            second = router.probation[a.address]["next_probe"] \
                - time.monotonic()
            # Hysteresis: the second sentence is measurably longer.
            assert second > first
            router.close()


class TestRouterMembership:
    def test_refresh_membership_grows_the_ring_from_gossip(self):
        with TcpShard(heartbeat_interval=0.1) as a:
            with TcpShard(heartbeat_interval=0.1,
                          peers=[a.address]) as b:
                _wait_for(lambda: len(a.service.membership.alive()) == 2,
                          message="shards converge before the router looks")
                # The router only knows shard A; the gossiped view
                # teaches it B without any restart or reconfiguration.
                router = ShardRouter([a.address])
                view = router.refresh_membership()
                assert sorted(view.alive()) == sorted([a.address,
                                                       b.address])
                assert b.address in router.ring.shards
                assert router.stats["joined_shards"] == 1
                assert router.stats["gossip_merges"] >= 1
                router.close()

    def test_status_carries_the_membership_view(self):
        with TcpShard() as shard:
            router = ShardRouter([shard.address])
            router.refresh_membership()
            status = router.status()
            router.close()
        members = status["membership"]["members"]
        assert any(m["address"] == shard.address and m["status"] == "up"
                   for m in members)


class TestWarmPush:
    def test_completions_are_pushed_to_the_ring_successor(self):
        jobs = [SimJob.make(w, "lvp", **SMALL)
                for w in ("gzip", "gcc", "crafty", "mcf")]
        with TcpShard(heartbeat_interval=0.1) as a:
            with TcpShard(heartbeat_interval=0.1,
                          peers=[a.address]) as b:
                _wait_for(lambda: len(b.service.membership.alive()) == 2,
                          message="fleet convergence before warming")
                with ServiceClient(b.address) as client:
                    client.run_jobs(jobs)

                # Warming fails open: a push that blows the short peer
                # deadline (easy on a loaded machine) drops its entries
                # and never retries, so feed a fresh completion to
                # re-arm the push loop instead of waiting on one that
                # will never come.
                spare_uops = iter(range(SMALL["n_uops"] + 1,
                                        SMALL["n_uops"] + 50))

                def delivered():
                    if a.service.warm_seeded >= 1:
                        return True
                    if b.service.warm_push_failures > 0 and \
                            not b.service._warm_buffer:
                        with ServiceClient(b.address) as retry:
                            retry.run_jobs([SimJob.make(
                                "gzip", "lvp", n_uops=next(spare_uops),
                                warmup=SMALL["warmup"])])
                    return False

                _wait_for(delivered,
                          message="warm push delivery to the successor")
                assert b.service.warm_pushed >= 1
                if b.service.warm_push_failures == 0:
                    # Clean run: every key B owns sits warm in A's
                    # cache, served without re-simulation (peek only,
                    # so hits would be cheap).
                    for job in jobs:
                        key = job.content_key()
                        prefs = b.service._cluster_ring().preference(key)
                        if prefs and prefs[0] != b.address:
                            continue  # not B's to push
                        assert a.service.cache.peek(key) is not None

    def test_zero_budget_disables_warming(self):
        with TcpShard(warm_push_budget=0) as shard:
            with ServiceClient(shard.address) as client:
                client.run_jobs([SimJob.make("gzip", "lvp", **SMALL)])
                time.sleep(0.2)
        assert shard.service.warm_pushed == 0
        assert len(shard.service._warm_buffer) == 0


class TestSeedOp:
    def test_seed_folds_entries_and_existing_wins(self):
        job = SimJob.make("gzip", "lvp", **SMALL)
        with TcpShard() as source, TcpShard() as sink:
            with ServiceClient(source.address) as client:
                [result] = client.run_jobs([job])
            with ServiceClient(sink.address) as client:
                seeded = client.seed(
                    {job.content_key(): result.to_dict()})
                assert seeded == 1
                again = client.seed(
                    {job.content_key(): result.to_dict()})
                assert again == 1  # setdefault: accepted, not clobbered
                [served] = client.run_jobs([job])
        assert served == result
        assert sink.service.warm_seeded == 2

    def test_seed_rejects_junk_and_width_abuse(self):
        from repro.engine.service import MAX_SEED_ENTRIES

        with TcpShard() as shard:
            with ServiceClient(shard.address) as client:
                with pytest.raises(ServiceError, match="entries"):
                    client.request({"op": "seed", "entries": "nope"})
                too_wide = {f"k{i}": {} for i in range(MAX_SEED_ENTRIES + 1)}
                with pytest.raises(ServiceError, match="bound"):
                    client.request({"op": "seed", "entries": too_wide})
                # Malformed payloads are skipped, not fatal.
                assert client.seed({"k": {"not": "a result"}}) == 0


class TestKnobResolution:
    def test_heartbeat_interval_resolution(self, monkeypatch):
        assert resolve_heartbeat_interval(2.5) == 2.5
        assert resolve_heartbeat_interval(-1) == 0.0
        monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "0.5")
        assert resolve_heartbeat_interval() == 0.5
        monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "junk")
        assert resolve_heartbeat_interval() == 1.0
        monkeypatch.delenv("REPRO_HEARTBEAT_INTERVAL")
        assert resolve_heartbeat_interval() == 1.0

    def test_warm_push_budget_resolution(self, monkeypatch):
        assert resolve_warm_push_budget(64) == 64
        assert resolve_warm_push_budget(-5) == 0
        monkeypatch.setenv("REPRO_WARM_PUSH_BUDGET", "2048")
        assert resolve_warm_push_budget() == 2048
        monkeypatch.delenv("REPRO_WARM_PUSH_BUDGET")
        assert resolve_warm_push_budget() == 1024 * 1024
