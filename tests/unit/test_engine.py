"""The experiment engine: job keys, executors, caching, batch API."""

import dataclasses
import json

import pytest

from repro.engine import job as job_mod
from repro.engine.api import Engine, configure_default_engine, reset_default_engine
from repro.engine.cache import ResultCache
from repro.engine.executors import (
    PoolExecutor,
    SerialExecutor,
    make_executor,
    resolve_jobs,
)
from repro.engine.job import SimJob, execute_job
from repro.pipeline.config import CoreConfig, RecoveryMode

TINY = dict(n_uops=1500, warmup=800)


@pytest.fixture(autouse=True)
def _isolated_default_engine():
    """Keep the process-wide default engine out of these tests' way."""
    reset_default_engine()
    yield
    reset_default_engine()


def small_grid() -> list[SimJob]:
    return [
        SimJob.make(w, p, **TINY)
        for w in ("gzip", "crafty")
        for p in ("none", "lvp", "vtage")
    ]


# ---------------------------------------------------------------------------
# Job specs and content keys.
# ---------------------------------------------------------------------------

class TestSimJob:
    def test_content_key_is_deterministic(self):
        a = SimJob.make("gzip", "vtage", **TINY)
        b = SimJob.make("gzip", "vtage", **TINY)
        assert a == b
        assert a.content_key() == b.content_key()

    def test_every_knob_changes_the_key(self):
        base = SimJob.make("gzip", "vtage", **TINY)
        variants = [
            SimJob.make("crafty", "vtage", **TINY),
            SimJob.make("gzip", "lvp", **TINY),
            SimJob.make("gzip", "vtage", fpc=False, **TINY),
            SimJob.make("gzip", "vtage", recovery="reissue", **TINY),
            SimJob.make("gzip", "vtage", entries=4096, **TINY),
            SimJob.make("gzip", "vtage", n_uops=2000, warmup=TINY["warmup"]),
            SimJob.make("gzip", "vtage", n_uops=TINY["n_uops"], warmup=900),
            SimJob.make("gzip", "vtage", seed=7, **TINY),
            SimJob.make("gzip", "vtage", config=CoreConfig(issue_width=4), **TINY),
        ]
        keys = {base.content_key()} | {v.content_key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_config_serialisation_round_trips(self):
        config = CoreConfig(issue_width=4, rob_entries=128,
                            recovery=RecoveryMode.SELECTIVE_REISSUE,
                            vp_write_ports=4)
        job = SimJob.make("gzip", "lvp", config=config, **TINY)
        assert job.core_config() == config
        assert SimJob.from_dict(json.loads(job.canonical_json())) == job

    def test_default_config_follows_recovery(self):
        squash = SimJob.make("gzip", "lvp", recovery="squash", **TINY)
        reissue = SimJob.make("gzip", "lvp", recovery="reissue", **TINY)
        assert squash.core_config().recovery is RecoveryMode.SQUASH_COMMIT
        assert reissue.core_config().recovery is RecoveryMode.SELECTIVE_REISSUE

    def test_config_content_key_tracks_every_field(self):
        default_key = CoreConfig().content_key()
        assert CoreConfig().content_key() == default_key
        assert CoreConfig(fetch_width=4).content_key() != default_key
        assert CoreConfig(vp_scope="loads").content_key() != default_key

    def test_jobs_are_hashable(self):
        assert len({SimJob.make("gzip", "lvp", **TINY),
                    SimJob.make("gzip", "lvp", **TINY)}) == 1


# ---------------------------------------------------------------------------
# Executors.
# ---------------------------------------------------------------------------

class TestExecutors:
    def test_resolve_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        assert resolve_jobs(2) == 2  # explicit beats env
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert resolve_jobs() == 1

    def test_make_executor_picks_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert isinstance(make_executor(), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(4), PoolExecutor)

    @pytest.mark.parametrize("make_pool", [
        lambda: SerialExecutor(),
        lambda: PoolExecutor(2),
    ], ids=["serial", "pool"])
    def test_executors_match_direct_execution(self, make_pool):
        jobs = [SimJob.make("gzip", "lvp", **TINY)]
        direct = execute_job(jobs[0])
        [via_executor] = make_pool().run(jobs)
        assert via_executor == direct

    def test_serial_and_pool_are_bit_identical_on_a_grid(self):
        """The tentpole guarantee: backend choice never changes results."""
        jobs = small_grid()
        serial = SerialExecutor().run(jobs)
        pooled = PoolExecutor(2).run(jobs)
        assert len(serial) == len(pooled) == len(jobs)
        for job, s, p in zip(jobs, serial, pooled):
            assert s.to_dict() == p.to_dict(), job.label()

    def test_pool_rejects_single_worker(self):
        with pytest.raises(ValueError):
            PoolExecutor(1)

    def test_pool_empty_batch(self):
        assert PoolExecutor(2).run([]) == []


# ---------------------------------------------------------------------------
# Caching.
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_memory_roundtrip_and_counters(self):
        cache = ResultCache()
        job = SimJob.make("gzip", "lvp", **TINY)
        assert cache.get(job) is None
        result = execute_job(job)
        cache.put(job, result)
        assert cache.get(job) == result
        assert cache.misses == 1 and cache.memory_hits == 1

    def test_disk_persistence_across_instances(self, tmp_path):
        job = SimJob.make("gzip", "lvp", **TINY)
        result = execute_job(job)
        ResultCache(tmp_path).put(job, result)

        fresh = ResultCache(tmp_path)
        assert fresh.get(job) == result
        assert fresh.disk_hits == 1
        assert len(fresh.disk_entries()) == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        job = SimJob.make("gzip", "lvp", **TINY)
        cache = ResultCache(tmp_path)
        cache.put(job, execute_job(job))
        [entry] = cache.disk_entries()
        entry.write_text("{ not json")
        assert ResultCache(tmp_path).get(job) is None

    def test_clear_removes_disk_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = SimJob.make("gzip", "lvp", **TINY)
        cache.put(job, execute_job(job))
        assert cache.clear() == 1
        assert cache.disk_entries() == []
        assert cache.get(job) is None


# ---------------------------------------------------------------------------
# The engine: batches, deduplication, warm-cache short-circuit.
# ---------------------------------------------------------------------------

class TestEngine:
    def test_run_jobs_preserves_order(self):
        jobs = small_grid()
        results = Engine(SerialExecutor(), ResultCache()).run_jobs(jobs)
        for job, result in zip(jobs, results):
            assert result.workload == job.workload

    def test_in_batch_duplicates_simulate_once(self):
        job = SimJob.make("gzip", "lvp", **TINY)
        job_mod.reset_run_count()
        results = Engine(SerialExecutor(), ResultCache()).run_jobs([job] * 4)
        assert job_mod.run_count() == 1
        assert all(r == results[0] for r in results)

    def test_warm_disk_cache_short_circuits_resimulation(self, tmp_path):
        """Acceptance criterion: a second warm-cache invocation of the same
        grid performs zero new simulations and returns identical results."""
        jobs = small_grid()

        job_mod.reset_run_count()
        cold = Engine(SerialExecutor(), ResultCache(tmp_path)).run_jobs(jobs)
        assert job_mod.run_count() == len(jobs)

        job_mod.reset_run_count()
        warm_engine = Engine(SerialExecutor(), ResultCache(tmp_path))
        warm = warm_engine.run_jobs(jobs)
        assert job_mod.run_count() == 0, "warm cache must not re-simulate"
        assert [r.to_dict() for r in warm] == [r.to_dict() for r in cold]
        assert warm_engine.cache.disk_hits == len(jobs)

    def test_engine_with_pool_executor_matches_serial_engine(self):
        jobs = small_grid()
        serial = Engine(SerialExecutor(), ResultCache()).run_jobs(jobs)
        pooled = Engine(PoolExecutor(2), ResultCache()).run_jobs(jobs)
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in pooled]

    def test_run_grid_keys(self):
        engine = Engine(SerialExecutor(), ResultCache())
        grid = engine.run_grid(("lvp", "vtage"), ("gzip",), **TINY)
        assert set(grid) == {("lvp", "gzip"), ("vtage", "gzip")}
        assert grid[("lvp", "gzip")].predictor != ""

    def test_configure_default_engine(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        engine = configure_default_engine(jobs=2, cache_dir=str(tmp_path))
        assert isinstance(engine.executor, PoolExecutor)
        assert engine.cache.directory == tmp_path
        memory_only = configure_default_engine(jobs=1, cache_dir="")
        assert isinstance(memory_only.executor, SerialExecutor)
        assert memory_only.cache.directory is None


# ---------------------------------------------------------------------------
# The baseline-cache fix: config is part of the key.
# ---------------------------------------------------------------------------

class TestBaselineConfigKey:
    def test_custom_config_gets_its_own_baseline(self):
        from repro.experiments.runner import baseline_job, baseline_result

        default_job = baseline_job("gzip", **TINY)
        narrow_cfg = CoreConfig(issue_width=2, fetch_width=2)
        narrow_job = baseline_job("gzip", TINY["n_uops"], TINY["warmup"],
                                  config=narrow_cfg)
        assert default_job.content_key() != narrow_job.content_key()

        engine = Engine(SerialExecutor(), ResultCache())
        default_base = baseline_result("gzip", **TINY, engine=engine)
        narrow_base = baseline_result("gzip", **TINY, config=narrow_cfg,
                                      engine=engine)
        # A 2-wide core is materially slower; before the fix both lookups
        # returned the same (default-config) result.
        assert narrow_base.cycles > default_base.cycles
        assert narrow_base.ipc < default_base.ipc

    def test_recovery_is_normalised_for_baselines(self):
        from repro.experiments.runner import baseline_job

        squash = baseline_job("gzip", **TINY,
                              config=CoreConfig(recovery=RecoveryMode.SQUASH_COMMIT))
        reissue = baseline_job("gzip", **TINY,
                               config=CoreConfig(recovery=RecoveryMode.SELECTIVE_REISSUE))
        assert squash.content_key() == reissue.content_key()


# ---------------------------------------------------------------------------
# CoreConfig serialisation (the engine's config transport).
# ---------------------------------------------------------------------------

class TestCoreConfigSerialisation:
    def test_round_trip_every_field(self):
        config = CoreConfig(fetch_width=4, rob_entries=64, vp_write_ports=2,
                            vp_scope="loads",
                            recovery=RecoveryMode.SELECTIVE_REISSUE)
        restored = CoreConfig.from_dict(json.loads(config.canonical_json()))
        for f in dataclasses.fields(CoreConfig):
            assert getattr(restored, f.name) == getattr(config, f.name), f.name

    def test_content_key_ignores_dict_ordering(self):
        a = CoreConfig()
        b = CoreConfig()
        b.fu = dict(reversed(list(b.fu.items())))
        assert a.content_key() == b.content_key()
