"""SimResult serialisation: to_dict/from_dict must be lossless.

The experiment engine persists results as JSON and ships them across
process boundaries as dicts, so every field — present and future — has to
survive the round trip.  The tests iterate ``dataclasses.fields`` instead
of naming fields so a newly added field cannot silently dodge coverage.
"""

import dataclasses
import json

from repro.pipeline.result import SimResult


def _fully_populated_result() -> SimResult:
    """A SimResult with a distinct, non-default value in every field."""
    kwargs = {}
    for i, f in enumerate(dataclasses.fields(SimResult)):
        if f.type in ("int", int):
            kwargs[f.name] = 1000 + i
        elif f.type in ("str", str):
            kwargs[f.name] = f"value-{f.name}"
        elif f.name == "extra":
            kwargs[f.name] = {"note": "ablation", "ports": 4}
        else:  # pragma: no cover - fails loudly on new field kinds
            raise AssertionError(f"unhandled field type {f.type!r} for {f.name}")
    return SimResult(**kwargs)


class TestRoundTrip:
    def test_every_field_round_trips(self):
        original = _fully_populated_result()
        restored = SimResult.from_dict(original.to_dict())
        for f in dataclasses.fields(SimResult):
            assert getattr(restored, f.name) == getattr(original, f.name), f.name
        assert restored == original

    def test_round_trips_through_json(self):
        original = _fully_populated_result()
        restored = SimResult.from_dict(json.loads(json.dumps(original.to_dict())))
        assert restored == original

    def test_default_result_round_trips(self):
        original = SimResult()
        assert SimResult.from_dict(original.to_dict()) == original

    def test_to_dict_covers_every_field(self):
        data = _fully_populated_result().to_dict()
        assert set(data) == {f.name for f in dataclasses.fields(SimResult)}

    def test_extra_dict_is_copied(self):
        original = _fully_populated_result()
        data = original.to_dict()
        data["extra"]["mutated"] = True
        assert "mutated" not in original.extra
        restored = SimResult.from_dict(data)
        restored.extra["other"] = 1
        assert "other" not in data["extra"]

    def test_derived_metrics_survive(self):
        original = SimResult(workload="gzip", predictor="lvp", n_uops=1000,
                             cycles=500, vp_eligible=100, vp_used=50,
                             vp_correct_used=45)
        restored = SimResult.from_dict(original.to_dict())
        assert restored.ipc == original.ipc
        assert restored.coverage == original.coverage
        assert restored.accuracy == original.accuracy
