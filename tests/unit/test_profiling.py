"""Per-phase profiling accounting and the ``--profile`` CLI flag."""

import pytest

from repro.cli import main as cli_main
from repro.util import profiling
from repro.workloads import catalog


@pytest.fixture(autouse=True)
def profiling_off():
    yield
    profiling.disable()


class TestPhaseAccounting:
    def test_disabled_records_nothing(self):
        profiling.disable()
        with profiling.phase("x"):
            pass
        profiling.enable()          # reset + enable
        assert profiling.snapshot() == {}

    def test_phases_accumulate_seconds_and_calls(self):
        profiling.enable()
        for _ in range(3):
            with profiling.phase("work"):
                pass
        snap = profiling.snapshot()
        assert snap["work"]["calls"] == 3
        assert snap["work"]["seconds"] >= 0.0

    def test_build_trace_records_build_and_columnize(self):
        catalog.clear_trace_cache()
        profiling.enable()
        catalog.build_trace("gzip", 1000)
        snap = profiling.snapshot()
        assert snap["trace-build"]["calls"] == 1
        assert snap["trace-columnize"]["calls"] == 1
        catalog.build_trace("gzip", 1000)  # cache hit: no new phases
        assert profiling.snapshot()["trace-build"]["calls"] == 1
        catalog.clear_trace_cache()

    def test_format_report_orders_by_time(self):
        profiling.enable()
        profiling.add("slow", 2.0)
        profiling.add("fast", 0.5)
        report = profiling.format_report()
        assert report.index("slow") < report.index("fast")

    def test_empty_report_is_graceful(self):
        profiling.enable()
        assert "no phases" in profiling.format_report()


class TestProfileFlag:
    def test_run_profile_prints_phases(self, capsys):
        assert cli_main(["run", "gzip", "--predictor", "none",
                         "--uops", "1000", "--warmup", "200",
                         "--profile"]) == 0
        err = capsys.readouterr().err
        assert "profile (wall-clock per phase" in err
        assert "simulate" in err

    def test_campaign_run_profile_prints_phases(self, capsys, tmp_path):
        assert cli_main(["campaign", "run", "fig4",
                         "--workloads", "gzip", "--uops", "800",
                         "--warmup", "200", "--profile"]) == 0
        err = capsys.readouterr().err
        assert "profile (wall-clock per phase" in err
        assert "simulate" in err
