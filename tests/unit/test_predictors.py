"""Unit tests for the classical value predictors."""

import pytest

from repro.core.confidence import ConfidencePolicy
from repro.predictors import (
    DifferentialFCMPredictor,
    FCMPredictor,
    LastValuePredictor,
    OraclePredictor,
    PerPathStridePredictor,
    StridePredictor,
    TwoDeltaStridePredictor,
)
from repro.predictors.base import PredictionContext


def drive(predictor, key, values, ctx=None):
    """Feed a value stream through lookup/speculate/train; report stats."""
    ctx = ctx if ctx is not None else PredictionContext()
    used = correct_used = raw_correct = 0
    for value in values:
        pred = predictor.lookup(key, ctx)
        if pred is not None:
            predictor.speculate(key, pred)
            if pred.value == value:
                raw_correct += 1
            if pred.confident:
                used += 1
                if pred.value == value:
                    correct_used += 1
        predictor.train(key, value, pred)
    return used, correct_used, raw_correct


class TestLVP:
    def test_learns_constant(self):
        lvp = LastValuePredictor(entries=64, confidence=ConfidencePolicy())
        used, correct, __ = drive(lvp, 0x40, [99] * 50)
        assert used > 30 and correct == used

    def test_never_confident_on_random_stream(self):
        lvp = LastValuePredictor(entries=64, confidence=ConfidencePolicy())
        used, __, __ = drive(lvp, 0x40, list(range(100)))
        assert used == 0

    def test_allocation_on_first_sight(self):
        lvp = LastValuePredictor(entries=64)
        ctx = PredictionContext()
        assert lvp.lookup(0x44, ctx) is None
        lvp.train(0x44, 7, None)
        pred = lvp.lookup(0x44, ctx)
        assert pred is not None and pred.value == 7

    def test_distinct_keys_do_not_false_hit(self):
        lvp = LastValuePredictor(entries=8)
        ctx = PredictionContext()
        for key in range(100):
            lvp.train(key, key, None)
        # Full tags: a lookup either misses or returns its own training.
        for key in range(100):
            pred = lvp.lookup(key, ctx)
            assert pred is None or pred.value == key

    def test_storage_matches_table1(self):
        lvp = LastValuePredictor(entries=8192)
        assert lvp.storage_kb() == pytest.approx(120.8, abs=0.05)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            LastValuePredictor(entries=100)


class TestStride:
    def test_learns_arithmetic_sequence(self):
        stride = StridePredictor(entries=64, confidence=ConfidencePolicy())
        used, correct, __ = drive(stride, 0x80, list(range(0, 500, 5)))
        assert used > 60 and correct == used

    def test_2delta_filters_one_off_jump(self):
        """After a single discontinuity, 2-delta keeps the old stride: only
        the jump itself mispredicts, everything after is correct again."""
        td = TwoDeltaStridePredictor(entries=64)
        seq = [0, 5, 10, 15, 100, 105, 110, 115]
        __, __, raw = drive(td, 0x80, seq)
        # Correct raw predictions: 15 (trained), then 105/110/115 right
        # after the jump because the predicting stride never latched 85.
        assert raw >= 4

    def test_plain_stride_mispredicts_twice_after_jump(self):
        plain = StridePredictor(entries=64)
        td = TwoDeltaStridePredictor(entries=64)
        seq = [0, 5, 10, 15, 20, 120, 125, 130, 135]
        __, __, raw_plain = drive(plain, 0x80, seq)
        __, __, raw_td = drive(td, 0x80, seq)
        assert raw_td >= raw_plain

    def test_speculative_chaining_in_flight(self):
        """Two in-flight occurrences: the second chains off the first's
        prediction (Section 3.2)."""
        stride = TwoDeltaStridePredictor(entries=64, confidence=ConfidencePolicy())
        ctx = PredictionContext()
        # Train: 10, 20, 30... until confident.
        preds = []
        for value in range(10, 200, 10):
            pred = stride.lookup(0x80, ctx)
            stride.speculate(0x80, pred)
            stride.train(0x80, value, pred)
        # Now two lookups WITHOUT intervening training.
        p1 = stride.lookup(0x80, ctx)
        stride.speculate(0x80, p1)
        p2 = stride.lookup(0x80, ctx)
        stride.speculate(0x80, p2)
        assert p2.value == p1.value + 10

    def test_squash_clears_speculative_state(self):
        stride = TwoDeltaStridePredictor(entries=64)
        ctx = PredictionContext()
        for value in range(10, 100, 10):
            pred = stride.lookup(0x80, ctx)
            stride.speculate(0x80, pred)
            stride.train(0x80, value, pred)
        p1 = stride.lookup(0x80, ctx)
        stride.speculate(0x80, p1)
        stride.on_squash()
        p2 = stride.lookup(0x80, ctx)
        # After the squash p2 re-predicts from committed state, like p1.
        assert p2.value == p1.value

    def test_storage_matches_table1(self):
        td = TwoDeltaStridePredictor(entries=8192)
        assert td.storage_kb() == pytest.approx(251.9, abs=0.05)


class TestPerPathStride:
    def test_distinguishes_paths(self):
        ps = PerPathStridePredictor(entries=256, confidence=ConfidencePolicy())
        ctx_a = PredictionContext(ghist=0b0000, ghist_length=4)
        ctx_b = PredictionContext(ghist=0b1111, ghist_length=4)
        # Path A sees a constant 5; path B a constant 900.
        for _ in range(30):
            pred = ps.lookup(0x99, ctx_a)
            ps.train(0x99, 5, pred)
            pred = ps.lookup(0x99, ctx_b)
            ps.train(0x99, 900, pred)
        assert ps.lookup(0x99, ctx_a).value == 5
        assert ps.lookup(0x99, ctx_b).value == 900


class TestFCM:
    def test_learns_periodic_pattern(self):
        fcm = FCMPredictor(entries=256, order=4, confidence=ConfidencePolicy())
        pattern = [3, 1, 4, 1, 5, 9, 2, 6]
        used, correct, raw = drive(fcm, 0xA0, pattern * 40)
        assert raw > 200  # predicts the cycle once learned
        assert used > 0 and correct == used

    def test_lvp_cannot_learn_that_pattern(self):
        lvp = LastValuePredictor(entries=256, confidence=ConfidencePolicy())
        pattern = [3, 1, 4, 1, 5, 9, 2, 6]
        used, __, __ = drive(lvp, 0xA0, pattern * 40)
        assert used == 0

    def test_vpt_hysteresis_resists_single_flip(self):
        fcm = FCMPredictor(entries=256, order=4, confidence=ConfidencePolicy())
        pattern = [3, 1, 4, 1, 5, 9, 2, 6]
        drive(fcm, 0xA0, pattern * 30)
        # One corrupted cycle, then the pattern resumes.
        drive(fcm, 0xA0, [7, 7, 7, 7, 7, 7, 7, 7])
        __, __, raw = drive(fcm, 0xA0, pattern * 10)
        assert raw > 40

    def test_storage_matches_table1(self):
        fcm = FCMPredictor(entries=8192, order=4)
        total = fcm.storage_kb()
        assert total == pytest.approx(120.8 + 67.6, abs=0.1)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            FCMPredictor(order=0)


class TestDFCM:
    def test_learns_stride_pattern_compactly(self):
        """D-FCM stores strides: an arithmetic sequence is one pattern."""
        dfcm = DifferentialFCMPredictor(entries=256, order=4,
                                        confidence=ConfidencePolicy())
        used, correct, raw = drive(dfcm, 0xB0, list(range(0, 3000, 7)))
        assert raw > 350
        assert correct == used

    def test_learns_repeating_stride_pattern(self):
        dfcm = DifferentialFCMPredictor(entries=256, order=4,
                                        confidence=ConfidencePolicy())
        values = [0]
        for __ in range(100):
            for delta in (3, 3, 10):
                values.append(values[-1] + delta)
        __, __, raw = drive(dfcm, 0xB0, values)
        assert raw > 200


class TestOracle:
    def test_always_correct(self):
        oracle = OraclePredictor()
        ctx = PredictionContext()
        for value in (0, 5, 123456, (1 << 63)):
            oracle.set_actual(value)
            pred = oracle.lookup(0xC0, ctx)
            assert pred.confident and pred.value == value

    def test_no_storage(self):
        assert OraclePredictor().storage_bits() == 0
