"""Unit tests for the Galois LFSR behind FPC."""

import pytest

from repro.util.lfsr import GaloisLFSR


class TestGaloisLFSR:
    def test_never_zero(self):
        lfsr = GaloisLFSR(width=8, seed=1)
        for _ in range(300):
            assert lfsr.step() != 0

    def test_zero_seed_promoted(self):
        lfsr = GaloisLFSR(width=16, seed=0)
        assert lfsr.state == 1

    def test_deterministic_for_seed(self):
        a = GaloisLFSR(seed=0xBEEF)
        b = GaloisLFSR(seed=0xBEEF)
        assert [a.step() for _ in range(100)] == [b.step() for _ in range(100)]

    def test_maximal_period_8bit(self):
        lfsr = GaloisLFSR(width=8, seed=1)
        seen = set()
        for _ in range((1 << 8) - 1):
            seen.add(lfsr.step())
        assert len(seen) == (1 << 8) - 1

    def test_maximal_period_16bit(self):
        lfsr = GaloisLFSR(width=16, seed=0xACE1)
        start = lfsr.state
        period = 0
        while True:
            lfsr.step()
            period += 1
            if lfsr.state == start:
                break
        assert period == (1 << 16) - 1

    def test_rejects_unknown_width(self):
        with pytest.raises(ValueError):
            GaloisLFSR(width=7)

    def test_chance_probability_zero_always_true(self):
        lfsr = GaloisLFSR()
        assert all(lfsr.chance(0) for _ in range(50))

    def test_chance_probability_rate(self):
        lfsr = GaloisLFSR(seed=0x1357)
        hits = sum(lfsr.chance(4) for _ in range(1 << 16))
        rate = hits / (1 << 16)
        assert 0.04 < rate < 0.09  # nominal 1/16 = 0.0625

    def test_chance_rejects_negative(self):
        with pytest.raises(ValueError):
            GaloisLFSR().chance(-1)

    def test_next_bits_range(self):
        lfsr = GaloisLFSR()
        for _ in range(100):
            assert 0 <= lfsr.next_bits(5) < 32
