"""Unit tests for the service core: WorkerPool + asyncio JobQueue.

Small job slices keep these fast; the full daemon (socket protocol,
concurrent clients, CLI verbs) is covered by
``tests/integration/test_service.py``.
"""

import asyncio
import os
import signal
import time

import pytest

from repro.engine.cache import ResultCache
from repro.engine.checkpoint import CampaignJournal, JournalHeader
from repro.engine.job import SimJob, execute_job
from repro.engine.queue import JobFailed, JobQueue, QueueClosed, WorkerPool

TINY = dict(n_uops=800, warmup=400)


def job(workload="gzip", predictor="lvp", **kw):
    params = {**TINY, **kw}
    return SimJob.make(workload, predictor, **params)


async def _started_queue(workers=1, cache=None, journal=None) -> JobQueue:
    q = JobQueue(WorkerPool(workers), cache=cache, journal=journal)
    await q.start()
    return q


def _wait_dead(pid: float, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return
        time.sleep(0.01)


class TestWorkerPool:
    def test_clamps_to_at_least_one_worker(self):
        assert WorkerPool(0).size == 1
        assert WorkerPool(-3).size == 1

    def test_start_is_idempotent(self):
        pool = WorkerPool(2)
        try:
            pool.start()
            pids = pool.worker_pids()
            pool.start()
            assert pool.worker_pids() == pids
            assert len(pids) == 2
        finally:
            pool.stop()

    def test_reap_dead_replaces_worker_and_never_reuses_ids(self):
        pool = WorkerPool(2)
        try:
            pool.start()
            before = {w["id"] for w in pool.describe()}
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                orphaned = pool.reap_dead()
                if pool.restarts:
                    break
                time.sleep(0.01)
            assert pool.restarts == 1
            assert orphaned == []  # the victim was idle: nothing to requeue
            after = {w["id"] for w in pool.describe()}
            assert len(after) == 2
            assert not (after - before) & before  # replacement id is new
            assert victim not in pool.worker_pids()
        finally:
            pool.stop()


class TestJobQueueBasics:
    def test_run_jobs_matches_execute_job_in_order(self):
        async def scenario():
            q = await _started_queue(workers=2)
            try:
                jobs = [job("gzip"), job("gcc"), job("gzip", "2dstride")]
                return await q.run_jobs(jobs), jobs
            finally:
                await q.stop()

        results, jobs = asyncio.run(scenario())
        expected = [execute_job(j) for j in jobs]
        assert [r.to_dict() for r in results] == [e.to_dict() for e in expected]

    def test_duplicate_jobs_in_one_batch_coalesce(self):
        async def scenario():
            q = await _started_queue()
            try:
                futures, summary = q.submit([job(), job(), job()])
                results = await asyncio.gather(*futures)
                return summary, results, q.stats
            finally:
                await q.stop()

        summary, results, stats = asyncio.run(scenario())
        assert summary == {"jobs": 3, "cache_hits": 0, "coalesced": 2,
                           "enqueued": 1}
        assert stats.executed == 1
        assert results[0].to_dict() == results[1].to_dict() == results[2].to_dict()

    def test_cache_answers_repeat_submissions(self):
        async def scenario():
            cache = ResultCache(None)
            q = await _started_queue(cache=cache)
            try:
                await q.run_jobs([job()])
                futures, summary = q.submit([job()])
                await asyncio.gather(*futures)
                return summary, q.stats
            finally:
                await q.stop()

        summary, stats = asyncio.run(scenario())
        assert summary["cache_hits"] == 1
        assert stats.executed == 1

    def test_cross_submission_inflight_sharing(self):
        async def scenario():
            q = await _started_queue()
            try:
                first, _ = q.submit([job("gcc", "vtage", n_uops=6000,
                                         warmup=3000)])
                # Second submission of the same spec while the first is
                # (almost surely) still simulating.
                second, summary = q.submit([job("gcc", "vtage", n_uops=6000,
                                                warmup=3000)])
                a, b = await asyncio.gather(first[0], second[0])
                return summary, a, b, q.stats
            finally:
                await q.stop()

        summary, a, b, stats = asyncio.run(scenario())
        assert summary["coalesced"] + summary["cache_hits"] == 1
        assert stats.executed == 1
        assert a.to_dict() == b.to_dict()

    def test_bad_job_fails_future_but_worker_survives(self):
        async def scenario():
            q = await _started_queue()
            try:
                futures, _ = q.submit([job(workload="no-such-workload")])
                with pytest.raises(JobFailed):
                    await futures[0]
                # The same worker still executes good jobs afterwards.
                result = (await q.run_jobs([job()]))[0]
                return result, q.stats, q.pool.restarts
            finally:
                await q.stop()

        result, stats, restarts = asyncio.run(scenario())
        assert stats.errors == 1
        assert stats.executed == 1
        assert restarts == 0
        assert result.to_dict() == execute_job(job()).to_dict()

    def test_stop_fails_outstanding_futures(self):
        async def scenario():
            q = await _started_queue()
            futures, _ = q.submit([job("gcc", "vtage", n_uops=8000,
                                       warmup=4000)])
            await q.stop()
            with pytest.raises(QueueClosed):
                await futures[0]

        asyncio.run(scenario())


class TestCrashRecovery:
    def test_sigkilled_worker_requeues_its_job(self):
        async def scenario():
            q = await _started_queue(workers=2)
            try:
                jobs = [job(w, "vtage", n_uops=12000, warmup=6000)
                        for w in ("gzip", "gcc", "crafty", "applu")]
                futures, _ = q.submit(jobs)
                victim = None
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    busy = [w for w in q.pool.describe()
                            if w["task"] and w["alive"]]
                    if busy:
                        victim = busy[0]["pid"]
                        break
                    await asyncio.sleep(0.01)
                assert victim is not None, "no worker ever went busy"
                os.kill(victim, signal.SIGKILL)
                results = await asyncio.gather(*futures)
                return jobs, results, q.stats, q.pool.restarts
            finally:
                await q.stop()

        jobs, results, stats, restarts = asyncio.run(scenario())
        assert restarts >= 1
        assert stats.requeued >= 1
        assert stats.executed == len(jobs)
        expected = [execute_job(j) for j in jobs]
        assert [r.to_dict() for r in results] == [e.to_dict() for e in expected]


class TestJournalIntegration:
    def test_executed_jobs_land_in_the_journal(self, tmp_path):
        path = tmp_path / "service.jsonl"

        async def scenario():
            journal = CampaignJournal(path)
            journal.open(JournalHeader(campaign="__service__",
                                       key="service-v1", total=0))
            q = await _started_queue(journal=journal)
            try:
                return await q.run_jobs([job(), job("gcc")])
            finally:
                await q.stop()
                journal.close()

        results = asyncio.run(scenario())
        replayed = CampaignJournal(path)
        assert replayed.done == 2
        assert {job().content_key(), job("gcc").content_key()} == \
            set(replayed.entries)
        assert replayed.entries[job().content_key()].to_dict() == \
            results[0].to_dict()
