"""Unit tests for fixed-width integer helpers."""

import pytest

from repro.util.bits import (
    MASK64,
    fold_value,
    sign_extend,
    to_signed64,
    to_unsigned64,
)


class TestToUnsigned64:
    def test_identity_within_range(self):
        assert to_unsigned64(42) == 42

    def test_wraps_negative(self):
        assert to_unsigned64(-1) == MASK64

    def test_wraps_overflow(self):
        assert to_unsigned64(1 << 64) == 0
        assert to_unsigned64((1 << 64) + 5) == 5

    def test_zero(self):
        assert to_unsigned64(0) == 0


class TestToSigned64:
    def test_positive_unchanged(self):
        assert to_signed64(7) == 7

    def test_max_negative(self):
        assert to_signed64(1 << 63) == -(1 << 63)

    def test_minus_one(self):
        assert to_signed64(MASK64) == -1

    def test_roundtrip(self):
        for value in (-5, -1, 0, 1, (1 << 62)):
            assert to_signed64(to_unsigned64(value)) == value


class TestSignExtend:
    def test_positive(self):
        assert sign_extend(0b0101, 4) == 5

    def test_negative(self):
        assert sign_extend(0b1111, 4) == -1
        assert sign_extend(0b1000, 4) == -8

    def test_masks_upper_bits(self):
        assert sign_extend(0xFF0F, 4) == -1

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            sign_extend(1, 0)


class TestFoldValue:
    def test_small_value_identity(self):
        assert fold_value(0x1234, 16) == 0x1234

    def test_folds_upper_halves(self):
        value = 0x0001_0002_0003_0004
        assert fold_value(value, 16) == 0x0001 ^ 0x0002 ^ 0x0003 ^ 0x0004

    def test_zero(self):
        assert fold_value(0, 16) == 0

    def test_result_fits_width(self):
        for width in (1, 5, 13, 16, 32):
            assert fold_value(0xDEADBEEFCAFEBABE, width) < (1 << width)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            fold_value(1, 0)

    def test_wraps_input_to_64_bits(self):
        assert fold_value(1 << 64, 16) == fold_value(0, 16)
