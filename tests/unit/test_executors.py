"""Edge cases for executor selection: bad values clamp, never crash."""

import pytest

from repro.engine.executors import (
    JOBS_ENV,
    MAX_JOBS,
    PoolExecutor,
    SerialExecutor,
    make_executor,
    resolve_jobs,
)


class TestResolveJobsExplicit:
    def test_none_with_env_unset_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_value_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "8")
        assert resolve_jobs(3) == 3

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_zero_and_negative_clamp_to_serial(self, bad):
        assert resolve_jobs(bad) == 1

    def test_huge_value_clamps_to_max(self):
        assert resolve_jobs(10**9) == MAX_JOBS

    def test_numeric_string_accepted(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs("4") == 4

    def test_garbage_explicit_falls_back_to_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs("not-a-number") == 5

    def test_garbage_explicit_and_no_env_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs("not-a-number") == 1


class TestResolveJobsEnv:
    @pytest.mark.parametrize("raw,expected", [
        ("4", 4),
        ("1", 1),
        ("0", 1),            # clamp, not crash
        ("-3", 1),           # clamp, not crash
        ("4.0", 4),          # float spelling degrades gracefully
        ("2.9", 2),
        ("garbage", 1),      # unusable text falls back to serial
        ("", 1),
        ("   ", 1),
        ("inf", 1),          # OverflowError path
        ("nan", 1),
    ])
    def test_env_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv(JOBS_ENV, raw)
        assert resolve_jobs() == expected

    def test_env_huge_clamps_to_max(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "1000000")
        assert resolve_jobs() == MAX_JOBS


class TestMakeExecutor:
    def test_serial_for_one(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert isinstance(make_executor(), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)

    def test_pool_for_two(self):
        executor = make_executor(2)
        assert isinstance(executor, PoolExecutor)
        assert executor.jobs == 2

    @pytest.mark.parametrize("bad", [0, -7, "garbage"])
    def test_bad_values_degrade_to_serial(self, bad, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert isinstance(make_executor(bad), SerialExecutor)

    def test_pool_executor_still_rejects_direct_misuse(self):
        # The clamp lives in resolve_jobs; the class keeps its contract.
        with pytest.raises(ValueError):
            PoolExecutor(1)
