"""The ``repro bench promote`` guard: consent, provenance, atomicity.

Committed ``BENCH_*.json`` baselines historically drifted by hand-edit;
:mod:`repro.bench` makes promotion the only path and these tests pin
every refusal the guard promises — no consent env, no provenance block,
dishonest round counts, measurements taken on a saturated machine — plus
the all-or-nothing and atomic-replace behaviours.
"""

import json

import pytest

from repro.bench import (
    LOAD_FACTOR,
    PROMOTE_ENV,
    PromoteError,
    bench_scratch_dir,
    promote,
    validate_report,
)

CONSENT = {PROMOTE_ENV: "1"}


def good_report(**run_overrides) -> dict:
    run = {"rounds": 5, "load_avg_1m": 0.2, "cpu_count": 8,
           "simulation_mode": "python", "promoted": False}
    run.update(run_overrides)
    return {"suite": "io", "results": {"journal_append_ms": 1.25},
            "run": run}


def write_report(directory, name, payload) -> None:
    (directory / name).write_text(json.dumps(payload))


class TestValidateReport:
    def test_good_report_passes(self):
        assert validate_report(good_report()) == []

    def test_missing_run_block_is_the_only_problem_reported(self):
        problems = validate_report({"results": {}})
        assert len(problems) == 1
        assert "run" in problems[0]

    @pytest.mark.parametrize("rounds", [None, 0, -3, "5", 2.0])
    def test_dishonest_rounds_refused(self, rounds):
        problems = validate_report(good_report(rounds=rounds))
        assert any("rounds" in p for p in problems)

    def test_missing_load_average_refused(self):
        report = good_report()
        del report["run"]["load_avg_1m"]
        problems = validate_report(report)
        assert any("load_avg_1m" in p for p in problems)

    def test_saturated_machine_refused_unless_allowed(self):
        report = good_report(load_avg_1m=LOAD_FACTOR * 8 + 1, cpu_count=8)
        assert any("noise" in p for p in validate_report(report))
        assert validate_report(report, allow_loaded=True) == []


class TestPromote:
    def test_refuses_without_consent_env(self, tmp_path):
        write_report(tmp_path, "BENCH_io.json", good_report())
        with pytest.raises(PromoteError, match=PROMOTE_ENV):
            promote(source_dir=tmp_path, dest_dir=tmp_path / "dest", env={})

    def test_promotes_and_stamps_provenance(self, tmp_path):
        dest = tmp_path / "dest"
        dest.mkdir()
        write_report(tmp_path, "BENCH_io.json", good_report())
        promoted = promote(source_dir=tmp_path, dest_dir=dest, env=CONSENT)
        assert promoted == ["BENCH_io.json"]
        payload = json.loads((dest / "BENCH_io.json").read_text())
        assert payload["run"]["promoted"] is True
        assert payload["results"] == {"journal_append_ms": 1.25}
        assert not list(dest.glob("*.tmp"))

    def test_all_or_nothing_when_one_report_is_bad(self, tmp_path):
        dest = tmp_path / "dest"
        dest.mkdir()
        write_report(tmp_path, "BENCH_a.json", good_report())
        write_report(tmp_path, "BENCH_b.json", {"results": {}})  # no run
        with pytest.raises(PromoteError, match="BENCH_b"):
            promote(source_dir=tmp_path, dest_dir=dest, env=CONSENT)
        assert list(dest.iterdir()) == []  # the good one was not copied

    def test_named_selection_requires_the_file(self, tmp_path):
        with pytest.raises(PromoteError, match="no quarantined report"):
            promote(["BENCH_nope.json"], source_dir=tmp_path,
                    dest_dir=tmp_path, env=CONSENT)

    def test_empty_scratch_dir_is_an_explicit_refusal(self, tmp_path):
        with pytest.raises(PromoteError, match="nothing to promote"):
            promote(source_dir=tmp_path, dest_dir=tmp_path, env=CONSENT)

    def test_unreadable_json_is_an_explicit_refusal(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        with pytest.raises(PromoteError, match="unreadable"):
            promote(source_dir=tmp_path, dest_dir=tmp_path, env=CONSENT)

    def test_scratch_dir_resolution_honors_env_then_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", "/tmp/elsewhere")
        assert str(bench_scratch_dir()) == "/tmp/elsewhere"
        monkeypatch.delenv("REPRO_BENCH_DIR")
        assert bench_scratch_dir().name == "bench_out"
        assert str(bench_scratch_dir("/explicit")) == "/explicit"
