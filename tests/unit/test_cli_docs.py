"""docs/cli.md is generated: drift fails here and in the CI check step."""

from pathlib import Path

from repro import docs

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestGenerated:
    def test_docs_cli_md_is_up_to_date(self):
        """`python -m repro.docs` output must match the checked-in file."""
        on_disk = (REPO_ROOT / "docs" / "cli.md").read_text()
        assert on_disk == docs.generate(), (
            "docs/cli.md drifted from the argparse trees; regenerate with "
            "`PYTHONPATH=src python -m repro.docs`"
        )

    def test_check_mode_matches_assertion(self, capsys):
        assert docs.main(["--check"]) == 0

    def test_check_mode_fails_on_drift(self, tmp_path, capsys):
        stale = tmp_path / "cli.md"
        stale.write_text("# stale\n")
        assert docs.main(["--check", "--output", str(stale)]) == 1


class TestCoverage:
    def test_reference_covers_every_subcommand(self):
        rendered = docs.generate()
        for heading in (
            "## `repro`",
            "### `repro run`",
            "### `repro table`",
            "### `repro figure`",
            "### `repro campaign`",
            "#### `repro campaign run`",
            "#### `repro campaign resume`",
            "#### `repro campaign status`",
            "#### `repro campaign list`",
            "### `repro cache`",
            "### `repro list`",
            "## `python -m repro.experiments.reproduce`",
        ):
            assert heading in rendered, heading

    def test_reference_mentions_the_knobs(self):
        rendered = docs.generate()
        for token in ("REPRO_JOBS", "REPRO_CACHE_DIR", "REPRO_CHECKPOINT_DIR",
                      "--checkpoint-dir", "--force", "--render"):
            assert token in rendered, token
