"""Unit tests for confidence policies, especially FPC (Section 5)."""

import pytest

from repro.core.confidence import (
    ConfidencePolicy,
    ForwardProbabilisticCounters,
    WideConfidence,
)
from repro.util.lfsr import GaloisLFSR


class TestBaselinePolicy:
    def test_counts_up_to_saturation(self):
        policy = ConfidencePolicy(bits=3)
        level = 0
        for _ in range(10):
            level = policy.on_correct(level)
        assert level == 7
        assert policy.is_confident(level)

    def test_reset_on_incorrect(self):
        policy = ConfidencePolicy(bits=3)
        assert policy.on_incorrect(7) == 0
        assert policy.on_incorrect(3) == 0

    def test_not_confident_below_saturation(self):
        policy = ConfidencePolicy(bits=3)
        for level in range(7):
            assert not policy.is_confident(level)

    def test_storage_bits(self):
        assert ConfidencePolicy(bits=3).storage_bits() == 3
        assert WideConfidence(bits=7).storage_bits() == 7

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            ConfidencePolicy(bits=0)


class TestWideConfidence:
    def test_saturation_needs_many_corrects(self):
        policy = WideConfidence(bits=7)
        level = 0
        for _ in range(126):
            level = policy.on_correct(level)
        assert not policy.is_confident(level)
        level = policy.on_correct(level)
        assert policy.is_confident(level)


class TestFPC:
    def test_paper_vectors_have_seven_transitions(self):
        assert len(ForwardProbabilisticCounters.SQUASH_VECTOR) == 7
        assert len(ForwardProbabilisticCounters.REISSUE_VECTOR) == 7

    def test_first_transition_always_fires(self):
        fpc = ForwardProbabilisticCounters.for_squash()
        assert fpc.on_correct(0) == 1

    def test_level_never_exceeds_max(self):
        fpc = ForwardProbabilisticCounters.for_squash()
        level = 0
        for _ in range(2000):
            level = fpc.on_correct(level)
            assert level <= fpc.max_level

    def test_reset_on_incorrect(self):
        fpc = ForwardProbabilisticCounters.for_squash()
        assert fpc.on_incorrect(7) == 0

    def test_expected_steps_to_saturate_squash(self):
        """The squash vector mimics a 7-bit counter: ~129 expected steps."""
        expected = sum(1 << p for p in ForwardProbabilisticCounters.SQUASH_VECTOR)
        assert expected == 1 + 16 * 4 + 32 * 2  # = 129

    def test_expected_steps_to_saturate_reissue(self):
        """The reissue vector mimics a 6-bit counter: ~65 expected steps."""
        expected = sum(1 << p for p in ForwardProbabilisticCounters.REISSUE_VECTOR)
        assert expected == 1 + 8 * 4 + 16 * 2  # = 65

    def test_effective_counter_bits(self):
        assert ForwardProbabilisticCounters.for_squash().effective_counter_bits() == 7
        assert ForwardProbabilisticCounters.for_reissue().effective_counter_bits() == 6

    def test_empirical_saturation_time(self):
        """Average steps to saturate should sit near the 129-step target."""
        totals = 0
        runs = 300
        fpc = ForwardProbabilisticCounters.for_squash(lfsr=GaloisLFSR(seed=99))
        for _ in range(runs):
            level = 0
            steps = 0
            while not fpc.is_confident(level):
                level = fpc.on_correct(level)
                steps += 1
            totals += steps
        mean = totals / runs
        assert 100 < mean < 160

    def test_rejects_wrong_vector_length(self):
        with pytest.raises(ValueError):
            ForwardProbabilisticCounters(probability_log2=(0, 4, 4))

    def test_describe_mentions_probabilities(self):
        assert "1/16" in ForwardProbabilisticCounters.for_squash().describe()
        assert "1/8" in ForwardProbabilisticCounters.for_reissue().describe()
