"""Unit tests for the Section 3.1 / Section 4 analytic models."""

import pytest

from repro.analysis.cost_model import (
    PAPER_SCENARIOS,
    SELECTIVE_REISSUE,
    SQUASH_AT_COMMIT,
    SQUASH_AT_EXECUTE,
    recovery_benefit_per_kilo_instruction,
    register_file_area,
    total_recovery_cost,
    vp_register_file_overheads,
)


class TestRecoveryModel:
    """Reproduce the Section 3.1.1 worked example exactly."""

    def test_high_coverage_low_accuracy(self):
        """Coverage 40%, accuracy 95%: +64 / -86 / -286 cycles/Kinsn."""
        reissue = recovery_benefit_per_kilo_instruction(SELECTIVE_REISSUE, 0.40, 0.95)
        execute = recovery_benefit_per_kilo_instruction(SQUASH_AT_EXECUTE, 0.40, 0.95)
        commit = recovery_benefit_per_kilo_instruction(SQUASH_AT_COMMIT, 0.40, 0.95)
        assert reissue == pytest.approx(64, abs=1)
        assert execute == pytest.approx(-86, abs=1)
        assert commit == pytest.approx(-286, abs=1)

    def test_low_coverage_high_accuracy(self):
        """Coverage 30%, accuracy 99.75%: +88 / +83 / +76 cycles/Kinsn."""
        reissue = recovery_benefit_per_kilo_instruction(SELECTIVE_REISSUE, 0.30, 0.9975)
        execute = recovery_benefit_per_kilo_instruction(SQUASH_AT_EXECUTE, 0.30, 0.9975)
        commit = recovery_benefit_per_kilo_instruction(SQUASH_AT_COMMIT, 0.30, 0.9975)
        # The paper rounds its example ("around 88 / 83 / 76"); the exact
        # model gives 87.9 / 82.3 / 74.8.
        assert reissue == pytest.approx(88, abs=2)
        assert execute == pytest.approx(83, abs=2)
        assert commit == pytest.approx(76, abs=2)

    def test_accuracy_dominates_at_commit(self):
        """The paper's core argument: with very high accuracy, squash at
        commit is nearly as good as selective reissue."""
        commit = recovery_benefit_per_kilo_instruction(SQUASH_AT_COMMIT, 0.30, 0.999)
        reissue = recovery_benefit_per_kilo_instruction(SELECTIVE_REISSUE, 0.30, 0.999)
        assert commit > 0
        assert commit / reissue > 0.85

    def test_trecov_formula(self):
        assert total_recovery_cost(100, 40.0) == 4000.0
        with pytest.raises(ValueError):
            total_recovery_cost(-1, 40.0)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            recovery_benefit_per_kilo_instruction(SQUASH_AT_COMMIT, 1.5, 0.9)
        with pytest.raises(ValueError):
            recovery_benefit_per_kilo_instruction(SQUASH_AT_COMMIT, 0.5, -0.1)

    def test_scenarios_ordered_by_penalty(self):
        penalties = [s.penalty_cycles for s in PAPER_SCENARIOS]
        assert penalties == sorted(penalties)


class TestRegisterFileModel:
    def test_area_formula(self):
        """(R + W)(R + 2W): with R = 2W the baseline is 12W^2."""
        w = 8
        assert register_file_area(2 * w, w) == 12 * w * w

    def test_naive_vp_doubles_area(self):
        """Section 4: doubling write ports doubles the area (24W^2)."""
        w = 8
        assert register_file_area(2 * w, 2 * w) == 24 * w * w

    def test_buffered_scheme_saves_half_overhead(self):
        """W/2 extra ports: 35W^2/2, saving half of the naive overhead."""
        w = 8
        assert register_file_area(2 * w, w + w // 2) == 35 * w * w / 2

    def test_overhead_summary(self):
        data = vp_register_file_overheads(issue_width=8)
        assert data["naive_vp"] == pytest.approx(2.0)
        assert data["buffered_vp"] == pytest.approx(35 / 24)

    def test_rejects_negative_ports(self):
        with pytest.raises(ValueError):
            register_file_area(-1, 2)
