"""Unit tests for the pipeline resource primitives."""

import pytest

from repro.pipeline.resources import (
    BandwidthLimiter,
    InOrderWindow,
    OutOfOrderWindow,
    UnitPool,
)


class TestBandwidthLimiter:
    def test_width_grants_per_cycle(self):
        bw = BandwidthLimiter(2)
        cycles = [bw.grant(10) for _ in range(5)]
        assert cycles == [10, 10, 11, 11, 12]

    def test_out_of_order_requests(self):
        bw = BandwidthLimiter(1)
        assert bw.grant(5) == 5
        assert bw.grant(3) == 3
        assert bw.grant(3) == 4
        # Cycles 4 and 5 are both taken now, so the next slot is 6.
        assert bw.grant(4) == 6

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            BandwidthLimiter(0)


class TestUnitPool:
    def test_pipelined_throughput(self):
        pool = UnitPool(2)
        starts = [pool.grant(0, occupancy=1) for _ in range(4)]
        assert starts == [0, 0, 1, 1]

    def test_non_pipelined_occupancy(self):
        pool = UnitPool(1)
        first = pool.grant(0, occupancy=25)
        second = pool.grant(0, occupancy=25)
        assert first == 0 and second == 25

    def test_units_independent(self):
        pool = UnitPool(4)
        starts = [pool.grant(0, occupancy=10) for _ in range(4)]
        assert starts == [0, 0, 0, 0]
        assert pool.grant(0, occupancy=10) == 10


class TestInOrderWindow:
    def test_unconstrained_until_full(self):
        window = InOrderWindow(2)
        assert window.acquire(5) == 5
        window.push_release(100)
        assert window.acquire(6) == 6
        window.push_release(200)
        # Third entry waits for the oldest release.
        assert window.acquire(7) == 100

    def test_no_stall_when_release_passed(self):
        window = InOrderWindow(1)
        window.push_release(3)
        assert window.acquire(10) == 10
        assert window.stalls == 0

    def test_occupancy(self):
        window = InOrderWindow(4)
        window.push_release(1)
        window.push_release(2)
        assert window.occupancy == 2


class TestOutOfOrderWindow:
    def test_waits_for_earliest_release(self):
        window = OutOfOrderWindow(2)
        window.acquire(0)
        window.push_release(50)
        window.acquire(0)
        window.push_release(20)  # out of order: releases earlier
        assert window.acquire(0) == 20

    def test_capacity_one(self):
        window = OutOfOrderWindow(1)
        assert window.acquire(0) == 0
        window.push_release(9)
        assert window.acquire(0) == 9
