"""Unit tests for the pipeline resource primitives."""

import pytest

from repro.pipeline.resources import (
    BandwidthLimiter,
    InOrderWindow,
    OutOfOrderWindow,
    UnitPool,
)


class TestBandwidthLimiter:
    def test_width_grants_per_cycle(self):
        bw = BandwidthLimiter(2)
        cycles = [bw.grant(10) for _ in range(5)]
        assert cycles == [10, 10, 11, 11, 12]

    def test_out_of_order_requests(self):
        bw = BandwidthLimiter(1)
        assert bw.grant(5) == 5
        assert bw.grant(3) == 3
        assert bw.grant(3) == 4
        # Cycles 4 and 5 are both taken now, so the next slot is 6.
        assert bw.grant(4) == 6

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            BandwidthLimiter(0)


class TestBandwidthLimiterPruning:
    """The seed model leaked one dict entry per simulated cycle per
    limiter for the whole run; `advance_watermark` must bound that while
    never changing grant outcomes."""

    def test_watermark_prunes_retired_cycles(self):
        bw = BandwidthLimiter(1)
        for cycle in range(4 * BandwidthLimiter.PRUNE_THRESHOLD):
            bw.grant(cycle)
        assert bw.tracked_cycles == 4 * BandwidthLimiter.PRUNE_THRESHOLD
        bw.advance_watermark(4 * BandwidthLimiter.PRUNE_THRESHOLD)
        assert bw.tracked_cycles == 0

    def test_entry_count_stays_bounded_under_monotone_traffic(self):
        bw = BandwidthLimiter(4)
        high_water = 0
        for cycle in range(20_000):
            bw.grant(cycle)
            if cycle % 512 == 0:
                bw.advance_watermark(cycle)
            high_water = max(high_water, bw.tracked_cycles)
        # Without pruning this would reach 20_000 entries.
        assert high_water <= 2 * BandwidthLimiter.PRUNE_THRESHOLD + 512

    def test_pruning_never_changes_grants(self):
        """Twin limiters, one pruned, one not: identical grant streams as
        long as the watermark respects the caller contract."""
        import random

        rng = random.Random(99)
        pruned = BandwidthLimiter(2)
        reference = BandwidthLimiter(2)
        floor = 0
        for _ in range(5_000):
            floor += rng.choice((0, 0, 0, 1, 2))
            earliest = floor + rng.randrange(0, 8)
            assert pruned.grant(earliest) == reference.grant(earliest)
            pruned.advance_watermark(floor)
        assert pruned.tracked_cycles <= reference.tracked_cycles

    def test_watermark_prunes_in_place(self):
        """Hot loops alias `_counts`; pruning must mutate, not replace."""
        bw = BandwidthLimiter(1)
        alias = bw._counts
        for cycle in range(2 * BandwidthLimiter.PRUNE_THRESHOLD):
            bw.grant(cycle)
        bw.advance_watermark(2 * BandwidthLimiter.PRUNE_THRESHOLD)
        assert bw._counts is alias

    def test_simulated_run_keeps_limiters_bounded(self, monkeypatch):
        """End to end: a real simulation never accumulates unbounded
        per-cycle entries.  The seed model retained one entry per
        simulated cycle (~16k for this slice) in every limiter; the
        pruned model stays well below that.  Pins the Python loop: the
        compiled kernel keeps bandwidth state in fixed-size C windows
        and constructs no ``BandwidthLimiter`` objects at all."""
        from repro.pipeline import resources
        from repro.pipeline.core import CoreModel
        from repro.workloads.catalog import build_trace

        monkeypatch.setenv("REPRO_FAST_KERNEL", "0")
        trace = build_trace("gzip", 12_000)
        seen = []
        original_init = resources.BandwidthLimiter.__init__

        def spying_init(self, width):
            original_init(self, width)
            seen.append(self)

        resources.BandwidthLimiter.__init__ = spying_init
        try:
            result = CoreModel().run(trace, warmup=0, workload="gzip")
        finally:
            resources.BandwidthLimiter.__init__ = original_init
        assert seen, "run() no longer uses BandwidthLimiter at all?"
        assert result.cycles > 10_000  # the leak bound below is meaningful
        for limiter in seen:
            assert limiter.tracked_cycles < result.cycles // 2, (
                "bandwidth limiter retained one entry per simulated cycle"
            )

    def test_redirect_free_run_still_prunes_fetch_limiters(self, monkeypatch):
        """A straight-line trace never advances fetch_resume (no redirects
        of any kind), so fetch-side pruning must ride the fetch queue's
        oldest pending release instead.  Python-loop pinned, as above."""
        from repro.pipeline import resources
        from repro.pipeline.core import CoreModel
        from repro.workloads.builder import TraceBuilder

        monkeypatch.setenv("REPRO_FAST_KERNEL", "0")
        builder = TraceBuilder("straightline", seed=11)
        for i in range(40_000):
            builder.alu(f"op{i % 977}", f"v{i % 7}", [f"v{(i + 1) % 7}"], i)
        seen = []
        original_init = resources.BandwidthLimiter.__init__

        def spying_init(self, width):
            original_init(self, width)
            seen.append(self)

        resources.BandwidthLimiter.__init__ = spying_init
        try:
            result = CoreModel().run(builder.trace, warmup=0)
        finally:
            resources.BandwidthLimiter.__init__ = original_init
        assert result.branch_mispredicts == 0 and result.btb_redirects == 0
        assert result.cycles > 4_000
        for limiter in seen:
            assert limiter.tracked_cycles < result.cycles // 2, (
                "fetch-side limiter leaked on a redirect-free run"
            )


class TestUnitPool:
    def test_pipelined_throughput(self):
        pool = UnitPool(2)
        starts = [pool.grant(0, occupancy=1) for _ in range(4)]
        assert starts == [0, 0, 1, 1]

    def test_non_pipelined_occupancy(self):
        pool = UnitPool(1)
        first = pool.grant(0, occupancy=25)
        second = pool.grant(0, occupancy=25)
        assert first == 0 and second == 25

    def test_units_independent(self):
        pool = UnitPool(4)
        starts = [pool.grant(0, occupancy=10) for _ in range(4)]
        assert starts == [0, 0, 0, 0]
        assert pool.grant(0, occupancy=10) == 10


class TestInOrderWindow:
    def test_unconstrained_until_full(self):
        window = InOrderWindow(2)
        assert window.acquire(5) == 5
        window.push_release(100)
        assert window.acquire(6) == 6
        window.push_release(200)
        # Third entry waits for the oldest release.
        assert window.acquire(7) == 100

    def test_no_stall_when_release_passed(self):
        window = InOrderWindow(1)
        window.push_release(3)
        assert window.acquire(10) == 10
        assert window.stalls == 0

    def test_occupancy(self):
        window = InOrderWindow(4)
        window.push_release(1)
        window.push_release(2)
        assert window.occupancy == 2


class TestOutOfOrderWindow:
    def test_waits_for_earliest_release(self):
        window = OutOfOrderWindow(2)
        window.acquire(0)
        window.push_release(50)
        window.acquire(0)
        window.push_release(20)  # out of order: releases earlier
        assert window.acquire(0) == 20

    def test_capacity_one(self):
        window = OutOfOrderWindow(1)
        assert window.acquire(0) == 0
        window.push_release(9)
        assert window.acquire(0) == 9
