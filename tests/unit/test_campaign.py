"""Campaign specs: expansion, identity, aggregation, cache/journal accord."""

import pytest

from repro.engine import job as job_mod
from repro.engine.api import Engine
from repro.engine.cache import ResultCache
from repro.engine.campaign import (
    AxisBlock,
    CampaignSpec,
    run_campaign,
)
from repro.engine.checkpoint import CampaignJournal
from repro.engine.executors import SerialExecutor
from repro.engine.job import SimJob
from repro.pipeline.config import CoreConfig
from repro.workloads.scenarios import scenario_axis

TINY = {"n_uops": 1500, "warmup": 800}


def tiny_spec(name="tiny") -> CampaignSpec:
    return CampaignSpec.union(
        name,
        AxisBlock.make(
            {"predictor": ["lvp", "vtage"], "workload": ["gzip", "crafty"]},
            base=TINY,
        ),
        AxisBlock.make(
            {"workload": ["gzip", "crafty"]},
            base={"predictor": "none", **TINY},
        ),
    )


def fresh_engine() -> Engine:
    return Engine(SerialExecutor(), ResultCache())


# ---------------------------------------------------------------------------
# Spec expansion.
# ---------------------------------------------------------------------------

class TestExpansion:
    def test_product_expands_cross_product(self):
        spec = CampaignSpec.make(
            "p", {"predictor": ["lvp", "vtage"], "workload": ["gzip", "crafty"]},
            base=TINY,
        )
        points = spec.points()
        assert len(points) == 4
        assert {(p["predictor"], p["workload"]) for p in points} == {
            ("lvp", "gzip"), ("lvp", "crafty"),
            ("vtage", "gzip"), ("vtage", "crafty"),
        }

    def test_points_are_normalised(self):
        [point] = CampaignSpec.make("p", {"workload": ["gzip"]}).points()
        # Every SimJob.make keyword is present, with its default value.
        assert point["predictor"] == "none"
        assert point["fpc"] is True
        assert point["recovery"] == "squash"
        assert point["entries"] == 8192
        assert point["seed"] is None
        assert point["config"] is None

    def test_zip_mode_pairs_axes(self):
        spec = CampaignSpec.make(
            "z", {"workload": ["gzip", "crafty"], "predictor": ["lvp", "vtage"]},
            mode="zip",
        )
        assert [(p["workload"], p["predictor"]) for p in spec.points()] == [
            ("gzip", "lvp"), ("crafty", "vtage"),
        ]

    def test_zip_mode_rejects_ragged_axes(self):
        with pytest.raises(ValueError, match="equal-length"):
            AxisBlock.make({"workload": ["gzip"], "predictor": ["lvp", "vtage"]},
                           mode="zip")

    def test_filters_drop_points(self):
        spec = CampaignSpec.make(
            "f",
            {"predictor": ["none", "lvp"], "fpc": [False, True],
             "workload": ["gzip"]},
            filters=[lambda p: not (p["predictor"] == "none" and not p["fpc"])],
        )
        points = spec.points()
        assert len(points) == 3
        assert all(p["fpc"] or p["predictor"] != "none" for p in points)

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign axes"):
            AxisBlock.make({"wrkload": ["gzip"]})

    def test_axes_and_base_must_not_overlap(self):
        with pytest.raises(ValueError, match="both set"):
            AxisBlock.make({"workload": ["gzip"]}, base={"workload": "gzip"})

    def test_workload_is_mandatory(self):
        with pytest.raises(ValueError, match="workload"):
            CampaignSpec.make("w", {"predictor": ["lvp"]}).points()

    def test_union_concatenates_and_run_dedupes(self):
        spec = tiny_spec()
        assert len(spec.points()) == 6
        assert len(spec.unique_jobs()) == 6
        doubled = CampaignSpec.union("d", spec, spec)
        assert len(doubled.points()) == 12
        assert len(doubled.unique_jobs()) == 6

    def test_config_axis_values(self):
        spec = CampaignSpec.make(
            "c", {"workload": ["gzip"],
                  "config": [None, CoreConfig(issue_width=4)]},
            base=TINY,
        )
        keys = {j.content_key() for j in spec.jobs()}
        assert len(keys) == 2

    def test_scenario_names_work_as_workload_axis(self):
        spec = CampaignSpec.make(
            "s", {"workload": scenario_axis(chase=(1,), entropy=(5, 50),
                                            locality=(90,))},
            base={"predictor": "lvp", **TINY},
        )
        results = run_campaign(spec, engine=fresh_engine())
        assert len(results.results_by_key) == 2


# ---------------------------------------------------------------------------
# Campaign identity.
# ---------------------------------------------------------------------------

class TestCampaignKey:
    def test_key_ignores_spelling_and_order(self):
        a = tiny_spec("one-name")
        blocks = tuple(reversed(tiny_spec("other-name").blocks))
        b = CampaignSpec("other-name", blocks)
        assert a.campaign_key() == b.campaign_key()

    def test_key_tracks_the_job_set(self):
        base = tiny_spec().campaign_key()
        bigger = CampaignSpec.union(
            "tiny",
            *tiny_spec().blocks,
            AxisBlock.make({"workload": ["vpr"]}, base={"predictor": "lvp", **TINY}),
        )
        assert bigger.campaign_key() != base
        resized = CampaignSpec.union(
            "tiny",
            AxisBlock.make(
                {"predictor": ["lvp", "vtage"], "workload": ["gzip", "crafty"]},
                base={"n_uops": 2000, "warmup": 800},
            ),
        )
        assert resized.campaign_key() != base


# ---------------------------------------------------------------------------
# Execution and aggregation hooks.
# ---------------------------------------------------------------------------

class TestCampaignResult:
    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(tiny_spec(), engine=fresh_engine())

    def test_results_align_with_points(self, result):
        assert len(result.results) == len(result.points)
        for point, sim in result:
            assert sim.workload == point["workload"]

    def test_lookup_single_point(self, result):
        sim = result.lookup(predictor="vtage", workload="gzip")
        assert sim.workload == "gzip"
        assert sim.predictor != "none"

    def test_lookup_rejects_ambiguity_and_misses(self, result):
        with pytest.raises(KeyError, match="distinct jobs"):
            result.lookup(workload="gzip")
        with pytest.raises(KeyError, match="no campaign point"):
            result.lookup(predictor="fcm")

    def test_by_pivots_in_order(self, result):
        by_workload = result.by("workload", predictor="lvp")
        assert list(by_workload) == ["gzip", "crafty"]

    def test_speedup_by_workload(self, result):
        speedups = result.speedup_by_workload(predictor="vtage")
        assert set(speedups) == {"gzip", "crafty"}
        for value in speedups.values():
            assert value > 0.0

    def test_progress_events_cover_every_job(self):
        events = []
        run_campaign(tiny_spec(), engine=fresh_engine(),
                     progress=events.append)
        assert [e.done for e in events] == list(range(1, 7))
        assert {e.source for e in events} == {"engine"}
        assert events[-1].total == 6

    def test_speedup_requires_baselines(self):
        spec = CampaignSpec.make(
            "no-base", {"predictor": ["lvp"], "workload": ["gzip"]},
            base=TINY,
        )
        result = run_campaign(spec, engine=fresh_engine())
        with pytest.raises(KeyError, match="baseline"):
            result.speedup_by_workload(predictor="lvp")

    def test_chunk_size_must_be_positive(self):
        for bad in (0, -1):
            with pytest.raises(ValueError, match="chunk_size"):
                run_campaign(tiny_spec(), engine=fresh_engine(),
                             chunk_size=bad)

    def test_unjournaled_run_is_one_batch(self, monkeypatch):
        """Without a journal there is nothing to checkpoint, so the whole
        remainder must go to the executor as a single batch (one pool
        spin-up, full parallelism)."""
        engine = fresh_engine()
        batches = []
        original = engine.run_jobs

        def spy(jobs):
            batches.append(len(jobs))
            return original(jobs)

        monkeypatch.setattr(engine, "run_jobs", spy)
        run_campaign(tiny_spec(), engine=engine)
        assert batches == [6]


# ---------------------------------------------------------------------------
# The cache/journal identity contract (ISSUE 3 satellite fix).
# ---------------------------------------------------------------------------

class TestCacheJournalAccord:
    def test_cache_hit_still_lands_in_journal(self, tmp_path):
        """A warm result cache must not leave holes in a fresh journal."""
        engine = fresh_engine()
        spec = tiny_spec()

        job_mod.reset_run_count()
        run_campaign(spec, engine=engine, journal=tmp_path / "first.jsonl")
        assert job_mod.run_count() == 6

        # Same engine (warm cache), brand-new journal: every job is a
        # cache hit, and every job must still be journaled.
        job_mod.reset_run_count()
        result = run_campaign(spec, engine=engine,
                              journal=tmp_path / "second.jsonl")
        assert job_mod.run_count() == 0
        assert result.stats["executed"] == 6
        assert result.stats["cache_hits"] == 6

        first = CampaignJournal(tmp_path / "first.jsonl")
        second = CampaignJournal(tmp_path / "second.jsonl")
        assert set(first.entries) == set(second.entries)
        assert len(second.entries) == 6
        for key, sim in first.entries.items():
            assert second.entries[key].to_dict() == sim.to_dict()

    def test_journal_and_cache_share_job_identity(self, tmp_path):
        engine = fresh_engine()
        spec = tiny_spec()
        run_campaign(spec, engine=engine, journal=tmp_path / "c.jsonl")
        journal = CampaignJournal(tmp_path / "c.jsonl")
        for key, sim_job in spec.unique_jobs().items():
            # The journal key is exactly the cache key...
            assert key in journal.entries
            # ...and the cached result equals the journaled one.
            assert engine.cache.get(sim_job).to_dict() == \
                journal.entries[key].to_dict()

    def test_replay_warms_the_cache(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, engine=fresh_engine(),
                     journal=tmp_path / "warm.jsonl")
        cold_engine = fresh_engine()
        job_mod.reset_run_count()
        run_campaign(spec, engine=cold_engine,
                     journal=tmp_path / "warm.jsonl")
        assert job_mod.run_count() == 0
        for sim_job in spec.unique_jobs().values():
            assert cold_engine.cache.get(sim_job) is not None
