"""Unit tests for the differential scenario/config fuzzer."""

import json

import pytest

from repro.pipeline.result import SimResult
from repro.workloads import catalog, fuzzer, ingest
from repro.workloads.fuzzer import (CornerRegistry, FuzzOutcome, FuzzSpec,
                                    classify_corners, run_differential,
                                    run_fuzz, sample_specs)

# ---------------------------------------------------------------------------
# Spec grammar
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("spec", (
    FuzzSpec(workload="gcc", predictor="vtage"),
    FuzzSpec(workload="scenario-c3-e50-l10", predictor="fcm",
             recovery="reissue", fpc=False, entries=512, n_uops=777,
             warmup=33),
    FuzzSpec(workload="ingest-demo-0123456789", predictor="none",
             recovery="squash", entries=1024, n_uops=3000, warmup=0),
))
def test_spec_line_round_trip(spec):
    assert FuzzSpec.parse(spec.line()) == spec


@pytest.mark.parametrize("line", (
    "",                                               # everything missing
    "workload=gcc",                                   # most fields missing
    "workload=gcc,predictor",                         # token without '='
    "workload=gcc,predictor=lvp,recovery=squash,"
    "fpc=1,entries=8192,uops=notanint,warmup=0",      # non-numeric
))
def test_spec_parse_rejects_malformed(line):
    with pytest.raises(ValueError):
        FuzzSpec.parse(line)


def test_spec_parse_tolerates_whitespace():
    spec = FuzzSpec(workload="gcc", predictor="lvp")
    padded = spec.line().replace(",", " , ")
    assert FuzzSpec.parse(padded) == spec


# ---------------------------------------------------------------------------
# Sampling
# ---------------------------------------------------------------------------


def test_sample_specs_deterministic():
    a = sample_specs(20, seed=42)
    b = sample_specs(20, seed=42)
    assert a == b
    assert len(a) == 20
    assert sample_specs(20, seed=43) != a


def test_sample_specs_names_are_resolvable():
    for spec in sample_specs(40, seed=7):
        assert catalog.known_workload(spec.workload), spec.workload
        assert spec.warmup < spec.n_uops
        assert 600 <= spec.n_uops <= 3000


def test_sample_specs_honors_pools():
    specs = sample_specs(15, seed=1, workloads=("gcc", "gzip"),
                         predictors=("lvp", "vtage"))
    assert {s.workload for s in specs} <= {"gcc", "gzip"}
    assert {s.predictor for s in specs} <= {"lvp", "vtage"}


def test_sample_specs_includes_ingested(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
    catalog.clear_trace_cache()
    from repro.workloads.store import default_trace_store
    text = "".join(f"{0x80000000 + 4 * i:08x} {0x113:08x} addi a0,a0,1\n"
                   for i in range(32))
    _, report = ingest.ingest_text(text, "pool.log", default_trace_store())
    names = {s.workload for s in sample_specs(200, seed=3)}
    assert report.name in names
    catalog.clear_trace_cache()


# ---------------------------------------------------------------------------
# Corner classification (synthetic outcomes — no simulation)
# ---------------------------------------------------------------------------


def _outcome(**ref_fields) -> FuzzOutcome:
    spec = FuzzSpec(workload="gcc", predictor="vtage")
    ref = SimResult(**ref_fields)
    return FuzzOutcome(spec=spec, results={"legacy": ref})


def test_classify_perfect_accuracy():
    out = _outcome(vp_eligible=300, vp_predicted=80, vp_used=60,
                   vp_wrong_used=0)
    kinds = {k for k, _ in classify_corners(out)}
    assert "perfect-accuracy" in kinds
    assert "divergence" not in kinds


def test_classify_zero_coverage():
    out = _outcome(vp_eligible=200, vp_predicted=150, vp_used=0)
    assert {k for k, _ in classify_corners(out)} == {"zero-coverage"}


def test_classify_saturated_coverage():
    out = _outcome(vp_eligible=100, vp_predicted=100, vp_used=96,
                   vp_wrong_used=1)
    assert {k for k, _ in classify_corners(out)} == {"saturated-coverage"}


def test_classify_fallback_only():
    out = _outcome(vp_eligible=10)
    out.fallback = "unsupported-predictor:FCMPredictor"
    corners = dict(classify_corners(out))
    assert corners["fallback-only"] == "unsupported-predictor:FCMPredictor"


def test_classify_divergence_names_fields():
    out = _outcome(cycles=100, vp_used=5)
    out.results["kernel"] = SimResult(cycles=101, vp_used=5)
    out.divergent = True
    out.divergent_legs = ["kernel"]
    corners = dict(classify_corners(out))
    assert "cycles" in corners["divergence"]
    assert "kernel" in corners["divergence"]


def test_classify_quiet_outcome_has_no_corners():
    out = _outcome(vp_eligible=300, vp_predicted=100, vp_used=30,
                   vp_wrong_used=4)
    assert classify_corners(out) == []


# ---------------------------------------------------------------------------
# Corner registry
# ---------------------------------------------------------------------------


def test_registry_register_and_dedup(tmp_path):
    reg = CornerRegistry(tmp_path / "corners.json")
    spec = FuzzSpec(workload="gcc", predictor="vtage")
    name = reg.register("perfect-accuracy", "60 used", spec, seed=9)
    assert name == "corner-perfect-accuracy-vtage-squash"
    # Same spec again: same name, no serial bump.
    assert reg.register("perfect-accuracy", "60 used", spec, seed=9) == name
    # Different spec, same base name: serial suffix.
    other = FuzzSpec(workload="gzip", predictor="vtage")
    second = reg.register("perfect-accuracy", "70 used", other, seed=9)
    assert second == f"{name}-2"
    data = json.loads((tmp_path / "corners.json").read_text())
    assert data["corners"][name]["workload"] == "gcc"
    assert data["corners"][second]["spec"] == other.line()
    assert FuzzSpec.parse(data["corners"][name]["spec"]) == spec


def test_registry_tolerates_corrupt_file(tmp_path):
    path = tmp_path / "corners.json"
    path.write_text("{not json")
    reg = CornerRegistry(path)
    assert reg.load()["corners"] == {}
    spec = FuzzSpec(workload="gcc", predictor="lvp")
    reg.register("zero-coverage", "none confident", spec, seed=1)
    assert spec.line() in path.read_text()


# ---------------------------------------------------------------------------
# Differential driver
# ---------------------------------------------------------------------------


def test_run_differential_three_equal_legs():
    spec = FuzzSpec(workload="gcc", predictor="vtage", n_uops=900,
                    warmup=200)
    outcome = run_differential(spec)
    assert set(outcome.results) == set(fuzzer.LEGS)
    assert not outcome.divergent
    assert outcome.fallback is None
    assert outcome.results["python"] == outcome.results["legacy"]
    assert outcome.results["kernel"] == outcome.results["legacy"]


def test_run_differential_reports_fallback():
    spec = FuzzSpec(workload="gzip", predictor="fcm", n_uops=700,
                    warmup=100)
    outcome = run_differential(spec)
    assert not outcome.divergent
    assert outcome.fallback == "unsupported-predictor:FCMPredictor"
    assert "fallback-only" in {k for k, _ in outcome.corners}


def test_run_fuzz_reports_injected_divergence(monkeypatch, tmp_path):
    """A divergent leg must surface as a replayable spec line."""
    bad = FuzzSpec(workload="gcc", predictor="lvp", n_uops=800, warmup=100)

    def fake_differential(spec):
        out = FuzzOutcome(spec=spec, results={"legacy": SimResult(cycles=10)})
        if spec == bad:
            out.results["kernel"] = SimResult(cycles=11)
            out.divergent = True
            out.divergent_legs = ["kernel"]
        out.corners = classify_corners(out)
        return out

    monkeypatch.setattr(fuzzer, "run_differential", fake_differential)
    monkeypatch.setattr(fuzzer, "sample_specs",
                        lambda *a, **k: [FuzzSpec(workload="gcc",
                                                  predictor="vtage"),
                                         bad])
    lines = []
    summary = run_fuzz(2, seed=5, registry=CornerRegistry(tmp_path / "c.json"),
                       emit=lines.append)
    assert summary["ran"] == 2
    assert summary["divergences"] == [bad.line()]
    assert FuzzSpec.parse(summary["divergences"][0]) == bad
    assert any("DIVERGENCE" in line for line in lines)
    assert any("--replay" in line for line in lines)
    registered = json.loads((tmp_path / "c.json").read_text())["corners"]
    assert any(row["kind"] == "divergence" for row in registered.values())


def test_replay_prints_leg_comparison(capsys):
    spec = FuzzSpec(workload="gzip", predictor="lvp", n_uops=700, warmup=100)
    lines = []
    outcome = fuzzer.replay(spec.line(), emit=lines.append)
    assert not outcome.divergent
    assert sum("==" in line for line in lines) == len(fuzzer.LEGS)
