"""Generated docs are derived artifacts: drift fails here and in CI.

``docs/cli.md`` comes from the argparse trees, ``docs/predictors.md``
from the live predictor registry; ``repro.docs.check_docstrings`` gates
the public engine/predictor API.  All three are also enforced by the
``python -m repro.docs --check`` CI step.
"""

import sys
import types
from pathlib import Path

import pytest

from repro import docs
from repro.experiments.runner import PREDICTOR_NAMES

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestGenerated:
    @pytest.mark.parametrize("page", sorted(docs.PAGES))
    def test_checked_in_page_is_up_to_date(self, page):
        """`python -m repro.docs` output must match the checked-in files."""
        on_disk = (REPO_ROOT / "docs" / page).read_text()
        assert on_disk == docs.PAGES[page](), (
            f"docs/{page} drifted from the code; regenerate with "
            "`PYTHONPATH=src python -m repro.docs`"
        )

    def test_check_mode_passes_on_fresh_output(self, tmp_path, capsys):
        assert docs.main(["--output-dir", str(tmp_path)]) == 0
        assert docs.main(["--check", "--output-dir", str(tmp_path)]) == 0

    def test_check_mode_fails_on_drift(self, tmp_path, capsys):
        assert docs.main(["--output-dir", str(tmp_path)]) == 0
        (tmp_path / "cli.md").write_text("# stale\n")
        assert docs.main(["--check", "--output-dir", str(tmp_path)]) == 1

    def test_check_mode_fails_on_missing_page(self, tmp_path, capsys):
        assert docs.main(["--output-dir", str(tmp_path)]) == 0
        (tmp_path / "predictors.md").unlink()
        assert docs.main(["--check", "--output-dir", str(tmp_path)]) == 1


class TestCliCoverage:
    def test_reference_covers_every_subcommand(self):
        rendered = docs.generate_cli()
        for heading in (
            "## `repro`",
            "### `repro run`",
            "### `repro table`",
            "### `repro figure`",
            "### `repro campaign`",
            "#### `repro campaign run`",
            "#### `repro campaign resume`",
            "#### `repro campaign status`",
            "#### `repro campaign list`",
            "### `repro serve`",
            "### `repro submit`",
            "### `repro status`",
            "### `repro results`",
            "### `repro cache`",
            "### `repro list`",
            "## `python -m repro.experiments.reproduce`",
        ):
            assert heading in rendered, heading

    def test_reference_mentions_the_knobs(self):
        rendered = docs.generate_cli()
        for token in ("REPRO_JOBS", "REPRO_CACHE_DIR", "REPRO_CHECKPOINT_DIR",
                      "REPRO_SERVICE_SOCKET", "--checkpoint-dir", "--force",
                      "--render", "--backend", "--socket", "--journal",
                      "--no-wait"):
            assert token in rendered, token


class TestPredictorCoverage:
    def test_reference_covers_every_registered_name(self):
        rendered = docs.generate_predictors()
        for name in PREDICTOR_NAMES:
            assert f"## `{name}`" in rendered, name

    def test_reference_reads_live_instances(self):
        rendered = docs.generate_predictors()
        assert "`repro.core.vtage.VTAGEPredictor`" in rendered
        assert "gDiff+2D-Stride" in rendered


class TestDocstringGate:
    def test_engine_and_predictors_are_fully_documented(self):
        missing = docs.check_docstrings()
        assert missing == [], (
            "public definitions missing docstrings (the CI gate will "
            f"fail): {missing}"
        )

    def test_gate_actually_detects_gaps(self):
        # Sanity-check the walker against a module guaranteed to contain
        # an undocumented public function.
        module = types.ModuleType("repro_docs_gate_probe")
        exec("def undocumented(): pass", module.__dict__)
        sys.modules["repro_docs_gate_probe"] = module
        try:
            missing = docs.check_docstrings(("repro_docs_gate_probe",))
        finally:
            del sys.modules["repro_docs_gate_probe"]
        assert missing == ["repro_docs_gate_probe.undocumented"]
