"""Unit tests for the cluster plane: router, executor, TCP daemons.

These run everything *in-process* — shards are
:class:`~repro.engine.service.SimService` instances on background
threads (real TCP sockets, real spawn workers), the router is driven
directly — so the ``repro.engine.cluster`` line coverage the CI floor
demands comes from here, not from the subprocess-based integration
harness (a child process's execution is invisible to coverage).
"""

import asyncio
import threading

import pytest

from repro.engine import faults
from repro.engine.api import Engine
from repro.engine.cache import ResultCache
from repro.engine.client import (
    RetryPolicy,
    ServiceAuthError,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    wait_for_service,
)
from repro.engine.cluster import (
    ClusterExecutor,
    HashRing,
    ShardRouter,
    cluster_engine,
    resolve_shards,
)
from repro.engine.executors import SerialExecutor
from repro.engine.job import SimJob
from repro.engine.service import SimService, parse_address, parse_listen

SMALL = dict(n_uops=2000, warmup=1000)

JOBS = [SimJob.make(w, p, **SMALL)
        for p in ("lvp", "2dstride") for w in ("gzip", "gcc", "crafty")]


@pytest.fixture(scope="module")
def expected():
    """The local fault-free answer the cluster must match bit-for-bit."""
    engine = Engine(executor=SerialExecutor(), cache=ResultCache(None))
    return engine.run_jobs(JOBS)


class TcpShard:
    """One in-process cluster shard on a background thread."""

    def __init__(self, **kwargs):
        kwargs.setdefault("listen", "127.0.0.1:0")
        kwargs.setdefault("workers", 1)
        self.service = SimService(**kwargs)
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.error = None

    def _run(self):
        try:
            asyncio.run(self.service.serve_until_shutdown())
        except BaseException as exc:  # noqa: BLE001 - surfaced on enter
            self.error = exc

    @property
    def address(self):
        return self.service.listen_address

    def __enter__(self):
        self.thread.start()
        deadline = 60
        while self.service.listen_address is None and deadline:
            if self.error is not None:
                raise self.error
            threading.Event().wait(0.02)
            deadline -= 0.02
        wait_for_service(self.address, timeout=60,
                         token=self.service.token)
        return self

    def __exit__(self, *exc):
        try:
            with ServiceClient(self.address, timeout=10.0,
                               token=self.service.token) as client:
                client.shutdown()
        except ServiceError:
            pass
        self.thread.join(timeout=60)
        assert not self.thread.is_alive(), "shard failed to shut down"


class TestTcpTransport:
    def test_ping_reports_tcp_identity_and_protocol(self):
        with TcpShard() as shard:
            with ServiceClient(shard.address) as client:
                server = client.ping()
        assert server["transport"] == "tcp"
        assert server["address"].startswith("tcp://127.0.0.1:")
        assert server["auth"] is False

    def test_round_trip_matches_local_run(self, expected):
        with TcpShard() as shard:
            with ServiceClient(shard.address) as client:
                results = client.run_jobs(JOBS)
        assert results == expected

    def test_bad_token_is_a_typed_auth_error(self):
        with TcpShard(token="secret") as shard:
            with pytest.raises(ServiceAuthError):
                ServiceClient(shard.address, token="wrong").ping()
            with pytest.raises(ServiceAuthError):
                ServiceClient(shard.address).ping()  # missing entirely
            with ServiceClient(shard.address, token="secret") as client:
                assert client.ping()["auth"] is True

    def test_parse_address_and_listen(self):
        assert parse_address("tcp://h:70") == ("tcp", "h", 70)
        assert parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock")
        with pytest.raises(ValueError):
            parse_address("tcp://no-port")
        assert parse_listen("127.0.0.1:0") == ("127.0.0.1", 0)
        assert parse_listen("tcp://h:9") == ("h", 9)
        with pytest.raises(ValueError):
            parse_listen("9999")  # no host separator

    def test_metrics_op_shape(self):
        with TcpShard() as shard:
            with ServiceClient(shard.address) as client:
                client.run_jobs(JOBS[:2])
                metrics = client.metrics()
        assert metrics["shard"]["workers"] == 1
        assert metrics["queue"]["depth"] == 0
        assert metrics["cache"]["misses"] == 2
        assert metrics["cache"]["memory_entries"] == 2
        assert metrics["peers"] == {"configured": 0, "hits": 0,
                                    "misses": 0, "failures": 0}

    def test_lookup_op_answers_by_key_without_accounting(self):
        with TcpShard() as shard:
            with ServiceClient(shard.address) as client:
                [result] = client.run_jobs(JOBS[:1])
                before = client.metrics()["cache"]
                found = client.lookup([JOBS[0].content_key(), "nope"])
                after = client.metrics()["cache"]
        assert found == {JOBS[0].content_key(): result}
        assert (before["hits"], before["misses"]) == \
            (after["hits"], after["misses"])


class TestPeerFederation:
    def test_miss_is_filled_from_peer_cache(self, expected):
        with TcpShard() as upstream:
            with ServiceClient(upstream.address) as client:
                client.run_jobs(JOBS)
            with TcpShard(peers=[upstream.address]) as downstream:
                with ServiceClient(downstream.address) as client:
                    response = client.submit(JOBS)
                    metrics = client.metrics()
        assert response["summary"]["peer_hits"] == len(JOBS)
        assert response["summary"]["enqueued"] == 0
        assert [r for r in response["results"]] == \
            [r.to_dict() for r in expected]
        assert metrics["peers"]["hits"] == len(JOBS)

    def test_dead_peer_fails_open(self, expected):
        with TcpShard(peers=["tcp://127.0.0.1:9"]) as shard:  # discard port
            with ServiceClient(shard.address) as client:
                results = client.run_jobs(JOBS[:2])
                metrics = client.metrics()
        assert results == expected[:2]
        assert metrics["peers"]["failures"] >= 1


class TestShardRouter:
    def test_batch_is_bit_identical_and_routed_by_the_ring(self, expected):
        with TcpShard() as a, TcpShard() as b:
            router = ShardRouter([a.address, b.address])
            results = router.run_jobs(JOBS)
            groups = router.route(JOBS)
            status = router.status()
            router.close()
        assert results == expected
        assert sum(len(g) for g in groups.values()) == len(JOBS)
        # Execution landed exactly where the ring said it would, and no
        # key simulated twice cluster-wide.  (With only 6 keys the ring
        # may legitimately give one shard nothing — the guaranteed-
        # spread claim lives in the 36-key integration grid.)
        executed = {row["address"]: row["metrics"]["queue"]["stats"]["executed"]
                    for row in status["shards"]}
        assert executed == {shard: len(groups.get(shard, ()))
                            for shard in executed}
        assert sum(executed.values()) == len(JOBS)

    def test_duplicate_specs_submit_once_and_fan_out(self):
        with TcpShard() as a:
            router = ShardRouter([a.address])
            twice = [JOBS[0], JOBS[0]]
            results = router.run_jobs(twice)
            metrics = router.client(a.address).metrics()
            router.close()
        assert results[0] == results[1]
        assert metrics["queue"]["stats"]["executed"] == 1

    def test_dead_shard_fails_over_with_no_lost_jobs(self, expected):
        with TcpShard() as alive:
            router = ShardRouter(
                [alive.address, "tcp://127.0.0.1:9"],
                retry=RetryPolicy(attempts=2, base=0.01))
            results = router.run_jobs(JOBS)
            down = router.down
            status = router.status()
            router.close()
        assert results == expected
        assert list(down) == ["tcp://127.0.0.1:9"]
        assert router.stats["failovers"] == 1
        assert router.stats["rerouted_jobs"] >= 0
        assert any(row["down"] for row in status["shards"])

    def test_all_shards_down_is_a_typed_error(self):
        router = ShardRouter(["tcp://127.0.0.1:9", "tcp://127.0.0.1:10"],
                             retry=RetryPolicy(attempts=1))
        with pytest.raises(ServiceUnavailable, match="all 2"):
            router.run_jobs(JOBS[:2])

    def test_empty_batch_and_context_manager(self):
        with ShardRouter(["tcp://127.0.0.1:9"]) as router:
            assert router.run_jobs([]) == []

    def test_job_level_failure_propagates_not_failsover(self):
        bad = SimJob(workload="gzip", predictor="no-such-predictor",
                     n_uops=500, warmup=0)
        with TcpShard() as a:
            router = ShardRouter([a.address])
            with pytest.raises(ServiceError, match="job failed"):
                router.run_jobs([bad])
            assert not router.down  # the shard is fine; the job is not
            router.close()

    def test_resolve_shards_env_and_normalisation(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_SHARDS",
                           "127.0.0.1:7001, 127.0.0.1:7002")
        assert resolve_shards() == ["tcp://127.0.0.1:7001",
                                    "tcp://127.0.0.1:7002"]
        assert resolve_shards(["h:1"]) == ["tcp://h:1"]
        with pytest.raises(ServiceUnavailable, match="no cluster shards"):
            monkeypatch.setenv("REPRO_CLUSTER_SHARDS", "")
            ShardRouter()

    def test_status_reports_unreachable_shards_without_failing(self):
        router = ShardRouter(["tcp://127.0.0.1:9"])
        status = router.status(probe_timeout=0.5)
        [row] = status["shards"]
        assert row["down"] is False and "unreachable" in row

    def test_router_shutdown_stops_shards(self):
        shard = TcpShard().__enter__()
        try:
            router = ShardRouter([shard.address])
            acked = router.shutdown()
            assert acked == {shard.address: True}
        finally:
            shard.thread.join(timeout=60)
            assert not shard.thread.is_alive()


class TestClusterExecutor:
    def test_engine_over_cluster_matches_local(self, expected):
        with TcpShard() as a, TcpShard() as b:
            engine = cluster_engine([a.address, b.address])
            assert engine.executor.jobs == 2  # summed shard workers
            assert "cluster(2 shards" in engine.executor.describe()
            results = engine.run_jobs(JOBS)
        assert results == expected

    def test_unreachable_shard_is_dropped_at_construction(self):
        with TcpShard() as a:
            router = ShardRouter([a.address, "tcp://127.0.0.1:9"],
                                 retry=RetryPolicy(attempts=1))
            executor = ClusterExecutor(router)
            assert executor.jobs == 1
            assert router.down
            assert executor.run([]) == []
            router.close()

    def test_all_unreachable_raises(self):
        router = ShardRouter(["tcp://127.0.0.1:9"],
                             retry=RetryPolicy(attempts=1))
        with pytest.raises(ServiceUnavailable):
            ClusterExecutor(router)


class TestRouteFaults:
    """The ``cluster.route`` chaos site, driven in-process.

    (The chaos suite has the full shard-level fault matrix; these two
    live here so the router's fault branches count toward the module's
    coverage floor.)
    """

    @pytest.fixture(autouse=True)
    def clean_fault_state(self):
        faults.reset()
        yield
        faults.install_plan(None, export_env=True)
        faults.reset()

    def test_misroute_lands_on_a_live_shard_bit_identically(self, expected):
        with TcpShard() as a, TcpShard() as b:
            router = ShardRouter([a.address, b.address])
            faults.install_plan("cluster.route:misroute@every=1", seed=0)
            results = router.run_jobs(JOBS)
            router.close()
        assert results == expected  # correctness must not care where
        assert router.stats["misrouted_jobs"] == len(JOBS)
        assert not router.down

    def test_drop_forces_rebalance_without_killing_anything(self, expected):
        with TcpShard() as a, TcpShard() as b:
            router = ShardRouter([a.address, b.address])
            faults.install_plan("cluster.route:drop@1", seed=0)
            results = router.run_jobs(JOBS)
            router.close()
        assert results == expected
        assert len(router.down) == 1
        assert router.stats["failovers"] == 1


class TestRingEdgeCases:
    def test_empty_ring_raises_and_prefs_empty(self):
        ring = HashRing([])
        with pytest.raises(ServiceUnavailable):
            ring.shard_for("key")
        assert ring.preference("key") == []

    def test_add_remove_idempotent(self):
        ring = HashRing(["tcp://a:1"])
        ring.add("tcp://a:1")
        assert len(ring) == 1
        ring.remove("tcp://zzz:9")
        assert len(ring) == 1
