"""Unit tests for the branch substrate: TAGE, BTB, RAS, BranchUnit."""

import random

from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.tage import TAGEBranchPredictor, TAGEConfig, geometric_history_lengths
from repro.branch.unit import BranchUnit
from repro.isa.uop import MicroOp, OpClass
from repro.predictors.base import PredictionContext


class TestGeometricLengths:
    def test_monotone_increasing(self):
        lengths = geometric_history_lengths(4, 256, 12)
        assert lengths == tuple(sorted(set(lengths)))
        assert lengths[0] == 4
        assert lengths[-1] == 256

    def test_single_component(self):
        assert geometric_history_lengths(5, 100, 1) == (5,)


class TestTAGE:
    def test_learns_biased_branch(self):
        tage = TAGEBranchPredictor()
        ctx = PredictionContext()
        wrong = 0
        for i in range(2000):
            predicted, payload = tage.predict(0x4000, ctx)
            taken = True
            if predicted != taken and i > 100:
                wrong += 1
            tage.update(0x4000, taken, predicted, payload)
            ctx.push_branch(taken, 0x4000)
        assert wrong < 10

    def test_learns_alternating_pattern(self):
        tage = TAGEBranchPredictor()
        ctx = PredictionContext()
        wrong_late = 0
        for i in range(4000):
            taken = i % 2 == 0
            predicted, payload = tage.predict(0x4000, ctx)
            if predicted != taken and i > 2000:
                wrong_late += 1
            tage.update(0x4000, taken, predicted, payload)
            ctx.push_branch(taken, 0x4000)
        assert wrong_late < 40

    def test_learns_history_correlated_branch(self):
        """A branch equal to the conjunction of the two previous outcomes:
        invisible to bimodal, easy for tagged components."""
        tage = TAGEBranchPredictor()
        ctx = PredictionContext()
        rng = random.Random(3)
        recent = [False, False]
        wrong_late = 0
        total_late = 0
        for i in range(6000):
            lead = rng.random() < 0.5
            ctx.push_branch(lead, 0x100)
            recent = [recent[1], lead]
            taken = recent[0] and recent[1]
            predicted, payload = tage.predict(0x200, ctx)
            if i > 4000:
                total_late += 1
                if predicted != taken:
                    wrong_late += 1
            tage.update(0x200, taken, predicted, payload)
            ctx.push_branch(taken, 0x200)
        assert wrong_late / total_late < 0.10

    def test_random_branch_mispredict_rate_near_half(self):
        tage = TAGEBranchPredictor()
        ctx = PredictionContext()
        rng = random.Random(11)
        wrong = 0
        n = 4000
        for _ in range(n):
            taken = rng.random() < 0.5
            predicted, payload = tage.predict(0x4000, ctx)
            wrong += predicted != taken
            tage.update(0x4000, taken, predicted, payload)
            ctx.push_branch(taken, 0x4000)
        assert 0.3 < wrong / n < 0.6

    def test_total_entries_near_table2(self):
        cfg = TAGEConfig()
        assert 12_000 <= cfg.total_entries() <= 20_000


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=64, ways=2)
        assert btb.lookup(0x400) is None
        btb.install(0x400, 0x900)
        assert btb.lookup(0x400) == 0x900

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(entries=4, ways=2)
        # Find three PCs mapping to the same set by brute force.
        base = None
        same_set = []
        for pc in range(0, 4096, 4):
            btb.install(pc, pc + 1)
        # Regardless of mapping, capacity is 4: at most 4 survive.
        hits = sum(btb.lookup(pc) is not None for pc in range(0, 4096, 4))
        assert hits <= 4

    def test_update_refreshes_target(self):
        btb = BranchTargetBuffer(entries=64, ways=2)
        btb.install(0x400, 0x900)
        btb.install(0x400, 0xA00)
        assert btb.lookup(0x400) == 0xA00


class TestRAS:
    def test_push_pop_symmetry(self):
        ras = ReturnAddressStack(entries=8)
        for addr in (10, 20, 30):
            ras.push(addr)
        assert ras.pop() == 30
        assert ras.pop() == 20
        assert ras.pop() == 10
        assert ras.pop() is None

    def test_wraparound_corrupts_old_entries(self):
        ras = ReturnAddressStack(entries=4)
        for addr in range(10, 70, 10):  # depth 6 > 4 entries
            ras.push(addr)
        assert ras.pop() == 60
        assert ras.pop() == 50
        assert ras.pop() == 40
        assert ras.pop() == 30
        # The two oldest were overwritten by wraparound.
        assert ras.pop() != 20


def _branch_uop(seq, pc, taken, target, op=OpClass.BRANCH):
    return MicroOp(seq=seq, pc=pc, op_class=op, taken=taken, target=target)


class TestBranchUnit:
    def test_biased_loop_branch_converges(self):
        unit = BranchUnit()
        mispredicts = 0
        for i in range(1000):
            res = unit.process(_branch_uop(i, 0x400, True, 0x300))
            if i > 200 and res.direction_mispredict:
                mispredicts += 1
        assert mispredicts < 5

    def test_call_return_uses_ras(self):
        unit = BranchUnit()
        mispredicts = 0
        for i in range(200):
            unit.process(_branch_uop(2 * i, 0x400, True, 0x800, OpClass.CALL))
            res = unit.process(
                _branch_uop(2 * i + 1, 0x810, True, 0x404, OpClass.RET)
            )
            if i > 5 and res.direction_mispredict:
                mispredicts += 1
        assert mispredicts == 0

    def test_btb_learns_jump_target(self):
        unit = BranchUnit()
        first = unit.process(_branch_uop(0, 0x500, True, 0x900, OpClass.JUMP))
        assert first.target_mispredict
        second = unit.process(_branch_uop(1, 0x500, True, 0x900, OpClass.JUMP))
        assert not second.target_mispredict

    def test_history_updated_only_by_conditional_branches(self):
        unit = BranchUnit()
        before = unit.context.ghist_length
        unit.process(_branch_uop(0, 0x500, True, 0x900, OpClass.JUMP))
        assert unit.context.ghist_length == before
        unit.process(_branch_uop(1, 0x504, True, 0x900, OpClass.BRANCH))
        assert unit.context.ghist_length == before + 1
