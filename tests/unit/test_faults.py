"""The deterministic fault plane: spec grammar, triggers, activation.

The contract under test is *determinism*: a plan is a pure function of
(spec, seed, per-site hit counters) — the same plan against the same
operation sequence fires at exactly the same points, every run, in every
process.  That is what makes a chaos failure in CI reproducible locally
with one environment variable.
"""

import errno
import json

import pytest

from repro.engine import faults
from repro.engine.faults import (
    SITES,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedFault,
)


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    """No plan leaks in or out of any test."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    monkeypatch.delenv(faults.FAULTS_SEED_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestSpecGrammar:
    def test_single_rule_round_trips(self):
        plan = FaultPlan.parse("journal.write:torn@3")
        assert plan.to_spec() == "journal.write:torn@3"
        assert plan.rules[0].when == (3,)

    def test_multi_rule_spec_with_args_and_triggers(self):
        spec = ("worker.execute:slow:0.01@every=2;"
                "service.send:drop@1,4;"
                "cache.write:enospc@p=0.5")
        plan = FaultPlan.parse(spec, seed=7)
        assert len(plan.rules) == 3
        assert plan.seed == 7
        assert plan.rules[0].arg == 0.01
        assert plan.rules[0].every == 2
        assert plan.rules[1].when == (1, 4)
        assert plan.rules[2].prob == 0.5

    def test_first_n_trigger_expands_to_hit_numbers(self):
        plan = FaultPlan.parse("shm.attach:fail@first=3")
        assert plan.rules[0].when == (1, 2, 3)

    def test_no_trigger_means_always(self):
        plan = FaultPlan.parse("shm.attach:fail")
        assert all(plan.check("shm.attach") for _ in range(5))

    @pytest.mark.parametrize("bad", [
        "",                          # no rules
        "nosuchsite:crash@1",        # unknown site
        "journal.write:explode@1",   # unknown action for the site
        "journal.write:torn@zero",   # unparseable trigger
        "journal.write:torn@every=0",
        "journal.write:torn@p=1.5",
        "journal.write:torn@0",      # hit numbers are 1-based
        "journal.write",             # no action
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(bad)

    def test_every_known_site_action_pair_parses(self):
        for site, actions in SITES.items():
            for action in actions:
                plan = FaultPlan.parse(f"{site}:{action}@1")
                assert plan.rules[0].site == site

    def test_plan_file_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "seed": 42,
            "rules": [
                {"site": "journal.write", "action": "torn", "trigger": "2"},
                {"site": "worker.execute", "action": "slow", "arg": 0.01},
            ],
        }))
        plan = FaultPlan.parse(f"@{path}")
        assert plan.seed == 42
        assert plan.rules[0].when == (2,)
        assert plan.rules[1].arg == 0.01

    def test_bad_plan_file_raises(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json")
        with pytest.raises(FaultSpecError):
            FaultPlan.from_file(path)
        with pytest.raises(FaultSpecError):
            FaultPlan.from_file(tmp_path / "missing.json")


class TestTriggers:
    def test_hit_number_trigger_counts_per_site(self):
        plan = FaultPlan.parse("journal.write:torn@2")
        assert plan.check("journal.write") is None
        assert plan.check("cache.write") is None   # separate counter
        rule = plan.check("journal.write")
        assert rule is not None and rule.action == "torn"
        assert plan.check("journal.write") is None  # fires exactly once

    def test_every_n_trigger(self):
        plan = FaultPlan.parse("service.send:drop@every=3")
        fired = [plan.check("service.send") is not None for _ in range(9)]
        assert fired == [False, False, True] * 3

    def test_probabilistic_trigger_is_seed_deterministic(self):
        a = FaultPlan.parse("cache.write:error@p=0.5", seed=1)
        b = FaultPlan.parse("cache.write:error@p=0.5", seed=1)
        pattern_a = [a.check("cache.write") is not None for _ in range(64)]
        pattern_b = [b.check("cache.write") is not None for _ in range(64)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)
        c = FaultPlan.parse("cache.write:error@p=0.5", seed=2)
        pattern_c = [c.check("cache.write") is not None for _ in range(64)]
        assert pattern_c != pattern_a  # a different seed, a different run

    def test_probability_extremes(self):
        never = FaultRule(site="x", action="y", prob=1e-12)
        always = FaultRule(site="x", action="y", prob=1.0)
        assert not any(never.matches(h, seed=0) for h in range(1, 200))
        assert all(always.matches(h, seed=0) for h in range(1, 200))

    def test_counters_advance_even_without_matching_rules(self):
        plan = FaultPlan.parse("journal.write:torn@1")
        plan.check("store.read")
        plan.check("store.read")
        assert plan.counts["store.read"] == 2
        assert plan.fired.get("store.read") is None


class TestActivation:
    def test_no_plan_means_fire_returns_none(self):
        assert faults.fire("journal.write") is None

    def test_env_spec_activates_on_first_fire(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "shm.attach:fail@1")
        faults.reset()
        assert faults.fire("shm.attach") is not None
        assert faults.fire("shm.attach") is None

    def test_env_seed_feeds_probabilistic_rules(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "shm.attach:fail@p=0.5")
        monkeypatch.setenv(faults.FAULTS_SEED_ENV, "9")
        faults.reset()
        assert faults.active_plan().seed == 9

    def test_bad_env_spec_warns_once_and_disables(self, monkeypatch, capsys):
        monkeypatch.setenv(faults.FAULTS_ENV, "not a spec")
        faults.reset()
        assert faults.fire("journal.write") is None
        assert faults.fire("journal.write") is None
        err = capsys.readouterr().err
        assert err.count("ignoring") == 1

    def test_install_plan_and_reset(self):
        previous = faults.install_plan("journal.write:torn@1")
        assert previous is None
        assert faults.fire("journal.write") is not None
        faults.install_plan(None)
        assert faults.fire("journal.write") is None

    def test_export_env_mirrors_spec_for_spawned_workers(self, monkeypatch):
        import os

        faults.install_plan("shm.attach:fail@2", seed=5, export_env=True)
        assert os.environ[faults.FAULTS_ENV] == "shm.attach:fail@2"
        assert os.environ[faults.FAULTS_SEED_ENV] == "5"
        faults.install_plan(None, export_env=True)
        assert faults.FAULTS_ENV not in os.environ


class TestActionHelpers:
    def test_io_error_maps_enospc_and_eio(self):
        enospc = faults.io_error(
            FaultRule(site="s", action="enospc"), "store.write")
        torn = faults.io_error(
            FaultRule(site="s", action="torn"), "journal.write")
        assert enospc.errno == errno.ENOSPC
        assert torn.errno == errno.EIO

    def test_worker_error_directive_raises(self):
        with pytest.raises(InjectedFault):
            faults.apply_worker_fault({"action": "error", "arg": None})

    def test_fatal_directives_degrade_when_not_allowed(self):
        # crash/hang must not kill a batch-pool worker: they degrade to
        # a raised error instead (the pool cannot survive a dead worker).
        for action in ("crash", "hang"):
            with pytest.raises(InjectedFault):
                faults.apply_worker_fault({"action": action, "arg": None},
                                          allow_fatal=False)

    def test_slow_directive_returns(self):
        faults.apply_worker_fault({"action": "slow", "arg": 0.001})
