"""Checkpoint journals: crash tolerance, kill/resume result equality."""

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.engine import faults
from repro.engine import job as job_mod
from repro.engine.api import Engine
from repro.engine.cache import ResultCache
from repro.engine.campaign import CampaignSpec, run_campaign
from repro.engine.checkpoint import (
    CHECKPOINT_DIR_ENV,
    CampaignJournal,
    JournalError,
    default_checkpoint_dir,
    read_journal_snapshot,
)
from repro.engine.executors import PoolExecutor, SerialExecutor
from repro.engine.job import SimJob, execute_job
from repro.experiments.campaigns import figure4_campaign

TINY = {"n_uops": 1500, "warmup": 800}

#: 2 predictors x 3 workloads = 6 unique jobs (no baseline block so the
#: counts below stay obvious).
SPEC = CampaignSpec.make(
    "ck-grid",
    {"predictor": ["lvp", "vtage"], "workload": ["gzip", "crafty", "vpr"]},
    base=TINY,
)


def fresh_engine(workers: int = 1) -> Engine:
    executor = SerialExecutor() if workers <= 1 else PoolExecutor(workers)
    return Engine(executor, ResultCache())


class _Abort(Exception):
    """Stands in for the operator's ctrl-C / the scheduler's kill."""


def run_until(spec, journal_path, n_engine_jobs, workers=1, chunk_size=1):
    """Run a campaign and abort once *n_engine_jobs* completed live."""
    seen = 0

    def progress(event):
        nonlocal seen
        if event.source == "engine":
            seen += 1
            if seen >= n_engine_jobs:
                raise _Abort

    with pytest.raises(_Abort):
        run_campaign(spec, engine=fresh_engine(workers),
                     journal=journal_path, chunk_size=chunk_size,
                     progress=progress)


def journal_payload(path) -> dict:
    """Journal entries as {key: result-dict} for equality comparisons."""
    journal = CampaignJournal(path)
    return {k: r.to_dict() for k, r in journal.entries.items()}


# ---------------------------------------------------------------------------
# Journal load/recovery mechanics.
# ---------------------------------------------------------------------------

class TestJournalRecovery:
    @pytest.fixture()
    def populated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        run_campaign(SPEC, engine=fresh_engine(), journal=path)
        return path

    def test_roundtrip(self, populated):
        journal = CampaignJournal(populated)
        assert journal.header.campaign == "ck-grid"
        assert journal.header.key == SPEC.campaign_key()
        assert journal.header.total == 6
        assert journal.done == 6
        assert journal.corrupt_lines == 0

    def test_torn_final_line_is_dropped_and_truncated(self, populated):
        with open(populated, "ab") as fh:
            fh.write(b'{"key": "half-wri')
        journal = CampaignJournal(populated)
        assert journal.done == 6
        assert journal.corrupt_lines == 1
        # Resume appends after truncating the torn tail; the file parses
        # cleanly again afterwards.
        journal.open(SPEC.header())
        extra_job = SimJob.make("gzip", "2dstride", **TINY)
        journal.record(extra_job, execute_job(extra_job))
        journal.close()
        reloaded = CampaignJournal(populated)
        assert reloaded.corrupt_lines == 0
        assert reloaded.done == 7

    def test_corrupt_interior_line_skips_one_job(self, populated):
        lines = populated.read_text().splitlines()
        lines[3] = '{"key": "oops", not json'
        populated.write_text("\n".join(lines) + "\n")
        journal = CampaignJournal(populated)
        assert journal.corrupt_lines == 1
        assert journal.done == 5
        # Resume re-runs exactly the lost job and restores the full set.
        job_mod.reset_run_count()
        result = run_campaign(SPEC, engine=fresh_engine(), journal=populated)
        assert job_mod.run_count() == 1
        assert result.stats == {"total": 6, "from_journal": 5,
                                "executed": 1, "cache_hits": 0}

    def test_unreadable_header_rotates_to_corrupt(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("this was never a journal\n")
        result = run_campaign(SPEC, engine=fresh_engine(), journal=path)
        assert result.stats["executed"] == 6
        assert (tmp_path / "j.jsonl.corrupt").is_file()
        assert CampaignJournal(path).done == 6

    def test_mismatched_campaign_refused_then_forced(self, populated):
        other = CampaignSpec.make(
            "other", {"predictor": ["lvp"], "workload": ["gzip"]},
            base={"n_uops": 1600, "warmup": 800},
        )
        with pytest.raises(JournalError, match="ck-grid"):
            run_campaign(other, engine=fresh_engine(), journal=populated)
        result = run_campaign(other, engine=fresh_engine(), journal=populated,
                              force=True)
        assert result.stats["executed"] == 1
        backup = populated.with_name(populated.name + ".bak")
        assert backup.is_file()
        assert CampaignJournal(backup).done == 6

    def test_second_writer_is_refused(self, populated):
        """Single-writer rule: concurrent truncate-and-append from two
        processes would destroy fsynced records, so the second open fails."""
        first = CampaignJournal(populated)
        first.open(SPEC.header())
        second = CampaignJournal(populated)
        try:
            with pytest.raises(JournalError, match="another process"):
                second.open(SPEC.header())
        finally:
            first.close()
        # Once the first writer is done, opening succeeds again.
        third = CampaignJournal(populated)
        third.open(SPEC.header())
        third.close()

    def test_force_rotation_never_clobbers_earlier_backups(self, tmp_path):
        path = tmp_path / "j.jsonl"
        specs = [
            CampaignSpec.make(f"gen{i}", {"predictor": ["lvp"],
                                          "workload": ["gzip"]},
                              base={"n_uops": 1500 + i, "warmup": 800})
            for i in range(3)
        ]
        run_campaign(specs[0], engine=fresh_engine(), journal=path)
        run_campaign(specs[1], engine=fresh_engine(), journal=path, force=True)
        run_campaign(specs[2], engine=fresh_engine(), journal=path, force=True)
        backups = sorted(p.name for p in tmp_path.glob("j.jsonl.bak*"))
        assert backups == ["j.jsonl.bak", "j.jsonl.bak2"]
        assert CampaignJournal(tmp_path / "j.jsonl.bak").header.campaign == "gen0"
        assert CampaignJournal(tmp_path / "j.jsonl.bak2").header.campaign == "gen1"

    def test_header_is_first_line(self, populated):
        first = json.loads(populated.read_text().splitlines()[0])
        assert first == {"format": 1, "campaign": "ck-grid",
                         "key": SPEC.campaign_key(), "total": 6}

    def test_default_checkpoint_dir_reads_the_environment(self, monkeypatch):
        monkeypatch.delenv(CHECKPOINT_DIR_ENV, raising=False)
        assert default_checkpoint_dir() is None
        monkeypatch.setenv(CHECKPOINT_DIR_ENV, "runs")
        assert str(default_checkpoint_dir()) == "runs"


# ---------------------------------------------------------------------------
# Kill mid-run, resume, assert result-set equality (the ISSUE acceptance).
# ---------------------------------------------------------------------------

class TestKillResume:
    @pytest.fixture(scope="class")
    def uninterrupted(self):
        result = run_campaign(SPEC, engine=fresh_engine())
        return {k: r.to_dict() for k, r in result.results_by_key.items()}

    def test_serial_kill_at_half_resumes_bit_identical(self, tmp_path,
                                                       uninterrupted):
        path = tmp_path / "serial.jsonl"
        run_until(SPEC, path, n_engine_jobs=3)
        assert CampaignJournal(path).done == 3

        job_mod.reset_run_count()
        resumed = run_campaign(SPEC, engine=fresh_engine(), journal=path)
        assert job_mod.run_count() == 3  # only the missing half ran
        assert resumed.stats["from_journal"] == 3
        assert {k: r.to_dict() for k, r in resumed.results_by_key.items()} \
            == uninterrupted
        assert journal_payload(path) == uninterrupted

    def test_pool_kill_between_chunks_resumes_bit_identical(self, tmp_path,
                                                            uninterrupted):
        path = tmp_path / "pool.jsonl"
        run_until(SPEC, path, n_engine_jobs=2, workers=2, chunk_size=2)
        assert CampaignJournal(path).done == 2

        resumed = run_campaign(SPEC, engine=fresh_engine(2), journal=path,
                               chunk_size=2)
        assert resumed.stats["from_journal"] == 2
        assert resumed.stats["executed"] == 4
        assert {k: r.to_dict() for k, r in resumed.results_by_key.items()} \
            == uninterrupted
        assert journal_payload(path) == uninterrupted

    def test_sigkill_mid_campaign_resumes_bit_identical(self, tmp_path,
                                                        uninterrupted):
        """A real SIGKILL — no atexit, no finally — mid-campaign."""
        path = tmp_path / "killed.jsonl"
        script = textwrap.dedent(f"""
            import os, signal
            from repro.engine.api import Engine
            from repro.engine.cache import ResultCache
            from repro.engine.campaign import CampaignSpec, run_campaign
            from repro.engine.executors import SerialExecutor

            spec = CampaignSpec.make(
                "ck-grid",
                {{"predictor": ["lvp", "vtage"],
                  "workload": ["gzip", "crafty", "vpr"]}},
                base={TINY!r},
            )

            def progress(event):
                if event.done >= 3:
                    os.kill(os.getpid(), signal.SIGKILL)

            run_campaign(spec, engine=Engine(SerialExecutor(), ResultCache()),
                         journal={str(path)!r}, chunk_size=1,
                         progress=progress)
        """)
        env = dict(os.environ, PYTHONPATH="src")
        env.pop("REPRO_JOBS", None)
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              cwd=os.path.join(os.path.dirname(__file__),
                                               "..", ".."),
                              capture_output=True, timeout=300)
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        assert CampaignJournal(path).done == 3

        resumed = run_campaign(SPEC, engine=fresh_engine(), journal=path)
        assert resumed.stats["from_journal"] == 3
        assert {k: r.to_dict() for k, r in resumed.results_by_key.items()} \
            == uninterrupted

    def test_figure4_campaign_kill_resume_matches_uninterrupted(self, tmp_path):
        """The ISSUE acceptance criterion, on a reduced Figure 4 grid:
        killed at ~50 %, resumed, bit-identical to the uninterrupted run."""
        spec = figure4_campaign(workloads=("gzip", "crafty"),
                                n_uops=1500, warmup=800)
        total = len(spec.unique_jobs())  # 4 schemes x 2 fpc x 2 wl + 2 base
        assert total == 18

        clean = run_campaign(spec, engine=fresh_engine())
        golden = {k: r.to_dict() for k, r in clean.results_by_key.items()}

        path = tmp_path / "fig4.jsonl"
        run_until(spec, path, n_engine_jobs=total // 2)
        assert CampaignJournal(path).done == total // 2

        resumed = run_campaign(spec, engine=fresh_engine(), journal=path)
        assert resumed.stats["from_journal"] == total // 2
        assert resumed.stats["executed"] == total - total // 2
        assert {k: r.to_dict() for k, r in resumed.results_by_key.items()} \
            == golden
        assert journal_payload(path) == golden


# ---------------------------------------------------------------------------
# Meta records and lock-free snapshot reads (the failover-replay substrate).
# ---------------------------------------------------------------------------

class TestMetaAndSnapshot:
    @pytest.fixture(autouse=True)
    def clean_fault_state(self):
        faults.reset()
        yield
        faults.install_plan(None, export_env=True)
        faults.reset()

    @pytest.fixture()
    def service_journal(self, tmp_path):
        """A journal shaped like a shard's: header, meta, two results."""
        path = tmp_path / "shard.journal"
        journal = CampaignJournal(path)
        journal.open(SPEC.header())
        journal.record_meta({"kind": "membership",
                             "address": "tcp://127.0.0.1:7101", "epoch": 3})
        for workload in ("gzip", "crafty"):
            job = SimJob.make(workload, "lvp", **TINY)
            journal.record(job, execute_job(job))
        journal.close()
        return path

    def test_meta_records_round_trip_without_counting_as_jobs(
            self, service_journal):
        journal = CampaignJournal(service_journal)
        assert journal.meta == [{"kind": "membership",
                                 "address": "tcp://127.0.0.1:7101",
                                 "epoch": 3}]
        assert journal.done == 2
        assert journal.corrupt_lines == 0

    def test_snapshot_matches_loader_and_counts_duplicates(
            self, service_journal):
        job = SimJob.make("gzip", "lvp", **TINY)
        with CampaignJournal(service_journal) as journal:
            journal.open(SPEC.header())
            journal.record(job, execute_job(job))  # duplicate key
        snapshot = read_journal_snapshot(service_journal)
        assert snapshot["header"].key == SPEC.campaign_key()
        assert snapshot["meta"][0]["epoch"] == 3
        assert len(snapshot["entries"]) == 2     # keys dedupe...
        assert snapshot["records"] == 3          # ...records count raw lines
        assert snapshot["corrupt"] == 0
        loaded = CampaignJournal(service_journal)
        assert {k: r.to_dict() for k, r in snapshot["entries"].items()} \
            == {k: r.to_dict() for k, r in loaded.entries.items()}

    def test_snapshot_never_takes_the_writer_lock(self, service_journal):
        writer = CampaignJournal(service_journal)
        writer.open(SPEC.header())  # holds the flock
        try:
            snapshot = read_journal_snapshot(service_journal)
            assert len(snapshot["entries"]) == 2
        finally:
            writer.close()

    def test_snapshot_tolerates_torn_tail_and_junk(self, service_journal):
        with open(service_journal, "ab") as fh:
            fh.write(b"not json at all\n")
            fh.write(b'{"key": "half-wri')
        snapshot = read_journal_snapshot(service_journal)
        assert len(snapshot["entries"]) == 2
        assert snapshot["corrupt"] == 2

    def test_snapshot_of_missing_file_is_empty_not_fatal(self, tmp_path):
        snapshot = read_journal_snapshot(tmp_path / "never-existed.journal")
        assert snapshot["entries"] == {}
        assert snapshot["corrupt"] == 1

    def test_replay_torn_fault_halves_in_memory_only(self, service_journal):
        before = service_journal.read_bytes()
        faults.install_plan("journal.replay:torn@1", seed=0)
        torn = read_journal_snapshot(service_journal)
        faults.install_plan(None)
        assert len(torn["entries"]) < 2
        # The on-disk file is untouched: its owner may come back for it.
        assert service_journal.read_bytes() == before
        assert len(read_journal_snapshot(service_journal)["entries"]) == 2
