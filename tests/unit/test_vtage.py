"""Unit tests for the VTAGE predictor (Section 6)."""

import pytest

from repro.core.confidence import ConfidencePolicy
from repro.core.vtage import PAPER_HISTORY_LENGTHS, VTAGEPredictor
from repro.predictors.base import PredictionContext


def make_vtage(**kwargs):
    defaults = dict(base_entries=1024, tagged_entries=128,
                    confidence=ConfidencePolicy())
    defaults.update(kwargs)
    return VTAGEPredictor(**defaults)


class TestVTAGEStructure:
    def test_paper_history_lengths_geometric(self):
        assert PAPER_HISTORY_LENGTHS == (2, 4, 8, 16, 32, 64)
        for a, b in zip(PAPER_HISTORY_LENGTHS, PAPER_HISTORY_LENGTHS[1:]):
            assert b == 2 * a

    def test_tag_widths_are_12_plus_rank(self):
        v = VTAGEPredictor(base_entries=8192, tagged_entries=1024)
        assert [c.tag_bits for c in v.components] == [13, 14, 15, 16, 17, 18]

    def test_storage_matches_table1(self):
        v = VTAGEPredictor(base_entries=8192, tagged_entries=1024)
        assert v.storage_kb() == pytest.approx(68.6 + 64.1, abs=0.1)

    def test_rejects_unsorted_history_lengths(self):
        with pytest.raises(ValueError):
            make_vtage(history_lengths=(4, 2, 8))

    def test_rejects_non_power_of_two_entries(self):
        with pytest.raises(ValueError):
            make_vtage(base_entries=1000)


class TestVTAGEPrediction:
    def test_learns_constant_via_base(self):
        v = make_vtage()
        ctx = PredictionContext()
        hits = 0
        for _ in range(40):
            pred = v.lookup(0x1234, ctx)
            if pred.confident and pred.value == 42:
                hits += 1
            v.train(0x1234, 42, pred)
        assert hits > 25

    def test_learns_branch_correlated_values(self):
        """The signature VTAGE capability: values selected by recent branch
        outcomes, invisible to any per-instruction predictor."""
        v = make_vtage()
        ctx = PredictionContext()
        import random
        rng = random.Random(7)
        correct_confident = 0
        total_confident = 0
        for i in range(4000):
            taken = rng.random() < 0.5
            ctx.push_branch(taken, 0x400 + (i % 3) * 4)
            value = 111 if taken else 999  # value == f(last branch)
            pred = v.lookup(0x1234, ctx)
            if pred.confident:
                total_confident += 1
                if pred.value == value:
                    correct_confident += 1
            v.train(0x1234, value, pred)
        assert total_confident > 500
        assert correct_confident / total_confident > 0.98

    def test_captures_short_periodic_pattern_with_loop_branches(self):
        """Section 6: VTAGE 'can still capture short strided patterns' and
        control-flow independent patterns shorter than its history."""
        v = make_vtage()
        ctx = PredictionContext()
        pattern = [5, 6, 7, 8]
        hits = 0
        for i in range(3000):
            # A loop branch per iteration: position mod 4 is visible in the
            # low history bits.
            ctx.push_branch(i % 4 == 3, 0x500)
            value = pattern[i % 4]
            pred = v.lookup(0x1234, ctx)
            if pred.confident and pred.value == value:
                hits += 1
            v.train(0x1234, value, pred)
        assert hits > 1200

    def test_no_speculative_state(self):
        """VTAGE predicts back-to-back occurrences without any last-value
        tracking: lookups with no intervening training are identical."""
        v = make_vtage()
        ctx = PredictionContext()
        for _ in range(20):
            pred = v.lookup(0x777, ctx)
            v.train(0x777, 31337, pred)
        p1 = v.lookup(0x777, ctx)
        v.speculate(0x777, p1)
        p2 = v.lookup(0x777, ctx)
        assert p1.value == p2.value
        v.on_squash()  # must be a no-op
        assert v.lookup(0x777, ctx).value == p1.value


class TestVTAGEUpdate:
    def test_allocation_on_misprediction(self):
        v = make_vtage()
        ctx = PredictionContext(ghist=0b1010, ghist_length=4)
        pred = v.lookup(0x1234, ctx)
        v.train(0x1234, 55, pred)  # base allocates/learns
        pred = v.lookup(0x1234, ctx)
        v.train(0x1234, 77, pred)  # mispredict: tagged allocation
        allocated = any(
            any(tag != -1 for tag in comp.tags) for comp in v.components
        )
        assert allocated

    def test_value_replaced_only_when_confidence_zero(self):
        """Section 6 footnote: on a misprediction val is replaced if c == 0."""
        v = make_vtage()
        ctx = PredictionContext()
        for _ in range(20):
            pred = v.lookup(0x42, ctx)
            v.train(0x42, 1000, pred)
        # One misprediction: confidence resets but the value survives.
        pred = v.lookup(0x42, ctx)
        assert pred.value == 1000
        v.train(0x42, 2000, pred)
        assert v.lookup(0x42, ctx).value == 1000
        # Second misprediction at c == 0: now the value is replaced.
        pred = v.lookup(0x42, ctx)
        v.train(0x42, 2000, pred)
        assert v.lookup(0x42, ctx).value == 2000

    def test_unproven_tagged_entry_does_not_shadow_base(self):
        """A newly allocated tagged entry must not steal coverage from a
        confident base entry (the ITTAGE use-alt-on-NA rule)."""
        v = make_vtage()
        ctx = PredictionContext(ghist=0b110011, ghist_length=6)
        # Saturate the base on a constant.
        for _ in range(30):
            pred = v.lookup(0x88, ctx)
            v.train(0x88, 424242, pred)
        assert v.lookup(0x88, ctx).confident
        # A single outlier mispredicts and allocates a tagged entry.
        pred = v.lookup(0x88, ctx)
        v.train(0x88, 555, pred)
        # The stream resumes; coverage must return quickly (via base/alt),
        # not be held hostage by the unproven tagged entry.
        confident_again = 0
        for _ in range(30):
            pred = v.lookup(0x88, ctx)
            if pred.confident and pred.value == 424242:
                confident_again += 1
            v.train(0x88, 424242, pred)
        assert confident_again > 10
