"""Unit tests for the gDiff stacking predictor and SAg confidence."""

from repro.core.confidence import ConfidencePolicy
from repro.core.sag import SAgConfidenceBank
from repro.predictors.base import PredictionContext
from repro.predictors.gdiff import GDiffPredictor
from repro.predictors.lvp import LastValuePredictor

import pytest


class TestGDiff:
    def test_learns_global_stride_relation(self):
        """Producer at distance 1 with a constant offset: the classic gDiff
        pattern 'result = previous dynamic instruction's result + 10'."""
        gdiff = GDiffPredictor(entries=64, confidence=ConfidencePolicy())
        ctx = PredictionContext()
        hits = used = 0
        base = 0
        for i in range(400):
            base += 7
            # µop A produces `base`.
            pred_a = gdiff.lookup(0x10, ctx)
            gdiff.speculate(0x10, pred_a)
            gdiff.train(0x10, base, pred_a)
            # µop B produces base + 10, i.e. history[0] + 10.
            pred_b = gdiff.lookup(0x20, ctx)
            gdiff.speculate(0x20, pred_b)
            if pred_b is not None and pred_b.confident:
                used += 1
                hits += pred_b.value == (base + 10) & ((1 << 64) - 1)
            gdiff.train(0x20, base + 10, pred_b)
        assert used > 100
        assert hits == used

    def test_falls_back_to_backing_predictor(self):
        backing = LastValuePredictor(entries=64, confidence=ConfidencePolicy())
        gdiff = GDiffPredictor(backing=backing, entries=64,
                               confidence=ConfidencePolicy())
        ctx = PredictionContext()
        confident_const = 0
        for _ in range(60):
            pred = gdiff.lookup(0x30, ctx)
            gdiff.speculate(0x30, pred)
            if pred is not None and pred.confident and pred.value == 5:
                confident_const += 1
            gdiff.train(0x30, 5, pred)
        assert confident_const > 20  # the LVP side carries the constant

    def test_squash_drops_pending_repairs(self):
        gdiff = GDiffPredictor(entries=64)
        ctx = PredictionContext()
        for value in (1, 2, 3):
            pred = gdiff.lookup(0x40, ctx)
            gdiff.speculate(0x40, pred)
            gdiff.train(0x40, value, pred)
        pred = gdiff.lookup(0x40, ctx)
        gdiff.speculate(0x40, pred)  # in-flight occurrence, then squashed
        gdiff.on_squash()
        assert not gdiff._pending
        # Training afterwards must not crash or misalign slots.
        pred = gdiff.lookup(0x40, ctx)
        gdiff.speculate(0x40, pred)
        gdiff.train(0x40, 4, pred)
        assert gdiff._history()[0] == 4

    def test_storage_includes_backing(self):
        backing = LastValuePredictor(entries=64)
        alone = GDiffPredictor(entries=64).storage_bits()
        stacked = GDiffPredictor(backing=backing, entries=64).storage_bits()
        assert stacked == alone + backing.storage_bits()

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            GDiffPredictor(entries=100)
        with pytest.raises(ValueError):
            GDiffPredictor(history_depth=0)


class TestSAg:
    def test_confidence_requires_good_pattern(self):
        bank = SAgConfidenceBank(history_bits=4, counter_bits=2)
        key = 0x99
        assert not bank.is_confident(key)
        for _ in range(20):
            bank.record(key, True)
        assert bank.is_confident(key)

    def test_miss_resets_shared_counter(self):
        bank = SAgConfidenceBank(history_bits=4, counter_bits=2)
        key = 0x99
        for _ in range(20):
            bank.record(key, True)
        bank.record(key, False)
        # The all-ones pattern counter was reset by the miss; after the miss
        # the history changed too, so confidence must be gone.
        assert not bank.is_confident(key)

    def test_pattern_sharing_across_keys(self):
        """The SAg selling point: a key with no history of its own inherits
        the confidence its behaviour pattern earned elsewhere."""
        bank = SAgConfidenceBank(history_bits=3, counter_bits=2)
        # Key A establishes that the all-correct pattern is trustworthy.
        for _ in range(30):
            bank.record(0xA, True)
        # Key B reaches the same all-correct pattern with just 3 records.
        for _ in range(3):
            bank.record(0xB, True)
        assert bank.is_confident(0xB)

    def test_storage_model(self):
        bank = SAgConfidenceBank(history_bits=8, counter_bits=4)
        bits = bank.storage_bits(tracked_entries=1024)
        assert bits == 1024 * 8 + 256 * 4

    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            SAgConfidenceBank(history_bits=0)
        with pytest.raises(ValueError):
            SAgConfidenceBank(counter_bits=0)


class TestCLI:
    def test_list_command(self, capsys):
        from repro.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vtage-2dstride" in out
        assert "164.gzip" in out

    def test_table_command(self, capsys):
        from repro.cli import main
        assert main(["table", "1"]) == 0
        assert "120.8" in capsys.readouterr().out

    def test_run_command(self, capsys):
        from repro.cli import main
        code = main(["run", "vpr", "--predictor", "lvp",
                     "--uops", "2000", "--warmup", "1000"])
        assert code == 0
        assert "speedup" in capsys.readouterr().out

    def test_figure_command_small(self, capsys):
        from repro.cli import main
        code = main(["figure", "3", "--workloads", "vpr",
                     "--uops", "2000", "--warmup", "1000"])
        assert code == 0
        assert "Figure 3" in capsys.readouterr().out
