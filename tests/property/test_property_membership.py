"""Property tests: the membership CRDT behind self-healing gossip.

:class:`~repro.engine.cluster.MembershipView` is an eventually-consistent
state CRDT: merging is commutative, associative and idempotent, versions
``(epoch, beat)`` only move forward, and ties break toward ``down`` (a
death claim can only be outranked by a strictly newer heartbeat, never
argued away at the same version).  Those four algebraic facts are *why*
gossip converges regardless of delivery order, duplication or loss —
so Hypothesis drives randomized claim sequences through every merge
order and asserts the algebra directly, plus the convergence and
monotonicity corollaries the ISSUE names (monotone epochs, no
oscillation once claims stop).
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cluster import MembershipView, MemberState, probe_backoff

ADDRESSES = [f"tcp://10.0.0.{n}:7100" for n in range(4)]

_states = st.builds(
    MemberState,
    address=st.sampled_from(ADDRESSES),
    epoch=st.integers(min_value=0, max_value=4),
    beat=st.integers(min_value=0, max_value=6),
    status=st.sampled_from(["up", "down"]),
)

_claims = st.lists(_states, min_size=0, max_size=12)


def _view(claims) -> MembershipView:
    view = MembershipView()
    for claim in claims:
        view.observe(claim)
    return view


@given(a=_claims, b=_claims)
@settings(max_examples=80)
def test_merge_is_commutative(a, b):
    left = _view(a)
    left.merge(_view(b))
    right = _view(b)
    right.merge(_view(a))
    assert left == right


@given(a=_claims, b=_claims, c=_claims)
@settings(max_examples=60)
def test_merge_is_associative(a, b, c):
    ab_then_c = _view(a)
    ab_then_c.merge(_view(b))
    ab_then_c.merge(_view(c))
    bc = _view(b)
    bc.merge(_view(c))
    a_then_bc = _view(a)
    a_then_bc.merge(bc)
    assert ab_then_c == a_then_bc


@given(a=_claims, b=_claims)
@settings(max_examples=80)
def test_merge_is_idempotent(a, b):
    once = _view(a)
    once.merge(_view(b))
    twice = _view(a)
    other = _view(b)
    twice.merge(other)
    changed_again = twice.merge(other)
    assert changed_again == 0
    assert once == twice


@given(claims=_claims)
@settings(max_examples=80)
def test_observed_versions_are_monotone(claims):
    # A member's version never moves backwards, whatever claim order
    # arrives — the "monotone epochs" half of the convergence bar.
    view = MembershipView()
    floors = {}
    for claim in claims:
        view.observe(claim)
        state = view.get(claim.address)
        assert state.version >= floors.get(claim.address, (0, 0))
        floors[claim.address] = state.version


@given(claims=_claims)
@settings(max_examples=40)
def test_all_delivery_orders_converge_identically(claims):
    # Convergence: any gossip topology is some sequence of pairwise
    # merges, so every *order* of the same claim set must produce the
    # same view — and re-gossiping it afterwards must change nothing
    # (no oscillation once claims stop).
    views = []
    for order in itertools.islice(itertools.permutations(claims), 6):
        views.append(_view(order))
    for view in views[1:]:
        assert view == views[0]
    if views:
        assert views[0].merge(views[-1]) == 0


@given(state=_states)
@settings(max_examples=60)
def test_down_wins_version_ties(state):
    down_twin = MemberState(state.address, state.epoch, state.beat, "down")
    view = _view([state])
    view.merge(_view([down_twin]))
    assert view.get(state.address).status == "down"
    # ...and only a strictly newer heartbeat revives it.
    revived = MemberState(state.address, state.epoch, state.beat + 1, "up")
    view.observe(revived)
    assert view.get(state.address).status == "up"


@given(raw=st.dictionaries(st.text(max_size=8),
                           st.one_of(st.none(), st.integers(),
                                     st.text(max_size=8)),
                           max_size=5))
@settings(max_examples=60)
def test_malformed_wire_rows_never_raise(raw):
    # Gossip payloads cross process boundaries; junk rows are dropped,
    # not raised (a malformed peer must not crash the membership plane).
    state = MemberState.from_dict(raw)
    if state is not None:
        assert state.status in ("up", "down")
    view = MembershipView()
    view.merge({"members": [raw]})


@given(failures=st.integers(min_value=0, max_value=64))
@settings(max_examples=60)
def test_probe_backoff_is_monotone_and_capped(failures):
    assert probe_backoff(failures) <= probe_backoff(failures + 1) or \
        probe_backoff(failures) == probe_backoff(failures + 1)
    assert probe_backoff(failures) <= 30.0
    assert probe_backoff(0) == 0.5
