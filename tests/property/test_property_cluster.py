"""Property tests: the consistent-hash ring behind the cluster plane.

The :class:`~repro.engine.cluster.HashRing` carries two load-bearing
promises (see the module docstring there): keys spread *evenly* across
shards, and membership changes remap *only* the keys that touch the
changed shard.  Hypothesis drives randomized shard sets and membership
deltas; the key population is a fixed deterministic corpus (hashes of a
range) so the balance bounds are tight without being flaky.
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cluster import HashRing, normalize_shard

#: Deterministic key corpus standing in for job content keys (which are
#: themselves sha256 hex digests, so this is distribution-faithful).
KEYS = [hashlib.sha256(f"job-{i}".encode()).hexdigest()
        for i in range(2000)]

_shard_names = st.lists(
    st.integers(min_value=0, max_value=200).map(
        lambda n: f"tcp://10.0.0.{n % 250}:{7000 + n}"),
    min_size=1, max_size=8, unique=True,
)


def _census(ring: HashRing) -> dict[str, int]:
    counts = {shard: 0 for shard in ring.shards}
    for key in KEYS:
        counts[ring.shard_for(key)] += 1
    return counts


@given(shards=_shard_names)
@settings(max_examples=40, deadline=None)
def test_every_key_lands_on_a_configured_shard(shards):
    ring = HashRing(shards)
    for key in KEYS[:200]:
        assert ring.shard_for(key) in shards


@given(shards=_shard_names)
@settings(max_examples=40, deadline=None)
def test_routing_is_deterministic_across_ring_instances(shards):
    one, two = HashRing(shards), HashRing(list(reversed(shards)))
    for key in KEYS[:200]:
        assert one.shard_for(key) == two.shard_for(key)


@given(shards=_shard_names)
@settings(max_examples=25, deadline=None)
def test_keys_balance_across_shards(shards):
    """No shard owns a wildly disproportionate share of the corpus.

    With 64 virtual nodes per shard the expected share is 1/N; the
    bound here is deliberately loose (every shard gets *some* keys and
    none gets more than 3x its fair share) — tight enough to catch a
    broken hash or a collapsed ring, loose enough to never flake.
    """
    ring = HashRing(shards)
    counts = _census(ring)
    fair = len(KEYS) / len(shards)
    assert all(count > 0 for count in counts.values())
    assert max(counts.values()) <= 3 * fair


@given(shards=_shard_names)
@settings(max_examples=25, deadline=None)
def test_removing_a_shard_only_remaps_its_own_keys(shards):
    """Exact minimal-remapping: survivors keep every key they owned."""
    ring = HashRing(shards)
    before = {key: ring.shard_for(key) for key in KEYS}
    victim = shards[len(shards) // 2]
    ring.remove(victim)
    if not ring.shards:
        return
    for key, owner in before.items():
        if owner == victim:
            assert ring.shard_for(key) in ring.shards
        else:
            assert ring.shard_for(key) == owner


@given(shards=_shard_names)
@settings(max_examples=25, deadline=None)
def test_adding_a_shard_only_steals_keys_for_itself(shards):
    """The add direction of minimal remapping: no survivor-to-survivor
    moves, so growing a cluster never shuffles existing cache locality."""
    ring = HashRing(shards)
    before = {key: ring.shard_for(key) for key in KEYS}
    newcomer = "tcp://10.9.9.9:9999"
    ring.add(newcomer)
    for key, owner in before.items():
        after = ring.shard_for(key)
        assert after == owner or after == newcomer


@given(shards=_shard_names)
@settings(max_examples=25, deadline=None)
def test_preference_order_is_a_permutation_with_owner_first(shards):
    ring = HashRing(shards)
    for key in KEYS[:100]:
        prefs = ring.preference(key)
        assert prefs[0] == ring.shard_for(key)
        assert sorted(prefs) == sorted(ring.shards)


@given(shards=_shard_names)
@settings(max_examples=25, deadline=None)
def test_failover_target_matches_ring_without_victim(shards):
    """preference()[1] after the owner dies == shard_for() on a ring
    that never contained the owner — the property that lets every
    client fail over independently yet agree on the new home."""
    ring = HashRing(shards)
    for key in KEYS[:100]:
        prefs = ring.preference(key)
        if len(prefs) < 2:
            continue
        survivor_ring = HashRing([s for s in shards if s != prefs[0]])
        assert survivor_ring.shard_for(key) == prefs[1]


def test_normalize_shard_spellings_collapse():
    assert normalize_shard("10.0.0.1:7000") == "tcp://10.0.0.1:7000"
    assert normalize_shard("tcp://10.0.0.1:7000") == "tcp://10.0.0.1:7000"
    assert normalize_shard(" host:123 ") == "tcp://host:123"
    # Socket paths (no numeric port after the last colon) pass through.
    assert normalize_shard("/tmp/run:1/svc.sock") == "/tmp/run:1/svc.sock"
