"""Property tests: batched numpy hashing/fold/LFSR == scalar reference.

The precompute plane (``pipeline/precompute.py``) computes predictor
indices, tags and pseudo-random draws for whole traces at once; every
batched primitive it uses must be bit-identical to the scalar one the
sequential model calls.  Hypothesis drives randomized keys, histories and
widths through both implementations and requires exact agreement.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bits import fold_value
from repro.util.hashing import (
    _scramble,
    scramble_array,
    table_index,
    table_index_array,
    tag_hash,
    tag_hash_array,
)
from repro.util.history import fold_array
from repro.util.lfsr import GaloisLFSR

_u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
_u64_arrays = st.lists(_u64, min_size=1, max_size=64)


@given(values=_u64_arrays, width=st.integers(min_value=1, max_value=64))
@settings(max_examples=80)
def test_fold_array_equals_fold_value(values, width):
    arr = np.array(values, dtype=np.uint64)
    folded = fold_array(arr, width)
    assert folded.dtype == np.uint64
    for value, got in zip(values, folded.tolist()):
        assert got == fold_value(value, width)


@given(keys=_u64_arrays)
@settings(max_examples=80)
def test_scramble_array_equals_scalar(keys):
    arr = np.array(keys, dtype=np.uint64)
    for key, got in zip(keys, scramble_array(arr).tolist()):
        assert got == _scramble(key)


@given(keys=_u64_arrays,
       extras=st.lists(_u64, min_size=64, max_size=64),
       index_bits=st.integers(min_value=1, max_value=20),
       tag_bits=st.integers(min_value=1, max_value=18))
@settings(max_examples=60)
def test_batched_index_and_tag_equal_scalar(keys, extras, index_bits, tag_bits):
    extras = extras[: len(keys)]
    karr = np.array(keys, dtype=np.uint64)
    earr = np.array(extras, dtype=np.uint64)
    idx = table_index_array(karr, index_bits, earr).tolist()
    tag = tag_hash_array(karr, tag_bits, earr).tolist()
    idx0 = table_index_array(karr, index_bits).tolist()
    tag0 = tag_hash_array(karr, tag_bits).tolist()
    for j, (key, extra) in enumerate(zip(keys, extras)):
        assert idx[j] == table_index(key, index_bits, extra=extra)
        assert tag[j] == tag_hash(key, tag_bits, extra=extra)
        assert idx0[j] == table_index(key, index_bits)
        assert tag0[j] == tag_hash(key, tag_bits)


@given(seed=st.integers(min_value=0, max_value=0xFFFF),
       n=st.integers(min_value=0, max_value=300),
       width=st.sampled_from([8, 16, 24, 32]))
@settings(max_examples=60)
def test_lfsr_sequence_equals_stepping(seed, n, width):
    batch = GaloisLFSR(width=width, seed=seed)
    scalar = GaloisLFSR(width=width, seed=seed)
    start = batch.state
    seq = batch.sequence(n).tolist()
    assert len(seq) == n
    for got in seq:
        assert got == scalar.step()
    # sequence() must not advance; advance(n) must land on the stepped
    # state.  (Compare against the saved start, not the scalar: an LFSR
    # of width w wraps back to its start after 2^w - 1 steps.)
    assert batch.state == start
    batch.advance(n)
    assert batch.state == scalar.state


@given(seed=st.integers(min_value=0, max_value=0xFFFF),
       n=st.integers(min_value=1, max_value=200))
@settings(max_examples=40)
def test_lfsr_chance_draws_match_sequence_states(seed, n):
    """chance(p>0) consumes exactly one state; the draw outcome is a pure
    function of that state — the contract the precomputed draw plane uses."""
    lfsr = GaloisLFSR(seed=seed)
    seq = GaloisLFSR(seed=seed).sequence(n).tolist()
    for state in seq:
        assert lfsr.chance(4) == ((state & 0xF) == 0)
        assert lfsr.state == state
