"""Property-based tests for timing-model and resource invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.trace import Trace
from repro.isa.uop import MicroOp, OpClass
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import CoreModel
from repro.pipeline.resources import BandwidthLimiter, InOrderWindow, UnitPool
from repro.predictors.oracle import OraclePredictor

op_classes = st.sampled_from([
    OpClass.INT_ALU, OpClass.INT_MUL, OpClass.FP_ADD, OpClass.LOAD,
    OpClass.STORE, OpClass.BRANCH,
])


@st.composite
def random_traces(draw):
    n = draw(st.integers(min_value=20, max_value=250))
    uops = []
    for i in range(n):
        cls = draw(op_classes)
        is_store = cls is OpClass.STORE
        is_branch = cls is OpClass.BRANCH
        srcs = tuple(draw(st.lists(st.integers(0, 15), max_size=2)))
        dst = None if (is_store or is_branch) else draw(st.integers(0, 15))
        uops.append(
            MicroOp(
                seq=i,
                pc=0x400 + (draw(st.integers(0, 31)) * 4),
                op_class=cls,
                srcs=srcs,
                dst=dst,
                value=draw(st.integers(0, 1 << 32)),
                mem_addr=(draw(st.integers(0, 1 << 20)) * 8)
                if cls in (OpClass.LOAD, OpClass.STORE) else None,
                taken=draw(st.booleans()) if is_branch else False,
                target=0x400,
            )
        )
    return Trace(uops, name="random")


@settings(max_examples=25, deadline=None)
@given(random_traces())
def test_stage_ordering_on_random_traces(trace):
    """fetch <= dispatch <= issue <= complete <= commit for every µop, and
    commits are monotone (in-order retirement)."""
    stages = []
    CoreModel(CoreConfig(), None).run(trace, stage_trace=stages)
    last_commit = 0
    for seq, fetch, dispatch, ready, issue, complete, commit in stages:
        assert fetch <= dispatch <= issue <= complete <= commit
        assert commit >= last_commit
        last_commit = commit


@settings(max_examples=15, deadline=None)
@given(random_traces())
def test_oracle_never_slower_than_baseline(trace):
    """A perfect predictor can only remove dependence stalls."""
    base = CoreModel(CoreConfig(), None).run(trace)
    oracle = CoreModel(CoreConfig(), OraclePredictor()).run(trace)
    # Tiny traces have start-up noise; allow 2% slack.
    assert oracle.cycles <= base.cycles * 1.02 + 2


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=200),
       st.integers(1, 8))
def test_bandwidth_limiter_respects_width(requests, width):
    bw = BandwidthLimiter(width)
    grants = [bw.grant(r) for r in requests]
    per_cycle: dict[int, int] = {}
    for wanted, got in zip(requests, grants):
        assert got >= wanted
        per_cycle[got] = per_cycle.get(got, 0) + 1
    assert all(count <= width for count in per_cycle.values())


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 500), min_size=1, max_size=100),
       st.integers(1, 4), st.integers(1, 30))
def test_unit_pool_never_overlaps_units(requests, units, occupancy):
    pool = UnitPool(units)
    intervals = []
    for wanted in sorted(requests):
        start = pool.grant(wanted, occupancy)
        assert start >= wanted
        intervals.append((start, start + occupancy))
    # At any instant, at most `units` intervals overlap.
    events = []
    for start, end in intervals:
        events.append((start, 1))
        events.append((end, -1))
    active = 0
    for __, delta in sorted(events, key=lambda e: (e[0], e[1])):
        active += delta
        assert active <= units


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 100)),
                min_size=1, max_size=120),
       st.integers(1, 16))
def test_inorder_window_never_exceeds_capacity(ops, size):
    """Simulate acquire/push pairs with monotone releases; occupancy of
    not-yet-released entries never exceeds the window size."""
    window = InOrderWindow(size)
    release_clock = 0
    active = 0
    for earliest, delay in ops:
        got = window.acquire(earliest)
        assert got >= earliest
        release_clock = max(release_clock + 1, got + delay)
        window.push_release(release_clock)
        assert window.occupancy <= size
