"""Property tests: incremental/lane folded histories == from-scratch folds.

The whole bit-identical-results contract of the fast simulation core rests
on one equality: after ANY sequence of pushes (and squash/rewind events),
the folded registers equal ``fold_value`` of the live history window.
Hypothesis drives arbitrary push sequences through all three
implementations — the incremental reference register, the lane-packed set,
and the from-scratch fold — and requires exact agreement.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bits import MASK64, fold_value
from repro.util.hashing import _MIX1, _MIX2
from repro.util.history import (
    FOLD_WIDTH,
    FoldedHistoryRegister,
    FoldedHistorySet,
    fold_wide,
)

# A push sequence: branch outcomes plus path contributions.
_pushes = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=0xFFFF)),
    min_size=0,
    max_size=200,
)

_lengths = st.lists(
    st.integers(min_value=1, max_value=256), min_size=1, max_size=8, unique=True
)


@given(value=st.integers(min_value=0, max_value=(1 << 64) - 1),
       width=st.integers(min_value=1, max_value=32))
def test_fold_wide_equals_fold_value_on_64_bit_inputs(value, width):
    assert fold_wide(value, width) == fold_value(value, width)


@given(pushes=_pushes, length=st.integers(min_value=1, max_value=96))
@settings(max_examples=60)
def test_incremental_register_equals_from_scratch(pushes, length):
    reg = FoldedHistoryRegister(length)
    ghist = 0
    for taken, _pc in pushes:
        bit = 1 if taken else 0
        out_bit = (ghist >> (length - 1)) & 1
        ghist = (ghist << 1) | bit
        reg.push(bit, out_bit)
        assert reg.folded == fold_wide(ghist & ((1 << length) - 1), FOLD_WIDTH)


@given(pushes=_pushes, lengths=_lengths)
@settings(max_examples=60)
def test_lane_set_pairs_equal_seed_compress_formula(pushes, lengths):
    lengths = tuple(sorted(lengths))
    s = FoldedHistorySet()
    ghist = path = 0
    for taken, pc in pushes:
        bit = 1 if taken else 0
        old = ghist
        ghist = ((ghist << 1) | bit) & ((1 << 256) - 1)
        path = ((path << 3) ^ pc) & 0xFFFFFFFF
        s.push(bit, old, ghist, path)
    triples = s.pairs(lengths, ghist, path)
    for i, length in enumerate(lengths):
        path_bits = min(length, 16)
        compressed = (
            fold_value(ghist & ((1 << length) - 1), 16)
            ^ ((path & ((1 << path_bits) - 1)) << 1)
            ^ (length << 17)
        )
        assert triples[3 * i] == (compressed * _MIX2) & MASK64
        assert triples[3 * i + 1] == (compressed * _MIX1) & MASK64
        assert triples[3 * i + 2] == compressed


@given(pushes=_pushes,
       squash_at=st.integers(min_value=0, max_value=199),
       arch_ghist=st.integers(min_value=0, max_value=(1 << 64) - 1),
       arch_path=st.integers(min_value=0, max_value=0xFFFFFFFF))
@settings(max_examples=40)
def test_on_squash_rewind_then_pushes_stay_exact(pushes, squash_at,
                                                 arch_ghist, arch_path):
    """Squash/rewind mid-sequence, then keep pushing: still exact."""
    lengths = (2, 4, 8, 16, 32, 64, 256)
    s = FoldedHistorySet()
    ghist = path = 0
    for step, (taken, pc) in enumerate(pushes):
        if step == squash_at:
            ghist, path = arch_ghist, arch_path
            s.on_squash(ghist, path)
        bit = 1 if taken else 0
        old = ghist
        ghist = ((ghist << 1) | bit) & ((1 << 256) - 1)
        path = ((path << 3) ^ pc) & 0xFFFFFFFF
        s.push(bit, old, ghist, path)
    triples = s.pairs(lengths, ghist, path)
    for i, length in enumerate(lengths):
        assert triples[3 * i + 2] & 0x1FFFF == (
            fold_value(ghist & ((1 << length) - 1), 16)
            ^ ((path & ((1 << min(length, 16)) - 1)) << 1)
        ) & 0x1FFFF


@given(pushes=_pushes)
@settings(max_examples=40)
def test_folded_query_any_time_equals_fold_value(pushes):
    """Interleave queries with pushes (the real consumption pattern)."""
    s = FoldedHistorySet()
    ghist = path = 0
    for step, (taken, pc) in enumerate(pushes):
        bit = 1 if taken else 0
        old = ghist
        ghist = ((ghist << 1) | bit) & ((1 << 256) - 1)
        path = ((path << 3) ^ pc) & 0xFFFFFFFF
        s.push(bit, old, ghist, path)
        if step % 3 == 0:
            for length in (5, 17, 64, 200):
                assert s.folded(length, ghist) == fold_value(
                    ghist & ((1 << length) - 1), FOLD_WIDTH
                )
