"""Property-based tests for predictor/counter invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confidence import ConfidencePolicy, ForwardProbabilisticCounters
from repro.core.vtage import VTAGEPredictor
from repro.predictors.base import PredictionContext
from repro.predictors.fcm import FCMPredictor
from repro.predictors.lvp import LastValuePredictor
from repro.predictors.stride import TwoDeltaStridePredictor
from repro.util.bits import MASK64, fold_value
from repro.util.lfsr import GaloisLFSR

values64 = st.integers(min_value=0, max_value=MASK64)
keys = st.integers(min_value=0, max_value=(1 << 51) - 1)


@given(st.lists(st.booleans(), min_size=1, max_size=300))
def test_confidence_level_always_in_range(outcomes):
    policy = ConfidencePolicy(bits=3)
    level = 0
    for correct in outcomes:
        level = policy.on_correct(level) if correct else policy.on_incorrect(level)
        assert 0 <= level <= policy.max_level


@given(st.lists(st.booleans(), min_size=1, max_size=300),
       st.integers(min_value=1, max_value=(1 << 16) - 1))
def test_fpc_level_always_in_range(outcomes, seed):
    policy = ForwardProbabilisticCounters.for_squash(lfsr=GaloisLFSR(seed=seed))
    level = 0
    for correct in outcomes:
        level = policy.on_correct(level) if correct else policy.on_incorrect(level)
        assert 0 <= level <= policy.max_level


@given(st.lists(st.booleans(), min_size=1, max_size=200))
def test_fpc_never_confident_right_after_misprediction(outcomes):
    policy = ForwardProbabilisticCounters.for_squash()
    level = policy.max_level
    for correct in outcomes:
        if not correct:
            level = policy.on_incorrect(level)
            assert not policy.is_confident(level)
        else:
            level = policy.on_correct(level)


@given(st.integers(min_value=0, max_value=MASK64),
       st.integers(min_value=1, max_value=32))
def test_fold_value_stays_in_width(value, width):
    assert 0 <= fold_value(value, width) < (1 << width)


@given(st.integers(min_value=0, max_value=MASK64))
def test_fold_value_16_is_xor_of_quarters(value):
    parts = [(value >> (16 * i)) & 0xFFFF for i in range(4)]
    expected = parts[0] ^ parts[1] ^ parts[2] ^ parts[3]
    assert fold_value(value, 16) == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(keys, values64), min_size=1, max_size=400))
def test_lvp_confident_only_after_repetition(stream):
    """LVP must never be confident about a (key, value) it has seen fewer
    than max_level times in a row."""
    lvp = LastValuePredictor(entries=64, confidence=ConfidencePolicy())
    ctx = PredictionContext()
    run_lengths: dict[tuple[int, int], int] = {}
    for key, value in stream:
        pred = lvp.lookup(key, ctx)
        if pred is not None and pred.confident:
            # Confidence requires at least max_level prior correct trains.
            assert run_lengths.get((key, pred.value), 0) >= 7
        lvp.train(key, value, pred)
        previous = run_lengths.get((key, value), 0)
        # Track consecutive repeats per key.
        for other_key, other_value in list(run_lengths):
            if other_key == key and other_value != value:
                run_lengths[(other_key, other_value)] = 0
        run_lengths[(key, value)] = previous + 1


@settings(max_examples=30, deadline=None)
@given(st.lists(values64, min_size=1, max_size=300))
def test_predictors_survive_arbitrary_streams(stream):
    """No predictor may crash or corrupt its tables on any value stream."""
    ctx = PredictionContext()
    predictors = [
        LastValuePredictor(entries=32),
        TwoDeltaStridePredictor(entries=32),
        FCMPredictor(entries=32, order=4, vpt_entries=64),
        VTAGEPredictor(base_entries=64, tagged_entries=16),
    ]
    for i, value in enumerate(stream):
        ctx.push_branch(value & 1 == 1, 0x40 + (i % 7) * 4)
        for predictor in predictors:
            pred = predictor.lookup(0x1234, ctx)
            predictor.speculate(0x1234, pred)
            predictor.train(0x1234, value, pred)
            check = predictor.lookup(0x1234, ctx)
            assert check is None or 0 <= check.value <= MASK64


@settings(max_examples=20, deadline=None)
@given(st.lists(values64, min_size=50, max_size=300),
       st.integers(min_value=1, max_value=20))
def test_speculative_state_reclaimed(stream, inflight):
    """After any interleaving of speculate/train pairs, a squash plus full
    training drain must leave no speculative state behind."""
    stride = TwoDeltaStridePredictor(entries=32)
    ctx = PredictionContext()
    pending = []
    for value in stream:
        pred = stride.lookup(0x10, ctx)
        stride.speculate(0x10, pred)
        pending.append((value, pred))
        if len(pending) > inflight:
            actual, rec = pending.pop(0)
            stride.train(0x10, actual, rec)
    for actual, rec in pending:
        stride.train(0x10, actual, rec)
    assert not stride._spec_last
    assert not stride._inflight


@settings(max_examples=20, deadline=None)
@given(st.lists(st.booleans(), min_size=10, max_size=500))
def test_vtage_usefulness_bits_bounded(outcomes):
    v = VTAGEPredictor(base_entries=64, tagged_entries=16)
    ctx = PredictionContext()
    for i, taken in enumerate(outcomes):
        ctx.push_branch(taken, 0x99)
        pred = v.lookup(0x40, ctx)
        v.train(0x40, 111 if taken else 222, pred)
    for comp in v.components:
        assert all(u in (0, 1) for u in comp.useful)
        assert all(0 <= c <= v.confidence.max_level for c in comp.conf)
