"""Property tests: ingestion is total, deterministic and store-exact.

Hypothesis drives two invariants the example-based tests cannot pin:

* **Totality** — ``parse_log`` never raises, whatever bytes a log file
  contains; every line is accounted for as parsed, skipped or
  quarantined.
* **Round-trip** — any syntactically valid instruction stream lowers to
  packed columns that survive the trace store bit-identically, and
  re-lowering the same text with the same seed reproduces the same
  arrays (the invariant that makes the digest-bearing name a sound
  cache key).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import ingest
from repro.workloads.store import TraceStore

_INT_REGS = ("zero", "ra", "sp", "a0", "a1", "a5", "s0", "s11", "t6",
             "x7", "x31")
_FP_REGS = ("fa0", "ft3", "fs11", "f12")

_ALU = st.sampled_from(("add", "addi", "sub", "xor", "andi", "slli", "auipc",
                        "lui", "mul", "div", "fadd.d", "fmul.s", "fdiv.d"))
_MEM = st.sampled_from(("lw", "ld", "lbu", "sw", "sd", "fld", "fsd"))
_CTRL = st.sampled_from(("beq", "bne", "bltu", "jal", "j", "ret"))
_NOISE = st.sampled_from(("nop", "fence", "ecall", "csrr"))


@st.composite
def _instruction(draw):
    """One syntactically valid log instruction (mnemonic + operands)."""
    kind = draw(st.integers(min_value=0, max_value=3))
    r = lambda: draw(st.sampled_from(_INT_REGS))
    if kind == 0:
        mnemonic = draw(_ALU)
        if mnemonic.startswith("f"):
            regs = [draw(st.sampled_from(_FP_REGS)) for _ in range(3)]
        else:
            regs = [r(), r(), r()]
        return f"{mnemonic} {','.join(regs)}"
    if kind == 1:
        mnemonic = draw(_MEM)
        data = (draw(st.sampled_from(_FP_REGS))
                if mnemonic.startswith("f") else r())
        offset = draw(st.integers(min_value=-64, max_value=64))
        return f"{mnemonic} {data},{offset}({r()})"
    if kind == 2:
        mnemonic = draw(_CTRL)
        if mnemonic in ("j", "jal"):
            return f"{mnemonic} 80000010"
        if mnemonic == "ret":
            return "ret"
        return f"{mnemonic} {r()},{r()},80000010"
    return draw(_NOISE)


@st.composite
def _log_text(draw):
    """A whole log: coherent addresses, random instruction mix."""
    body = draw(st.lists(_instruction(), min_size=1, max_size=40))
    addr = 0x80000000
    lines = []
    for i, insn in enumerate(body):
        lines.append(f"{addr:08x} {0x113 + 4 * i:08x} {insn}")
        # Branches sometimes "jump": perturb the next address.
        if insn.split()[0] in ("beq", "bne", "bltu", "j", "jal", "ret") \
                and draw(st.booleans()):
            addr = 0x80000000 + draw(st.integers(0, 255)) * 4
        else:
            addr += 4
    return "\n".join(lines) + "\n"


@given(text=st.text(max_size=400))
@settings(max_examples=60, deadline=None)
def test_parse_log_is_total(text):
    """Arbitrary text never crashes; every line is accounted for."""
    insns, skipped, quarantined = ingest.parse_log(text)
    non_blank = sum(1 for line in text.split("\n") if line.strip())
    assert len(insns) + skipped + len(quarantined) == non_blank


@given(text=_log_text(), seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=30, deadline=None)
def test_lowering_deterministic(text, seed):
    insns, _, quarantined = ingest.parse_log(text)
    assert quarantined == []          # the generator emits only valid lines
    a = ingest.lower(insns, seed, "t").packed()
    b = ingest.lower(insns, seed, "t").packed()
    a.validate()
    for col, arr in a.arrays.items():
        assert np.array_equal(arr, b.arrays[col]), col


@given(text=_log_text(), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None)
def test_ingest_store_round_trip(text, seed, tmp_path_factory):
    """parse → lower → store → load is bit-identical, name is stable."""
    root = tmp_path_factory.mktemp("ingest-prop")
    store = TraceStore(root / "store")
    trace, report = ingest.ingest_text(text, "prop.log", store, seed=seed)
    assert report.stored
    assert ingest.is_ingest_name(report.name)
    loaded = store.get(report.name, report.n_uops, seed)
    assert loaded is not None
    for col, arr in trace.packed().arrays.items():
        assert np.array_equal(arr, loaded.packed().arrays[col]), col
    again, report_again = ingest.ingest_text(text, "prop.log", store,
                                             seed=seed)
    assert report_again.name == report.name
    for col, arr in trace.packed().arrays.items():
        assert np.array_equal(arr, again.packed().arrays[col]), col
