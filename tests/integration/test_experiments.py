"""Integration tests for the table/figure drivers (small slices)."""

import pytest

from repro.experiments import figures, tables
from repro.workloads.catalog import ALL_WORKLOADS

TINY = dict(workloads=("gzip", "crafty", "wupwise"), n_uops=5000, warmup=2500)


class TestTables:
    def test_table1_storage_within_one_percent_of_paper(self):
        for row in tables.table1_rows():
            assert row.relative_error < 0.01, row

    def test_table1_renders(self):
        text = tables.table1()
        assert "VTAGE" in text and "120.8" in text

    def test_table2_mentions_core_structures(self):
        text = tables.table2()
        assert "256-entry ROB" in text
        assert "128-entry IQ" in text
        assert "TAGE" in text

    def test_table3_lists_19_benchmarks(self):
        text = tables.table3()
        assert "INT: 12" in text and "FP: 7" in text
        assert "429.mcf" in text and "464.h264ref" in text


class TestFigure1:
    def test_back_to_back_fractions(self):
        fig = figures.figure1(workloads=ALL_WORKLOADS, n_uops=4000)
        fractions = fig.series["fractions"]
        assert len(fractions) == 19
        assert all(0.0 <= f <= 1.0 for f in fractions.values())
        # The Section 3.2 observation: a noticeable fraction of eligible
        # µops are back-to-back in at least some benchmarks.
        assert fig.series["max"] > 0.01

    def test_critical_path_table(self):
        fig = figures.figure1(workloads=("gzip",), n_uops=2000)
        assert "VTAGE" in fig.text
        assert "o4-FCM" in fig.text


class TestFigure3:
    def test_oracle_speedups_above_one(self):
        fig = figures.figure3(**TINY)
        series = fig.series["speedup"]
        assert all(s >= 0.95 for s in series.values())
        assert max(series.values()) > 1.2


class TestFigure4and5:
    @pytest.fixture(scope="class")
    def fig4(self):
        return figures.figure4(**TINY)

    def test_grid_structure(self, fig4):
        assert set(fig4.series) == {"baseline", "FPC"}
        for scheme_data in fig4.series.values():
            assert set(scheme_data) == set(figures.SINGLE_SCHEMES)

    def test_fpc_improves_accuracy(self, fig4):
        for scheme in figures.SINGLE_SCHEMES:
            for workload in TINY["workloads"]:
                base_acc = fig4.series["baseline"][scheme]["accuracy"][workload]
                fpc_acc = fig4.series["FPC"][scheme]["accuracy"][workload]
                assert fpc_acc >= base_acc - 0.01

    def test_fpc_costs_coverage(self, fig4):
        drops = 0
        for scheme in figures.SINGLE_SCHEMES:
            for workload in TINY["workloads"]:
                base_cov = fig4.series["baseline"][scheme]["coverage"][workload]
                fpc_cov = fig4.series["FPC"][scheme]["coverage"][workload]
                if fpc_cov < base_cov:
                    drops += 1
        assert drops > 0

    def test_figure5_reissue_grid(self):
        fig5 = figures.figure5(workloads=("crafty",), n_uops=5000, warmup=2500)
        assert "reissue" in fig5.text.lower() or "Figure 5" in fig5.text


class TestFigure6and7:
    def test_figure6_series(self):
        fig = figures.figure6(workloads=("gzip", "crafty"), n_uops=5000, warmup=2500)
        assert set(fig.series) == {"baseline", "FPC"}
        assert "coverage" in fig.series["FPC"]

    def test_figure7_hybrid_coverage_geq_components(self):
        fig = figures.figure7(workloads=("hmmer",), n_uops=8000, warmup=4000)
        hybrid_cov = fig.series["vtage-2dstride"]["coverage"]["hmmer"]
        vtage_cov = fig.series["vtage"]["coverage"]["hmmer"]
        stride_cov = fig.series["2dstride"]["coverage"]["hmmer"]
        assert hybrid_cov >= max(vtage_cov, stride_cov) - 0.05
