"""Ingested workloads through the service backend, end-to-end.

The registry sidecars under ``$REPRO_TRACE_DIR`` are the only channel an
ingested trace has into another process: the daemon's workers resolve
``ingest-*`` names through the catalog exactly like generated ones.
This spawns a real daemon (with the trace dir in its environment),
submits jobs against a freshly ingested fixture log, and requires
bit-identity with the in-process engine.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine.api import Engine
from repro.engine.cache import ResultCache
from repro.engine.client import ServiceClient, wait_for_service
from repro.engine.executors import SerialExecutor
from repro.engine.job import SimJob
from repro.pipeline.result import SimResult
from repro.workloads import catalog, ingest
from repro.workloads.store import TraceStore

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "traces" / "memcpy_rv64.log"


@pytest.fixture()
def trace_dir(tmp_path, monkeypatch):
    path = tmp_path / "traces"
    monkeypatch.setenv("REPRO_TRACE_DIR", str(path))
    catalog.clear_trace_cache()
    yield path
    catalog.clear_trace_cache()


def test_ingested_workload_via_service(trace_dir, tmp_path):
    _, report = ingest.ingest_file(FIXTURE, TraceStore(trace_dir))
    assert report.stored

    jobs = [SimJob.make(report.name, p, n_uops=1500, warmup=500)
            for p in ("lvp", "vtage")]
    local = Engine(executor=SerialExecutor(),
                   cache=ResultCache(None)).run_jobs(jobs)

    socket_path = tmp_path / "repro.sock"
    env = dict(os.environ)   # carries REPRO_TRACE_DIR from the fixture
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")) if p)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "-j", "1", "serve",
         "--socket", str(socket_path)],
        env=env, stderr=subprocess.DEVNULL,
    )
    try:
        wait_for_service(socket_path, timeout=30)
        with ServiceClient(socket_path) as conn:
            response = conn.submit(jobs)
        remote = [SimResult.from_dict(raw) for raw in response["results"]]
        assert [r.to_dict() for r in remote] == [r.to_dict() for r in local]
        with ServiceClient(socket_path, timeout=5.0) as conn:
            conn.shutdown()
        proc.wait(timeout=15)
    finally:
        if proc.poll() is None:
            proc.kill()


def test_ingested_job_fails_cleanly_without_registry(trace_dir):
    """A name that was never ingested raises through the engine."""
    job = SimJob.make("ingest-ghost-0123456789", "lvp", n_uops=800,
                      warmup=100)
    engine = Engine(executor=SerialExecutor(), cache=ResultCache(None))
    with pytest.raises(Exception) as excinfo:
        engine.run_jobs([job])
    assert "ingest" in str(excinfo.value).lower()
