"""Cluster round-trip tests: real TCP shards, real failures.

The acceptance bar of the cluster plane, against ``repro cluster
serve`` subprocesses:

* a 2-shard TCP cluster serves two concurrent clients' overlapping
  24-job grids **bit-identical** to in-process ``run_jobs``, with every
  shard doing part of the work and auth enforced end to end;
* ``SIGKILL`` of one shard mid-grid loses no jobs — the router marks
  the shard down and re-routes its keys along the hash ring, and the
  full result set stays dataclass-equal to the local run;
* shards federate caches: work one shard finished is served to a peer
  without re-simulation;
* ``repro cluster status`` reports per-shard queue depth and cache
  hit/miss counts (the ops surface the ISSUE asks for).
"""

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.engine.api import Engine
from repro.engine.cache import ResultCache
from repro.engine.client import RetryPolicy, ServiceClient
from repro.engine.cluster import ShardRouter
from repro.engine.executors import SerialExecutor
from repro.engine.job import SimJob

REPO_ROOT = Path(__file__).resolve().parents[2]

TOKEN = "integration-secret"

SMALL = dict(n_uops=2000, warmup=1000)

# Two overlapping 24-job grids (2 predictors x 12 workloads each,
# sharing the '2dstride' row => 12 overlapping jobs).
WORKLOADS = ("gzip", "wupwise", "applu", "vpr", "art", "crafty", "parser",
             "vortex", "bzip2", "gcc", "gamess", "mcf")
GRID_A = [SimJob.make(w, p, **SMALL)
          for p in ("lvp", "2dstride") for w in WORKLOADS]
GRID_B = [SimJob.make(w, p, **SMALL)
          for p in ("2dstride", "vtage") for w in WORKLOADS]


def _spawn_shard(*extra_args, jobs="1", shm=True):
    """Start ``repro cluster serve`` on a kernel-picked port; returns
    ``(process, tcp_address)`` parsed from the daemon's ready line.

    ``shm=False`` disables the shared-memory trace plane for shards a
    test will ``SIGKILL``: a -9 daemon cannot unlink its segments, and
    leaked ``/dev/shm`` entries would fail the shm hermeticity tests
    later in the same suite run.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")) if p)
    env["REPRO_SERVICE_TOKEN"] = TOKEN
    if not shm:
        env["REPRO_SHM"] = "0"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "-j", jobs, "cluster", "serve",
         "--listen", "127.0.0.1:0", *map(str, extra_args)],
        env=env, stderr=subprocess.PIPE, text=True,
    )
    try:
        line = proc.stderr.readline()
        match = re.search(r"listen=(tcp://\S+)", line)
        assert match, f"no ready line from shard: {line!r}"
        return proc, match.group(1)
    except Exception:
        proc.kill()
        raise


def _local_results(jobs):
    engine = Engine(executor=SerialExecutor(), cache=ResultCache(None))
    return engine.run_jobs(jobs)


@pytest.fixture(scope="module")
def expected():
    """Local fault-free answers for both grids, computed once."""
    return {"A": _local_results(GRID_A), "B": _local_results(GRID_B)}


@pytest.fixture(scope="module")
def cluster():
    """Two 1-worker TCP shards, peered both ways, token-authed."""
    proc_a, addr_a = _spawn_shard()
    proc_b, addr_b = _spawn_shard("--peer", addr_a)
    yield [addr_a, addr_b]
    for proc, addr in ((proc_a, addr_a), (proc_b, addr_b)):
        try:
            with ServiceClient(addr, timeout=5.0, token=TOKEN) as client:
                client.shutdown()
            proc.wait(timeout=15)
        except Exception:
            proc.kill()


class TestClusterRoundTrip:
    def test_two_concurrent_clients_bit_identical(self, cluster, expected):
        outcomes = {}

        def client(name, grid):
            router = ShardRouter(cluster, token=TOKEN)
            try:
                outcomes[name] = router.run_jobs(grid)
            finally:
                router.close()

        threads = [threading.Thread(target=client, args=("A", GRID_A)),
                   threading.Thread(target=client, args=("B", GRID_B))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for name in ("A", "B"):
            assert [r.to_dict() for r in outcomes[name]] == \
                [r.to_dict() for r in expected[name]], \
                f"client {name} diverged from the local engine"

        # Both shards did real work (the ring spread the key space), and
        # the overlapping row simulated exactly once cluster-wide.
        router = ShardRouter(cluster, token=TOKEN)
        status = router.status()
        router.close()
        executed = [row["metrics"]["queue"]["stats"]["executed"]
                    for row in status["shards"]]
        unique = len({j.content_key() for j in GRID_A + GRID_B})
        assert all(n > 0 for n in executed)
        assert sum(executed) == unique

    def test_auth_is_enforced_end_to_end(self, cluster):
        from repro.engine.client import ServiceAuthError

        with pytest.raises(ServiceAuthError):
            ServiceClient(cluster[0], token="wrong").ping()

    def test_peer_federation_avoids_resimulation(self, cluster):
        # By round-trip time every result is cached on its owning shard,
        # and warm push may already have copied them to the successor.
        # Submitting the full grid directly to shard B (bypassing the
        # router) must answer every non-resident key over the federation
        # wire — pulled via peer lookup or already push-warmed — and
        # never re-enter the worker pool.
        with ServiceClient(cluster[1], token=TOKEN) as client:
            executed_before = client.metrics()["queue"]["stats"]["executed"]
            response = client.submit(GRID_A)
            metrics = client.metrics()
        assert response["summary"]["enqueued"] == 0
        assert metrics["queue"]["stats"]["executed"] == executed_before
        # Federation-seeded keys are answered as ordinary cache hits;
        # peer_hits counts pull-path transfers, warm.seeded counts
        # entries the push path landed ahead of the request.
        assert response["summary"]["cache_hits"] == len(GRID_A)
        assert response["summary"]["peer_hits"] + \
            metrics["warm"]["seeded"] > 0
        assert metrics["peers"]["hits"] == response["summary"]["peer_hits"]

    def test_cluster_status_cli_reports_depth_and_cache(self, cluster):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(REPO_ROOT / "src"),
                        env.get("PYTHONPATH", "")) if p)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "cluster", "status",
             "--shards", ",".join(cluster), "--token", TOKEN],
            env=env, capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0, proc.stderr
        assert "2/2 shard(s) alive" in proc.stdout
        for address in cluster:
            assert f"shard {address}:" in proc.stdout
        assert re.search(r"queue: \d+ deep", proc.stdout)
        assert re.search(r"cache: \d+ hit\(s\) / \d+ miss\(es\)",
                         proc.stdout)


class TestClusterFailover:
    def test_sigkill_one_shard_mid_grid_loses_nothing(self, expected):
        """The headline resilience claim: -9 a shard while its workers
        are busy; the grid still completes bit-identically."""
        proc_a, addr_a = _spawn_shard(shm=False)
        proc_b, addr_b = _spawn_shard(shm=False)
        killed = False
        try:
            router = ShardRouter(
                [addr_a, addr_b], token=TOKEN,
                retry=RetryPolicy(attempts=2, base=0.05))
            outcome = {}

            def run():
                outcome["results"] = router.run_jobs(GRID_A)

            thread = threading.Thread(target=run)
            thread.start()
            # Kill shard A once it demonstrably holds in-flight work, so
            # the kill lands mid-grid rather than before or after it.
            with ServiceClient(addr_a, timeout=10.0, token=TOKEN) as probe:
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    busy = probe.metrics()["queue"]["in_flight"]
                    if busy > 0:
                        break
                    time.sleep(0.02)
                else:
                    pytest.fail("shard A never went busy")
            proc_a.send_signal(signal.SIGKILL)
            proc_a.wait(timeout=15)
            killed = True
            thread.join(timeout=300)
            assert not thread.is_alive(), "cluster batch hung after kill"

            assert [r.to_dict() for r in outcome["results"]] == \
                [r.to_dict() for r in expected["A"]]
            assert addr_a in router.down
            assert router.stats["failovers"] == 1
            assert router.stats["rerouted_jobs"] > 0
            # No job lost: the survivor executed the whole key space.
            with ServiceClient(addr_b, timeout=10.0, token=TOKEN) as client:
                stats = client.metrics()["queue"]["stats"]
            assert stats["executed"] + stats["cache_hits"] >= \
                len({j.content_key() for j in GRID_A})
            router.close()
        finally:
            if not killed:
                proc_a.kill()
            try:
                with ServiceClient(addr_b, timeout=5.0,
                                   token=TOKEN) as client:
                    client.shutdown()
                proc_b.wait(timeout=15)
            except Exception:
                proc_b.kill()


_EXPECTED_A: list | None = None


def expected_grid_a():
    """Serial fault-free GRID_A answers, computed once per process."""
    global _EXPECTED_A
    if _EXPECTED_A is None:
        _EXPECTED_A = _local_results(GRID_A)
    return _EXPECTED_A


class TestSelfHealing:
    """ISSUE acceptance: a -9'd shard restarts, is auto re-admitted with
    no router restart, and its journaled work is never re-simulated."""

    def _fleet(self, journal_dir):
        """Two shards sharing a journal dir, gossiping at 0.25 s."""
        knobs = ("--journal-dir", journal_dir,
                 "--heartbeat-interval", "0.25")
        proc_a, addr_a = _spawn_shard(*knobs, shm=False)
        proc_b, addr_b = _spawn_shard("--peer", addr_a, *knobs, shm=False)
        return proc_a, addr_a, proc_b, addr_b

    def _stop(self, proc, addr):
        try:
            with ServiceClient(addr, timeout=5.0, token=TOKEN) as client:
                client.shutdown()
            proc.wait(timeout=15)
        except Exception:
            proc.kill()

    def test_killed_shard_restarts_and_is_readmitted_without_router_restart(
            self, tmp_path):
        proc_a, addr_a, proc_b, addr_b = self._fleet(tmp_path)
        revived = None
        a_dead = False
        router = ShardRouter([addr_a, addr_b], token=TOKEN,
                             retry=RetryPolicy(attempts=2, base=0.05),
                             probe_base=0.2, probe_cap=1.0)
        try:
            outcome = {}

            def run():
                outcome["results"] = router.run_jobs(GRID_A)

            thread = threading.Thread(target=run)
            thread.start()
            # Kill once A has journaled at least one completion (so the
            # revival has something to startup-replay) but is still
            # mid-grid (more work in flight).
            with ServiceClient(addr_a, timeout=10.0, token=TOKEN) as probe:
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    stats = probe.metrics()["queue"]
                    if stats["stats"]["executed"] >= 1:
                        break
                    time.sleep(0.02)
                else:
                    pytest.fail("shard A never completed a job")
            proc_a.send_signal(signal.SIGKILL)
            proc_a.wait(timeout=15)
            a_dead = True
            thread.join(timeout=300)
            assert not thread.is_alive(), "cluster batch hung after kill"
            assert [r.to_dict() for r in outcome["results"]] == \
                [r.to_dict() for r in expected_grid_a()]
            assert addr_a in router.down

            # Revive A on its old port, same journal dir: its epoch meta
            # makes the new incarnation supersede its own death notice.
            port = addr_a.rsplit(":", 1)[1]
            for attempt in range(10):
                try:
                    revived = _spawn_shard(
                        "--listen", f"127.0.0.1:{port}", "--peer", addr_b,
                        "--journal-dir", tmp_path,
                        "--heartbeat-interval", "0.25", shm=False)
                    break
                except AssertionError:
                    time.sleep(0.5)
            assert revived is not None, "could not rebind the old port"
            assert revived[1] == addr_a

            # The same router object heals: gossip zeroes the probe
            # timer, the half-open probe re-admits.  No restart, no
            # manual readmit() call.
            deadline = time.monotonic() + 60
            while addr_a in router.down and time.monotonic() < deadline:
                router.refresh_membership()
                router.maybe_probe()
                time.sleep(0.05)
            assert addr_a not in router.down, "shard never re-admitted"
            assert router.stats["readmissions"] >= 1
            assert router.stats["probes"] >= 1

            rerun = router.run_jobs(GRID_A)
            assert [r.to_dict() for r in rerun] == \
                [r.to_dict() for r in expected_grid_a()]
            with ServiceClient(addr_a, timeout=10.0, token=TOKEN) as client:
                metrics = client.metrics()
            # Restarted incarnation: epoch bumped past the first life,
            # and its startup replay let it answer from cache.
            assert metrics["membership"]["epoch"] >= 2
            assert metrics["replay"]["startup_replayed"] > 0
            assert metrics["queue"]["stats"]["cache_hits"] > 0
            router.close()
        finally:
            if not a_dead:
                proc_a.kill()
            if revived is not None:
                self._stop(*revived)
            self._stop(proc_b, addr_b)

    def test_journal_replay_keeps_prekill_results_out_of_resimulation(
            self, tmp_path):
        proc_a, addr_a, proc_b, addr_b = self._fleet(tmp_path)
        a_dead = False
        router = ShardRouter([addr_a, addr_b], token=TOKEN,
                             retry=RetryPolicy(attempts=2, base=0.05),
                             probe_base=0.2, probe_cap=1.0)
        try:
            first = router.run_jobs(GRID_A)
            assert [r.to_dict() for r in first] == \
                [r.to_dict() for r in expected_grid_a()]
            with ServiceClient(addr_b, timeout=10.0, token=TOKEN) as client:
                executed_before = \
                    client.metrics()["queue"]["stats"]["executed"]

            proc_a.send_signal(signal.SIGKILL)
            proc_a.wait(timeout=15)
            a_dead = True

            # Survivor B notices the death by failed heartbeat and
            # inherits A's journal segment.
            with ServiceClient(addr_b, timeout=10.0, token=TOKEN) as client:
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    replay = client.metrics()["replay"]
                    if replay["peers_replayed"] >= 1:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("survivor never replayed the dead journal")
            assert replay["keys_seeded"] > 0

            # Re-running the grid costs zero simulations: B's own work
            # plus the replayed segment cover the whole key space.
            rerun = router.run_jobs(GRID_A)
            assert [r.to_dict() for r in rerun] == \
                [r.to_dict() for r in expected_grid_a()]
            with ServiceClient(addr_b, timeout=10.0, token=TOKEN) as client:
                executed_after = \
                    client.metrics()["queue"]["stats"]["executed"]
            assert executed_after == executed_before, \
                "journaled pre-kill results were re-simulated"
            router.close()
        finally:
            if not a_dead:
                proc_a.kill()
            self._stop(proc_b, addr_b)
