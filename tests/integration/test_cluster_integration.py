"""Cluster round-trip tests: real TCP shards, real failures.

The acceptance bar of the cluster plane, against ``repro cluster
serve`` subprocesses:

* a 2-shard TCP cluster serves two concurrent clients' overlapping
  24-job grids **bit-identical** to in-process ``run_jobs``, with every
  shard doing part of the work and auth enforced end to end;
* ``SIGKILL`` of one shard mid-grid loses no jobs — the router marks
  the shard down and re-routes its keys along the hash ring, and the
  full result set stays dataclass-equal to the local run;
* shards federate caches: work one shard finished is served to a peer
  without re-simulation;
* ``repro cluster status`` reports per-shard queue depth and cache
  hit/miss counts (the ops surface the ISSUE asks for).
"""

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.engine.api import Engine
from repro.engine.cache import ResultCache
from repro.engine.client import RetryPolicy, ServiceClient
from repro.engine.cluster import ShardRouter
from repro.engine.executors import SerialExecutor
from repro.engine.job import SimJob

REPO_ROOT = Path(__file__).resolve().parents[2]

TOKEN = "integration-secret"

SMALL = dict(n_uops=2000, warmup=1000)

# Two overlapping 24-job grids (2 predictors x 12 workloads each,
# sharing the '2dstride' row => 12 overlapping jobs).
WORKLOADS = ("gzip", "wupwise", "applu", "vpr", "art", "crafty", "parser",
             "vortex", "bzip2", "gcc", "gamess", "mcf")
GRID_A = [SimJob.make(w, p, **SMALL)
          for p in ("lvp", "2dstride") for w in WORKLOADS]
GRID_B = [SimJob.make(w, p, **SMALL)
          for p in ("2dstride", "vtage") for w in WORKLOADS]


def _spawn_shard(*extra_args, jobs="1", shm=True):
    """Start ``repro cluster serve`` on a kernel-picked port; returns
    ``(process, tcp_address)`` parsed from the daemon's ready line.

    ``shm=False`` disables the shared-memory trace plane for shards a
    test will ``SIGKILL``: a -9 daemon cannot unlink its segments, and
    leaked ``/dev/shm`` entries would fail the shm hermeticity tests
    later in the same suite run.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")) if p)
    env["REPRO_SERVICE_TOKEN"] = TOKEN
    if not shm:
        env["REPRO_SHM"] = "0"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "-j", jobs, "cluster", "serve",
         "--listen", "127.0.0.1:0", *map(str, extra_args)],
        env=env, stderr=subprocess.PIPE, text=True,
    )
    try:
        line = proc.stderr.readline()
        match = re.search(r"listen=(tcp://\S+)", line)
        assert match, f"no ready line from shard: {line!r}"
        return proc, match.group(1)
    except Exception:
        proc.kill()
        raise


def _local_results(jobs):
    engine = Engine(executor=SerialExecutor(), cache=ResultCache(None))
    return engine.run_jobs(jobs)


@pytest.fixture(scope="module")
def expected():
    """Local fault-free answers for both grids, computed once."""
    return {"A": _local_results(GRID_A), "B": _local_results(GRID_B)}


@pytest.fixture(scope="module")
def cluster():
    """Two 1-worker TCP shards, peered both ways, token-authed."""
    proc_a, addr_a = _spawn_shard()
    proc_b, addr_b = _spawn_shard("--peer", addr_a)
    yield [addr_a, addr_b]
    for proc, addr in ((proc_a, addr_a), (proc_b, addr_b)):
        try:
            with ServiceClient(addr, timeout=5.0, token=TOKEN) as client:
                client.shutdown()
            proc.wait(timeout=15)
        except Exception:
            proc.kill()


class TestClusterRoundTrip:
    def test_two_concurrent_clients_bit_identical(self, cluster, expected):
        outcomes = {}

        def client(name, grid):
            router = ShardRouter(cluster, token=TOKEN)
            try:
                outcomes[name] = router.run_jobs(grid)
            finally:
                router.close()

        threads = [threading.Thread(target=client, args=("A", GRID_A)),
                   threading.Thread(target=client, args=("B", GRID_B))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for name in ("A", "B"):
            assert [r.to_dict() for r in outcomes[name]] == \
                [r.to_dict() for r in expected[name]], \
                f"client {name} diverged from the local engine"

        # Both shards did real work (the ring spread the key space), and
        # the overlapping row simulated exactly once cluster-wide.
        router = ShardRouter(cluster, token=TOKEN)
        status = router.status()
        router.close()
        executed = [row["metrics"]["queue"]["stats"]["executed"]
                    for row in status["shards"]]
        unique = len({j.content_key() for j in GRID_A + GRID_B})
        assert all(n > 0 for n in executed)
        assert sum(executed) == unique

    def test_auth_is_enforced_end_to_end(self, cluster):
        from repro.engine.client import ServiceAuthError

        with pytest.raises(ServiceAuthError):
            ServiceClient(cluster[0], token="wrong").ping()

    def test_peer_federation_avoids_resimulation(self, cluster):
        # By round-trip time every result is cached on its owning shard.
        # Submitting the full grid directly to shard B (bypassing the
        # router) must answer the non-resident keys from its peer, not
        # the worker pool.
        with ServiceClient(cluster[1], token=TOKEN) as client:
            executed_before = client.metrics()["queue"]["stats"]["executed"]
            response = client.submit(GRID_A)
            metrics = client.metrics()
        assert response["summary"]["enqueued"] == 0
        assert metrics["queue"]["stats"]["executed"] == executed_before
        # Peer-seeded keys are answered as ordinary cache hits; peer_hits
        # says how many of them had to come over the federation wire.
        assert response["summary"]["cache_hits"] == len(GRID_A)
        assert response["summary"]["peer_hits"] > 0
        assert metrics["peers"]["hits"] == response["summary"]["peer_hits"]

    def test_cluster_status_cli_reports_depth_and_cache(self, cluster):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(REPO_ROOT / "src"),
                        env.get("PYTHONPATH", "")) if p)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "cluster", "status",
             "--shards", ",".join(cluster), "--token", TOKEN],
            env=env, capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0, proc.stderr
        assert "2/2 shard(s) alive" in proc.stdout
        for address in cluster:
            assert f"shard {address}:" in proc.stdout
        assert re.search(r"queue: \d+ deep", proc.stdout)
        assert re.search(r"cache: \d+ hit\(s\) / \d+ miss\(es\)",
                         proc.stdout)


class TestClusterFailover:
    def test_sigkill_one_shard_mid_grid_loses_nothing(self, expected):
        """The headline resilience claim: -9 a shard while its workers
        are busy; the grid still completes bit-identically."""
        proc_a, addr_a = _spawn_shard(shm=False)
        proc_b, addr_b = _spawn_shard(shm=False)
        killed = False
        try:
            router = ShardRouter(
                [addr_a, addr_b], token=TOKEN,
                retry=RetryPolicy(attempts=2, base=0.05))
            outcome = {}

            def run():
                outcome["results"] = router.run_jobs(GRID_A)

            thread = threading.Thread(target=run)
            thread.start()
            # Kill shard A once it demonstrably holds in-flight work, so
            # the kill lands mid-grid rather than before or after it.
            with ServiceClient(addr_a, timeout=10.0, token=TOKEN) as probe:
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    busy = probe.metrics()["queue"]["in_flight"]
                    if busy > 0:
                        break
                    time.sleep(0.02)
                else:
                    pytest.fail("shard A never went busy")
            proc_a.send_signal(signal.SIGKILL)
            proc_a.wait(timeout=15)
            killed = True
            thread.join(timeout=300)
            assert not thread.is_alive(), "cluster batch hung after kill"

            assert [r.to_dict() for r in outcome["results"]] == \
                [r.to_dict() for r in expected["A"]]
            assert addr_a in router.down
            assert router.stats["failovers"] == 1
            assert router.stats["rerouted_jobs"] > 0
            # No job lost: the survivor executed the whole key space.
            with ServiceClient(addr_b, timeout=10.0, token=TOKEN) as client:
                stats = client.metrics()["queue"]["stats"]
            assert stats["executed"] + stats["cache_hits"] >= \
                len({j.content_key() for j in GRID_A})
            router.close()
        finally:
            if not killed:
                proc_a.kill()
            try:
                with ServiceClient(addr_b, timeout=5.0,
                                   token=TOKEN) as client:
                    client.shutdown()
                proc_b.wait(timeout=15)
            except Exception:
                proc_b.kill()
