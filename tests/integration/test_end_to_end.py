"""Integration tests: workloads through the full simulator stack.

These use small slices so the whole suite stays fast; the benchmark harness
runs the full-size experiments.
"""

import pytest

from repro import quick_run
from repro.experiments.runner import (
    baseline_result,
    make_predictor,
    run_workload,
    speedups,
    run_suite,
)
from repro.workloads.catalog import ALL_WORKLOADS

SMALL = dict(n_uops=6000, warmup=3000)


class TestQuickRun:
    def test_quick_run_returns_result(self):
        result = quick_run("gzip", predictor="vtage", n_uops=4000, warmup=2000)
        assert result.n_uops == 4000
        assert result.ipc > 0
        assert 0 <= result.coverage <= 1
        assert 0 <= result.accuracy <= 1

    def test_unknown_predictor_raises(self):
        with pytest.raises(ValueError):
            quick_run("gzip", predictor="martian")

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            quick_run("not-a-benchmark")


class TestPredictorFactories:
    @pytest.mark.parametrize("name", [
        "lvp", "stride", "2dstride", "ps-stride", "fcm", "dfcm", "gdiff",
        "vtage", "vtage-2dstride", "fcm-2dstride",
    ])
    def test_factory_builds_and_runs(self, name):
        result = run_workload("vpr", make_predictor(name), **SMALL)
        assert result.n_uops == SMALL["n_uops"]
        assert result.vp_eligible > 0

    def test_none_factory(self):
        assert make_predictor("none") is None

    def test_fpc_flag_changes_confidence(self):
        fpc = make_predictor("lvp", fpc=True)
        base = make_predictor("lvp", fpc=False)
        assert "FPC" in fpc.confidence.describe()
        assert "FPC" not in base.confidence.describe()

    def test_reissue_uses_reissue_vector(self):
        predictor = make_predictor("lvp", fpc=True, recovery="reissue")
        assert "1/8" in predictor.confidence.describe()


class TestCrossWorkload:
    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_every_workload_simulates(self, name):
        result = run_workload(name, make_predictor("vtage"), n_uops=3000,
                              warmup=1500)
        assert result.n_uops == 3000
        assert result.cycles > 0
        assert result.ipc < 8.01  # cannot exceed machine width

    def test_oracle_dominates_all_predictors(self):
        for name in ("gzip", "wupwise", "hmmer"):
            base = baseline_result(name, **SMALL)
            oracle = run_workload(name, make_predictor("oracle"), **SMALL)
            vtage = run_workload(name, make_predictor("vtage"), **SMALL)
            assert oracle.ipc >= base.ipc * 0.99
            assert oracle.ipc >= vtage.ipc * 0.97

    def test_speedups_helper(self):
        results = run_suite("lvp", workloads=("gzip", "vpr"), **SMALL)
        ratio = speedups(results, **SMALL)
        assert set(ratio) == {"gzip", "vpr"}
        assert all(r > 0 for r in ratio.values())


class TestRecoveryModes:
    def test_both_recovery_modes_run(self):
        for recovery in ("squash", "reissue"):
            result = run_workload(
                "crafty",
                make_predictor("2dstride", fpc=False, recovery=recovery),
                recovery=recovery,
                **SMALL,
            )
            assert result.recovery == recovery

    def test_fpc_reduces_squashes(self):
        baseline_conf = run_workload(
            "crafty", make_predictor("2dstride", fpc=False), **SMALL
        )
        fpc_conf = run_workload(
            "crafty", make_predictor("2dstride", fpc=True), **SMALL
        )
        assert fpc_conf.vp_squashes <= baseline_conf.vp_squashes
        assert fpc_conf.accuracy >= baseline_conf.accuracy - 0.005


class TestDeterminism:
    def test_same_run_twice_identical(self):
        a = run_workload("gzip", make_predictor("vtage"), **SMALL)
        b = run_workload("gzip", make_predictor("vtage"), **SMALL)
        assert a.cycles == b.cycles
        assert a.vp_used == b.vp_used
        assert a.vp_correct_used == b.vp_correct_used
