"""Service round-trip tests: daemon + concurrent clients + crash safety.

These spawn a real ``repro serve`` daemon as a subprocess and talk to it
through the real socket protocol — the acceptance criteria of the
service layer:

* two concurrent clients submitting overlapping 20-job grids get
  results **bit-identical** to in-process ``run_jobs``, with summary
  counters proving cross-client sharing (each unique spec simulates
  exactly once);
* ``SIGKILL`` of a worker mid-batch loses no jobs — the daemon requeues
  and completes them on a replacement worker;
* a daemon restarted on its ``--journal`` replays completed work into
  its cache instead of re-simulating.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.engine.api import Engine
from repro.engine.cache import ResultCache
from repro.engine.client import ServiceClient, wait_for_service
from repro.engine.executors import SerialExecutor
from repro.engine.job import SimJob
from repro.engine.service import PROTOCOL_VERSION
from repro.pipeline.result import SimResult

REPO_ROOT = Path(__file__).resolve().parents[2]

SMALL = dict(n_uops=2000, warmup=1000)

# Two overlapping 20-job grids (2 predictors x 10 workloads each,
# sharing 8 workloads => 16 overlapping jobs).
WORKLOADS = ("gzip", "wupwise", "applu", "vpr", "art", "crafty", "parser",
             "vortex", "bzip2", "gcc", "gamess", "mcf")
GRID_A = [SimJob.make(w, p, **SMALL)
          for p in ("lvp", "2dstride") for w in WORKLOADS[:10]]
GRID_B = [SimJob.make(w, p, **SMALL)
          for p in ("lvp", "2dstride") for w in WORKLOADS[2:12]]


def _spawn_daemon(socket_path, *extra_args, jobs="2"):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")) if p)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "-j", jobs, "serve",
         "--socket", str(socket_path), *map(str, extra_args)],
        env=env, stderr=subprocess.DEVNULL,
    )
    try:
        wait_for_service(socket_path, timeout=30)
    except Exception:
        proc.kill()
        raise
    return proc


def _local_results(jobs):
    engine = Engine(executor=SerialExecutor(), cache=ResultCache(None))
    return engine.run_jobs(jobs)


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """One shared daemon (2 workers) for the round-trip tests."""
    root = tmp_path_factory.mktemp("service")
    socket_path = root / "repro.sock"
    proc = _spawn_daemon(socket_path)
    yield socket_path
    try:
        with ServiceClient(socket_path, timeout=5.0) as client:
            client.shutdown()
        proc.wait(timeout=15)
    except Exception:
        proc.kill()


class TestRoundTrip:
    def test_two_concurrent_clients_bit_identical_with_sharing(self, daemon):
        with ServiceClient(daemon) as probe:
            before = probe.status()["queue"]["stats"]

        responses = {}

        def client(name, grid):
            with ServiceClient(daemon) as conn:
                responses[name] = conn.submit(grid)

        threads = [threading.Thread(target=client, args=("A", GRID_A)),
                   threading.Thread(target=client, args=("B", GRID_B))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Bit-identity against the in-process engine, per client, in
        # submission order.
        for grid, name in ((GRID_A, "A"), (GRID_B, "B")):
            remote = [SimResult.from_dict(raw)
                      for raw in responses[name]["results"]]
            local = _local_results(grid)
            assert [r.to_dict() for r in remote] == \
                [r.to_dict() for r in local], f"client {name} diverged"

        # Cross-client sharing: the daemon executed each unique spec
        # exactly once; the 16-job overlap was answered from the cache
        # or coalesced onto in-flight work.
        unique = {job.content_key() for job in GRID_A + GRID_B}
        with ServiceClient(daemon) as probe:
            after = probe.status()["queue"]["stats"]
        executed = after["executed"] - before["executed"]
        assert executed == len(unique)
        shared = sum(responses[n]["summary"]["cache_hits"]
                     + responses[n]["summary"]["coalesced"]
                     for n in ("A", "B"))
        assert shared == len(GRID_A) + len(GRID_B) - len(unique)

    def test_resubmission_is_pure_cache_hits(self, daemon):
        with ServiceClient(daemon) as conn:
            response = conn.submit(GRID_A)
        assert response["summary"]["cache_hits"] == len(GRID_A)
        assert response["summary"]["enqueued"] == 0

    def test_no_wait_ticket_flow(self, daemon):
        jobs = [SimJob.make("milc", "lvp", **SMALL),
                SimJob.make("namd", "lvp", **SMALL)]
        with ServiceClient(daemon) as conn:
            submitted = conn.submit(jobs, wait=False)
            ticket = submitted["ticket"]
            deadline = time.monotonic() + 60.0
            while True:
                response = conn.results(ticket)
                if not response.get("pending"):
                    break
                assert time.monotonic() < deadline, "ticket never completed"
                time.sleep(0.05)
        remote = [SimResult.from_dict(raw) for raw in response["results"]]
        local = _local_results(jobs)
        assert [r.to_dict() for r in remote] == [r.to_dict() for r in local]
        # Completed tickets stay fetchable (re-polls are idempotent).
        with ServiceClient(daemon) as conn:
            again = conn.results(ticket)
        assert again["results"] == response["results"]

    def test_status_and_ping_shape(self, daemon):
        with ServiceClient(daemon) as conn:
            server = conn.ping()
            status = conn.status()
        assert server["workers"] == 2
        assert server["protocol"] == PROTOCOL_VERSION
        workers = status["queue"]["workers"]
        assert len(workers) == 2
        assert all(w["alive"] for w in workers)
        stats = status["queue"]["stats"]
        assert stats["submitted"] >= stats["executed"]

    def test_sigkill_worker_mid_batch_loses_no_jobs(self, daemon):
        # Larger jobs so the kill lands while the batch is in flight.
        jobs = [SimJob.make(w, "vtage", n_uops=14000, warmup=7000)
                for w in ("gzip", "gcc", "crafty", "applu", "bzip2", "namd")]
        with ServiceClient(daemon) as conn:
            submitted = conn.submit(jobs, wait=False)
            ticket = submitted["ticket"]
            victim = None
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                busy = [w for w in conn.status()["queue"]["workers"]
                        if w["task"] and w["alive"]]
                if busy:
                    victim = busy[0]["pid"]
                    break
                time.sleep(0.02)
            assert victim is not None, "no worker ever went busy"
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 120.0
            while True:
                response = conn.results(ticket)
                if not response.get("pending"):
                    break
                assert time.monotonic() < deadline, "batch never completed"
                time.sleep(0.05)
            status = conn.status()
        assert status["queue"]["restarts"] >= 1
        assert status["queue"]["stats"]["requeued"] >= 1
        remote = [SimResult.from_dict(raw) for raw in response["results"]]
        local = _local_results(jobs)
        assert [r.to_dict() for r in remote] == [r.to_dict() for r in local]


class TestCLIClients:
    def _run_cli(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH", ""))
            if p)
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *map(str, args)],
            env=env, capture_output=True, text=True, timeout=300,
        )

    def test_submit_and_status_verbs(self, daemon):
        out = self._run_cli("submit", "--workloads", "gzip,gcc",
                            "--predictors", "lvp", "--uops", "2000",
                            "--warmup", "1000", "--socket", daemon)
        assert out.returncode == 0, out.stderr
        assert "submitted 2 job(s)" in out.stdout
        assert out.stdout.count("IPC") == 2
        status = self._run_cli("status", "--socket", daemon)
        assert status.returncode == 0, status.stderr
        assert "workers (2):" in status.stdout

    def test_campaign_service_backend(self, daemon):
        out = self._run_cli("campaign", "run", "fig4", "--backend", "service",
                            "--socket", daemon, "--workloads", "gzip",
                            "--uops", "1500", "--warmup", "750")
        assert out.returncode == 0, out.stderr
        assert "9 unique jobs" in out.stdout

    def test_submit_unknown_predictor_fails_cleanly(self, daemon):
        out = self._run_cli("submit", "--workloads", "gzip",
                            "--predictors", "martian", "--socket", daemon)
        assert out.returncode != 0
        assert "unknown predictors" in out.stderr


class TestRestartSafety:
    def test_journal_replay_across_daemon_restart(self, tmp_path):
        socket_path = tmp_path / "restart.sock"
        journal = tmp_path / "service.jsonl"
        jobs = [SimJob.make(w, "lvp", **SMALL) for w in ("gzip", "gcc")]

        proc = _spawn_daemon(socket_path, "--journal", journal)
        try:
            with ServiceClient(socket_path) as conn:
                first = conn.submit(jobs)
                conn.shutdown()
            proc.wait(timeout=15)
        finally:
            if proc.poll() is None:
                proc.kill()

        proc = _spawn_daemon(socket_path, "--journal", journal)
        try:
            with ServiceClient(socket_path) as conn:
                second = conn.submit(jobs)
                status = conn.status()
                conn.shutdown()
            proc.wait(timeout=15)
        finally:
            if proc.poll() is None:
                proc.kill()

        # The restarted daemon answered everything from the journal.
        assert second["summary"]["cache_hits"] == len(jobs)
        assert second["summary"]["enqueued"] == 0
        assert status["journal"]["replayed"] == len(jobs)
        assert second["results"] == first["results"]


class TestExample:
    def test_service_client_example_smoke(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH", ""))
            if p)
        out = subprocess.run(
            [sys.executable, str(REPO_ROOT / "examples" / "service_client.py"),
             "1500"],
            env=env, capture_output=True, text=True, timeout=300,
            cwd=tmp_path,
        )
        assert out.returncode == 0, out.stderr
        assert "cross-client sharing saved" in out.stdout
        assert "bit-identical" in out.stdout
