#!/usr/bin/env python3
"""Scenario: why commit-time squashing needs FPC (Sections 3.1, 8.2.1/8.2.4).

Sweeps the 2x2 of {baseline 3-bit, FPC} x {squash-at-commit, selective
reissue} on a low-baseline-accuracy workload, reproducing the paper's
argument end to end:

* plain counters + squash  -> slowdown (expensive mispredictions);
* plain counters + reissue -> rescued (cheap recovery);
* FPC + either             -> gains, nearly identical across mechanisms.

Usage::

    PYTHONPATH=src python examples/recovery_comparison.py

The analytic half recomputes the paper's Section 3.1 cycles-per-kilo-
instruction model (compare against the printed paper values); the
simulated half runs the 2×2 grid on crafty and should show the FPC rows
within a few percent of each other while the 3-bit/squash row loses.
The full-size versions of this comparison are Figures 4 and 5:
``repro campaign run fig4 --render`` / ``repro campaign run fig5
--render`` (add ``--checkpoint-dir runs/`` to make them resumable).
"""

from repro.analysis.cost_model import (
    PAPER_SCENARIOS,
    recovery_benefit_per_kilo_instruction,
)
from repro.experiments.runner import (
    baseline_result,
    make_predictor,
    run_workload,
)

WORKLOAD = "crafty"
SIZES = dict(n_uops=24_000, warmup=12_000)


def analytic_model() -> None:
    print("== Analytic model (Section 3.1) ==")
    print("   coverage 40%, accuracy 95%  vs  coverage 30%, accuracy 99.75%")
    for scenario in PAPER_SCENARIOS:
        loose = recovery_benefit_per_kilo_instruction(scenario, 0.40, 0.95)
        tight = recovery_benefit_per_kilo_instruction(scenario, 0.30, 0.9975)
        print(f"   {scenario.name:<18} {loose:+8.0f}   {tight:+8.0f}  cycles/Kinsn")
    print()


def simulated() -> None:
    print(f"== Simulated on {WORKLOAD} (Table 2 core) ==")
    base = baseline_result(WORKLOAD, **SIZES)
    print(f"   baseline IPC {base.ipc:.2f}")
    for fpc in (False, True):
        for recovery in ("squash", "reissue"):
            predictor = make_predictor("2dstride", fpc=fpc, recovery=recovery)
            result = run_workload(WORKLOAD, predictor, recovery=recovery, **SIZES)
            label = f"{'FPC' if fpc else '3-bit'} + {recovery}"
            print(
                f"   {label:<18} speedup {result.speedup_over(base):5.3f}  "
                f"acc {result.accuracy:7.3%}  "
                f"squashes {result.vp_squashes:4d}  reissues {result.vp_reissues:4d}"
            )
    print()
    print("   Claim check: with FPC the two recovery mechanisms should land")
    print("   within a few percent of each other (Fig. 4b vs Fig. 5b).")


if __name__ == "__main__":
    analytic_model()
    simulated()
