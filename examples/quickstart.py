#!/usr/bin/env python3
"""Quickstart: predict a value stream, then speed up a whole workload.

Three stops, each one layer deeper into the stack:

1. *trace-driven accuracy* — run three predictors over the gcc workload's
   value stream with no timing model, and watch VTAGE win on
   branch-history-correlated values;
2. *Forward Probabilistic Counters* (paper Section 5) — see FPC trade
   coverage for the >99.5 % accuracy that commit-time squash recovery
   needs, on crafty's almost-stable values;
3. *full pipeline* — a Table 2 core simulation of h264ref showing the
   paper's Section 8.2.2 shape: small coverage, large speedup, because
   the covered divisions gate the critical path.

Usage::

    PYTHONPATH=src python examples/quickstart.py

Runs in well under a minute; expect section 3 to report a speedup around
1.2-1.3x with coverage of only a few percent.  From here:
``examples/recovery_comparison.py`` for the recovery-mechanism argument,
``examples/predictor_shootout.py`` for the cross-predictor campaign, and
``repro figure 4`` for a full paper figure.
"""

from repro import quick_run
from repro.analysis.metrics import evaluate_predictor
from repro.core import ForwardProbabilisticCounters, VTAGEPredictor
from repro.core.confidence import ConfidencePolicy
from repro.predictors import LastValuePredictor, TwoDeltaStridePredictor
from repro.workloads import build_trace


def predictor_accuracy_demo() -> None:
    """Trace-driven accuracy/coverage, no timing model involved."""
    print("== 1. Predictor accuracy on the gcc workload ==")
    trace = build_trace("gcc", 30_000)
    for predictor in (
        LastValuePredictor(confidence=ConfidencePolicy()),
        TwoDeltaStridePredictor(confidence=ConfidencePolicy()),
        VTAGEPredictor(confidence=ConfidencePolicy()),
    ):
        stats = evaluate_predictor(trace, predictor, warmup=10_000)
        print(
            f"  {predictor.name:<10} coverage {stats.coverage:6.1%}  "
            f"accuracy {stats.accuracy:8.3%}"
        )
    print("  (gcc's node kinds follow the branch history: VTAGE's home turf)")
    print()


def fpc_demo() -> None:
    """FPC pushes accuracy up by making confidence harder to earn."""
    print("== 2. Forward Probabilistic Counters (Section 5) ==")
    trace = build_trace("crafty", 30_000)
    for label, policy in (
        ("3-bit baseline", ConfidencePolicy(bits=3)),
        ("FPC (squash)", ForwardProbabilisticCounters.for_squash()),
    ):
        predictor = LastValuePredictor(confidence=policy)
        stats = evaluate_predictor(trace, predictor, warmup=10_000,
                                   training_delay=30)
        print(
            f"  {label:<16} coverage {stats.coverage:6.1%}  "
            f"accuracy {stats.accuracy:8.3%}"
        )
    print("  (crafty's almost-stable values trap plain counters; FPC trades")
    print("   coverage for the >99.5% accuracy commit-time recovery needs)")
    print()


def pipeline_demo() -> None:
    """Full pipeline simulation: speedup over the no-VP baseline."""
    print("== 3. End-to-end speedup (Table 2 core, squash at commit) ==")
    base = quick_run("h264ref", predictor="none", n_uops=24_000, warmup=12_000)
    hybrid = quick_run("h264ref", predictor="vtage-2dstride",
                       n_uops=24_000, warmup=12_000)
    print(f"  baseline IPC            {base.ipc:5.2f}")
    print(f"  VTAGE+2D-Stride IPC     {hybrid.ipc:5.2f}")
    print(f"  speedup                 {hybrid.speedup_over(base):5.2f}x")
    print(f"  coverage / accuracy     {hybrid.coverage:5.1%} / {hybrid.accuracy:7.3%}")
    print(f"  value-misprediction squashes: {hybrid.vp_squashes}")
    print("  (h264ref: a small covered fraction gates the critical path —")
    print("   few predictions, large payoff, as in Section 8.2.2)")


if __name__ == "__main__":
    predictor_accuracy_demo()
    fpc_demo()
    pipeline_demo()
