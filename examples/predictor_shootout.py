#!/usr/bin/env python3
"""Scenario: which predictor family wins where (Sections 8.2.3 and 8.3).

Declares the whole comparison as one :class:`~repro.engine.CampaignSpec`
— six predictor configurations × seven behaviourally distinct workloads,
plus the no-VP baselines — executes it through
:func:`~repro.engine.run_campaign`, and prints the speedup matrix (the
compressed version of Figures 4(b) and 7(a)) straight off the campaign
result's aggregation hooks.

Because the comparison *is* a campaign, the usual campaign machinery
applies for free: ``REPRO_JOBS=4`` runs the grid on a process pool,
``REPRO_CACHE_DIR`` makes re-runs instant, and passing a journal path as
the second argument makes the sweep resumable after a kill.

Usage::

    python examples/predictor_shootout.py [n_uops] [journal.jsonl]

    # e.g. a bigger slice, parallel, resumable:
    REPRO_JOBS=4 python examples/predictor_shootout.py 48000 shootout.jsonl

Expected output: a 7×6 table of speedups over the no-VP baseline, with
2D-Stride leading on wupwise/bzip2, the context-based predictors leading
on gcc/applu, and the VTAGE+2D-Stride hybrid at least matching the best
single scheme everywhere (Section 8.3).
"""

import sys

from repro.engine import AxisBlock, CampaignSpec, run_campaign
from repro.engine.campaign import progress_printer
from repro.experiments.campaigns import baseline_block, render_speedup_matrix

WORKLOADS = ("wupwise", "bzip2", "gcc", "applu", "h264ref", "crafty", "namd")
SCHEMES = ("lvp", "2dstride", "fcm", "vtage", "fcm-2dstride", "vtage-2dstride")


def shootout_campaign(n_uops: int, warmup: int) -> CampaignSpec:
    """The whole shootout, declared: scheme × workload, plus baselines."""
    return CampaignSpec.union(
        "predictor-shootout",
        AxisBlock.make(
            {"predictor": list(SCHEMES), "workload": list(WORKLOADS)},
            base={"recovery": "squash", "n_uops": n_uops, "warmup": warmup},
        ),
        baseline_block(WORKLOADS, n_uops, warmup),
        meta={"workloads": WORKLOADS, "n_uops": n_uops, "warmup": warmup},
    )


def main() -> None:
    n_uops = int(sys.argv[1]) if len(sys.argv) > 1 else 24_000
    journal = sys.argv[2] if len(sys.argv) > 2 else None
    spec = shootout_campaign(n_uops, warmup=n_uops // 2)

    result = run_campaign(spec, journal=journal,
                          progress=progress_printer(spec.name,
                                                    stream=sys.stdout))
    print()
    print(f"  {result.stats['total']} jobs: "
          f"{result.stats['from_journal']} from journal, "
          f"{result.stats['executed']} executed")
    print()
    print(render_speedup_matrix(
        result, SCHEMES,
        "Speedup over no-VP baseline (FPC, squash at commit)"))
    print()
    print("Expected shapes: 2D-Stride leads on wupwise/bzip2; VTAGE leads on")
    print("gcc/applu; the VTAGE+2D-Stride hybrid is at least as good as the")
    print("best single scheme everywhere (Section 8.3).")


if __name__ == "__main__":
    main()
