#!/usr/bin/env python3
"""Scenario: which predictor family wins where (Sections 8.2.3 and 8.3).

Runs the four single-scheme predictors plus the two hybrids over a set of
behaviourally distinct workloads and prints a speedup matrix — the
compressed version of Figures 4(b) and 7(a).

Run:  python examples/predictor_shootout.py [n_uops]
"""

import sys

from repro.analysis.report import format_table, geometric_mean
from repro.experiments.runner import (
    baseline_result,
    make_predictor,
    run_workload,
)

WORKLOADS = ("wupwise", "bzip2", "gcc", "applu", "h264ref", "crafty", "namd")
SCHEMES = ("lvp", "2dstride", "fcm", "vtage", "fcm-2dstride", "vtage-2dstride")


def main() -> None:
    n_uops = int(sys.argv[1]) if len(sys.argv) > 1 else 24_000
    warmup = n_uops // 2
    rows = []
    per_scheme: dict[str, list[float]] = {s: [] for s in SCHEMES}
    for workload in WORKLOADS:
        base = baseline_result(workload, n_uops=n_uops, warmup=warmup)
        row = [workload]
        for scheme in SCHEMES:
            result = run_workload(
                workload, make_predictor(scheme, fpc=True),
                n_uops=n_uops, warmup=warmup,
            )
            speedup = result.speedup_over(base)
            per_scheme[scheme].append(speedup)
            row.append(f"{speedup:.3f}")
        rows.append(row)
        print(f"  ... {workload} done", flush=True)
    rows.append(
        ["gmean"] + [f"{geometric_mean(per_scheme[s]):.3f}" for s in SCHEMES]
    )
    print()
    print(format_table(["benchmark"] + list(SCHEMES), rows,
                       title="Speedup over no-VP baseline (FPC, squash at commit)"))
    print()
    print("Expected shapes: 2D-Stride leads on wupwise/bzip2; VTAGE leads on")
    print("gcc/applu; the VTAGE+2D-Stride hybrid is at least as good as the")
    print("best single scheme everywhere (Section 8.3).")


if __name__ == "__main__":
    main()
