#!/usr/bin/env python3
"""Scenario: one simulation daemon, two clients, one shared hot cache.

Starts a ``repro serve`` daemon on a private socket, then plays two
clients submitting *overlapping* predictor grids concurrently — the
situation the service layer exists for.  The daemon deduplicates across
clients: every unique job simulates exactly once, the second client's
overlap is answered from the shared cache or attached to in-flight work,
and both clients get results bit-identical to an in-process
``run_jobs`` call (asserted at the end).

Usage::

    python examples/service_client.py [n_uops] [workers]

    # bigger slice, 4 service workers:
    python examples/service_client.py 24000 4

Expected output: client A executes its whole grid; client B — submitted
concurrently, sharing three of its four workloads — reports most of its
jobs as cache hits/coalesced rather than newly enqueued, and the
daemon's lifetime counters show fewer simulations executed than jobs
submitted.  See docs/architecture.md for the data-flow picture.
"""

import os
import subprocess
import sys
import tempfile
import threading
import time

from repro.engine.client import ServiceClient, wait_for_service
from repro.engine.executors import SerialExecutor
from repro.engine.job import SimJob

#: Client A sweeps these workloads; client B overlaps on all but one.
WORKLOADS_A = ("gzip", "gcc", "wupwise", "applu")
WORKLOADS_B = ("gcc", "wupwise", "applu", "crafty")
PREDICTORS = ("lvp", "2dstride")


def grid(workloads, n_uops: int) -> list[SimJob]:
    """The predictors × workloads job grid one client submits."""
    return [SimJob.make(w, p, n_uops=n_uops, warmup=n_uops // 2)
            for p in PREDICTORS for w in workloads]


def main(n_uops: int = 4000, workers: int = 2,
         socket_path: str | None = None) -> int:
    """Run the whole scenario; returns a process exit code."""
    own_daemon = socket_path is None
    if own_daemon:
        socket_path = os.path.join(tempfile.mkdtemp(prefix="repro-svc-"),
                                   "service.sock")
        # --cache-dir "" forces a memory-only cache: the executed-counts
        # asserted below must not be satisfied by a warm REPRO_CACHE_DIR.
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "-j", str(workers),
             "--cache-dir", "", "serve", "--socket", socket_path],
            env={**os.environ,
                 "PYTHONPATH": os.pathsep.join(
                     p for p in ("src", os.environ.get("PYTHONPATH", ""))
                     if p)},
        )
    wait_for_service(socket_path, timeout=30)

    responses: dict[str, dict] = {}

    def client(name: str, workloads) -> None:
        with ServiceClient(socket_path) as conn:
            responses[name] = conn.submit(grid(workloads, n_uops))

    # Two concurrent clients, overlapping grids.
    threads = [threading.Thread(target=client, args=("A", WORKLOADS_A)),
               threading.Thread(target=client, args=("B", WORKLOADS_B))]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    unique = {job.content_key() for w in (WORKLOADS_A, WORKLOADS_B)
              for job in grid(w, n_uops)}
    for name, workloads in (("A", WORKLOADS_A), ("B", WORKLOADS_B)):
        summary = responses[name]["summary"]
        print(f"client {name}: {summary['jobs']} jobs — "
              f"{summary['enqueued']} enqueued, "
              f"{summary['cache_hits']} cache hits, "
              f"{summary['coalesced']} coalesced with in-flight work")

    with ServiceClient(socket_path) as conn:
        stats = conn.status()["queue"]["stats"]
        print(f"daemon: {stats['submitted']} jobs submitted, "
              f"{stats['executed']} simulations executed "
              f"({len(unique)} unique specs) in {elapsed:.2f}s")
        shared = stats["submitted"] - stats["executed"]
        print(f"cross-client sharing saved {shared} simulation(s)")

        # Bit-identity: the daemon's results equal an in-process run.
        local = {job.content_key(): result for job, result in zip(
            grid(WORKLOADS_A, n_uops),
            SerialExecutor().run(grid(WORKLOADS_A, n_uops)))}
        from repro.pipeline.result import SimResult
        remote = [SimResult.from_dict(raw)
                  for raw in responses["A"]["results"]]
        assert all(
            remote[i].to_dict() == local[job.content_key()].to_dict()
            for i, job in enumerate(grid(WORKLOADS_A, n_uops))
        ), "service results diverged from the in-process engine"
        print("service results are bit-identical to in-process run_jobs")

        if own_daemon:
            conn.shutdown()
    if own_daemon:
        daemon.wait(timeout=15)
    assert stats["executed"] == len(unique), \
        "expected exactly one execution per unique job spec"
    return 0


if __name__ == "__main__":
    n_uops = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    raise SystemExit(main(n_uops, workers))
