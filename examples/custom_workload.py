#!/usr/bin/env python3
"""Scenario: bring your own workload to the simulator.

Shows the full public workflow for a downstream user: write a kernel with
the TraceBuilder (the same API the 19 built-in benchmarks use), inspect the
trace, and measure how much value prediction helps it.

The kernel here is a toy JSON-ish tokenizer: a dispatch loop whose token
kinds correlate with branch history (VTAGE food) around a memory-carried
cursor (stride food).

Usage::

    PYTHONPATH=src python examples/custom_workload.py

Expect the trace statistics first, then a predictor comparison where
VTAGE's coverage beats 2D-Stride's (the kind stream follows control flow,
not arithmetic), and finally the hybrid's end-to-end speedup.

If your workload is better described by *knobs* than by a hand-written
kernel, the parameterised scenario family gets you there without code:
``repro run scenario-c4-e25-l90`` simulates a pointer-chase/branch-
entropy/value-locality kernel, and ``repro campaign run scenario-sweep``
sweeps those knobs as campaign axes (see repro.workloads.scenarios).
"""

from repro.analysis.metrics import evaluate_predictor
from repro.core import ForwardProbabilisticCounters, HybridPredictor, VTAGEPredictor
from repro.pipeline import simulate
from repro.predictors import TwoDeltaStridePredictor
from repro.workloads import TraceBuilder


def tokenizer_kernel(b: TraceBuilder, n_target: int) -> None:
    """Tokenize a repetitive key-value stream."""
    rng = b.rng
    kinds = []  # grammar: { key : value , key : value ... }
    while len(kinds) < 4096:
        kinds.extend([0, 1, 2, 1, 3] * rng.randrange(2, 6))  # {, k, :, v, ...
        kinds.append(4)  # }
    kind_class = [11, 23, 37, 41, 53]
    table_base = b.alloc(len(kind_class) * 8)
    cursor_slot = b.alloc(8)
    cursor = 0
    i = 0
    while b.n < n_target:
        kind = kinds[i % len(kinds)]
        # Memory-carried cursor: reload, advance, store (stride stream).
        b.load("tok_ld_cur", "cur", cursor_slot, cursor)
        cursor += 4
        b.alu("tok_adv", "cur", ["cur"], cursor)
        b.store("tok_st_cur", cursor_slot, "cur")
        # Dispatch on the token kind: branches encode it into the history.
        b.branch("tok_is_struct", taken=kind in (0, 4), target_label="tok_ld_cur",
                 srcs=["cur"])
        b.branch("tok_is_key", taken=kind == 1, target_label="tok_ld_cur",
                 srcs=["cur"])
        # Class lookup: value determined by the (history-visible) kind.
        cls = kind_class[kind]
        b.load("tok_ld_cls", "cls", table_base + kind * 8, cls, addr_srcs=["cur"])
        b.alu("tok_acc", "acc", ["cls", "acc"] if i else ["cls"], cls * (i + 1))
        i += 1


def main() -> None:
    builder = TraceBuilder("tokenizer", seed=42)
    tokenizer_kernel(builder, 36_000)
    trace = builder.trace
    stats = trace.stats()
    print(f"generated {len(trace)} µops: "
          f"{stats.branch_ratio:.0%} branches, {stats.load_ratio:.0%} loads, "
          f"{stats.n_value_producers} value producers")
    print(f"back-to-back eligible fraction: {trace.back_to_back_fraction():.1%}")
    print()

    print("trace-driven predictor comparison:")
    for predictor in (
        TwoDeltaStridePredictor(confidence=ForwardProbabilisticCounters.for_squash()),
        VTAGEPredictor(confidence=ForwardProbabilisticCounters.for_squash()),
    ):
        s = evaluate_predictor(trace, predictor, warmup=12_000, training_delay=30)
        print(f"  {predictor.name:<10} coverage {s.coverage:6.1%} "
              f"accuracy {s.accuracy:8.3%}")
    print()

    print("full-pipeline speedup with the paper's hybrid:")
    base = simulate(trace, None, warmup=12_000, workload="tokenizer")
    hybrid = HybridPredictor(
        VTAGEPredictor(confidence=ForwardProbabilisticCounters.for_squash()),
        TwoDeltaStridePredictor(confidence=ForwardProbabilisticCounters.for_squash()),
    )
    vp = simulate(trace, hybrid, warmup=12_000, workload="tokenizer")
    print(f"  baseline IPC {base.ipc:.2f} -> with VP {vp.ipc:.2f} "
          f"({vp.speedup_over(base):.2f}x), squashes {vp.vp_squashes}")


if __name__ == "__main__":
    main()
