"""Bench target for Figure 1 / Section 3.2: back-to-back feasibility."""

from conftest import run_once

from repro.experiments.figures import figure1
from repro.workloads.catalog import ALL_WORKLOADS


def test_fig1_backtoback(benchmark):
    """Measure the fraction of VP-eligible µops whose previous occurrence
    is within one fetch group, and render the critical-path comparison.

    Paper reference: "as much as 15.3% (3.4% a-mean) fetched instructions
    eligible for VP ... fetched in the previous cycle (8-wide Fetch)".
    """
    fig = run_once(benchmark, figure1, workloads=ALL_WORKLOADS, n_uops=6000)
    # Shape: back-to-back occurrences exist and vary across benchmarks.
    assert fig.series["max"] > 0.01
    assert 0.0 < fig.series["amean"] < 0.5
    # The critical-path verdicts of Fig. 1 itself.
    paths = fig.series["critical_paths"]
    assert paths["LVP"]["back_to_back_safe"]
    assert paths["VTAGE"]["back_to_back_safe"]
    assert not paths["o4-FCM"]["back_to_back_safe"]
