"""Bench target for Figure 5: idealistic selective reissue."""

from conftest import run_once

from repro.experiments.figures import figure5
from repro.experiments.runner import make_predictor, run_workload, baseline_result

WORKLOADS = ("crafty", "wupwise")


def test_fig5_reissue(benchmark, bench_sizes):
    """Figure 5, scaled down.

    Shapes (Section 8.2.4): selective reissue rescues the *baseline*
    confidence counters (its cheap recovery tolerates their mispredicts),
    and with FPC the recovery mechanism barely matters."""
    fig = run_once(benchmark, figure5, workloads=WORKLOADS, **bench_sizes)
    baseline = fig.series["baseline"]
    fpc = fig.series["FPC"]
    # Under reissue, even baseline counters should not collapse: everything
    # stays within a few percent of 1.0 or above.
    for scheme, data in baseline.items():
        for w, speedup in data["speedup"].items():
            assert speedup > 0.93, (scheme, w, speedup)
    for scheme, data in fpc.items():
        for w, speedup in data["speedup"].items():
            assert speedup > 0.97, (scheme, w, speedup)


def test_fig45_fpc_recovery_indifference(benchmark, bench_sizes):
    """The paper's headline: with FPC, squash-at-commit performs within a
    whisker of idealized selective reissue (Figs. 4b vs 5b)."""

    def run_pair():
        out = {}
        for recovery in ("squash", "reissue"):
            r = run_workload(
                "wupwise",
                make_predictor("2dstride", fpc=True, recovery=recovery),
                recovery=recovery,
                **bench_sizes,
            )
            base = baseline_result("wupwise", **bench_sizes)
            out[recovery] = r.speedup_over(base)
        return out

    pair = run_once(benchmark, run_pair)
    # Within ~12% relative at these short slices (FPC warm-up noise); the
    # full-length runs in EXPERIMENTS.md land within a few percent.
    gap = abs(pair["squash"] - pair["reissue"]) / max(pair.values())
    assert gap < 0.12, pair
    assert min(pair.values()) > 1.0, pair  # both mechanisms show the gain
