"""Bench target for Figure 7: hybrid predictors."""

from conftest import run_once

from repro.analysis.report import geometric_mean
from repro.experiments.figures import figure7

WORKLOADS = ("wupwise", "gcc", "hmmer")


def test_fig7_hybrid(benchmark, bench_sizes):
    """Figure 7 shapes (Section 8.3):

    * hybrids perform at least on par with the best of their components;
    * VTAGE+2D-Stride is at least as good as o4-FCM+2D-Stride on average;
    * hybrid coverage exceeds each component's (computational and
      context-based predictors predict different instructions).
    """
    fig = run_once(benchmark, figure7, workloads=WORKLOADS, **bench_sizes)
    series = fig.series

    for w in WORKLOADS:
        best_single = max(
            series["2dstride"]["speedup"][w],
            series["vtage"]["speedup"][w],
        )
        hybrid = series["vtage-2dstride"]["speedup"][w]
        assert hybrid >= best_single - 0.06, (w, hybrid, best_single)

    vt_mean = geometric_mean(series["vtage-2dstride"]["speedup"].values())
    fcm_mean = geometric_mean(series["fcm-2dstride"]["speedup"].values())
    assert vt_mean >= fcm_mean - 0.02

    for w in WORKLOADS:
        hybrid_cov = series["vtage-2dstride"]["coverage"][w]
        assert hybrid_cov >= series["vtage"]["coverage"][w] - 0.05
        assert hybrid_cov >= series["2dstride"]["coverage"][w] - 0.05
