"""Where benchmark reports land, and the provenance they carry.

Emitters never write the committed ``BENCH_*.json`` reports at all:
every run writes into the scratch directory named by ``REPRO_BENCH_DIR``
(default ``bench_out/`` at the repository root, gitignored).  The
checked-in reports at the repo root change only through the guarded
promote step — ``REPRO_BENCH_PROMOTE=1 repro bench promote`` — which
validates the report's provenance (a real repeat count, a recorded load
average, a machine that was not saturated) before copying atomically.
A casual ``pytest benchmarks/`` can therefore never silently drift a
committed number while the regression gates keep reading the committed
baseline.

Every report carries a ``run`` block (load average, repeat count,
simulation-path mode) so a promoted number can be audited later: a
measurement taken on a loaded machine, or with the fast paths disabled,
is visible as such in the report itself — and it is exactly what the
promote guard in :mod:`repro.bench` checks.
"""

import os
from pathlib import Path

from repro.pipeline import ckernel
from repro.pipeline.fastsim import fast_kernel_enabled, fast_sim_enabled

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Scratch directory for benchmark reports (created on demand).
#: Shared with :mod:`repro.bench`, which promotes out of it.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def bench_output_path(name: str) -> Path:
    """Resolve where report *name* (e.g. ``BENCH_core.json``) is written.

    Always ``$REPRO_BENCH_DIR/name`` (scratch, gitignored) — promotion
    into the committed baseline is ``repro bench promote``'s job, never
    the emitter's.
    """
    out = Path(os.environ.get(BENCH_DIR_ENV) or REPO_ROOT / "bench_out")
    out.mkdir(parents=True, exist_ok=True)
    return out / name


def simulation_mode() -> str:
    """Which cycle-loop path this process would take for eligible configs."""
    if not fast_sim_enabled():
        return "legacy"
    if fast_kernel_enabled() and ckernel.kernel_available():
        return "kernel-c"
    return "kernel-python"


def run_metadata(rounds: int) -> dict:
    """Provenance block embedded in every benchmark report.

    ``promoted`` is stamped ``False`` at emit time;
    :func:`repro.bench.promote` flips it when (and only when) the report
    passes the guard into the committed baseline.
    """
    try:
        load_1m = round(os.getloadavg()[0], 2)
    except (OSError, AttributeError):  # pragma: no cover - no getloadavg
        load_1m = None
    return {
        "rounds": rounds,
        "load_avg_1m": load_1m,
        "cpu_count": os.cpu_count(),
        "simulation_mode": simulation_mode(),
        "promoted": False,
    }
