"""Ablation bench: predict all µops vs loads only (Section 7.2).

The paper predicts "every µ-op producing a register explicitly used by
subsequent µ-ops" rather than only loads, as most early VP work did.  This
ablation quantifies what the broader scope buys.
"""

from conftest import run_once

from repro.experiments.runner import make_predictor
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.workloads.catalog import build_trace

WORKLOADS = ("hmmer", "wupwise")


def run_scope_sweep(n_uops=8000, warmup=4000):
    out = {}
    for workload in WORKLOADS:
        trace = build_trace(workload, warmup + n_uops)
        base = simulate(trace, None, warmup=warmup, workload=workload)
        for scope in ("all", "loads"):
            cfg = CoreConfig(vp_scope=scope)
            result = simulate(trace, make_predictor("vtage-2dstride"),
                              config=cfg, warmup=warmup, workload=workload)
            out[(workload, scope)] = result.speedup_over(base)
    return out


def test_ablation_vp_scope(benchmark):
    """Finding: where the critical chain runs through memory (hmmer's
    score rows), loads-only VP captures essentially the whole benefit;
    where ALU results carry part of the chain (wupwise's index arithmetic)
    the paper's all-µops scope is strictly better — the quantitative
    version of the Section 7.2 methodology choice."""
    sweep = run_once(benchmark, run_scope_sweep)
    for workload in WORKLOADS:
        all_scope = sweep[(workload, "all")]
        loads_only = sweep[(workload, "loads")]
        assert all_scope > 1.1, (workload, sweep)
        assert loads_only > 1.1, (workload, sweep)
        # Loads-only never meaningfully beats the full scope.
        assert loads_only <= all_scope * 1.12, (workload, sweep)
    # And somewhere the full scope is strictly better.
    assert any(
        sweep[(w, "all")] > sweep[(w, "loads")] * 1.05 for w in WORKLOADS
    ), sweep
