"""Cluster-level wall-clock benchmark: what a second shard buys.

``test_bench_cluster_json`` runs the same fixed 24-job grid as
``BENCH_grid.json`` (6 workloads × 4 predictor configs) through the
cluster plane in two fleet shapes:

* ``shards-1`` — one TCP shard, all routing trivially lands on it;
* ``shards-2`` — two TCP shards, the consistent-hash ring splits the
  grid's content keys between them.

Every mode gets **fresh daemons with memory-only result caches** (so
wall-clock measures simulation + transport, never a warm result cache)
over a **shared pre-warmed trace store** (so no mode pays one-off trace
generation — the cold/warm trace story is ``BENCH_grid.json``'s job).
Per-shard worker count is held fixed, so the 1→2 shard delta is the
honest scale-out story: more shards = more worker processes + ring
fan-out overhead.

Wall-clock lands in ``BENCH_cluster.json`` in the scratch bench
directory (``$REPRO_BENCH_DIR``, default ``bench_out/``; the committed
copy only changes through ``repro bench promote`` — see
:mod:`bench_io`).  Timing is *reported*, not gated — shared CI runners
are far too noisy for fleet-level wall-clock floors, and with fewer
cores than total workers the 2-shard row measures distribution
overhead rather than speedup (``cpu_count`` is recorded for exactly
that reason).  What *is* asserted is structural and deterministic:
every mode's results are bit-identical to a local serial run, the
2-shard ring actually spreads the grid (each shard executes ≥ 1 job),
and no key is simulated twice cluster-wide.
"""

import asyncio
import json
import os
import platform
import sys
import threading
import time

import bench_io
from repro.engine.api import Engine
from repro.engine.cache import ResultCache
from repro.engine.client import ServiceClient, ServiceError, wait_for_service
from repro.engine.cluster import ShardRouter
from repro.engine.executors import SerialExecutor
from repro.engine.job import SimJob
from repro.engine.service import SimService
from repro.workloads import catalog
from repro.workloads.store import TRACE_DIR_ENV

#: Same grid as BENCH_grid.json so the two reports are comparable.
GRID_WORKLOADS = ("gzip", "gcc", "wupwise", "crafty", "milc", "h264ref")
GRID_PREDICTORS = ("none", "lvp", "2dstride", "vtage")
GRID_MEASURE = 8000
GRID_WARMUP = 4000

#: Held fixed across fleet shapes (see the module docstring).
WORKERS_PER_SHARD = 2

SHARD_COUNTS = (1, 2)

#: One measured round per cell: the structural gates are deterministic
#: and the timing is reported rather than floored, so best-of-N buys
#: nothing a shared runner's noise would not immediately spend.
ROUNDS = 1


def grid_jobs() -> list[SimJob]:
    return [
        SimJob.make(w, p, n_uops=GRID_MEASURE, warmup=GRID_WARMUP)
        for p in GRID_PREDICTORS
        for w in GRID_WORKLOADS
    ]


class _Shard:
    """One in-process TCP shard with a memory-only result cache."""

    def __init__(self):
        self.service = SimService(listen="127.0.0.1:0",
                                  workers=WORKERS_PER_SHARD)
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.error = None

    def _run(self):
        try:
            asyncio.run(self.service.serve_until_shutdown())
        except BaseException as exc:  # noqa: BLE001 - surfaced by start()
            self.error = exc

    def start(self) -> str:
        self.thread.start()
        while self.service.listen_address is None:
            if self.error is not None:
                raise self.error
            time.sleep(0.02)
        wait_for_service(self.service.listen_address, timeout=60)
        return self.service.listen_address

    def stop(self):
        try:
            with ServiceClient(self.service.listen_address,
                               timeout=10.0) as client:
                client.shutdown()
        except ServiceError:
            pass
        self.thread.join(timeout=60)


def run_fleet(jobs: list[SimJob], shards: int) -> tuple[float, list, list]:
    """One measured grid run on a fresh *shards*-daemon fleet; returns
    (wall seconds, result dicts, per-shard executed counts)."""
    fleet = [_Shard() for _ in range(shards)]
    try:
        addresses = [shard.start() for shard in fleet]
        with ShardRouter(addresses) as router:
            start = time.perf_counter()
            results = router.run_jobs(jobs)
            wall = time.perf_counter() - start
            executed = [row["metrics"]["queue"]["stats"]["executed"]
                        for row in router.status()["shards"]]
        return wall, [r.to_dict() for r in results], executed
    finally:
        for shard in fleet:
            shard.stop()


def emit_bench_cluster(store_dir, path=None) -> tuple[dict, dict]:
    """Measure each fleet shape on a warm trace store and write
    BENCH_cluster.json; returns ``(report, result dicts per cell)``."""
    if path is None:
        path = bench_io.bench_output_path("BENCH_cluster.json")
    jobs = grid_jobs()
    saved = os.environ.get(TRACE_DIR_ENV)
    os.environ[TRACE_DIR_ENV] = str(store_dir)
    catalog.clear_trace_cache()
    try:
        # Pre-warm the shared store (and compute the bit-identity
        # reference) with one local serial run; the measured fleets
        # then mmap-load every trace instead of generating.
        engine = Engine(executor=SerialExecutor(), cache=ResultCache(None))
        reference = [r.to_dict() for r in engine.run_jobs(jobs)]
        cells: dict[str, dict] = {}
        results: dict[str, list] = {"local-serial": reference}
        for shards in SHARD_COUNTS:
            wall = None
            for _ in range(ROUNDS):
                round_wall, dicts, executed = run_fleet(jobs, shards)
                wall = round_wall if wall is None else min(wall, round_wall)
            cell = f"shards-{shards}"
            cells[cell] = {
                "wall_s": round(wall, 3),
                "executed_per_shard": executed,
            }
            results[cell] = dicts
        one = cells["shards-1"]["wall_s"]
        for shards in SHARD_COUNTS:
            cells[f"shards-{shards}"]["speedup_vs_1_shard"] = \
                round(one / cells[f"shards-{shards}"]["wall_s"], 3)
    finally:
        if saved is None:
            os.environ.pop(TRACE_DIR_ENV, None)
        else:
            os.environ[TRACE_DIR_ENV] = saved
        catalog.clear_trace_cache()
    report = {
        "schema": 1,
        "unit": "wall_s",
        "grid": {
            "jobs": len(jobs),
            "workloads": list(GRID_WORKLOADS),
            "predictors": list(GRID_PREDICTORS),
            "n_uops": GRID_MEASURE,
            "warmup": GRID_WARMUP,
        },
        "workers_per_shard": WORKERS_PER_SHARD,
        "shard_counts": list(SHARD_COUNTS),
        "cells": cells,
        "run": bench_io.run_metadata(ROUNDS),
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
    }
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return report, results


def test_bench_cluster_json(tmp_path):
    """Emit BENCH_cluster.json and pin the cluster's structural facts."""
    report, results = emit_bench_cluster(tmp_path / "trace-store")
    reference = results["local-serial"]
    for cell in ("shards-1", "shards-2"):
        assert results[cell] == reference, \
            f"{cell} diverged from the local serial results"
    executed = report["cells"]["shards-2"]["executed_per_shard"]
    assert all(n > 0 for n in executed), \
        f"the ring left a shard idle: {executed}"
    # No key simulated twice cluster-wide: the executed counts sum to
    # exactly the grid's unique content keys.
    assert sum(executed) == len({j.content_key() for j in grid_jobs()})
    assert sum(report["cells"]["shards-1"]["executed_per_shard"]) == \
        len({j.content_key() for j in grid_jobs()})
