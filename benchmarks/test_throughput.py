"""Microbenchmarks: raw component throughput (useful for regressions)."""

from repro.analysis.metrics import evaluate_predictor
from repro.core.confidence import ConfidencePolicy
from repro.core.vtage import VTAGEPredictor
from repro.pipeline.core import simulate
from repro.predictors.stride import TwoDeltaStridePredictor
from repro.workloads.catalog import build_trace


def test_trace_generation_throughput(benchmark):
    """Kernel VM µop generation rate."""
    trace = benchmark(build_trace, "gzip", 20000, 999, False)
    assert len(trace) >= 19000


def test_vtage_lookup_train_throughput(benchmark):
    """VTAGE predict+train rate over a real trace."""
    trace = build_trace("gcc", 12000)
    predictor = VTAGEPredictor(base_entries=8192, tagged_entries=1024,
                               confidence=ConfidencePolicy())

    def run():
        return evaluate_predictor(trace, predictor, warmup=0)

    stats = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert stats.eligible > 0


def test_stride_lookup_train_throughput(benchmark):
    trace = build_trace("wupwise", 12000)
    predictor = TwoDeltaStridePredictor(entries=8192,
                                        confidence=ConfidencePolicy())

    def run():
        return evaluate_predictor(trace, predictor, warmup=0)

    stats = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert stats.eligible > 0


def test_core_model_throughput(benchmark):
    """Cycle-model µops/second (no predictor)."""
    trace = build_trace("vpr", 12000)

    def run():
        return simulate(trace, None, warmup=0, workload="vpr")

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert result.cycles > 0
