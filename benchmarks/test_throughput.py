"""Microbenchmarks: raw component throughput (useful for regressions).

``test_bench_core_json`` is the PR-2 throughput gate: it measures
single-job simulation throughput (µops/s) on fixed slices — including the
profiled ``gcc/vtage`` 48k-µop job — writes ``BENCH_core.json`` into the
scratch directory (``$REPRO_BENCH_DIR``, default ``bench_out/``;
promote with ``repro bench promote`` — see :mod:`bench_io`), and fails
on a >30% regression against the committed
``benchmarks/bench_baseline.json``.  It needs only pytest (no
pytest-benchmark), so CI's perf-smoke job can run it standalone:

    PYTHONPATH=src python -m pytest -q benchmarks/test_throughput.py -k bench_core_json
"""

import json
import platform
import sys
import time
from pathlib import Path

import bench_io
from repro.analysis.metrics import evaluate_predictor
from repro.core.confidence import ConfidencePolicy
from repro.core.vtage import VTAGEPredictor
from repro.experiments.runner import make_predictor
from repro.pipeline.core import simulate
from repro.predictors.stride import TwoDeltaStridePredictor
from repro.workloads.catalog import build_trace

_REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE_PATH = _REPO_ROOT / "benchmarks" / "bench_baseline.json"

#: Fixed measurement slices: (workload, predictor, µops).  The first entry
#: is the job the PR-2 issue profiled (gcc/vtage over 48k µops).
BENCH_CORE_ENTRIES = (
    ("gcc", "vtage", 48_000),
    ("gcc", "none", 48_000),
    ("wupwise", "2dstride", 24_000),
    ("crafty", "vtage-2dstride", 24_000),
)

#: Allowed slowdown vs. the committed baseline before the gate fails.
REGRESSION_TOLERANCE = 0.30

#: Best-of rounds per slice (recorded in the report's ``run`` block).
ROUNDS = 5


def measure_uops_per_s(workload: str, predictor_name: str, n_uops: int,
                       rounds: int = ROUNDS) -> float:
    """Best-of-*rounds* single-job simulation throughput in µops/s.

    The trace is built (and its columnar view materialised) once up
    front — trace construction is cached per process in production and is
    not what this gate guards.  Each round gets a fresh predictor and a
    fresh core, exactly like one engine job.
    """
    trace = build_trace(workload, n_uops)
    best = 0.0
    for _ in range(rounds):
        predictor = make_predictor(predictor_name)
        start = time.perf_counter()
        simulate(trace, predictor, warmup=0, workload=workload)
        elapsed = time.perf_counter() - start
        best = max(best, n_uops / elapsed)
    return best


def emit_bench_core(path: Path | None = None) -> dict:
    """Measure every entry and write the BENCH_core.json report.

    Writes to the scratch bench directory; the committed repo-root
    copy only changes through ``repro bench promote``.
    """
    if path is None:
        path = bench_io.bench_output_path("BENCH_core.json")
    uops_per_s = {
        f"{workload}/{predictor}": round(
            measure_uops_per_s(workload, predictor, n_uops)
        )
        for workload, predictor, n_uops in BENCH_CORE_ENTRIES
    }
    report = {
        "schema": 2,
        "unit": "uops_per_s",
        "slices": {f"{w}/{p}": n for w, p, n in BENCH_CORE_ENTRIES},
        "uops_per_s": uops_per_s,
        "run": bench_io.run_metadata(ROUNDS),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
    }
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return report


def test_bench_core_json():
    """Emit BENCH_core.json and gate on >30% regression vs the baseline."""
    report = emit_bench_core()
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = []
    for key, floor in baseline["uops_per_s"].items():
        measured = report["uops_per_s"].get(key)
        assert measured is not None, f"benchmark entry {key} disappeared"
        if measured < (1.0 - REGRESSION_TOLERANCE) * floor:
            failures.append(f"{key}: {measured} < 70% of baseline {floor}")
    assert not failures, "throughput regression: " + "; ".join(failures)


def test_trace_generation_throughput(benchmark):
    """Kernel VM µop generation rate."""
    trace = benchmark(build_trace, "gzip", 20000, 999, False)
    assert len(trace) >= 19000


def test_vtage_lookup_train_throughput(benchmark):
    """VTAGE predict+train rate over a real trace."""
    trace = build_trace("gcc", 12000)
    predictor = VTAGEPredictor(base_entries=8192, tagged_entries=1024,
                               confidence=ConfidencePolicy())

    def run():
        return evaluate_predictor(trace, predictor, warmup=0)

    stats = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert stats.eligible > 0


def test_stride_lookup_train_throughput(benchmark):
    trace = build_trace("wupwise", 12000)
    predictor = TwoDeltaStridePredictor(entries=8192,
                                        confidence=ConfidencePolicy())

    def run():
        return evaluate_predictor(trace, predictor, warmup=0)

    stats = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert stats.eligible > 0


def test_core_model_throughput(benchmark):
    """Cycle-model µops/second (no predictor)."""
    trace = build_trace("vpr", 12000)

    def run():
        return simulate(trace, None, warmup=0, workload="vpr")

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert result.cycles > 0
