"""Ablation bench: VTAGE history lengths and component count (Section 6)."""

from conftest import run_once

from repro.analysis.metrics import evaluate_predictor
from repro.core.confidence import ConfidencePolicy
from repro.core.vtage import VTAGEPredictor
from repro.workloads.catalog import build_trace


def run_history_sweep():
    """Correct-and-used coverage of VTAGE variants on gcc (the most
    history-correlated workload)."""
    trace = build_trace("gcc", 30000)
    out = {}
    configs = {
        "base-only (LVP)": (),
        "2 comps (2,4)": (2, 4),
        "4 comps (2..16)": (2, 4, 8, 16),
        "6 comps (2..64)": (2, 4, 8, 16, 32, 64),
        "6 comps (4..128)": (4, 8, 16, 32, 64, 128),
    }
    for label, lengths in configs.items():
        if lengths:
            predictor = VTAGEPredictor(
                base_entries=8192, tagged_entries=1024,
                history_lengths=lengths, confidence=ConfidencePolicy(),
            )
        else:
            from repro.predictors.lvp import LastValuePredictor
            predictor = LastValuePredictor(entries=8192,
                                           confidence=ConfidencePolicy())
        stats = evaluate_predictor(trace, predictor, warmup=10000,
                                   training_delay=30)
        out[label] = stats.useful_coverage
    return out


def test_ablation_vtage_history(benchmark):
    """The geometric history series earns its keep: tagged components add
    real coverage over the LVP base on history-correlated code, and the
    paper's 2..64 configuration is near the sweet spot."""
    sweep = run_once(benchmark, run_history_sweep)
    assert sweep["6 comps (2..64)"] > sweep["base-only (LVP)"] + 0.05
    assert sweep["6 comps (2..64)"] >= sweep["2 comps (2,4)"] - 0.02
    # Dropping the short histories entirely should not help gcc.
    assert sweep["6 comps (2..64)"] >= sweep["6 comps (4..128)"] - 0.05
