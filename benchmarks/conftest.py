"""Shared configuration for the benchmark harness.

Every paper table and figure has a bench target here (see DESIGN.md's
experiment index).  Benchmarks run scaled-down slices so the whole harness
finishes in minutes; the full-size regeneration is
``python -m repro.experiments.reproduce`` (its output is EXPERIMENTS.md).

All simulation traffic goes through the experiment engine
(:mod:`repro.engine`).  The harness pins a *serial*, *memory-only* engine
and gives each benchmark test a fresh result cache: within one test,
repeated jobs (notably the shared no-VP baselines) are memoised exactly as
in production, but nothing leaks across tests — a warm cache would turn a
timing run into a dictionary lookup.
"""

import pytest

from repro.engine.api import configure_default_engine, reset_default_engine

#: Scaled-down slice used by benchmark targets.
BENCH_MEASURE = 8000
BENCH_WARMUP = 4000

#: Workload subset exercising each behavioural family: low-accuracy
#: (crafty), stride-dominated (wupwise), context-dominated (gcc),
#: memory-bound (milc) and the small-coverage/large-gain case (h264ref).
BENCH_WORKLOADS = ("crafty", "wupwise", "gcc", "milc", "h264ref")


@pytest.fixture(scope="session")
def bench_sizes():
    return {"n_uops": BENCH_MEASURE, "warmup": BENCH_WARMUP}


@pytest.fixture(autouse=True)
def bench_engine():
    """A serial, memory-only engine with a per-test cache lifetime."""
    engine = configure_default_engine(jobs=1, cache_dir="")
    yield engine
    reset_default_engine()


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing.

    Simulation benches are seconds-long; multiple rounds would make the
    harness take hours for no statistical benefit.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)
