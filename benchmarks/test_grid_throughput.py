"""Grid-level wall-clock benchmark: the trace plane's end-to-end effect.

``test_bench_grid_json`` runs a fixed 24-job grid (6 workloads × 4
predictor configs) under both worker counts {1, 4} in three trace-plane
modes:

* ``legacy`` — the pre-PR-5 behaviour: shared-memory plane disabled, no
  trace store, every worker process rebuilds every trace it touches;
* ``cold``   — trace plane on, trace store starting empty (first-ever
  run on a machine): the parent materialises each unique trace once,
  fans it out over shared memory, and seeds the store;
* ``warm``   — trace plane on, store populated (daemon restart / next
  campaign): every trace mmap-loads, zero generator runs.

Wall-clock per mode is written to ``BENCH_grid.json`` in the scratch
bench directory (``$REPRO_BENCH_DIR``, default ``bench_out/``; the
committed repo-root copy only changes through ``repro bench promote`` —
see :mod:`bench_io`) together with the speedups versus the
same-worker-count legacy mode.  Timing numbers are *reported*, not gated (shared CI runners are
too noisy for grid-level wall-clock floors, and with fewer cores than
workers the parallel rows measure redundant-work elimination rather than
parallel speedup — ``cpu_count`` is recorded for exactly that reason).
What *is* asserted is structural and deterministic: all modes produce
bit-identical result sets, the cold run populates the store with every
unique trace, and the warm serial run executes zero generator runs.
"""

import json
import os
import platform
import sys
import time
from pathlib import Path

import bench_io
from repro.engine.api import Engine
from repro.engine.cache import ResultCache
from repro.engine.executors import make_executor
from repro.engine.job import SimJob
from repro.engine.shm import SHM_ENV
from repro.workloads import catalog
from repro.workloads.store import TRACE_DIR_ENV, TraceStore

_REPO_ROOT = Path(__file__).resolve().parents[1]

#: The fixed grid: 6 workloads spanning the behavioural families × 4
#: predictor configs = 24 jobs sharing 6 unique traces.
GRID_WORKLOADS = ("gzip", "gcc", "wupwise", "crafty", "milc", "h264ref")
GRID_PREDICTORS = ("none", "lvp", "2dstride", "vtage")
GRID_MEASURE = 8000
GRID_WARMUP = 4000

WORKER_COUNTS = (1, 4)

#: Rounds per cell; the report keeps the fastest (same rationale as
#: BENCH_core's best-of-5: strip scheduler noise, keep the real cost).
ROUNDS = 2


def grid_jobs() -> list[SimJob]:
    return [
        SimJob.make(w, p, n_uops=GRID_MEASURE, warmup=GRID_WARMUP)
        for p in GRID_PREDICTORS
        for w in GRID_WORKLOADS
    ]


def _set_env(name: str, value: str | None) -> None:
    if value is None:
        os.environ.pop(name, None)
    else:
        os.environ[name] = value


def run_grid_mode(jobs: list[SimJob], workers: int, *,
                  trace_dir: str | None, shm: bool) -> tuple[float, list, int]:
    """One measured grid run; returns (wall seconds, result dicts,
    parent-process generator runs)."""
    saved = {name: os.environ.get(name) for name in (TRACE_DIR_ENV, SHM_ENV)}
    _set_env(TRACE_DIR_ENV, trace_dir)
    _set_env(SHM_ENV, None if shm else "0")
    catalog.clear_trace_cache()
    engine = Engine(executor=make_executor(workers), cache=ResultCache(None))
    generations_before = catalog.generation_count()
    try:
        start = time.perf_counter()
        results = engine.run_jobs(jobs)
        wall = time.perf_counter() - start
    finally:
        for name, value in saved.items():
            _set_env(name, value)
        catalog.clear_trace_cache()
    return (wall, [r.to_dict() for r in results],
            catalog.generation_count() - generations_before)


def emit_bench_grid(store_root: Path,
                    path: Path | None = None) -> tuple[dict, dict]:
    """Measure every (workers × mode) cell and write BENCH_grid.json.

    Writes to the scratch bench directory by default (committed copy
    only through ``repro bench promote``).  Returns ``(report,
    result-dict-lists per cell)`` so the caller can assert cross-mode
    bit-identity.
    """
    if path is None:
        path = bench_io.bench_output_path("BENCH_grid.json")
    jobs = grid_jobs()
    unique_traces = {(j.workload, j.warmup + j.n_uops, j.seed) for j in jobs}
    cells: dict[str, dict] = {}
    results: dict[str, list] = {}
    for workers in WORKER_COUNTS:
        store_dir = store_root / f"w{workers}"
        plan = (
            ("legacy", dict(trace_dir=None, shm=False)),
            ("cold", dict(trace_dir=str(store_dir), shm=True)),
            ("warm", dict(trace_dir=str(store_dir), shm=True)),
        )
        for mode, kwargs in plan:
            wall = None
            for _ in range(ROUNDS):
                if mode == "cold" and kwargs["trace_dir"] is not None:
                    # Every cold round starts from an empty store.
                    TraceStore(kwargs["trace_dir"]).clear()
                round_wall, dicts, generations = \
                    run_grid_mode(jobs, workers, **kwargs)
                wall = round_wall if wall is None else min(wall, round_wall)
            cell = f"{mode}-w{workers}"
            cells[cell] = {
                "wall_s": round(wall, 3),
                "parent_generations": generations,
            }
            results[cell] = dicts
        for mode in ("cold", "warm"):
            cell = cells[f"{mode}-w{workers}"]
            legacy = cells[f"legacy-w{workers}"]["wall_s"]
            cell["speedup_vs_legacy"] = round(legacy / cell["wall_s"], 3)
        cells[f"store-w{workers}"] = TraceStore(store_dir).stats()["entries"]
    report = {
        "schema": 2,
        "unit": "wall_s",
        "grid": {
            "jobs": len(jobs),
            "workloads": list(GRID_WORKLOADS),
            "predictors": list(GRID_PREDICTORS),
            "n_uops": GRID_MEASURE,
            "warmup": GRID_WARMUP,
            "unique_traces": len(unique_traces),
        },
        "workers": list(WORKER_COUNTS),
        "cells": cells,
        "run": bench_io.run_metadata(ROUNDS),
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
    }
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return report, results


def test_bench_grid_json(tmp_path):
    """Emit BENCH_grid.json and pin the trace plane's structural facts."""
    report, results = emit_bench_grid(tmp_path / "trace-store")
    cells = report["cells"]
    reference = results["legacy-w1"]
    for cell, dicts in results.items():
        assert dicts == reference, f"{cell} diverged from legacy-w1 results"
    for workers in WORKER_COUNTS:
        # The cold run must have left one store entry per unique trace...
        assert cells[f"store-w{workers}"] == report["grid"]["unique_traces"]
    # ...and a warm serial run never touches the generators.
    assert cells["warm-w1"]["parent_generations"] == 0
    assert cells["cold-w1"]["parent_generations"] == \
        report["grid"]["unique_traces"]
