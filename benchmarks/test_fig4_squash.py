"""Bench target for Figure 4: squash-at-commit, baseline counters vs FPC."""

from conftest import run_once

from repro.analysis.report import geometric_mean
from repro.experiments.figures import figure4

WORKLOADS = ("crafty", "wupwise", "gcc", "h264ref")


def test_fig4_squash(benchmark, bench_sizes):
    """Figure 4's two panels, scaled down.

    Shapes that must hold (Section 8.2.1):
    * (a) baseline 3-bit counters + squash-at-commit produce slowdowns on
      low-accuracy benchmarks (crafty's almost-stable values);
    * (b) FPC lifts accuracy above ~99.5 % and removes the slowdowns.
    """
    fig = run_once(benchmark, figure4, workloads=WORKLOADS, **bench_sizes)
    baseline = fig.series["baseline"]
    fpc = fig.series["FPC"]

    # (a) at least one predictor/benchmark combination loses performance
    # with plain 3-bit counters.
    baseline_speedups = [
        baseline[scheme]["speedup"][w]
        for scheme in baseline for w in WORKLOADS
    ]
    assert min(baseline_speedups) < 0.99

    # (b) with FPC no combination loses more than ~2 %.
    for scheme, data in fpc.items():
        for w, speedup in data["speedup"].items():
            assert speedup > 0.97, (scheme, w, speedup)
        for w, accuracy in data["accuracy"].items():
            if data["coverage"][w] > 0.05:
                assert accuracy > 0.99, (scheme, w, accuracy)

    # FPC never degrades the mean across the board.
    for scheme in fpc:
        assert (
            geometric_mean(fpc[scheme]["speedup"].values())
            >= geometric_mean(baseline[scheme]["speedup"].values()) - 0.02
        )
