"""Ablation bench: FPC probability vectors vs full counters (Section 5)."""

from conftest import run_once

from repro.analysis.metrics import evaluate_predictor
from repro.core.confidence import (
    ConfidencePolicy,
    ForwardProbabilisticCounters,
    WideConfidence,
)
from repro.predictors.lvp import LastValuePredictor
from repro.workloads.catalog import build_trace


def run_confidence_sweep():
    """Accuracy/coverage of LVP under each confidence scheme on crafty
    (the almost-stable-value workload that exposes weak confidence)."""
    trace = build_trace("crafty", 30000)
    out = {}
    for label, policy in (
        ("3-bit", ConfidencePolicy(bits=3)),
        ("7-bit wide", WideConfidence(bits=7)),
        ("FPC squash", ForwardProbabilisticCounters.for_squash()),
        ("FPC reissue", ForwardProbabilisticCounters.for_reissue()),
    ):
        predictor = LastValuePredictor(entries=8192, confidence=policy)
        stats = evaluate_predictor(trace, predictor, warmup=10000,
                                   training_delay=30)
        out[label] = (stats.coverage, stats.accuracy)
    return out


def test_ablation_fpc_vectors(benchmark):
    """Section 5's claims, as an ablation:

    * 3-bit counters: decent coverage, accuracy ~95-99 % (not enough);
    * FPC-squash mimics 7-bit counters: accuracy up, coverage down;
    * FPC-reissue (6-bit-equivalent) sits between the two.
    """
    sweep = run_once(benchmark, run_confidence_sweep)
    cov3, acc3 = sweep["3-bit"]
    cov_wide, acc_wide = sweep["7-bit wide"]
    cov_squash, acc_squash = sweep["FPC squash"]
    cov_reissue, acc_reissue = sweep["FPC reissue"]

    # Accuracy ordering: FPC/wide > 3-bit.
    assert acc_squash > acc3
    assert acc_wide > acc3
    # Coverage cost: 3-bit covers most, FPC-squash the least.
    assert cov3 > cov_squash
    assert cov_reissue >= cov_squash - 0.02
    # FPC-squash emulates the full 7-bit counter closely.
    assert abs(acc_squash - acc_wide) < 0.01
    assert abs(cov_squash - cov_wide) < 0.10
