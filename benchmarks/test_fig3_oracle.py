"""Bench target for Figure 3: oracle speedup upper bound."""

from conftest import BENCH_WORKLOADS, run_once

from repro.experiments.figures import figure3


def test_fig3_oracle(benchmark, bench_sizes):
    """A perfect predictor must show substantial headroom on dependence-
    or memory-limited benchmarks and never slow anything down.

    Paper reference: "a perfect predictor would indeed increase performance
    by quite a significant factor (up to 3.3) in most benchmarks"."""
    fig = run_once(benchmark, figure3, workloads=BENCH_WORKLOADS, **bench_sizes)
    speedups = fig.series["speedup"]
    assert all(s >= 0.97 for s in speedups.values()), speedups
    assert max(speedups.values()) > 1.3
    # milc has little to gain (Fig. 3's short bars exist too).
    assert speedups["milc"] < min(1.5, max(speedups.values()))
