"""Bench target for the Section 3.1 analytic recovery-cost model."""

from conftest import run_once

from repro.analysis.cost_model import (
    PAPER_SCENARIOS,
    SELECTIVE_REISSUE,
    SQUASH_AT_COMMIT,
    recovery_benefit_per_kilo_instruction,
)


def sweep():
    """Benefit surface over (coverage, accuracy) for all three scenarios."""
    grid = {}
    for scenario in PAPER_SCENARIOS:
        for coverage in (0.1, 0.2, 0.3, 0.4, 0.5):
            for accuracy in (0.90, 0.95, 0.99, 0.9975, 0.9995):
                grid[(scenario.name, coverage, accuracy)] = (
                    recovery_benefit_per_kilo_instruction(scenario, coverage, accuracy)
                )
    return grid


def test_sec31_recovery_model(benchmark):
    """Reproduce the Section 3.1.1/3.1.2 example and its consequences."""
    grid = run_once(benchmark, sweep)

    # Paper example 1: coverage 40%, accuracy 95%.
    assert round(grid[("selective reissue", 0.4, 0.95)]) == 64
    assert round(grid[("squash at execute", 0.4, 0.95)]) == -86
    assert round(grid[("squash at commit", 0.4, 0.95)]) == -286

    # Paper example 2: coverage 30%, accuracy 99.75%.
    assert grid[("squash at commit", 0.3, 0.9975)] > 70

    # Structural claims: at 95% accuracy the mechanisms diverge wildly; at
    # 99.95% they are within a few cycles of each other.
    low_acc_spread = (
        grid[("selective reissue", 0.3, 0.95)]
        - grid[("squash at commit", 0.3, 0.95)]
    )
    high_acc_spread = (
        grid[("selective reissue", 0.3, 0.9995)]
        - grid[("squash at commit", 0.3, 0.9995)]
    )
    assert low_acc_spread > 100
    assert high_acc_spread < 5
