"""Bench target for Figure 6: VTAGE speedup/coverage with and without FPC."""

from conftest import run_once

from repro.experiments.figures import figure6

WORKLOADS = ("crafty", "gcc", "namd")


def test_fig6_vtage_fpc(benchmark, bench_sizes):
    """Figure 6 shapes (Section 8.2.2):

    * FPC trades coverage for accuracy — coverage drops most where the
      baseline accuracy was lowest (crafty's almost-stable values);
    * with FPC no benchmark loses performance;
    * namd keeps high coverage yet only marginal speedup.
    """
    fig = run_once(benchmark, figure6, workloads=WORKLOADS, **bench_sizes)
    base = fig.series["baseline"]
    fpc = fig.series["FPC"]

    # Coverage cost of FPC.
    for w in WORKLOADS:
        assert fpc["coverage"][w] <= base["coverage"][w] + 0.02, w

    # Accuracy gain of FPC.
    for w in WORKLOADS:
        assert fpc["accuracy"][w] >= base["accuracy"][w] - 0.001, w

    # No slowdowns with FPC.
    for w in WORKLOADS:
        assert fpc["speedup"][w] > 0.97, (w, fpc["speedup"][w])

    # namd: coverage without payoff ("high coverage does not correlate
    # with high performance").
    assert fpc["coverage"]["namd"] > 0.15
    assert fpc["speedup"]["namd"] < 1.25
