"""Bench targets for Tables 1-3: regenerate and validate each table."""

from conftest import run_once

from repro.experiments import tables


def test_table1_layout(benchmark):
    """Table 1: recompute predictor storage budgets and compare to paper."""
    rows = run_once(benchmark, tables.table1_rows)
    # Every storage figure must match the paper within 1 %.
    for row in rows:
        assert row.relative_error < 0.01, (row.predictor, row.computed_kb)
    text = tables.table1()
    assert "120.8" in text and "251.9" in text and "64.1" in text


def test_table2_config(benchmark):
    """Table 2: render the simulated core configuration."""
    text = run_once(benchmark, tables.table2)
    for fragment in ("256-entry ROB", "128-entry IQ", "48/48 LQ/SQ",
                     "8 ALU(1c)", "4 MulDiv(3c/25c*)", "DDR3-1600"):
        assert fragment in text, fragment


def test_table3_workloads(benchmark):
    """Table 3: render the 19-benchmark catalog."""
    text = run_once(benchmark, tables.table3)
    assert "INT: 12" in text and "FP: 7" in text
    for name in ("164.gzip", "470.lbm", "433.milc"):
        assert name in text
