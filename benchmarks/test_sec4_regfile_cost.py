"""Bench target for the Section 4 register-file cost model + port ablation."""

from conftest import run_once

from repro.analysis.cost_model import register_file_area, vp_register_file_overheads
from repro.experiments.runner import baseline_result, make_predictor
from repro.pipeline.config import CoreConfig, RecoveryMode
from repro.pipeline.core import simulate
from repro.workloads.catalog import build_trace


def test_sec4_regfile_area_model(benchmark):
    """The (R+W)(R+2W) design points of Section 4."""
    data = run_once(benchmark, vp_register_file_overheads, issue_width=8)
    assert data["naive_vp"] == 2.0            # "i.e. the double"
    assert abs(data["buffered_vp"] - 35 / 24) < 1e-9  # 35W^2/2 vs 12W^2
    # Sanity: area grows monotonically with write ports.
    areas = [register_file_area(16, w) for w in range(4, 17)]
    assert areas == sorted(areas)


def test_sec4_vp_write_port_ablation(benchmark, bench_sizes):
    """Ablation: constraining prediction write ports (the Section 4
    worry) barely changes performance because predictions arrive several
    cycles before dispatch and can be buffered."""

    def run_ablation():
        trace = build_trace("hmmer", bench_sizes["warmup"] + bench_sizes["n_uops"])
        out = {}
        for ports in (None, 4, 2):
            cfg = CoreConfig(recovery=RecoveryMode.SQUASH_COMMIT,
                             vp_write_ports=ports)
            result = simulate(trace, make_predictor("2dstride", fpc=True),
                              config=cfg, warmup=bench_sizes["warmup"],
                              workload="hmmer")
            out[ports] = result
        return out

    results = run_once(benchmark, run_ablation)
    unlimited = results[None].ipc
    # hmmer covers ~85 % of its µops: at IPC ~6 that is ~4.5 prediction
    # writes per cycle, so W/2 = 4 ports genuinely queue a little and 2
    # ports queue a lot — the quantitative version of the Section 4
    # trade-off.  Orderings must hold; the 4-port point stays within 20 %.
    assert results[4].ipc > unlimited * 0.80
    assert results[2].ipc < results[4].ipc <= unlimited
    assert results[4].vp_write_delayed > 0
