"""Ablation bench: predictor table sizes (the Section 3.2 large-table
argument: VTAGE/LVP tolerate large tables because lookups can span cycles)."""

from conftest import run_once

from repro.analysis.metrics import evaluate_predictor
from repro.core.confidence import ConfidencePolicy
from repro.predictors.lvp import LastValuePredictor
from repro.workloads.catalog import build_trace


def run_size_sweep():
    trace = build_trace("vortex", 30000)
    out = {}
    for entries in (256, 1024, 4096, 8192):
        predictor = LastValuePredictor(entries=entries,
                                       confidence=ConfidencePolicy())
        stats = evaluate_predictor(trace, predictor, warmup=10000,
                                   training_delay=30)
        out[entries] = stats.useful_coverage
    return out


def test_ablation_table_sizes(benchmark):
    """Bigger tables help (fewer evictions) with diminishing returns."""
    sweep = run_once(benchmark, run_size_sweep)
    assert sweep[8192] >= sweep[256] - 0.01
    # Diminishing returns: the 4K -> 8K step is smaller than 256 -> 1K.
    small_step = sweep[1024] - sweep[256]
    large_step = sweep[8192] - sweep[4096]
    assert large_step <= small_step + 0.05
