"""Content-addressed on-disk trace store (the persistent trace plane).

Building a trace is pure and deterministic, but not free: the kernel VM
emits ~5 µs/µop of Python work, so a cold daemon restart or a fresh
worker process used to pay the full generation cost for every workload it
touched.  The store persists the *packed* columnar form
(:class:`~repro.isa.trace.PackedColumns`) of each built trace under a
content key, so any later process — same machine, any backend — loads
the bytes (mmap-able ``.npy`` per column) instead of re-running the
generator.

**Keying.**  ``trace_key(name, n_uops, seed)`` digests the same identity
tuple the in-process trace cache uses, plus three versions: the packed
schema (:data:`~repro.isa.trace.TRACE_SCHEMA_VERSION`), the store layout
(:data:`STORE_FORMAT_VERSION`) and the generator
(:data:`TRACE_GENERATOR_VERSION` — bump it whenever kernels, invariant
injection or scenario generation change the emitted µop stream).  A
version bump silently orphans old entries instead of misreading them.

**Layout.**  One directory per entry: ``<dir>/<key[:2]>/<key>/`` holding
``meta.json`` plus one ``<column>.npy`` file per schema column.  Writes
go to a ``*.tmp.<pid>`` sibling directory and are renamed into place, so
concurrent writers race benignly (first rename wins, the loser discards).

**Corruption.**  ``get`` validates versions, identity and every column's
dtype/length; any damage (truncated file, bad JSON, schema drift) makes
it quarantine-delete the entry and return ``None``, and the caller
regenerates — a broken store can cost time, never correctness.

**Crash consistency & chaos.**  Every payload file (columns and
``meta.json``) is fsynced before the directory rename commits the
entry, so a crash mid-``put`` leaves only a ``*.tmp.*`` orphan, never a
half-entry at a committed path.  Reads and writes pass the
``store.read`` / ``store.write`` fault-injection sites
(:mod:`repro.engine.faults`): injected truncation, garbage metadata and
``ENOSPC`` exercise exactly the quarantine-and-regenerate path above.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path

import numpy as np

from repro.isa.trace import (
    COLUMN_SCHEMA,
    TRACE_SCHEMA_VERSION,
    PackedColumns,
    Trace,
)
from repro.util import profiling
from repro.util.atomicio import atomic_write_text, fsync_file

#: Environment variable selecting the persistent trace store directory.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: On-disk layout version; mismatched entries are ignored (and reclaimed).
STORE_FORMAT_VERSION = 1

#: Version of the trace *generators* (kernels, invariant injection,
#: scenarios, builder).  Any change that alters the emitted µop stream for
#: some (name, n_uops, seed) must bump this so stored traces regenerate.
TRACE_GENERATOR_VERSION = 1

_META_NAME = "meta.json"


def default_trace_store() -> "TraceStore | None":
    """The store named by ``$REPRO_TRACE_DIR``, or ``None`` when unset."""
    raw = os.environ.get(TRACE_DIR_ENV, "").strip()
    return TraceStore(raw) if raw else None


def trace_key(name: str, n_uops: int, seed: int) -> str:
    """Stable content key for one built trace.

    Digests the identity tuple plus every version that affects the bytes:
    two traces share a key iff the same generator code would produce the
    same packed columns for them.
    """
    payload = (
        f"trace:store{STORE_FORMAT_VERSION}:gen{TRACE_GENERATOR_VERSION}"
        f":schema{TRACE_SCHEMA_VERSION}:{name}:{n_uops}:{seed}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class TraceStore:
    """Content-addressed directory of packed traces (one subdir per key)."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    # -- paths -----------------------------------------------------------

    def _entry_dir(self, key: str) -> Path:
        return self.directory / key[:2] / key

    # -- store -----------------------------------------------------------

    def put(self, trace: Trace, name: str, n_uops: int, seed: int,
            provenance: str = "generated") -> Path:
        """Persist *trace*'s packed columns; returns the entry directory.

        Idempotent and race-tolerant: if the entry already exists (another
        process won), the temp copy is discarded.  IO failures are
        swallowed — persisting is an optimisation, never a correctness
        requirement.

        *provenance* records where the bytes came from — ``"generated"``
        (a catalog/scenario kernel, regenerable at will) or ``"ingested"``
        (lowered from a real execution log, irreplaceable) — so listing
        and clearing can target one class.  Not part of the content key:
        identity is the (name, n_uops, seed) tuple either way.
        """
        key = trace_key(name, n_uops, seed)
        final = self._entry_dir(key)
        if final.is_dir():
            return final
        packed = trace.packed()
        meta = {
            "format": STORE_FORMAT_VERSION,
            "generator": TRACE_GENERATOR_VERSION,
            "schema": TRACE_SCHEMA_VERSION,
            "name": name,
            "n_uops": n_uops,
            "seed": seed,
            "provenance": provenance,
            "n": packed.n,
            "nbytes": packed.nbytes,
            "columns": {col: str(packed.arrays[col].dtype)
                        for col, _ in COLUMN_SCHEMA},
        }
        # Imported lazily: the fault plane lives on the engine layer, and
        # workloads must stay importable without it.
        from repro.engine import faults

        tmp = final.with_name(f"{final.name}.tmp.{os.getpid()}")
        try:
            with profiling.phase("trace-store-save"):
                rule = faults.fire("store.write")
                if rule is not None and rule.action == "enospc":
                    raise faults.io_error(rule, "store.write")
                tmp.mkdir(parents=True, exist_ok=True)
                for i, (col, _) in enumerate(COLUMN_SCHEMA):
                    if rule is not None and rule.action == "partial" and i:
                        # Simulate a kill after the first column file: the
                        # half-written set stays in the tmp dir and is
                        # cleaned below — never renamed into place.
                        raise faults.io_error(rule, "store.write")
                    np.save(tmp / f"{col}.npy", packed.arrays[col],
                            allow_pickle=False)
                    fsync_file(tmp / f"{col}.npy")
                atomic_write_text(tmp / _META_NAME,
                                  json.dumps(meta, sort_keys=True, indent=1))
                try:
                    os.rename(tmp, final)
                except OSError:
                    shutil.rmtree(tmp, ignore_errors=True)  # lost the race
            self.stores += 1
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)
        return final

    def contains(self, name: str, n_uops: int, seed: int) -> bool:
        """Whether an entry exists for this identity (no load, no checks).

        A cheap existence probe for schedulers deciding whether a lease
        can be served without running a generator; :meth:`get` still does
        the full validation.
        """
        return self._entry_dir(trace_key(name, n_uops, seed)).is_dir()

    def get(self, name: str, n_uops: int, seed: int,
            mmap: bool = True) -> Trace | None:
        """Load one trace, or ``None`` on miss/corruption.

        With ``mmap`` (the default) columns come back as read-only
        ``numpy.memmap`` views — the OS pages trace bytes in on demand and
        shares them between processes mapping the same entry.  Corrupt
        entries are deleted so the caller's regeneration heals the store.
        """
        key = trace_key(name, n_uops, seed)
        entry = self._entry_dir(key)
        if not entry.is_dir():
            self.misses += 1
            return None
        from repro.engine import faults

        rule = faults.fire("store.read")
        if rule is not None:
            # Damage the entry on disk, then read as normal: the ordinary
            # validation below must catch it and quarantine the entry.
            faults.damage_store_entry(
                rule, entry, f"{COLUMN_SCHEMA[0][0]}.npy", _META_NAME)
        try:
            with profiling.phase("trace-store-load"):
                meta = json.loads((entry / _META_NAME).read_text())
                if (
                    meta.get("format") != STORE_FORMAT_VERSION
                    or meta.get("generator") != TRACE_GENERATOR_VERSION
                    or meta.get("schema") != TRACE_SCHEMA_VERSION
                    or meta.get("name") != name
                    or meta.get("n_uops") != n_uops
                    or meta.get("seed") != seed
                ):
                    raise ValueError("metadata does not match the request")
                arrays = {
                    col: np.load(entry / f"{col}.npy",
                                 mmap_mode="r" if mmap else None,
                                 allow_pickle=False)
                    for col, _ in COLUMN_SCHEMA
                }
                packed = PackedColumns(int(meta["n"]), arrays)
                packed.validate()
        except (OSError, ValueError, KeyError) as _exc:
            self.corrupt += 1
            shutil.rmtree(entry, ignore_errors=True)
            self.misses += 1
            return None
        self.hits += 1
        return Trace.from_packed(packed, name=name)

    # -- auxiliary derived arrays ----------------------------------------
    #
    # Derived per-trace products that are expensive to recompute (the
    # precompute plane of pipeline/precompute.py) persist *inside* the
    # owning trace's entry directory, under an aux subdirectory named by
    # kind and version: ``<entry>/aux-<kind>-v<version>/``.  They share the
    # entry's lifecycle — `clear` and corruption quarantine of the trace
    # remove them — while version bumps orphan only the aux payload.  The
    # store stays agnostic of what the arrays mean: callers hand over and
    # get back ``{name: ndarray}`` plus a JSON-able meta dict.

    def _aux_dir(self, key: str, kind: str, version: int) -> Path:
        return self._entry_dir(key) / f"aux-{kind}-v{version}"

    def put_aux(self, name: str, n_uops: int, seed: int, kind: str,
                version: int, arrays: dict[str, np.ndarray],
                meta: dict) -> Path | None:
        """Persist derived arrays next to the owning trace entry.

        Returns the aux directory, or ``None`` when the trace entry itself
        is absent (aux data never outlives its trace).  Same temp-dir +
        rename discipline and same "IO failure is not an error" stance as
        :meth:`put`.
        """
        key = trace_key(name, n_uops, seed)
        if not self._entry_dir(key).is_dir():
            return None
        final = self._aux_dir(key, kind, version)
        if final.is_dir():
            return final
        payload = dict(meta)
        payload["kind"] = kind
        payload["version"] = version
        payload["columns"] = {col: [str(arr.dtype), int(arr.shape[0])]
                              for col, arr in arrays.items()}
        payload["nbytes"] = sum(int(arr.nbytes) for arr in arrays.values())
        tmp = final.with_name(f"{final.name}.tmp.{os.getpid()}")
        try:
            with profiling.phase("trace-store-save"):
                tmp.mkdir(parents=True, exist_ok=True)
                for col, arr in arrays.items():
                    np.save(tmp / f"{col}.npy", arr, allow_pickle=False)
                (tmp / _META_NAME).write_text(
                    json.dumps(payload, sort_keys=True, indent=1))
                try:
                    os.rename(tmp, final)
                except OSError:
                    shutil.rmtree(tmp, ignore_errors=True)  # lost the race
            self.stores += 1
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)
        return final

    def get_aux(self, name: str, n_uops: int, seed: int, kind: str,
                version: int,
                mmap: bool = True) -> tuple[dict, dict[str, np.ndarray]] | None:
        """Load ``(meta, arrays)`` for one aux payload, or ``None``.

        Validates dtype and length of every stored column against the aux
        meta; corrupt payloads are quarantine-deleted (aux only — the
        trace entry is untouched) and regenerated by the caller.
        """
        key = trace_key(name, n_uops, seed)
        aux = self._aux_dir(key, kind, version)
        if not aux.is_dir():
            return None
        try:
            with profiling.phase("trace-store-load"):
                meta = json.loads((aux / _META_NAME).read_text())
                if meta.get("kind") != kind or meta.get("version") != version:
                    raise ValueError("aux metadata does not match the request")
                arrays = {}
                for col, (dtype, length) in meta["columns"].items():
                    arr = np.load(aux / f"{col}.npy",
                                  mmap_mode="r" if mmap else None,
                                  allow_pickle=False)
                    if str(arr.dtype) != dtype or arr.shape != (length,):
                        raise ValueError(f"aux column {col} does not match")
                    arrays[col] = arr
        except (OSError, ValueError, KeyError, TypeError):
            self.corrupt += 1
            shutil.rmtree(aux, ignore_errors=True)
            return None
        self.hits += 1
        return meta, arrays

    # -- maintenance -----------------------------------------------------

    def entries(self) -> list[dict]:
        """Metadata rows for every readable entry (unreadable ones skipped)."""
        rows = []
        if not self.directory.is_dir():
            return rows
        for meta_path in sorted(self.directory.glob(f"??/*/{_META_NAME}")):
            if ".tmp." in meta_path.parent.name:
                continue  # in-progress or crash-orphaned writer directory
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError):
                continue
            # Entries written before provenance tracking are by definition
            # generator output.
            meta.setdefault("provenance", "generated")
            meta["key"] = meta_path.parent.name
            meta["path"] = str(meta_path.parent)
            rows.append(meta)
        return rows

    def clear(self, provenance: str | None = None) -> int:
        """Delete entries (and orphaned temp dirs); returns the count.

        With *provenance* (``"generated"`` / ``"ingested"``) only entries
        of that class are removed — ``repro trace clear --provenance
        generated`` reclaims regenerable bytes without touching ingested
        traces that cannot be rebuilt from thin air.  Clearing ingested
        entries also drops their registry sidecars, so the workload names
        stop resolving instead of dangling.
        """
        removed = 0
        if not self.directory.is_dir():
            return removed
        if provenance is None:
            for shard in self.directory.glob("??"):
                for entry in shard.iterdir():
                    shutil.rmtree(entry, ignore_errors=True)
                    if ".tmp." not in entry.name:
                        removed += 1
            shutil.rmtree(self.directory / "ingest", ignore_errors=True)
            return removed
        keep_names: set[str] = set()
        for row in self.entries():
            if row["provenance"] == provenance:
                shutil.rmtree(row["path"], ignore_errors=True)
                removed += 1
            elif row["provenance"] == "ingested":
                keep_names.add(row["name"])
        if provenance == "ingested":
            registry = self.directory / "ingest"
            if registry.is_dir():
                for sidecar in registry.glob("*.json"):
                    if sidecar.stem not in keep_names:
                        sidecar.unlink(missing_ok=True)
        return removed

    def aux_entries(self) -> list[dict]:
        """Metadata rows for every readable aux payload (precompute planes)."""
        rows = []
        if not self.directory.is_dir():
            return rows
        for meta_path in sorted(self.directory.glob(f"??/*/aux-*/{_META_NAME}")):
            if ".tmp." in meta_path.parent.name:
                continue
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError):
                continue
            meta["key"] = meta_path.parent.parent.name
            meta["path"] = str(meta_path.parent)
            rows.append(meta)
        return rows

    def stats(self) -> dict:
        """Entry count, total payload bytes and lifetime hit/miss counters.

        ``aux_entries`` / ``aux_bytes`` account the derived precompute
        payloads separately from the packed trace bytes, so cache-budget
        reports stay honest about what the store actually holds.
        """
        rows = self.entries()
        aux_rows = self.aux_entries()
        ingested = [row for row in rows if row["provenance"] == "ingested"]
        generated = [row for row in rows if row["provenance"] != "ingested"]
        return {
            "directory": str(self.directory),
            "entries": len(rows),
            "bytes": sum(int(row.get("nbytes", 0)) for row in rows),
            "generated_entries": len(generated),
            "generated_bytes": sum(int(row.get("nbytes", 0))
                                   for row in generated),
            "ingested_entries": len(ingested),
            "ingested_bytes": sum(int(row.get("nbytes", 0))
                                  for row in ingested),
            "aux_entries": len(aux_rows),
            "aux_bytes": sum(int(row.get("nbytes", 0)) for row in aux_rows),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }
