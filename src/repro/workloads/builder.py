"""Kernel VM: a structured builder for synthetic µop traces.

Workload kernels are small Python programs that *actually compute* their
values — loop counters advance, arrays are read, hashes are mixed — and
emit one :class:`~repro.isa.uop.MicroOp` per architectural operation.  The
resulting trace therefore carries genuine value streams (strides, repeats,
control-flow-correlated patterns) for the predictors and genuine
dependences/addresses for the timing model.

The builder handles the bookkeeping a compiler would:

* stable PCs: each static operation is identified by a string label, so
  every dynamic execution of "the same instruction" shares its PC (and
  hence its predictor entries);
* register allocation: value names map to architectural registers (ids
  0-31 integer, 32-63 floating point) with LRU reuse;
* a bump allocator for data regions, and a call stack for CALL/RET pairs
  so the return-address stack sees realistic behaviour.
"""

from __future__ import annotations

import random

from repro.isa.trace import Trace
from repro.isa.uop import FP_REG_BASE, MicroOp, OpClass
from repro.util.bits import MASK64

_CODE_BASE = 0x0040_0000
_DATA_BASE = 0x1000_0000


class TraceBuilder:
    """Emit µops for one synthetic workload."""

    def __init__(self, name: str, seed: int = 1):
        self.trace = Trace(name=name)
        self.rng = random.Random(seed)
        self._labels: dict[str, int] = {}
        self._next_pc = _CODE_BASE
        self._heap = _DATA_BASE
        # name -> register id; LRU order for reuse.
        self._int_regs: dict[str, int] = {}
        self._fp_regs: dict[str, int] = {}
        self._call_stack: list[int] = []
        # Emission counter mirroring len(self.trace); kernels read `n` once
        # per emitted µop, so this saves a len() round-trip per operation.
        self._n = 0

    # -- infrastructure ----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of µops emitted so far."""
        return self._n

    def pc_of(self, label: str) -> int:
        """Stable PC for a static operation label."""
        pc = self._labels.get(label)
        if pc is None:
            pc = self._next_pc
            self._labels[label] = pc
            self._next_pc += 4
        return pc

    def alloc(self, nbytes: int, align: int = 64) -> int:
        """Bump-allocate a data region; returns its base address."""
        self._heap = (self._heap + align - 1) & ~(align - 1)
        base = self._heap
        self._heap += nbytes
        return base

    def _reg(self, name: str, fp: bool = False) -> int:
        pool = self._fp_regs if fp else self._int_regs
        reg = pool.get(name)
        if reg is not None:
            # Refresh LRU position.
            del pool[name]
            pool[name] = reg
            return reg
        if len(pool) >= 32:
            # Reuse the register of the least recently touched name.
            victim = next(iter(pool))
            reg = pool.pop(victim)
        else:
            reg = len(pool) + (FP_REG_BASE if fp else 0)
        pool[name] = reg
        return reg

    def _srcs(self, names, fp: bool = False) -> tuple[int, ...]:
        # List comprehension instead of a generator: tuple(<listcomp>) is
        # measurably cheaper at this call rate (one call per emitted µop).
        return tuple([self._reg(n, fp) for n in names])

    def _emit(self, uop: MicroOp) -> MicroOp:
        self.trace.append(uop)
        self._n += 1
        return uop

    # -- arithmetic ----------------------------------------------------------

    def imm(self, label: str, dst: str, value: int) -> None:
        """Load-immediate / constant generation (INT ALU, no sources)."""
        self._emit(
            MicroOp(
                seq=self._n,
                pc=self.pc_of(label),
                op_class=OpClass.INT_ALU,
                srcs=(),
                dst=self._reg(dst),
                value=value & MASK64,
            )
        )

    def alu(self, label: str, dst: str, srcs, value: int) -> None:
        """Single-cycle integer operation."""
        self._emit(
            MicroOp(
                seq=self._n,
                pc=self.pc_of(label),
                op_class=OpClass.INT_ALU,
                srcs=self._srcs(srcs),
                dst=self._reg(dst),
                value=value & MASK64,
            )
        )

    def mul(self, label: str, dst: str, srcs, value: int) -> None:
        self._op(label, dst, srcs, value, OpClass.INT_MUL)

    def div(self, label: str, dst: str, srcs, value: int) -> None:
        self._op(label, dst, srcs, value, OpClass.INT_DIV)

    def _op(self, label, dst, srcs, value, cls, fp: bool = False) -> None:
        self._emit(
            MicroOp(
                seq=self._n,
                pc=self.pc_of(label),
                op_class=cls,
                srcs=self._srcs(srcs, fp),
                dst=self._reg(dst, fp),
                value=value & MASK64,
                dst_is_fp=fp,
            )
        )

    # -- floating point --------------------------------------------------------

    def fadd(self, label: str, dst: str, srcs, value: int) -> None:
        self._op(label, dst, srcs, value, OpClass.FP_ADD, fp=True)

    def fmul(self, label: str, dst: str, srcs, value: int) -> None:
        self._op(label, dst, srcs, value, OpClass.FP_MUL, fp=True)

    def fdiv(self, label: str, dst: str, srcs, value: int) -> None:
        self._op(label, dst, srcs, value, OpClass.FP_DIV, fp=True)

    # -- memory -------------------------------------------------------------

    def load(
        self,
        label: str,
        dst: str,
        addr: int,
        value: int,
        addr_srcs=(),
        fp: bool = False,
        size: int = 8,
    ) -> None:
        self._emit(
            MicroOp(
                seq=self._n,
                pc=self.pc_of(label),
                op_class=OpClass.LOAD,
                srcs=self._srcs(addr_srcs),
                dst=self._reg(dst, fp),
                value=value & MASK64,
                mem_addr=addr & MASK64,
                mem_size=size,
                dst_is_fp=fp,
            )
        )

    def store(
        self,
        label: str,
        addr: int,
        data_src: str | None = None,
        addr_srcs=(),
        fp_data: bool = False,
        size: int = 8,
    ) -> None:
        srcs = list(self._srcs(addr_srcs))
        if data_src is not None:
            srcs.append(self._reg(data_src, fp_data))
        self._emit(
            MicroOp(
                seq=self._n,
                pc=self.pc_of(label),
                op_class=OpClass.STORE,
                srcs=tuple(srcs),
                dst=None,
                mem_addr=addr & MASK64,
                mem_size=size,
            )
        )

    # -- control flow -----------------------------------------------------------

    def branch(self, label: str, taken: bool, target_label: str, srcs=()) -> None:
        """Conditional branch; *target_label* names the taken destination."""
        self._emit(
            MicroOp(
                seq=self._n,
                pc=self.pc_of(label),
                op_class=OpClass.BRANCH,
                srcs=self._srcs(srcs),
                dst=None,
                taken=taken,
                target=self.pc_of(target_label),
            )
        )

    def jump(self, label: str, target_label: str) -> None:
        self._emit(
            MicroOp(
                seq=self._n,
                pc=self.pc_of(label),
                op_class=OpClass.JUMP,
                srcs=(),
                dst=None,
                taken=True,
                target=self.pc_of(target_label),
            )
        )

    def call(self, label: str, target_label: str) -> None:
        pc = self.pc_of(label)
        self._call_stack.append(pc + 4)
        self._emit(
            MicroOp(
                seq=self._n,
                pc=pc,
                op_class=OpClass.CALL,
                srcs=(),
                dst=None,
                taken=True,
                target=self.pc_of(target_label),
            )
        )

    def ret(self, label: str) -> None:
        target = self._call_stack.pop() if self._call_stack else 0
        self._emit(
            MicroOp(
                seq=self._n,
                pc=self.pc_of(label),
                op_class=OpClass.RET,
                srcs=(),
                dst=None,
                taken=True,
                target=target,
            )
        )
