"""Floating-point workload kernels (SPEC FP stand-ins, Table 3).

Calibration summary (paper references in parentheses):

* wupwise — dense linear algebra; strided value streams favour 2D-Stride
  (Sec. 8.2.3: "wupwise and bzip achieve higher performance with
  2D-Stride").
* applu   — structured-grid solver; boundary-dependent coefficients and
  short periodic patterns favour VTAGE (Sec. 8.2.3).
* art     — repeated scans of fixed weight arrays that miss in L1/L2:
  predictable loads hide memory latency -> large oracle headroom and real
  gains (Fig. 3, Fig. 4).
* gamess  — phase-switching coefficient streams: low baseline accuracy
  (listed in the low-accuracy group of Sec. 8.2.2).
* milc    — streaming lattice QCD; values nearly unpredictable, with a
  long-run trap pattern that produces the paper's "milc is slightly slowed
  down ... smaller than 1%" under FPC + squash (Sec. 8.2.1).
* namd    — high-ILP force loops: ~90 % coverage but marginal speedup
  because nothing dependence-limited remains (Sec. 8.2.2: "namd exhibits
  90% coverage but marginal speedup").
* lbm     — lattice-Boltzmann streaming: strided DRAM traffic, prefetcher
  territory, small VP gains.

Floating-point values are represented as 64-bit integer payloads: the
predictors and the pipeline treat values as opaque 64-bit quantities, so
using scaled-integer arithmetic preserves every predictability property
(repetition, strides, periodicity) that matters.
"""

from __future__ import annotations

from repro.util.bits import MASK64
from repro.workloads.builder import TraceBuilder


def wupwise_kernel(b: TraceBuilder, n_target: int) -> None:
    """Blocked matrix-vector products behind a strided index recurrence.

    The serial bottleneck is an index chain threaded through memory
    (``idx = load(successors[idx])``) whose *values* advance by a constant
    stride — real code's linearised multi-dimensional index arithmetic.
    Predicting the index values collapses the chain, which is precisely how
    a stride predictor speeds this workload up; the FP multiply/add work
    hanging off each index is parallel."""
    m = 1024  # 8 KB successor table: L1-resident addresses
    stride = 3
    n_fp = 8
    succ_base = b.alloc(m * 8)
    mat_base = b.alloc(m * 8)
    acc = [0] * n_fp
    global_idx = 0
    iteration = 0
    while b.n < n_target:
        # The linearised index advances without ever wrapping (addresses
        # wrap modulo the table, values do not): a pure stride stream with
        # no periodic discontinuity to trip saturated confidence counters.
        nxt = (global_idx + stride) & MASK64
        b.load("wu_ld_idx", "idx", succ_base + (global_idx % m) * 8, nxt,
               addr_srcs=["idx"])
        b.alu("wu_scale", "off", ["idx"], (nxt * 8) & MASK64)
        for j in range(n_fp):  # parallel FP work per index
            v = (3 * (global_idx + j) + 7) & MASK64
            b.load(f"wu_ld_m{j}", f"m{j}", mat_base + ((global_idx + j) % m) * 8, v,
                   addr_srcs=["off"], fp=True)
            prod = (v * 5) & MASK64
            b.fmul(f"wu_mul{j}", f"p{j}", [f"m{j}"], prod)
            acc[j] = (acc[j] + prod) & MASK64
            b.fadd(
                f"wu_acc{j}",
                f"a{j}",
                [f"p{j}", f"a{j}"] if iteration else [f"p{j}"],
                acc[j],
            )
        global_idx = nxt
        iteration += 1
        b.branch("wu_loop", taken=True, target_label="wu_ld_idx", srcs=["idx"])


def applu_kernel(b: TraceBuilder, n_target: int) -> None:
    """SSOR grid sweep: the position pointer advances by a branch-selected
    stride (interior +8, boundary +40 bytes).

    The memory-carried position chain gates each iteration.  Its values are
    an exact function of the boundary branch history — VTAGE territory —
    while plain stride predictors see "mostly +8 with unpredictable +40
    glitches" and never hold FPC confidence (Section 8.2.3: applu is one of
    the benchmarks that "achieve higher performance with VTAGE")."""
    nx = 16  # short rows: one row's branches fit in VTAGE's 64-bit history
    row_bytes = 14 * 8 + 2 * 40  # one full row of strides: pos repeats per row
    coeff_interior = 0x3FE0_0000_0000_0000
    coeff_boundary = 0x3FD5_5555_5555_5555
    grid_base = b.alloc(nx * nx * 8)
    pos_slot = b.alloc(8)
    pos = 0
    i = 0
    acc = 0
    while b.n < n_target:
        x = i % nx
        boundary = x == 0 or x == nx - 1
        # Position chain: reload, advance by the branch-selected stride,
        # store back.
        b.load("ap_ld_pos", "pos", pos_slot, pos)
        b.branch("ap_bnd", taken=boundary, target_label="ap_skip", srcs=["pos"])
        step = 40 if boundary else 8
        pos = (pos + step) % row_bytes
        label = "ap_stepb" if boundary else "ap_stepi"
        b.alu(label, "pos", ["pos"], pos)
        b.store("ap_st_pos", pos_slot, "pos")
        # Coefficient selected by the same branch: also history-correlated.
        coeff = coeff_boundary if boundary else coeff_interior
        b.load("ap_ld_cf", "cf", grid_base + (0 if boundary else 8), coeff, fp=True)
        val = (coeff ^ (pos * 0x10000)) & MASK64
        b.fmul("ap_mul", "v", ["cf", "pos"], val)
        acc = (acc + val) & MASK64
        b.fadd("ap_acc", "acc", ["v", "acc"] if i else ["v"], acc)
        if i % 8 == 7:
            b.store("ap_st", grid_base + (pos % (nx * nx * 8)), "acc",
                    addr_srcs=["pos"], fp_data=True)
        i += 1
        b.branch("ap_loop", taken=True, target_label="ap_ld_pos", srcs=["pos"])


def art_kernel(b: TraceBuilder, n_target: int) -> None:
    """ART F1 scans: a short periodic neuron array plus strided weights.

    Two predictable streams with different signatures: the small F1 array
    is rescanned every 24 iterations (a periodic per-PC value pattern —
    context-predictor food), while the big weight array carries affine
    values (stride food) and misses the L1.  The serial match accumulator
    chains through both, so correct predictions directly shorten the
    critical path, giving the oracle its large Figure 3 headroom."""
    rng = b.rng
    f1_period = 240
    f1 = [rng.getrandbits(52) for _ in range(f1_period)]
    n_weights = 48 * 1024  # 384 KB: streams through L1 into L2
    w_base = b.alloc(n_weights * 8)
    f1_base = b.alloc(f1_period * 8)
    j_slot = b.alloc(8)
    j = 0
    match = 0
    while b.n < n_target:
        k = j % f1_period
        if k == 0:
            match = 0  # per-scan reduction: partial sums repeat every scan
        # The scan index is a memory-carried induction variable (classic
        # unoptimised code): reload, increment, store back.  Its values are
        # a pure stride, and the whole scan hangs off it — the chain stride
        # predictors collapse.
        b.load("art_ld_j", "j", j_slot, j)
        b.alu("art_inc_j", "j", ["j"], j + 1)
        b.store("art_st_j", j_slot, "j")
        # Weight values follow the scan period: products and partial sums
        # are period-240 streams (context-predictor food); neuron values
        # are fixed random numbers (no stride pattern to mis-latch on).
        wj = (5 * k + 11) & MASK64
        xj = f1[k]
        b.load("art_ld_w", "w", w_base + (j % n_weights) * 8, wj, addr_srcs=["j"], fp=True)
        b.load("art_ld_x", "x", f1_base + k * 8, xj, addr_srcs=["j"], fp=True)
        prod = (wj * xj) & MASK64
        b.fmul("art_mul", "p", ["w", "x"], prod)
        match = (match + prod) & MASK64
        b.fadd("art_acc", "acc", ["p", "acc"] if k else ["p"], match)
        winner = (match >> 60) & 1 == 1
        b.branch("art_win", taken=winner, target_label="art_ld_j", srcs=["acc"])
        j += 1


def gamess_kernel(b: TraceBuilder, n_target: int) -> None:
    """Integral evaluation with phase switches: traps plain counters."""
    rng = b.rng
    # Coefficient stream: stable within a phase (~15 uses), then switches.
    phases = []
    while len(phases) < 8192:
        coeff = rng.getrandbits(52)
        phases.extend([coeff] * max(2, int(rng.expovariate(1.0 / 15))))
    coef_base = b.alloc(64 * 8)
    i = 0
    acc = 0
    while b.n < n_target:
        coeff = phases[i % len(phases)]
        b.alu("gm_i", "i", ["i"] if i else [], i)
        b.load("gm_ld_c", "c", coef_base + (i % 64) * 8, coeff, addr_srcs=["i"], fp=True)
        # Horner step: serial FP chain through the coefficient.
        acc = ((acc * 3) + coeff) & MASK64
        b.fmul("gm_horner_m", "h", ["acc"] if i else ["c"], (acc * 3) & MASK64)
        b.fadd("gm_horner_a", "acc", ["h", "c"], acc)
        converged = (acc & 0xFF) < 40
        b.branch("gm_conv", taken=converged, target_label="gm_i", srcs=["acc"])
        i += 1


def milc_kernel(b: TraceBuilder, n_target: int) -> None:
    """SU(3) streaming: unpredictable FP + a long-run confidence trap."""
    rng = b.rng
    n_sites = 1 << 18  # 256K sites x 8 B: 2 MB, thrashes the L2
    lattice = [rng.getrandbits(60) for _ in range(n_sites)]
    lat_base = b.alloc(n_sites * 8)
    # Trap stream: stable for ~700 uses (long enough to saturate even FPC),
    # then switches -> rare but real squashes on a memory-bound path,
    # reproducing the paper's "milc is slightly slowed down" (< 1 %).
    trap = []
    while len(trap) < 16384:
        v = rng.getrandbits(40)
        trap.extend([v] * rng.randrange(900, 1500))
    i = 0
    acc = 0
    while b.n < n_target:
        site = (i * 7) % n_sites
        v = lattice[site]
        b.alu("mi_i", "i", ["i"] if i else [], i)
        b.load("mi_ld", "v", lat_base + site * 8, v, addr_srcs=["i"], fp=True)
        t = trap[i % len(trap)]
        b.load("mi_ld_t", "t", lat_base + (site ^ 1) * 8, t, addr_srcs=["i"], fp=True)
        prod = (v * t) & MASK64
        b.fmul("mi_mul", "p", ["v", "t"], prod)
        acc = (acc + prod) & MASK64
        b.fadd("mi_acc", "acc", ["p", "acc"] if i else ["p"], acc)
        i += 1
        b.branch("mi_loop", taken=True, target_label="mi_i", srcs=["i"])


def namd_kernel(b: TraceBuilder, n_target: int) -> None:
    """Pairwise force loops: highly predictable values, FP-throughput bound.

    Eight independent FP multiply/add pairs per iteration saturate the FP
    pools; values repeat every timestep so coverage is ~90 %, but breaking
    dependences buys nothing — the paper's namd result."""
    m = 512
    c_base = b.alloc(m * 8)
    i = 0
    while b.n < n_target:
        k = i % m
        b.alu("na_k", "k", ["k"] if i else [], k)
        for pair in range(6):  # independent work: no chains to break
            # Values are globally affine in the iteration count (no wrap
            # discontinuity), so the per-PC streams are pure strides.
            v = ((i + pair) * 0x1111_1111) & MASK64
            b.load(f"na_ld{pair}", f"c{pair}", c_base + ((k + pair) % m) * 8, v,
                   addr_srcs=["k"], fp=True)
            b.fmul(f"na_mul{pair}", f"f{pair}", [f"c{pair}"], (v * 9) & MASK64)
            b.fadd(f"na_add{pair}", f"e{pair}", [f"f{pair}"], (v * 9 + 1) & MASK64)
        for extra in range(5):  # independent integer bookkeeping
            b.alu(f"na_int{extra}", f"t{extra}", [], (i * 3 + extra) & MASK64)
        i += 1
        b.branch("na_loop", taken=True, target_label="na_k", srcs=["k"])


def lbm_kernel(b: TraceBuilder, n_target: int) -> None:
    """Lattice-Boltzmann streaming: strided DRAM traffic, low value reuse."""
    rng = b.rng
    n_cells = 1 << 18  # 2 MB working set streamed linearly
    cells = [rng.getrandbits(56) for _ in range(n_cells)]
    cell_base = b.alloc(n_cells * 8)
    out_base = b.alloc(n_cells * 8)
    i = 0
    while b.n < n_target:
        idx = i % n_cells
        b.alu("lb_i", "i", ["i"] if i else [], i)
        total = 0
        for d in range(3):  # three of the 19 stencil directions
            v = cells[(idx + d * 64) % n_cells]
            b.load(f"lb_ld{d}", f"v{d}", cell_base + ((idx + d * 64) % n_cells) * 8, v,
                   addr_srcs=["i"], fp=True)
            total = (total + v) & MASK64
            b.fadd(f"lb_add{d}", "tot", [f"v{d}", "tot"] if d else [f"v{d}"], total)
        b.fmul("lb_relax", "tot", ["tot"], (total * 3) & MASK64)
        b.store("lb_st", out_base + idx * 8, "tot", addr_srcs=["i"], fp_data=True)
        i += 1
        b.branch("lb_loop", taken=True, target_label="lb_i", srcs=["i"])
