"""Parameterised scenario workloads: sweepable synthetic behaviour knobs.

Where the Table 3 kernels each imitate one SPEC benchmark, a *scenario*
is a synthetic workload whose behaviour is set by three orthogonal knobs,
so campaigns (:mod:`repro.engine.campaign`) can sweep **workload**
dimensions exactly like core-config dimensions:

* ``chase`` — pointer-chase depth: how many dependent loads each loop
  iteration chains through a shuffled ring of nodes.  Deeper chains mean
  longer dependence-limited critical paths, i.e. more headroom for value
  prediction to collapse (the mcf axis).
* ``entropy`` — branch-direction entropy in percent of the maximum: 0
  gives a fixed periodic pattern TAGE learns perfectly, 100 flips a fair
  coin per branch (flip probability ``entropy/200``, so the knob is
  monotone end to end).  Dials misprediction rate, and with it the
  fraction of cycles value prediction cannot help (the sjeng axis).
* ``locality`` — value locality in percent: the probability that an
  iteration revisits known ground — the pointer chase restarts on its hot
  path and the produced value repeats the previous iteration's — instead
  of wandering/switching to fresh bits.  Dials predictor coverage (and
  with it how much of the chase chain value prediction can collapse) from
  almost-stable down to white noise (the crafty/milc axis).

A scenario is addressed by name, ``scenario-c<chase>-e<entropy>-l<locality>``
(e.g. ``scenario-c4-e25-l90``), everywhere a catalog workload name is
accepted: ``SimJob.make(workload=...)``, ``repro run``, campaign workload
axes.  :func:`scenario_axis` builds the name grid for campaign specs.
Traces are deterministic in (name, seed): the default seed is derived
from the knob values, so the same scenario name always denotes the same
µop stream, across processes and executors.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.util.bits import MASK64
from repro.workloads.builder import TraceBuilder

#: Canonical name pattern: scenario-c<chase>-e<entropy%>-l<locality%>.
_NAME_RE = re.compile(r"^scenario-c(\d+)-e(\d{1,3})-l(\d{1,3})$")

#: Bounds on the knobs (chase depth caps to keep traces register-sane).
MAX_CHASE = 64


@dataclass(frozen=True)
class ScenarioParams:
    """The three behaviour knobs of one scenario workload."""

    chase: int = 4       # pointer-chase depth (dependent loads/iteration)
    entropy: int = 25    # branch-direction entropy, percent 0..100
    locality: int = 90   # value-reuse probability, percent 0..100

    def __post_init__(self):
        if not 0 <= self.chase <= MAX_CHASE:
            raise ValueError(f"chase must be 0..{MAX_CHASE}, got {self.chase}")
        if not 0 <= self.entropy <= 100:
            raise ValueError(f"entropy must be 0..100, got {self.entropy}")
        if not 0 <= self.locality <= 100:
            raise ValueError(f"locality must be 0..100, got {self.locality}")

    @property
    def name(self) -> str:
        return f"scenario-c{self.chase}-e{self.entropy}-l{self.locality}"

    def default_seed(self) -> int:
        """Deterministic per-scenario seed (no process-dependent hashing)."""
        return 0x5EED + self.chase * 10_007 + self.entropy * 101 + self.locality


def parse_scenario_name(name: str) -> ScenarioParams | None:
    """Parse a ``scenario-c*-e*-l*`` name; ``None`` for anything else."""
    match = _NAME_RE.match(name)
    if match is None:
        return None
    chase, entropy, locality = (int(g) for g in match.groups())
    try:
        return ScenarioParams(chase=chase, entropy=entropy, locality=locality)
    except ValueError:
        return None


def is_scenario_name(name: str) -> bool:
    return parse_scenario_name(name) is not None


def scenario_axis(
    chase=(1, 4, 8),
    entropy=(5, 50),
    locality=(90, 40),
) -> list[str]:
    """The cross-product of knob values as workload names — ready to drop
    into a campaign spec's ``workload`` axis."""
    return [
        ScenarioParams(c, e, l).name
        for c in chase
        for e in entropy
        for l in locality
    ]


def scenario_kernel(params: ScenarioParams, b: TraceBuilder, n_target: int) -> None:
    """Emit the scenario loop: chase → branch → value-producing work.

    Every iteration (1) walks ``chase`` dependent loads through a shuffled
    pointer ring — restarting from the ring's *hot path* with ``locality``
    probability, wandering onward otherwise, so high locality makes the
    chain's loaded successors almost-stable values (the paper's Fig. 4a
    class: predictable enough for big gains, occasionally wrong, so plain
    3-bit counters suffer and FPC is needed) while low locality makes them
    noise; (2) executes two conditional branches whose directions mix a
    periodic pattern with ``entropy``-probability noise; and (3) produces
    a loaded value that sticks with ``locality`` probability, folded into
    a running accumulator and spilled to memory.  All values are genuinely
    computed, so dependences, addresses and value streams are real — and
    because the chase chain is the critical path, predicting its loads is
    what value prediction's speedup actually collapses.
    """
    rng = b.rng
    n_nodes = 256
    # Shuffled successor ring: node i stores the index of its successor.
    ring = list(range(1, n_nodes)) + [0]
    rng.shuffle(ring)
    ring_base = b.alloc(n_nodes * 64, align=64)
    acc_slot = b.alloc(8)
    spill_slot = b.alloc(8)

    node = 0
    acc = 0
    value = rng.getrandbits(64)
    i = 0
    b.imm("scn_init", "node", node)
    while b.n < n_target:
        # (1) Pointer chase: each load's address depends on the previous
        # loaded value — a serialised chain of params.chase loads.  With
        # `locality` probability the walk restarts on the hot path (node
        # 0), so each static chase load usually re-sees one successor.
        if rng.random() < params.locality / 100.0:
            node = 0
            b.imm("scn_hot", "node", node)
        for depth in range(params.chase):
            succ = ring[node]
            b.load(f"scn_chase{depth}", "node", ring_base + node * 64, succ,
                   addr_srcs=["node"])
            node = succ
        # (2) Branches: periodic pattern XOR noise.  Flip probability is
        # entropy/200 so the knob is monotone over its whole range and
        # 100 really is a fair coin (entropy/100 would make 100 a
        # deterministic inversion — zero effective randomness).
        pattern = (i >> 1) & 1
        flip = rng.random() < params.entropy / 200.0
        taken = bool(pattern ^ flip)
        b.branch("scn_br0", taken=taken, target_label="scn_init", srcs=["node"])
        b.branch("scn_br1", taken=not taken, target_label="scn_init",
                 srcs=["node"])
        # (3) Value stream: sticky (repeat last) or switch, then fold + spill.
        if rng.random() >= params.locality / 100.0:
            value = rng.getrandbits(64)
        b.load("scn_val", "val", acc_slot, value)
        acc = (acc + value) & MASK64
        b.alu("scn_fold", "acc", ["acc", "val"] if i else ["val"], acc)
        b.store("scn_spill", spill_slot, "acc")
        i += 1
