"""Loop-invariant redundancy injection.

Real compiled code is full of *trivially redundant* values — reloads of
globals and spilled locals, re-computed base addresses, constant moves.
Classic value-locality studies (Lipasti et al. [12]) report that a third to
a half of dynamic results repeat their previous value, and that redundancy
is what gives last-value-style predictors their baseline coverage.

Our kernels compute the *distinctive* value streams of each benchmark
(strides, almost-stable fields, history-correlated kinds...); this pass
splices in the mundane redundancy around them: every ``every`` µops, a
block of ``count`` loads from fixed addresses returning fixed values plus
one combining ALU op, at stable dedicated PCs.  The per-benchmark
``(every, count)`` pair is a calibration knob recorded in the workload
catalog.
"""

from __future__ import annotations

import random

from repro.isa.trace import Trace
from repro.isa.uop import MicroOp, OpClass

_INV_CODE_BASE = 0x0070_0000
_INV_DATA_BASE = 0x0F00_0000
# Registers used by invariant blocks.  They may collide with the busiest
# kernels' last allocations; the values in the trace are explicit, so at
# worst a dependence edge is redirected to a fast L1 load.
_INV_REGS = (30, 31)


def inject_invariants(
    trace: Trace,
    every: int,
    count: int = 3,
    seed: int = 7,
) -> Trace:
    """Return a new trace with invariant blocks spliced in every *every* µops."""
    if every <= 0:
        return trace
    if count < 1:
        raise ValueError("invariant block needs at least one load")
    rng = random.Random(seed)
    values = [rng.getrandbits(48) for _ in range(count)]
    mixed = 0
    for v in values:
        mixed ^= v
    out: list[MicroOp] = []
    since_block = 0
    for uop in trace.uops:
        # Renumber in place instead of `dataclasses.replace` (which was
        # ~40% of total trace-build time): the input trace is the
        # builder's freshly generated, otherwise-unreferenced µop list,
        # so mutating `seq` is safe and the output is value-identical.
        uop.seq = len(out)
        out.append(uop)
        since_block += 1
        if since_block >= every:
            since_block = 0
            for k in range(count):
                out.append(
                    MicroOp(
                        seq=len(out),
                        pc=_INV_CODE_BASE + k * 4,
                        op_class=OpClass.LOAD,
                        srcs=(),
                        dst=_INV_REGS[k % len(_INV_REGS)],
                        value=values[k],
                        mem_addr=_INV_DATA_BASE + k * 8,
                        mem_size=8,
                    )
                )
            out.append(
                MicroOp(
                    seq=len(out),
                    pc=_INV_CODE_BASE + count * 4,
                    op_class=OpClass.INT_ALU,
                    srcs=tuple(dict.fromkeys(_INV_REGS[: min(count, 2)])),
                    dst=_INV_REGS[0],
                    value=mixed,
                )
            )
    return Trace(out, name=trace.name)
