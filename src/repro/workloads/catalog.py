"""The benchmark catalog: Table 3 of the paper, mapped to our kernels.

"We use a subset of the SPEC'00 and SPEC'06 suites ... Specifically, we use
12 integer benchmarks and 7 floating-point programs" (Section 7.3).  Each
entry records the paper's program name and reference input alongside the
synthetic kernel that stands in for it (see DESIGN.md for the substitution
rationale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.isa.trace import Trace
from repro.workloads import kernels_fp, kernels_int, scenarios
from repro.workloads.builder import TraceBuilder
from repro.workloads.invariants import inject_invariants


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark of Table 3."""

    name: str            # short name used across figures ("gzip")
    spec_name: str       # full SPEC identifier ("164.gzip")
    suite: str           # "INT" or "FP"
    spec_input: str      # reference input, straight from Table 3
    kernel: Callable[[TraceBuilder, int], None]
    seed: int
    notes: str           # calibration notes / expected behaviour
    # Loop-invariant redundancy calibration (see workloads.invariants):
    # one (count+1)-µop invariant block is spliced in every `redundancy_every`
    # kernel µops.
    redundancy_every: int = 20
    redundancy_count: int = 3


WORKLOADS: tuple[WorkloadSpec, ...] = (
    # ---- CPU2000 -------------------------------------------------------
    WorkloadSpec("gzip", "164.gzip", "INT", "input.source 60",
                 kernels_int.gzip_kernel, 164,
                 "LZ match loops; mixed predictability, modest VP gains",
                 redundancy_every=20, redundancy_count=3),
    WorkloadSpec("wupwise", "168.wupwise", "FP", "wupwise.in",
                 kernels_fp.wupwise_kernel, 168,
                 "strided FP streams; 2D-Stride's best case",
                 redundancy_every=20, redundancy_count=3),
    WorkloadSpec("applu", "173.applu", "FP", "applu.in",
                 kernels_fp.applu_kernel, 173,
                 "boundary-correlated coefficients; VTAGE's case",
                 redundancy_every=16, redundancy_count=3),
    WorkloadSpec("vpr", "175.vpr", "INT",
                 "net.in arch.in place.out dum.out -nodisp -place_only "
                 "-init_t 5 -exit_t 0.005 -alpha_t 0.9412 -inner_num 2",
                 kernels_int.vpr_kernel, 175,
                 "LCG-driven annealing; low-moderate predictability",
                 redundancy_every=22, redundancy_count=3),
    WorkloadSpec("art", "179.art", "FP",
                 "-scanfile c756hel.in -trainfile1 a10.img -trainfile2 hc.img "
                 "-stride 2 -startx 110 -starty 200 -endx 160 -endy 240 -objects 10",
                 kernels_fp.art_kernel, 179,
                 "repeated weight scans; predictable slow loads, big headroom",
                 redundancy_every=11, redundancy_count=3),
    WorkloadSpec("crafty", "186.crafty", "INT", "crafty.in",
                 kernels_int.crafty_kernel, 186,
                 "almost-stable values; low baseline accuracy, needs FPC",
                 redundancy_every=25, redundancy_count=2),
    WorkloadSpec("parser", "197.parser", "INT", "ref.in 2.1.dict -batch",
                 kernels_int.parser_kernel, 197,
                 "hash-chain walks with Zipf word reuse",
                 redundancy_every=18, redundancy_count=3),
    WorkloadSpec("vortex", "255.vortex", "INT", "lendian1.raw",
                 kernels_int.vortex_kernel, 255,
                 "OO dispatch; alternating tags, low baseline accuracy",
                 redundancy_every=11, redundancy_count=3),
    # ---- CPU2006 -------------------------------------------------------
    WorkloadSpec("bzip2", "401.bzip2", "INT", "input.source 280",
                 kernels_int.bzip2_kernel, 401,
                 "histogram/cumulative counters; 2D-Stride's other best case",
                 redundancy_every=18, redundancy_count=3),
    WorkloadSpec("gcc", "403.gcc", "INT", "166.i",
                 kernels_int.gcc_kernel, 403,
                 "grammar-driven kinds correlated with branch history; VTAGE",
                 redundancy_every=16, redundancy_count=3),
    WorkloadSpec("gamess", "416.gamess", "FP", "cytosine.2.config",
                 kernels_fp.gamess_kernel, 416,
                 "phase-switching coefficients; low baseline accuracy",
                 redundancy_every=20, redundancy_count=3),
    WorkloadSpec("mcf", "429.mcf", "INT", "inp.in",
                 kernels_int.mcf_kernel, 429,
                 "DRAM pointer chase; huge oracle headroom",
                 redundancy_every=30, redundancy_count=2),
    WorkloadSpec("milc", "433.milc", "FP", "su3imp.in",
                 kernels_fp.milc_kernel, 433,
                 "streaming, near-unpredictable; FPC trap -> tiny slowdown",
                 redundancy_every=50, redundancy_count=2),
    WorkloadSpec("namd", "444.namd", "FP", "namd.input",
                 kernels_fp.namd_kernel, 444,
                 "~90% coverage, no dependence-limited work: marginal speedup",
                 redundancy_every=9, redundancy_count=3),
    WorkloadSpec("gobmk", "445.gobmk", "INT", "13x13.tst",
                 kernels_int.gobmk_kernel, 445,
                 "almost-stable ownership; low baseline accuracy",
                 redundancy_every=25, redundancy_count=2),
    WorkloadSpec("hmmer", "456.hmmer", "INT", "nph3.hmm",
                 kernels_int.hmmer_kernel, 456,
                 "Viterbi DP; quasi-linear scores, moderate stride cover",
                 redundancy_every=20, redundancy_count=3),
    WorkloadSpec("sjeng", "458.sjeng", "INT", "ref.txt",
                 kernels_int.sjeng_kernel, 458,
                 "chess search; chaotic hashes, low baseline accuracy",
                 redundancy_every=30, redundancy_count=2),
    WorkloadSpec("h264ref", "464.h264ref", "INT",
                 "foreman_ref_encoder_baseline.cfg",
                 kernels_int.h264_kernel, 464,
                 "predictable divisions gate the critical path: small "
                 "coverage, large speedup",
                 redundancy_every=30, redundancy_count=2),
    WorkloadSpec("lbm", "470.lbm", "FP", "reference.dat",
                 kernels_fp.lbm_kernel, 470,
                 "streaming stencil; prefetcher territory, small VP gains",
                 redundancy_every=25, redundancy_count=2),
)

_BY_NAME = {spec.name: spec for spec in WORKLOADS}

INT_WORKLOADS = tuple(w.name for w in WORKLOADS if w.suite == "INT")
FP_WORKLOADS = tuple(w.name for w in WORKLOADS if w.suite == "FP")
ALL_WORKLOADS = tuple(w.name for w in WORKLOADS)

# Trace cache: building traces is pure and deterministic, so traces are
# memoised per (name, length, seed) for the many runs that reuse them.
_TRACE_CACHE: dict[tuple[str, int, int], Trace] = {}


def get_spec(name: str) -> WorkloadSpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(ALL_WORKLOADS)}"
        ) from None


def known_workload(name: str) -> bool:
    """True for catalog benchmarks *and* parameterised scenario names."""
    return name in _BY_NAME or scenarios.is_scenario_name(name)


def build_trace(name: str, n_uops: int, seed: int | None = None, cache: bool = True) -> Trace:
    """Generate (or fetch from cache) the µop trace for one benchmark.

    *name* is either a Table 3 catalog entry or a parameterised scenario
    (``scenario-c*-e*-l*``, see :mod:`repro.workloads.scenarios`).  For
    catalog entries the kernel generates the distinctive value streams and
    the invariant pass splices in the benchmark's calibrated share of
    trivially-redundant values (see :mod:`repro.workloads.invariants`);
    scenarios control their own redundancy through the locality knob.  The
    returned trace has at least *n_uops* µops; callers slice off what they
    need.
    """
    params = scenarios.parse_scenario_name(name)
    if params is not None:
        effective_seed = seed if seed is not None else params.default_seed()
        key = (name, n_uops, effective_seed)
        if cache and key in _TRACE_CACHE:
            return _TRACE_CACHE[key]
        builder = TraceBuilder(name, seed=effective_seed)
        scenarios.scenario_kernel(params, builder, n_uops)
        trace = builder.trace
        if len(trace) > n_uops:
            trace = trace[:n_uops]
            trace.name = name
        if cache:
            trace.columns()
            _TRACE_CACHE[key] = trace
        return trace
    spec = get_spec(name)
    effective_seed = seed if seed is not None else spec.seed
    key = (name, n_uops, effective_seed)
    if cache and key in _TRACE_CACHE:
        return _TRACE_CACHE[key]
    block = spec.redundancy_count + 1
    dilution = 1.0 + block / spec.redundancy_every
    # Small safety margin: kernels stop at loop-iteration granularity, so
    # aim past the target and trim back to exactly n_uops.
    kernel_target = max(1, int(n_uops / dilution) + 2 * spec.redundancy_every + 16)
    builder = TraceBuilder(name, seed=effective_seed)
    spec.kernel(builder, kernel_target)
    trace = inject_invariants(
        builder.trace,
        every=spec.redundancy_every,
        count=spec.redundancy_count,
        seed=effective_seed,
    )
    if len(trace) > n_uops:
        trace = trace[:n_uops]
        trace.name = name
    if cache:
        # Materialise the columnar view once per cached trace, so every
        # simulation that reuses the trace skips the per-µop rederivation
        # (predictor keys, line ids, op-class flags) in the scheduler loop.
        trace.columns()
        _TRACE_CACHE[key] = trace
    return trace


def clear_trace_cache() -> None:
    _TRACE_CACHE.clear()
