"""The benchmark catalog: Table 3 of the paper, mapped to our kernels.

"We use a subset of the SPEC'00 and SPEC'06 suites ... Specifically, we use
12 integer benchmarks and 7 floating-point programs" (Section 7.3).  Each
entry records the paper's program name and reference input alongside the
synthetic kernel that stands in for it (see DESIGN.md for the substitution
rationale).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.isa.trace import Trace
from repro.util import profiling
from repro.workloads import ingest, kernels_fp, kernels_int, scenarios
from repro.workloads.builder import TraceBuilder
from repro.workloads.invariants import inject_invariants
from repro.workloads.store import default_trace_store


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark of Table 3."""

    name: str            # short name used across figures ("gzip")
    spec_name: str       # full SPEC identifier ("164.gzip")
    suite: str           # "INT" or "FP"
    spec_input: str      # reference input, straight from Table 3
    kernel: Callable[[TraceBuilder, int], None]
    seed: int
    notes: str           # calibration notes / expected behaviour
    # Loop-invariant redundancy calibration (see workloads.invariants):
    # one (count+1)-µop invariant block is spliced in every `redundancy_every`
    # kernel µops.
    redundancy_every: int = 20
    redundancy_count: int = 3


WORKLOADS: tuple[WorkloadSpec, ...] = (
    # ---- CPU2000 -------------------------------------------------------
    WorkloadSpec("gzip", "164.gzip", "INT", "input.source 60",
                 kernels_int.gzip_kernel, 164,
                 "LZ match loops; mixed predictability, modest VP gains",
                 redundancy_every=20, redundancy_count=3),
    WorkloadSpec("wupwise", "168.wupwise", "FP", "wupwise.in",
                 kernels_fp.wupwise_kernel, 168,
                 "strided FP streams; 2D-Stride's best case",
                 redundancy_every=20, redundancy_count=3),
    WorkloadSpec("applu", "173.applu", "FP", "applu.in",
                 kernels_fp.applu_kernel, 173,
                 "boundary-correlated coefficients; VTAGE's case",
                 redundancy_every=16, redundancy_count=3),
    WorkloadSpec("vpr", "175.vpr", "INT",
                 "net.in arch.in place.out dum.out -nodisp -place_only "
                 "-init_t 5 -exit_t 0.005 -alpha_t 0.9412 -inner_num 2",
                 kernels_int.vpr_kernel, 175,
                 "LCG-driven annealing; low-moderate predictability",
                 redundancy_every=22, redundancy_count=3),
    WorkloadSpec("art", "179.art", "FP",
                 "-scanfile c756hel.in -trainfile1 a10.img -trainfile2 hc.img "
                 "-stride 2 -startx 110 -starty 200 -endx 160 -endy 240 -objects 10",
                 kernels_fp.art_kernel, 179,
                 "repeated weight scans; predictable slow loads, big headroom",
                 redundancy_every=11, redundancy_count=3),
    WorkloadSpec("crafty", "186.crafty", "INT", "crafty.in",
                 kernels_int.crafty_kernel, 186,
                 "almost-stable values; low baseline accuracy, needs FPC",
                 redundancy_every=25, redundancy_count=2),
    WorkloadSpec("parser", "197.parser", "INT", "ref.in 2.1.dict -batch",
                 kernels_int.parser_kernel, 197,
                 "hash-chain walks with Zipf word reuse",
                 redundancy_every=18, redundancy_count=3),
    WorkloadSpec("vortex", "255.vortex", "INT", "lendian1.raw",
                 kernels_int.vortex_kernel, 255,
                 "OO dispatch; alternating tags, low baseline accuracy",
                 redundancy_every=11, redundancy_count=3),
    # ---- CPU2006 -------------------------------------------------------
    WorkloadSpec("bzip2", "401.bzip2", "INT", "input.source 280",
                 kernels_int.bzip2_kernel, 401,
                 "histogram/cumulative counters; 2D-Stride's other best case",
                 redundancy_every=18, redundancy_count=3),
    WorkloadSpec("gcc", "403.gcc", "INT", "166.i",
                 kernels_int.gcc_kernel, 403,
                 "grammar-driven kinds correlated with branch history; VTAGE",
                 redundancy_every=16, redundancy_count=3),
    WorkloadSpec("gamess", "416.gamess", "FP", "cytosine.2.config",
                 kernels_fp.gamess_kernel, 416,
                 "phase-switching coefficients; low baseline accuracy",
                 redundancy_every=20, redundancy_count=3),
    WorkloadSpec("mcf", "429.mcf", "INT", "inp.in",
                 kernels_int.mcf_kernel, 429,
                 "DRAM pointer chase; huge oracle headroom",
                 redundancy_every=30, redundancy_count=2),
    WorkloadSpec("milc", "433.milc", "FP", "su3imp.in",
                 kernels_fp.milc_kernel, 433,
                 "streaming, near-unpredictable; FPC trap -> tiny slowdown",
                 redundancy_every=50, redundancy_count=2),
    WorkloadSpec("namd", "444.namd", "FP", "namd.input",
                 kernels_fp.namd_kernel, 444,
                 "~90% coverage, no dependence-limited work: marginal speedup",
                 redundancy_every=9, redundancy_count=3),
    WorkloadSpec("gobmk", "445.gobmk", "INT", "13x13.tst",
                 kernels_int.gobmk_kernel, 445,
                 "almost-stable ownership; low baseline accuracy",
                 redundancy_every=25, redundancy_count=2),
    WorkloadSpec("hmmer", "456.hmmer", "INT", "nph3.hmm",
                 kernels_int.hmmer_kernel, 456,
                 "Viterbi DP; quasi-linear scores, moderate stride cover",
                 redundancy_every=20, redundancy_count=3),
    WorkloadSpec("sjeng", "458.sjeng", "INT", "ref.txt",
                 kernels_int.sjeng_kernel, 458,
                 "chess search; chaotic hashes, low baseline accuracy",
                 redundancy_every=30, redundancy_count=2),
    WorkloadSpec("h264ref", "464.h264ref", "INT",
                 "foreman_ref_encoder_baseline.cfg",
                 kernels_int.h264_kernel, 464,
                 "predictable divisions gate the critical path: small "
                 "coverage, large speedup",
                 redundancy_every=30, redundancy_count=2),
    WorkloadSpec("lbm", "470.lbm", "FP", "reference.dat",
                 kernels_fp.lbm_kernel, 470,
                 "streaming stencil; prefetcher territory, small VP gains",
                 redundancy_every=25, redundancy_count=2),
)

_BY_NAME = {spec.name: spec for spec in WORKLOADS}

INT_WORKLOADS = tuple(w.name for w in WORKLOADS if w.suite == "INT")
FP_WORKLOADS = tuple(w.name for w in WORKLOADS if w.suite == "FP")
ALL_WORKLOADS = tuple(w.name for w in WORKLOADS)

# Trace cache: building traces is pure and deterministic, so traces are
# memoised per (name, length, seed) for the many runs that reuse them.
# The cache is a *bounded* LRU: a long-lived `repro serve` daemon sweeping
# many scenario workloads must not grow it without limit, so inserts evict
# least-recently-used traces past an entry count and a packed-byte budget
# (tunable via the environment, read per call so tests can flip them).
# Budget accounting charges each trace its packed bytes *plus* any
# precompute planes attached to it (``trace._plane_cache``, see
# pipeline/precompute.py) — planes grow after insertion, so occupancy is
# re-summed at insert time rather than tracked incrementally.
_TRACE_CACHE: OrderedDict[tuple[str, int, int], Trace] = OrderedDict()

#: Environment variables bounding the per-process trace cache.
TRACE_CACHE_ENTRIES_ENV = "REPRO_TRACE_CACHE_ENTRIES"
TRACE_CACHE_MB_ENV = "REPRO_TRACE_CACHE_MB"

#: Default LRU budgets: entries and packed megabytes.  A 48k-µop packed
#: trace is ~3.5 MB, so the defaults hold every distinct trace of a full
#: reproduction run with room to spare while capping a pathological sweep.
TRACE_CACHE_MAX_ENTRIES = 64
TRACE_CACHE_MAX_MB = 512

# Lifetime counters (this process): kernel generations actually executed
# vs. trace-store loads.  The grid benchmark and the store tests use these
# to prove structurally that warm paths skip generation.
_GEN_COUNT = 0
_STORE_LOAD_COUNT = 0


def _cache_budgets() -> tuple[int, int]:
    """(max entries, max bytes) for the LRU, honouring the env overrides."""
    try:
        entries = int(os.environ.get(TRACE_CACHE_ENTRIES_ENV, ""))
    except ValueError:
        entries = TRACE_CACHE_MAX_ENTRIES
    if entries < 1:
        entries = TRACE_CACHE_MAX_ENTRIES
    try:
        mb = float(os.environ.get(TRACE_CACHE_MB_ENV, ""))
    except ValueError:
        mb = TRACE_CACHE_MAX_MB
    if mb <= 0:
        mb = TRACE_CACHE_MAX_MB
    return entries, int(mb * 1024 * 1024)


def _plane_bytes(trace: Trace) -> int:
    """Bytes of precompute planes attached to *trace* (0 when none).

    Inspects the attribute generically so the catalog stays import-free of
    the pipeline layer; the attribute contract lives in
    ``pipeline/precompute.py`` (every plane exposes ``nbytes``).
    """
    planes = getattr(trace, "_plane_cache", None)
    if not planes:
        return 0
    return sum(int(plane.nbytes) for plane in planes.values())


def _charged_bytes(trace: Trace) -> int:
    """What the LRU budget charges one cached trace: packed + planes."""
    return trace.nbytes + _plane_bytes(trace)


def _cache_bytes() -> int:
    return sum(_charged_bytes(trace) for trace in _TRACE_CACHE.values())


def _cache_insert(key: tuple[str, int, int], trace: Trace) -> None:
    """Insert (or refresh) a trace and evict LRU entries past the budgets.

    The newly inserted trace itself is never evicted, so a single trace
    larger than the whole byte budget still caches (budget-keeping resumes
    with the next insert).
    """
    _TRACE_CACHE.pop(key, None)
    _TRACE_CACHE[key] = trace
    max_entries, max_bytes = _cache_budgets()
    while len(_TRACE_CACHE) > 1 and (
        len(_TRACE_CACHE) > max_entries or _cache_bytes() > max_bytes
    ):
        _TRACE_CACHE.popitem(last=False)


def _cache_get(key: tuple[str, int, int]) -> Trace | None:
    trace = _TRACE_CACHE.get(key)
    if trace is not None:
        _TRACE_CACHE.move_to_end(key)
    return trace


def resolve_seed(name: str, seed: int | None = None) -> int:
    """The effective build seed for *name*: explicit, else the catalog /
    scenario default.  This is the seed component of every trace identity
    (in-process cache, on-disk store, shared-memory plane)."""
    if seed is not None:
        return seed
    params = scenarios.parse_scenario_name(name)
    if params is not None:
        return params.default_seed()
    if ingest.is_ingest_name(name):
        # Ingested traces carry their synthesis seed in the store-side
        # registry; the name's digest already covers it.
        return ingest.registered_identity(name)[1]
    return get_spec(name).seed


def cached_trace(name: str, n_uops: int, seed: int | None = None) -> Trace | None:
    """The cached trace for an identity tuple, or ``None`` (no building)."""
    return _cache_get((name, n_uops, resolve_seed(name, seed)))


def seed_trace(name: str, n_uops: int, seed: int | None, trace: Trace) -> None:
    """Install an externally materialised trace (e.g. attached from the
    shared-memory plane) under its identity so :func:`build_trace` hits."""
    key = (name, n_uops, resolve_seed(name, seed))
    trace.store_identity = key
    _cache_insert(key, trace)


def trace_cache_stats() -> dict:
    """Entry/byte occupancy and lifetime build/load counters.

    ``bytes`` is the total the LRU budget enforces (packed columns plus
    attached precompute planes); ``precompute_bytes`` breaks out the plane
    share so ``repro trace clear --stats`` reports it honestly.
    """
    precompute = sum(_plane_bytes(trace) for trace in _TRACE_CACHE.values())
    return {
        "entries": len(_TRACE_CACHE),
        "bytes": _cache_bytes(),
        "precompute_bytes": precompute,
        "generations": _GEN_COUNT,
        "store_loads": _STORE_LOAD_COUNT,
    }


def generation_count() -> int:
    """Kernel generations executed in this process (store loads excluded)."""
    return _GEN_COUNT


def get_spec(name: str) -> WorkloadSpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(ALL_WORKLOADS)}"
        ) from None


def known_workload(name: str) -> bool:
    """True for catalog benchmarks, parameterised scenario names and
    ingested-trace names (``ingest-<slug>-<digest>``)."""
    return (name in _BY_NAME or scenarios.is_scenario_name(name)
            or ingest.is_ingest_name(name))


def _generate_trace(name: str, n_uops: int, effective_seed: int) -> Trace:
    """Run the generator for one identity tuple (no caches consulted)."""
    global _GEN_COUNT
    _GEN_COUNT += 1
    params = scenarios.parse_scenario_name(name)
    if params is not None:
        builder = TraceBuilder(name, seed=effective_seed)
        scenarios.scenario_kernel(params, builder, n_uops)
        trace = builder.trace
    else:
        spec = get_spec(name)
        block = spec.redundancy_count + 1
        dilution = 1.0 + block / spec.redundancy_every
        # Small safety margin: kernels stop at loop-iteration granularity,
        # so aim past the target and trim back to exactly n_uops.
        kernel_target = max(
            1, int(n_uops / dilution) + 2 * spec.redundancy_every + 16
        )
        builder = TraceBuilder(name, seed=effective_seed)
        spec.kernel(builder, kernel_target)
        trace = inject_invariants(
            builder.trace,
            every=spec.redundancy_every,
            count=spec.redundancy_count,
            seed=effective_seed,
        )
    if len(trace) > n_uops:
        trace = trace[:n_uops]
        trace.name = name
    return trace


def build_trace(name: str, n_uops: int, seed: int | None = None, cache: bool = True) -> Trace:
    """Materialise the µop trace for one benchmark, cheapest source first.

    *name* is either a Table 3 catalog entry or a parameterised scenario
    (``scenario-c*-e*-l*``, see :mod:`repro.workloads.scenarios`).  For
    catalog entries the kernel generates the distinctive value streams and
    the invariant pass splices in the benchmark's calibrated share of
    trivially-redundant values (see :mod:`repro.workloads.invariants`);
    scenarios control their own redundancy through the locality knob.  The
    returned trace has at least *n_uops* µops; callers slice off what they
    need.

    Sources are tried in cost order: the in-process LRU cache, the
    persistent trace store (``$REPRO_TRACE_DIR``, mmap-loaded packed
    columns), and finally the generator — whose output is persisted to the
    store so every later process loads instead of regenerates.  All three
    paths yield bit-identical columns (pinned by the store round-trip
    tests and the golden grid).
    """
    global _STORE_LOAD_COUNT
    effective_seed = resolve_seed(name, seed)
    key = (name, n_uops, effective_seed)
    if cache:
        hit = _cache_get(key)
        if hit is not None:
            return hit
    if ingest.is_ingest_name(name):
        # Ingested bytes cannot be regenerated: they always come from the
        # store's full-length entry, tiled or sliced to the request.  The
        # identity stamp still points at (name, n_uops, seed); precompute
        # planes persist only when that matches the stored full length.
        with profiling.phase("trace-build"):
            trace = ingest.materialise(name, n_uops)
        _STORE_LOAD_COUNT += 1
        trace.store_identity = key
        if cache:
            with profiling.phase("trace-columnize"):
                trace.columns()
            _cache_insert(key, trace)
        return trace
    store = default_trace_store() if cache else None
    if store is not None:
        loaded = store.get(name, n_uops, effective_seed)
        if loaded is not None:
            _STORE_LOAD_COUNT += 1
            loaded.store_identity = key
            with profiling.phase("trace-columnize"):
                loaded.columns()
            _cache_insert(key, loaded)
            return loaded
    with profiling.phase("trace-build"):
        trace = _generate_trace(name, n_uops, effective_seed)
    # Stamp the catalog identity so derived products (precompute planes)
    # can persist themselves next to the trace's store entry.
    trace.store_identity = key
    if cache:
        # Materialise the columnar view once per cached trace, so every
        # simulation that reuses the trace skips the per-µop rederivation
        # (predictor keys, line ids, op-class flags) in the scheduler loop.
        with profiling.phase("trace-columnize"):
            trace.columns()
        if store is not None:
            store.put(trace, name, n_uops, effective_seed)
        _cache_insert(key, trace)
    return trace


def clear_trace_cache() -> None:
    """Drop every cached trace (test isolation, memory pressure)."""
    _TRACE_CACHE.clear()
