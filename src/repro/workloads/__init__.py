"""Synthetic SPEC-substitute workloads (see DESIGN.md, substitution table).

The paper evaluates on SimPoint slices of 19 SPEC CPU2000/2006 benchmarks
(Table 3).  Without SPEC binaries or gem5, we generate µop traces from
small kernels that compute real value streams calibrated per benchmark;
:mod:`repro.workloads.catalog` maps each Table 3 entry to its kernel.
"""

from repro.workloads.builder import TraceBuilder
from repro.workloads.catalog import (
    ALL_WORKLOADS,
    FP_WORKLOADS,
    INT_WORKLOADS,
    WORKLOADS,
    WorkloadSpec,
    build_trace,
    cached_trace,
    clear_trace_cache,
    get_spec,
    known_workload,
    resolve_seed,
    seed_trace,
    trace_cache_stats,
)
from repro.workloads.scenarios import (
    ScenarioParams,
    is_scenario_name,
    parse_scenario_name,
    scenario_axis,
)
from repro.workloads.store import (
    TRACE_DIR_ENV,
    TraceStore,
    default_trace_store,
    trace_key,
)

__all__ = [
    "ALL_WORKLOADS",
    "FP_WORKLOADS",
    "INT_WORKLOADS",
    "ScenarioParams",
    "TRACE_DIR_ENV",
    "TraceBuilder",
    "TraceStore",
    "WORKLOADS",
    "WorkloadSpec",
    "build_trace",
    "cached_trace",
    "clear_trace_cache",
    "default_trace_store",
    "get_spec",
    "is_scenario_name",
    "known_workload",
    "parse_scenario_name",
    "resolve_seed",
    "seed_trace",
    "scenario_axis",
    "trace_cache_stats",
    "trace_key",
]
