"""Real-trace ingestion: execution logs in, :class:`PackedColumns` out.

All workloads so far are synthetic (Table 3 kernels, scenario knob
points).  This module opens the frontier the ROADMAP calls "ingest real
program traces": it parses real execution logs — the ``address hex
mnemonic`` commit-log format the cva6 ``perf-model/cycle_count.py``
exemplar consumes, plus a tolerant objdump-style variant — classifies
every instruction into the existing µop vocabulary, and lowers the
stream straight to :class:`~repro.isa.trace.PackedColumns` through the
content-addressed trace store.  From there an ingested trace is
indistinguishable from a generated one: the catalog LRU caches it, the
shared-memory plane fans it out to workers, precompute planes persist
next to it, and every simulator implementation (legacy / fastsim /
C kernel) consumes it bit-identically.

**Line formats.**  Two layouts are auto-detected per line:

* cva6/RVFI commit-log style: ``<addr-hex> <insn-hex> <mnemonic ...>``
  (e.g. ``80000000 00000297 auipc t0,0x0``);
* objdump style: ``<addr-hex>: <insn-hex> <mnemonic ...>`` with
  optional ``<label>`` / ``# comment`` annotations, which are stripped.

Label lines (``0000000080000000 <main>:``), section headers and blank
lines are *skipped* (expected log noise); anything else that fails to
parse is *quarantined* — recorded with its line number and reason in the
:class:`IngestReport`, never silently dropped nor fatal.  A truncated
final line quarantines the same way.

**Classification.**  The mnemonic maps to an :class:`~repro.isa.uop.OpClass`
(loads/stores with access width, conditional branches, jump/call/ret
heuristics, mul/div, FP families, everything else INT ALU); source and
destination registers are extracted heuristically from the operand
string (ABI names, ``x``/``f`` numerics, ``imm(reg)`` address bases).
Branch directions and control targets are recovered from the *actual*
next-line address — the one piece of genuinely dynamic information a
commit log carries.

**Values.**  Commit logs carry no register values, so value streams are
*synthetic but seeded*: every value-producing static PC gets a
deterministic stream (constant / strided / periodic / noise, chosen and
seeded from ``(seed, pc)``) and every memory PC a deterministic address
stream.  The same ``(source bytes, seed)`` always lowers to the same
packed arrays — re-ingestion is bit-identical, which is what makes the
digest-bearing workload name a sound cache key.

**Naming & registry.**  An ingested trace is addressed as
``ingest-<slug>-<digest10>`` where the digest covers the source bytes,
the seed and :data:`INGEST_VERSION`.  Ingestion requires a trace store:
the packed columns persist under the name with ``provenance:
"ingested"``, and a registry sidecar (``<store>/ingest/<name>.json``)
records the identity so any later process —  CLI, worker, daemon — can
resolve the name without the source file.  Requests longer than the
ingested stream are *tiled* (the program loops); shorter ones slice.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import random
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.isa.trace import Trace
from repro.isa.uop import MicroOp, OpClass
from repro.util.atomicio import atomic_write_text, file_lock
from repro.util.bits import MASK64

#: Bump whenever parsing, classification or value synthesis changes the
#: lowered µop stream for the same source bytes; part of the name digest,
#: so stale store entries are orphaned rather than misread.
INGEST_VERSION = 1

#: Default value-synthesis seed when ``--seed`` is not given.
DEFAULT_INGEST_SEED = 0x1A7E57

#: Ingested workload names: ``ingest-<slug>-<digest10>``.
_NAME_RE = re.compile(r"^ingest-([a-z0-9][a-z0-9_.+-]*)-([0-9a-f]{10})$")

_REGISTRY_DIR = "ingest"

# ---------------------------------------------------------------------------
# Line parsing
# ---------------------------------------------------------------------------

#: cva6/RVFI commit-log line: ``addr hex mnemonic [operands]``.
_CVA6_RE = re.compile(
    r"^\s*(?:0x)?([0-9a-fA-F]{4,16})\s+(?:0x)?([0-9a-fA-F]{4,8})\s+(\S.*)$"
)

#: objdump disassembly line: ``addr: hex mnemonic [operands]``.
_OBJDUMP_RE = re.compile(
    r"^\s*(?:0x)?([0-9a-fA-F]{4,16}):\s+([0-9a-fA-F]{4,8})\s+(\S.*)$"
)

#: Lines that are expected log noise, skipped without quarantine.
_LABEL_RE = re.compile(r"^\s*(?:0x)?[0-9a-fA-F]{4,16}\s+<[^>]*>:\s*$")
_SECTION_RE = re.compile(r"^(Disassembly of section|\S+:\s+file format)\b")


@dataclass(frozen=True)
class ParsedInsn:
    """One successfully parsed log line (pre-classification)."""

    line_no: int
    addr: int
    code: int
    mnemonic: str        # first token, lowercased
    operands: str        # remainder, annotations stripped

    @property
    def size(self) -> int:
        """Instruction size in bytes (RISC-V compressed-encoding rule)."""
        return 4 if (self.code & 0b11) == 0b11 else 2


@dataclass
class IngestReport:
    """What one ingestion run did — parse counts, quarantine, identity."""

    source: str = ""
    source_sha256: str = ""
    name: str = ""
    seed: int = DEFAULT_INGEST_SEED
    n_uops: int = 0
    parsed: int = 0
    skipped: int = 0
    quarantined: list = field(default_factory=list)  # (line_no, reason, text)
    stored: bool = False

    def to_dict(self) -> dict:
        """JSON-able form (the registry sidecar payload)."""
        d = dataclasses.asdict(self)
        d["quarantined"] = [list(q) for q in self.quarantined]
        return d


class IngestError(ValueError):
    """Unrecoverable ingestion failure (empty log, missing store entry)."""


def _strip_annotations(operands: str) -> str:
    """Drop ``# comment`` tails and ``<symbol>`` annotations."""
    operands = operands.split("#", 1)[0]
    operands = re.sub(r"<[^>]*>", "", operands)
    return operands.strip().rstrip(",")


def parse_line(line: str, line_no: int) -> ParsedInsn | None:
    """Parse one log line, or ``None`` when it is not an instruction.

    Raises ``ValueError`` with a human reason for malformed candidates
    (the caller quarantines); returns ``None`` for expected noise (blank
    lines, section headers, ``<label>:`` lines).
    """
    stripped = line.strip()
    if not stripped:
        return None
    if _LABEL_RE.match(stripped) or _SECTION_RE.match(stripped):
        return None
    match = _OBJDUMP_RE.match(line) or _CVA6_RE.match(line)
    if match is None:
        raise ValueError("not an `address hex mnemonic` line")
    addr_hex, code_hex, rest = match.groups()
    rest = _strip_annotations(rest)
    if not rest:
        raise ValueError("missing mnemonic after address and hex code")
    parts = rest.split(None, 1)
    mnemonic = parts[0].lower().rstrip(",")
    operands = parts[1].strip() if len(parts) > 1 else ""
    if not re.fullmatch(r"[a-z][a-z0-9._]*", mnemonic):
        raise ValueError(f"implausible mnemonic {mnemonic!r}")
    return ParsedInsn(
        line_no=line_no,
        addr=int(addr_hex, 16) & MASK64,
        code=int(code_hex, 16),
        mnemonic=mnemonic,
        operands=operands,
    )


def parse_log(text: str) -> tuple[list[ParsedInsn], int, list]:
    """Parse a whole log: ``(instructions, skipped, quarantined)``.

    ``quarantined`` rows are ``(line_no, reason, excerpt)``; they are
    excluded from the stream but fully reported.  A final line without a
    newline terminator is treated as potentially truncated and
    quarantined when it fails to parse.
    """
    insns: list[ParsedInsn] = []
    skipped = 0
    quarantined: list = []
    lines = text.split("\n")
    for i, raw in enumerate(lines, start=1):
        try:
            parsed = parse_line(raw, i)
        except ValueError as exc:
            reason = str(exc)
            if i == len(lines) and not text.endswith("\n"):
                reason = f"possibly truncated final line: {reason}"
            quarantined.append((i, reason, raw.strip()[:80]))
            continue
        if parsed is None:
            if raw.strip():
                skipped += 1
            continue
        insns.append(parsed)
    return insns, skipped, quarantined


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------

_ABI_INT = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
    "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}
_ABI_FP = {
    "ft0": 0, "ft1": 1, "ft2": 2, "ft3": 3, "ft4": 4, "ft5": 5,
    "ft6": 6, "ft7": 7, "fs0": 8, "fs1": 9,
    "fa0": 10, "fa1": 11, "fa2": 12, "fa3": 13, "fa4": 14, "fa5": 15,
    "fa6": 16, "fa7": 17,
    "fs2": 18, "fs3": 19, "fs4": 20, "fs5": 21, "fs6": 22, "fs7": 23,
    "fs8": 24, "fs9": 25, "fs10": 26, "fs11": 27,
    "ft8": 28, "ft9": 29, "ft10": 30, "ft11": 31,
}
_FP_REG_BASE = 32

_LOADS = {"lb": 1, "lh": 2, "lw": 4, "ld": 8, "lbu": 1, "lhu": 2,
          "lwu": 4, "lwsp": 4, "ldsp": 8}
_FP_LOADS = {"flw": 4, "fld": 8, "fldsp": 8, "flwsp": 4}
_STORES = {"sb": 1, "sh": 2, "sw": 4, "sd": 8, "swsp": 4, "sdsp": 8}
_FP_STORES = {"fsw": 4, "fsd": 8, "fsdsp": 8, "fswsp": 4}
_BRANCHES = {"beq", "bne", "blt", "bge", "bltu", "bgeu", "beqz", "bnez",
             "blez", "bgez", "bltz", "bgtz", "bgt", "ble", "bgtu", "bleu"}
_MULS = {"mul", "mulh", "mulhsu", "mulhu", "mulw"}
_DIVS = {"div", "divu", "rem", "remu", "divw", "divuw", "remw", "remuw"}
_FP_DIVS = {"fdiv.s", "fdiv.d", "fsqrt.s", "fsqrt.d", "fdiv", "fsqrt"}
_NOPS = {"nop", "fence", "fence.i", "sfence.vma", "wfi", "ecall", "ebreak",
         "mret", "sret", "unimp"}


def _reg_of(token: str) -> tuple[int, bool] | None:
    """(register id in the flat 0-63 space, is_fp) for a register token."""
    token = token.strip()
    if token in _ABI_INT:
        return _ABI_INT[token], False
    if token in _ABI_FP:
        return _ABI_FP[token] + _FP_REG_BASE, True
    match = re.fullmatch(r"x([0-9]|[12][0-9]|3[01])", token)
    if match:
        return int(match.group(1)), False
    match = re.fullmatch(r"f([0-9]|[12][0-9]|3[01])", token)
    if match:
        return int(match.group(1)) + _FP_REG_BASE, True
    return None


_MEM_OPERAND_RE = re.compile(r"(-?(?:0x)?[0-9a-fA-F]+)?\((\w+)\)")


def _operand_regs(operands: str) -> list[tuple[int, bool]]:
    """Register ids mentioned in an operand string, in textual order."""
    regs: list[tuple[int, bool]] = []
    for token in re.split(r"[,\s]+", operands):
        if not token:
            continue
        mem = _MEM_OPERAND_RE.fullmatch(token)
        if mem is not None:
            reg = _reg_of(mem.group(2))
            if reg is not None:
                regs.append(reg)
            continue
        reg = _reg_of(token)
        if reg is not None:
            regs.append(reg)
    return regs


def _target_of(operands: str) -> int | None:
    """The last operand parsed as a hex address, if any (branch targets)."""
    tokens = [t for t in re.split(r"[,\s]+", operands) if t]
    if not tokens:
        return None
    tail = tokens[-1]
    if re.fullmatch(r"(?:0x)?[0-9a-fA-F]{3,16}", tail) and _reg_of(tail) is None:
        return int(tail, 16) & MASK64
    return None


@dataclass(frozen=True)
class Classified:
    """The µop-vocabulary view of one parsed instruction."""

    op_class: OpClass
    dst: int | None
    srcs: tuple[int, ...]
    dst_is_fp: bool
    mem_size: int = 8
    target_hint: int | None = None   # statically parsed control target


def classify(insn: ParsedInsn) -> Classified:
    """Map one instruction into the simulator's µop vocabulary.

    Heuristic by design: the goal is a *plausible* µop stream (the right
    op class, realistic dependences) rather than a faithful decode —
    the values are synthetic anyway.  Unknown mnemonics fall into
    INT ALU with best-effort register extraction, so a new ISA extension
    degrades the model, never the ingestion.
    """
    name = insn.mnemonic
    if name.startswith("c."):
        name = name[2:]
    regs = _operand_regs(insn.operands)

    if name in _NOPS:
        return Classified(OpClass.NOP, None, (), False)

    if name in _LOADS or name in _FP_LOADS:
        fp = name in _FP_LOADS
        size = (_FP_LOADS if fp else _LOADS)[name]
        dst = regs[0][0] if regs else None
        if dst == 0:
            dst = None   # x0 writes are architectural no-ops
        srcs = tuple(r for r, _ in regs[1:])
        return Classified(OpClass.LOAD, dst, srcs, fp, mem_size=size)

    if name in _STORES or name in _FP_STORES:
        fp = name in _FP_STORES
        size = (_FP_STORES if fp else _STORES)[name]
        return Classified(OpClass.STORE, None, tuple(r for r, _ in regs),
                          False, mem_size=size)

    if name in _BRANCHES:
        return Classified(OpClass.BRANCH, None, tuple(r for r, _ in regs),
                          False, target_hint=_target_of(insn.operands))

    if name == "ret" or (name == "jr" and regs and regs[0][0] == 1):
        return Classified(OpClass.RET, None, tuple(r for r, _ in regs), False)
    if name in ("j", "tail") or (name == "jr"):
        return Classified(OpClass.JUMP, None, tuple(r for r, _ in regs),
                          False, target_hint=_target_of(insn.operands))
    if name in ("jal", "jalr", "call"):
        # rd defaults to ra when omitted (`jal offset`, `call sym`); an
        # explicit x0/zero rd makes it a plain jump.
        rd = regs[0][0] if regs else 1
        if name == "call" or not regs:
            rd = 1
        if rd == 0:
            return Classified(
                OpClass.JUMP, None, tuple(r for r, _ in regs[1:]), False,
                target_hint=_target_of(insn.operands))
        if rd == 1:
            return Classified(
                OpClass.CALL, None, tuple(r for r, _ in regs[1:]), False,
                target_hint=_target_of(insn.operands))
        # Link into an arbitrary register: model as a jump that also
        # depends on its sources (indirect dispatch).
        return Classified(OpClass.JUMP, None, tuple(r for r, _ in regs[1:]),
                          False, target_hint=_target_of(insn.operands))

    base = name.split(".", 1)[0]
    if base in _MULS:
        cls = OpClass.INT_MUL
    elif base in _DIVS:
        cls = OpClass.INT_DIV
    elif name in _FP_DIVS or base in ("fdiv", "fsqrt"):
        cls = OpClass.FP_DIV
    elif base in ("fmul", "fmadd", "fmsub", "fnmadd", "fnmsub"):
        cls = OpClass.FP_MUL
    elif name.startswith("f") and base not in ("fence",):
        cls = OpClass.FP_ADD
    else:
        cls = OpClass.INT_ALU

    dst: int | None = None
    srcs: list[int] = []
    if regs:
        dst = regs[0][0]
        srcs = [r for r, _ in regs[1:]]
    dst_is_fp = bool(regs) and regs[0][1]
    if dst == 0:
        dst = None
        dst_is_fp = False
    # FP compares/classifies/moves-to-int write integer registers: trust
    # the extracted destination register's bank over the mnemonic.
    if cls in (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV) \
            and dst is not None and not dst_is_fp:
        pass  # e.g. feq.d a0,fa0,fa1 — FP unit, int destination
    return Classified(cls, dst, tuple(srcs), dst_is_fp)


# ---------------------------------------------------------------------------
# Seeded value / address synthesis
# ---------------------------------------------------------------------------

class _StreamSynth:
    """Deterministic per-static-PC streams for values and addresses.

    Real commit logs carry no data values, so each value-producing PC is
    assigned a stream *kind* — constant, strided, periodic or noise —
    chosen and seeded from ``(seed, pc)``.  The mix covers the whole
    predictability spectrum the paper's predictors differentiate on
    (LVP loves constants, stride loves arithmetic sequences, VTAGE loves
    short periodic patterns, nothing loves noise).
    """

    _KINDS = ("const", "stride", "period", "noise")
    _WEIGHTS = (0.30, 0.30, 0.20, 0.20)

    def __init__(self, seed: int, salt: int):
        self._seed = seed
        self._salt = salt
        self._streams: dict[int, tuple] = {}

    def _open(self, pc: int) -> tuple:
        rng = random.Random((self._seed << 2) ^ (pc * 0x9E3779B1) ^ self._salt)
        kind = rng.choices(self._KINDS, weights=self._WEIGHTS, k=1)[0]
        if kind == "const":
            return ("const", rng.getrandbits(64), None)
        if kind == "stride":
            stride = rng.choice((1, 1, 2, 4, 8, 8, 16, 64, -1, -8))
            return ("stride", rng.getrandbits(48), stride)
        if kind == "period":
            period = rng.randrange(2, 5)
            values = tuple(rng.getrandbits(64) for _ in range(period))
            return ("period", 0, values)
        return ("noise", rng.getrandbits(64), rng)

    def next(self, pc: int) -> int:
        """The next value of *pc*'s stream (advances the stream)."""
        state = self._streams.get(pc)
        if state is None:
            state = self._open(pc)
        kind, cursor, extra = state
        if kind == "const":
            value = cursor
        elif kind == "stride":
            value = cursor & MASK64
            cursor = (cursor + extra) & MASK64
        elif kind == "period":
            value = extra[cursor % len(extra)]
            cursor += 1
        else:
            value = extra.getrandbits(64)
        self._streams[pc] = (kind, cursor, extra)
        return value & MASK64


def _address_synth(seed: int) -> _StreamSynth:
    """Address streams live in a distinct salt space from value streams
    (the same PC must not correlate its loaded value with its address)."""
    return _StreamSynth(seed, salt=0x5A5A5A5A)


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------

_DATA_BASE = 0x2000_0000


def lower(insns: list[ParsedInsn], seed: int, name: str) -> Trace:
    """Lower parsed instructions to a :class:`Trace` of µops.

    Control direction and targets come from the actual next-line
    address; values and memory addresses from the seeded synthesis
    streams.  Deterministic in ``(insns, seed)``.
    """
    values = _StreamSynth(seed, salt=0)
    addrs = _address_synth(seed)
    uops: list[MicroOp] = []
    n = len(insns)
    for i, insn in enumerate(insns):
        cls = classify(insn)
        next_addr = insns[i + 1].addr if i + 1 < n else None
        fallthrough = (insn.addr + insn.size) & MASK64
        taken = False
        target = 0
        op = cls.op_class
        if op is OpClass.BRANCH:
            if next_addr is not None:
                taken = next_addr != fallthrough
                target = next_addr if taken else (cls.target_hint or 0)
            else:
                target = cls.target_hint or 0
        elif op in (OpClass.JUMP, OpClass.CALL, OpClass.RET):
            taken = True
            if next_addr is not None:
                target = next_addr
            else:
                target = cls.target_hint or fallthrough
        mem_addr = None
        value = 0
        if op is OpClass.LOAD or op is OpClass.STORE:
            base = _DATA_BASE + ((insn.addr & 0xFFFF) << 6)
            mem_addr = (base + addrs.next(insn.addr)) & MASK64
            # Keep accesses naturally aligned so line/banking behaviour
            # stays realistic.
            mem_addr &= ~(cls.mem_size - 1) & MASK64
        if cls.dst is not None:
            value = values.next(insn.addr)
        uops.append(
            MicroOp(
                seq=i,
                pc=insn.addr,
                uop_index=0,
                op_class=op,
                srcs=cls.srcs,
                dst=cls.dst,
                value=value,
                mem_addr=mem_addr,
                mem_size=cls.mem_size,
                taken=taken,
                target=target,
                dst_is_fp=cls.dst_is_fp,
            )
        )
    return Trace(uops, name=name)


def tile_trace(trace: Trace, n_uops: int) -> Trace:
    """Repeat *trace* until it covers ``n_uops`` µops (the program loops).

    Sequence numbers are renumbered continuously; PCs, values, addresses
    and directions repeat verbatim — exactly what re-running the logged
    region would look like to the predictors.  Deterministic.
    """
    base = trace.uops
    if not base:
        raise IngestError(f"cannot tile empty trace {trace.name!r}")
    uops: list[MicroOp] = []
    seq = 0
    while len(uops) < n_uops:
        for u in base:
            uops.append(dataclasses.replace(u, seq=seq))
            seq += 1
            if len(uops) >= n_uops:
                break
    return Trace(uops, name=trace.name)


# ---------------------------------------------------------------------------
# Naming, registry, store integration
# ---------------------------------------------------------------------------

def is_ingest_name(name: str) -> bool:
    """True for well-formed ingested-workload names."""
    return _NAME_RE.match(name) is not None


def _slug(source: str) -> str:
    stem = Path(source).stem.lower()
    slug = re.sub(r"[^a-z0-9_.+-]+", "-", stem).strip("-.")
    return (slug or "trace")[:24]


def ingest_name(source: str, source_bytes: bytes, seed: int) -> str:
    """The canonical ``ingest-<slug>-<digest10>`` name for one ingestion.

    The digest covers the raw source bytes, the synthesis seed and
    :data:`INGEST_VERSION` — the full identity of the lowered stream —
    so one name can never denote two different packed traces.
    """
    h = hashlib.sha256()
    h.update(f"ingest:v{INGEST_VERSION}:seed{seed}:".encode())
    h.update(source_bytes)
    return f"ingest-{_slug(source)}-{h.hexdigest()[:10]}"


def _registry_path(store, name: str) -> Path:
    return Path(store.directory) / _REGISTRY_DIR / f"{name}.json"


def registry_entry(store, name: str) -> dict | None:
    """The registry sidecar for *name* under *store*, or ``None``."""
    if store is None:
        return None
    path = _registry_path(store, name)
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def registered_names(store) -> list[str]:
    """Every ingested workload registered under *store* (sorted)."""
    if store is None:
        return []
    root = Path(store.directory) / _REGISTRY_DIR
    if not root.is_dir():
        return []
    return sorted(p.stem for p in root.glob("ingest-*.json")
                  if is_ingest_name(p.stem))


def ingest_text(text: str, source: str, store, seed: int | None = None,
                ) -> tuple[Trace, IngestReport]:
    """Ingest one log's text: parse, lower, persist, register.

    Returns the lowered trace and a full report.  Raises
    :class:`IngestError` when the log contains no parseable
    instructions; a missing store still lowers (``stored`` stays False)
    so callers can inspect without persisting.
    """
    effective_seed = DEFAULT_INGEST_SEED if seed is None else seed
    raw = text.encode()
    insns, skipped, quarantined = parse_log(text)
    report = IngestReport(
        source=str(source),
        source_sha256=hashlib.sha256(raw).hexdigest(),
        seed=effective_seed,
        parsed=len(insns),
        skipped=skipped,
        quarantined=quarantined,
    )
    if not insns:
        raise IngestError(
            f"{source}: no parseable instructions "
            f"({len(quarantined)} line(s) quarantined)")
    name = ingest_name(str(source), raw, effective_seed)
    report.name = name
    report.n_uops = len(insns)
    trace = lower(insns, effective_seed, name)
    trace.store_identity = (name, len(insns), effective_seed)
    if store is not None:
        store.put(trace, name, len(insns), effective_seed,
                  provenance="ingested")
        entry = {
            "name": name,
            "n_uops": len(insns),
            "seed": effective_seed,
            "ingest_version": INGEST_VERSION,
            "source": str(source),
            "source_sha256": report.source_sha256,
            "parsed": report.parsed,
            "skipped": report.skipped,
            "quarantined": len(report.quarantined),
        }
        path = _registry_path(store, name)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Sidecars are one-file-per-name, but concurrent shards sharing a
        # trace store can ingest the same log at once: the lock makes the
        # write-then-rename a critical section, so readers racing a
        # re-ingest always see exactly one complete sidecar.
        with file_lock(path):
            atomic_write_text(path,
                              json.dumps(entry, sort_keys=True, indent=1))
        report.stored = store.contains(name, len(insns), effective_seed)
    return trace, report


def ingest_file(path: str | os.PathLike, store, seed: int | None = None,
                ) -> tuple[Trace, IngestReport]:
    """Ingest one log file (see :func:`ingest_text`)."""
    return ingest_text(Path(path).read_text(), str(path), store, seed=seed)


# -- catalog integration ----------------------------------------------------

# (store directory, name) -> (n_uops, seed); registry sidecars are
# immutable once written, so a tiny process-local memo is safe.
_IDENTITY_MEMO: dict[tuple[str, str], tuple[int, int]] = {}


def registered_identity(name: str) -> tuple[int, int]:
    """(full length, seed) of ingested workload *name*.

    Resolved through the default trace store's registry; raises
    :class:`IngestError` when no store is configured or the name is not
    registered there — an ingested workload only exists where its store
    does.
    """
    from repro.workloads.store import default_trace_store

    store = default_trace_store()
    if store is None:
        raise IngestError(
            f"workload {name!r} is an ingested trace, which needs the "
            "trace store that holds it (set REPRO_TRACE_DIR)")
    memo_key = (str(store.directory), name)
    hit = _IDENTITY_MEMO.get(memo_key)
    if hit is not None:
        return hit
    entry = registry_entry(store, name)
    if entry is None:
        raise IngestError(
            f"ingested workload {name!r} is not registered under "
            f"{store.directory} (re-run `repro ingest` against this store)")
    identity = (int(entry["n_uops"]), int(entry["seed"]))
    _IDENTITY_MEMO[memo_key] = identity
    return identity


def materialise(name: str, n_uops: int) -> Trace:
    """Load ingested workload *name* sized to *n_uops* µops.

    Loads the full stored stream, then tiles (the program loops) or
    slices to the requested length.  Raises :class:`IngestError` when
    the store entry is gone (quarantined or cleared) — ingested bytes
    cannot be regenerated from thin air.
    """
    from repro.workloads.store import default_trace_store

    full_n, seed = registered_identity(name)
    store = default_trace_store()
    base = store.get(name, full_n, seed)
    if base is None:
        raise IngestError(
            f"stored columns for ingested workload {name!r} are missing "
            f"or corrupt under {store.directory}; re-run `repro ingest`")
    if len(base) > n_uops:
        base = base[:n_uops]
        base.name = name
    elif len(base) < n_uops:
        base = tile_trace(base, n_uops)
    return base
