"""Integer workload kernels (SPEC CPU2000/2006 INT stand-ins, Table 3).

Each kernel is a small program that actually computes: the emitted µop
stream carries real dependences, real addresses and real result values.
Kernels are calibrated to reproduce the *qualitative* behaviour the paper
reports per benchmark — which predictor family covers it, how accurate the
baseline 3-bit confidence scheme is, how much headroom an oracle has — not
gem5's absolute numbers (see DESIGN.md).

Calibration summary (paper references in parentheses):

* gzip    — LZ-style match loop; mixed predictability, modest gains.
* vpr     — annealing swaps driven by an LCG; low-moderate predictability.
* crafty  — bitboard/hash chess; *almost-stable* values that switch without
  warning -> low baseline accuracy, slowdown without FPC (Fig. 4a).
* parser  — dictionary hash chains; repeated words make revisit loads
  predictable.
* vortex  — OO database with heavy call/return traffic; tag fields
  alternate among a few values -> low baseline accuracy (Fig. 4a).
* bzip2   — counter/histogram heavy; strided value streams favour
  2D-Stride (Sec. 8.2.3: "bzip achieves higher performance with 2D-Stride").
* gcc     — grammar-driven IR walk; node kinds correlate with branch
  history -> VTAGE territory (Sec. 8.2.3).
* mcf     — pointer chasing over a DRAM-sized graph; mostly-stable
  successor pointers give the oracle huge headroom (Fig. 3).
* gobmk   — board scans with almost-stable ownership values and hard
  branches -> low baseline accuracy (Fig. 4a).
* hmmer   — Viterbi DP; quasi-linear score growth, moderate stride cover.
* sjeng   — chess search like crafty; hash-dominated, low predictability.
* h264ref — motion-vector refinement: a few predictable divisions gate the
  critical path -> small coverage, large speedup (Sec. 8.2.2: "a small
  coverage may lead to significant speed-up e.g. h264").
"""

from __future__ import annotations

from repro.util.bits import MASK64
from repro.workloads.builder import TraceBuilder

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407


def _lcg(state: int) -> int:
    return (state * _LCG_A + _LCG_C) & MASK64


def gzip_kernel(b: TraceBuilder, n_target: int) -> None:
    """LZ77-flavoured compressor loop: rolling hash, chain probe, match run."""
    rng = b.rng
    window_size = 4096
    # Input with repeated motifs so matches actually occur.
    motif = [rng.randrange(256) for _ in range(64)]
    data = []
    while len(data) < window_size * 4:
        if rng.random() < 0.6:
            data.extend(motif[: rng.randrange(8, 32)])
        else:
            data.append(rng.randrange(256))
    hash_table = [0] * 1024
    input_base = b.alloc(len(data))
    table_base = b.alloc(len(hash_table) * 8)
    token_base = b.alloc(4096 * 8)
    pos = 0
    h = 0
    literals = 0
    tokens = 0
    b.imm("gz_init_h", "h", 0)
    while b.n < n_target:
        c = data[pos % len(data)]
        b.alu("gz_pos", "pos", ["pos"], pos) if pos else b.imm("gz_pos0", "pos", 0)
        b.load("gz_ld_c", "c", input_base + (pos % len(data)), c, addr_srcs=["pos"], size=1)
        h = ((h * 33) ^ c) & 1023
        b.alu("gz_hash", "h", ["h", "c"], h)
        head = hash_table[h]
        b.load("gz_ld_head", "head", table_base + h * 8, head, addr_srcs=["h"])
        hash_table[h] = pos
        b.store("gz_st_head", table_base + h * 8, "pos", addr_srcs=["h"])
        # Match loop: compare a few bytes against the chain head position.
        match_len = 0
        for k in range(4):
            same = data[(head + k) % len(data)] == data[(pos + k) % len(data)]
            b.load(
                f"gz_ld_m{k}",
                "mb",
                input_base + ((head + k) % len(data)),
                data[(head + k) % len(data)],
                addr_srcs=["head"],
                size=1,
            )
            b.branch(f"gz_br_m{k}", taken=not same, target_label="gz_emit", srcs=["mb", "c"])
            if not same:
                break
            match_len += 1
        if match_len >= 2:
            tokens += 1
            b.alu("gz_len", "len", ["len"] if "len" in b._int_regs else [], match_len)
            b.store("gz_st_tok", token_base + (tokens % 4096) * 8, "len")
        else:
            literals += 1
            b.alu("gz_lit", "lit", ["lit"] if pos else [], literals)
        pos += 1
        b.branch("gz_loop", taken=True, target_label="gz_pos")


def vpr_kernel(b: TraceBuilder, n_target: int) -> None:
    """Simulated-annealing placement: LCG-driven swaps, slow-moving state."""
    n_cells = 512
    xs = [b.rng.randrange(64) for _ in range(n_cells)]
    ys = [b.rng.randrange(64) for _ in range(n_cells)]
    x_base = b.alloc(n_cells * 8)
    y_base = b.alloc(n_cells * 8)
    state = 0x9E3779B9
    temp = 1 << 20
    b.imm("vpr_seed", "r", state)
    while b.n < n_target:
        state = _lcg(state)
        b.alu("vpr_lcg1", "r", ["r"], state)
        cell = (state >> 32) % n_cells
        b.alu("vpr_cell", "cell", ["r"], cell)
        b.load("vpr_ld_x", "x", x_base + cell * 8, xs[cell], addr_srcs=["cell"])
        b.load("vpr_ld_y", "y", y_base + cell * 8, ys[cell], addr_srcs=["cell"])
        dx = ((state >> 16) & 7) - 3
        cost = abs(xs[cell] + dx) + ys[cell]
        b.alu("vpr_dx", "dx", ["r"], dx)
        b.alu("vpr_cost", "cost", ["x", "dx"], cost)
        accept = (state & 0xFFFF) < 0x7000  # ~44 % acceptance
        b.branch("vpr_acc", taken=accept, target_label="vpr_lcg1", srcs=["cost"])
        if accept:
            xs[cell] = (xs[cell] + dx) % 64
            b.alu("vpr_nx", "x", ["x", "dx"], xs[cell])
            b.store("vpr_st_x", x_base + cell * 8, "x", addr_srcs=["cell"])
        temp -= 1
        b.alu("vpr_temp", "t", ["t"] if temp != (1 << 20) - 1 else [], temp)
        b.branch("vpr_loop", taken=True, target_label="vpr_lcg1", srcs=["t"])


def _almost_stable_stream(rng, n_values: int, mean_run: int, universe: int):
    """Values that hold for a geometric run, then switch unpredictably.

    This is the pattern that wrecks plain 3-bit confidence counters: the
    counter saturates during a run, then the switch costs a used
    misprediction (Section 8.2.2's low-baseline-accuracy group)."""
    values = []
    current = rng.randrange(universe)
    while len(values) < n_values:
        run = max(1, int(rng.expovariate(1.0 / mean_run)))
        values.extend([current] * run)
        current = rng.randrange(universe)
    return values[:n_values]


def crafty_kernel(b: TraceBuilder, n_target: int) -> None:
    """Chess bitboards: almost-stable square contents + chaotic hash probes."""
    rng = b.rng
    board = _almost_stable_stream(rng, 8192, mean_run=11, universe=13)
    tt_size = 16384
    tt = [rng.getrandbits(32) for _ in range(tt_size)]
    board_base = b.alloc(64 * 8)
    tt_base = b.alloc(tt_size * 8)
    zob_base = b.alloc(13 * 64 * 8)
    zob = [rng.getrandbits(64) for _ in range(13 * 64)]
    state = 12345
    i = 0
    b.imm("cr_i0", "sq", 0)
    while b.n < n_target:
        sq = i % 64
        piece = board[i % len(board)]
        b.alu("cr_sq", "sq", ["sq"], sq)
        b.load("cr_ld_board", "piece", board_base + sq * 8, piece, addr_srcs=["sq"])
        # Attack-mask generation: shift/mask chain on the piece value.
        att = ((piece << sq) | (piece >> 2)) & MASK64
        b.alu("cr_att1", "att", ["piece", "sq"], att)
        b.alu("cr_att2", "att", ["att"], att ^ (att >> 7))
        zkey = zob[piece * 64 + sq]
        b.load("cr_ld_zob", "zk", zob_base + (piece * 64 + sq) * 8, zkey, addr_srcs=["piece", "sq"])
        state = (state ^ zkey) & MASK64
        b.alu("cr_hmix", "hkey", ["hkey", "zk"] if i else ["zk"], state)
        slot = state % tt_size
        probe = tt[slot]
        b.load("cr_ld_tt", "tte", tt_base + slot * 8, probe, addr_srcs=["hkey"])
        # Cutoff branch driven by chaotic hash bits: hard to predict.
        cutoff = (probe ^ state) & 3 == 0
        b.branch("cr_cut", taken=cutoff, target_label="cr_sq", srcs=["tte"])
        if cutoff:
            tt[slot] = state
            b.store("cr_st_tt", tt_base + slot * 8, "hkey", addr_srcs=["hkey"])
        i += 1
        b.branch("cr_loop", taken=True, target_label="cr_sq", srcs=["sq"])


def parser_kernel(b: TraceBuilder, n_target: int) -> None:
    """Dictionary hash chains with Zipf-ish word reuse."""
    rng = b.rng
    n_words = 800
    buckets = 256
    # Chains: bucket -> list of (node_addr, word_id); layout fixed.
    chains: list[list[tuple[int, int]]] = [[] for _ in range(buckets)]
    node_base = b.alloc(n_words * 32)
    for w in range(n_words):
        chains[w % buckets].append((node_base + w * 32, w))
    # Zipf-ish reuse: small ids much more frequent.
    def next_word():
        return min(int(rng.paretovariate(1.3)) - 1, n_words - 1)

    counts_base = b.alloc(n_words * 8)
    counts = [0] * n_words
    b.imm("pa_i0", "w", 0)
    while b.n < n_target:
        w = next_word()
        h = w % buckets
        b.alu("pa_word", "w", ["w"], w)
        b.alu("pa_hash", "h", ["w"], h)
        # Walk the chain until the word is found.
        for depth, (addr, wid) in enumerate(chains[h]):
            b.load(f"pa_ld_n{min(depth,3)}", "node", addr, wid, addr_srcs=["h" if depth == 0 else "node"])
            found = wid == w
            b.branch(f"pa_br_n{min(depth,3)}", taken=found, target_label="pa_count", srcs=["node", "w"])
            if found or depth >= 3:
                break
        counts[w] += 1
        b.load("pa_ld_c", "cnt", counts_base + w * 8, counts[w] - 1, addr_srcs=["w"])
        b.alu("pa_inc", "cnt", ["cnt"], counts[w])
        b.store("pa_st_c", counts_base + w * 8, "cnt", addr_srcs=["w"])
        b.branch("pa_loop", taken=True, target_label="pa_word", srcs=["cnt"])


def vortex_kernel(b: TraceBuilder, n_target: int) -> None:
    """OO database: method dispatch on objects whose tags alternate."""
    rng = b.rng
    n_objects = 1024
    tags = _almost_stable_stream(rng, 8192, mean_run=14, universe=3)
    obj_base = b.alloc(n_objects * 64)
    fields = [rng.randrange(1000) for _ in range(n_objects)]
    i = 0
    b.imm("vx_i0", "obj", 0)
    while b.n < n_target:
        obj = (i * 17) % n_objects
        tag = tags[i % len(tags)]
        b.alu("vx_obj", "obj", ["obj"], obj)
        b.load("vx_ld_tag", "tag", obj_base + obj * 64, tag, addr_srcs=["obj"])
        # Virtual dispatch: call through one of three handlers.
        b.call("vx_call", f"vx_handler{tag}")
        # Handler body: load a field, transform, store back.
        field = fields[obj]
        b.load(f"vx_h{tag}_ld", "fld", obj_base + obj * 64 + 8, field, addr_srcs=["obj"])
        new_field = (field + tag + 1) % 100000
        b.alu(f"vx_h{tag}_op", "fld", ["fld", "tag"], new_field)
        fields[obj] = new_field
        b.store(f"vx_h{tag}_st", obj_base + obj * 64 + 8, "fld", addr_srcs=["obj"])
        b.ret(f"vx_h{tag}_ret")
        # Transaction counter: clean stride.
        i += 1
        b.alu("vx_txn", "txn", ["txn"] if i > 1 else [], i)
        b.branch("vx_loop", taken=True, target_label="vx_obj", srcs=["txn"])


def bzip2_kernel(b: TraceBuilder, n_target: int) -> None:
    """Burrows-Wheeler-ish counting: histogram and cumulative strides."""
    rng = b.rng
    # Run-heavy byte stream (post-RLE flavour).
    stream = []
    while len(stream) < 16384:
        byte = rng.randrange(16)
        stream.extend([byte] * rng.randrange(1, 12))
    freq = [0] * 16
    stream_base = b.alloc(len(stream))
    freq_base = b.alloc(16 * 8)
    out_base = b.alloc(65536 * 8)
    ptr_slot = b.alloc(8)
    i = 0
    total = 0
    b.imm("bz_i0", "i", 0)
    while b.n < n_target:
        c = stream[i % len(stream)]
        b.alu("bz_i", "i", ["i"], i)
        b.load("bz_ld_c", "c", stream_base + (i % len(stream)), c, addr_srcs=["i"], size=1)
        freq[c] += 1
        b.load("bz_ld_f", "f", freq_base + c * 8, freq[c] - 1, addr_srcs=["c"])
        b.alu("bz_inc_f", "f", ["f"], freq[c])
        b.store("bz_st_f", freq_base + c * 8, "f", addr_srcs=["c"])
        # Memory-carried cumulative output pointer: a textbook stride chain
        # that gates the output store (2D-Stride's Section 8.2.3 food).
        total += 8
        b.load("bz_ld_ptr", "ptr", ptr_slot, total - 8)
        b.alu("bz_inc_ptr", "ptr", ["ptr"], total)
        b.store("bz_st_ptr", ptr_slot, "ptr")
        b.store("bz_st_out", out_base + (total % 65536), "c", addr_srcs=["ptr"])
        # Run-length branch: highly biased within runs.
        in_run = i + 1 < len(stream) and stream[(i + 1) % len(stream)] == c
        b.branch("bz_run", taken=in_run, target_label="bz_i", srcs=["c"])
        i += 1
        b.branch("bz_loop", taken=True, target_label="bz_i", srcs=["i"])


def gcc_kernel(b: TraceBuilder, n_target: int) -> None:
    """Grammar-driven IR walk: node kinds follow the branch path (VTAGE food).

    The per-node chain is a two-level table walk gated by the *kind*: the
    kind value selects the info table entry, whose value addresses the
    operand table.  Kind and info values vary per node but are functions of
    the recent branch path, so VTAGE predicts them and collapses the walk;
    per-instruction predictors see an alternating stream they cannot hold."""
    rng = b.rng
    # Markov grammar over node kinds 0..5; mostly deterministic transitions.
    follow = {0: 1, 1: 2, 2: 3, 3: 0, 4: 5, 5: 0}
    kind_info = [7, 13, 21, 34, 55, 89]  # per-kind operand table
    operands = [(3 * v + 1) & MASK64 for v in range(128)]
    info_base = b.alloc(len(kind_info) * 8)
    op_base = b.alloc(len(operands) * 8)
    kind = 0
    acc = 0
    b.imm("gcc_k0", "kind", 0)
    while b.n < n_target:
        # Occasionally jump to the irregular sub-grammar.
        if rng.random() < 0.08:
            kind = rng.choice((4, 5))
        # Dispatch: two branches encode the kind class in the history.
        is_arith = kind < 3
        b.branch("gcc_b1", taken=is_arith, target_label="gcc_arith", srcs=["kind"])
        is_leaf = kind in (0, 4)
        b.branch("gcc_b2", taken=is_leaf, target_label="gcc_leaf", srcs=["kind"])
        # Two-level walk: kind -> info -> operand (serial loads).
        info = kind_info[kind]
        b.load("gcc_ld_info", "info", info_base + kind * 8, info, addr_srcs=["kind"])
        operand = operands[info % len(operands)]
        b.load("gcc_ld_op", "opnd", op_base + (info % len(operands)) * 8, operand,
               addr_srcs=["info"])
        acc = (acc + operand) & MASK64
        b.alu("gcc_acc", "acc", ["acc", "opnd"] if acc != operand else ["opnd"], acc)
        kind = follow[kind]
        b.alu("gcc_next", "kind", ["kind"], kind)
        b.branch("gcc_loop", taken=True, target_label="gcc_b1", srcs=["kind"])


def mcf_kernel(b: TraceBuilder, n_target: int) -> None:
    """Network simplex: DRAM-resident pointer chase plus arc-cost scans.

    The chase itself is not value-predictable (every occurrence of the
    successor load yields a new node id), which is why real predictors gain
    little here while the Figure 3 oracle — which simply knows every value
    — collapses the entire dependent-miss chain for a huge speedup."""
    rng = b.rng
    n_nodes = 1 << 17  # 128K nodes x 8B successor = 1 MB: mostly L2-resident
    # Two fixed random permutations, chased in alternation: dependent cache
    # misses with a little memory-level parallelism, like the real solver.
    perms = []
    for _ in range(2):
        perm = list(range(n_nodes))
        rng.shuffle(perm)
        perms.append(perm)
    node_bases = [b.alloc(n_nodes * 8), b.alloc(n_nodes * 8)]
    arc_base = b.alloc((1 << 19) * 8)  # 4 MB arc array streamed via DRAM
    cur = [0, 1]
    cost = 0
    i = 0
    b.imm("mcf_c0", "cur0", 0)
    b.imm("mcf_c1", "cur1", 1)
    while b.n < n_target:
        chain = i % 2
        reg = f"cur{chain}"
        if rng.random() < 0.15:
            # Pivot: the traversal deviates (defeats last-value prediction).
            nxt = rng.randrange(n_nodes)
        else:
            nxt = perms[chain][cur[chain]]
        b.load(f"mcf_ld_next{chain}", reg, node_bases[chain] + cur[chain] * 8, nxt,
               addr_srcs=[reg])
        # Streaming arc scan: independent of the chase (sequential
        # addresses the prefetcher covers), so the baseline core overlaps
        # it with the pointer-chase misses.
        reduced = 0
        for a in range(3):
            arc_cost = ((nxt + a) * 2654435761) & 0x3FFFF
            b.load(f"mcf_ld_arc{a}", f"ac{a}", arc_base + ((i * 192 + a * 64) % (1 << 22)),
                   arc_cost)
            reduced = (reduced + arc_cost) & MASK64
            b.alu(f"mcf_red{a}", "red", [f"ac{a}", "red"] if a else [f"ac{a}"], reduced)
        cost = (cost + reduced) & MASK64
        b.alu("mcf_cost", "cost", ["cost", "red"] if i else ["red"], cost)
        over = (cost & 0xFFF) > 0x800
        b.branch("mcf_chk", taken=over, target_label="mcf_ld_next0", srcs=["red"])
        cur[chain] = nxt
        i += 1


def gobmk_kernel(b: TraceBuilder, n_target: int) -> None:
    """Go board scans: almost-stable ownership + pattern-match branches."""
    rng = b.rng
    board = _almost_stable_stream(rng, 4096, mean_run=9, universe=3)
    lib_base = b.alloc(361 * 8)
    board_base = b.alloc(361 * 8)
    i = 0
    b.imm("go_i0", "pt", 0)
    while b.n < n_target:
        pt = i % 361
        owner = board[i % len(board)]
        b.alu("go_pt", "pt", ["pt"], pt)
        b.load("go_ld_own", "own", board_base + pt * 8, owner, addr_srcs=["pt"])
        libs = (owner + pt) % 5
        b.load("go_ld_lib", "lib", lib_base + pt * 8, libs, addr_srcs=["pt"])
        # Pattern match: chaotic two-level branch.
        matches = ((owner * 31 + libs) ^ (pt >> 2)) % 7 < 2
        b.branch("go_pat", taken=matches, target_label="go_pt", srcs=["own", "lib"])
        if matches:
            b.alu("go_score", "sc", ["sc", "own"] if i else ["own"], (owner + libs) * 3)
            b.store("go_st", lib_base + pt * 8, "sc", addr_srcs=["pt"])
        i += 1
        b.branch("go_loop", taken=True, target_label="go_pt", srcs=["pt"])


def hmmer_kernel(b: TraceBuilder, n_target: int) -> None:
    """Viterbi DP inner loop: scores grow by a constant within long
    homologous stretches (clean stride streams), with rare regime switches.

    The loop-carried score chain runs through the row arrays, so a stride
    predictor that covers it shortens the recurrence; the emission regime
    switches every couple of thousand cells, costing one confident
    misprediction each — modest squash pressure, Fig. 4-style gains."""
    rng = b.rng
    m = 512  # long rows: per-PC value runs far exceed FPC's ~129-step ramp
    match_row = [0] * m
    mr_base = b.alloc(m * 8)
    pos = 0
    emit = 2
    next_switch = 2048
    b.imm("hm_tm", "tm", 3)
    while b.n < n_target:
        if pos >= next_switch:
            emit = rng.randrange(5)  # new homologous stretch
            next_switch = pos + rng.randrange(1500, 2600)
        k = pos % m
        b.alu("hm_k", "k", ["k"] if pos else [], k)
        prev = match_row[k]
        b.load("hm_ld_m", "mprev", mr_base + k * 8, prev, addr_srcs=["k"])
        score = prev + 3 + emit  # constant growth within a stretch
        b.alu("hm_ms", "ms", ["mprev", "tm"], score)
        better = score % 7 != 0  # biased selection branch
        b.branch("hm_max", taken=better, target_label="hm_k", srcs=["ms"])
        match_row[k] = score
        b.store("hm_st_m", mr_base + k * 8, "ms", addr_srcs=["k"])
        # Independent bookkeeping: cell counter and traceback pointer.
        b.alu("hm_cell", "cell", ["cell"] if pos else [], pos)
        b.alu("hm_tb", "tb", ["cell"], (pos * 8) & MASK64)
        pos += 1


def sjeng_kernel(b: TraceBuilder, n_target: int) -> None:
    """Chess search: attack tables, chaotic hash cutoffs, deep branching."""
    rng = b.rng
    pieces = _almost_stable_stream(rng, 8192, mean_run=8, universe=12)
    att_base = b.alloc(64 * 12 * 8)
    hist_base = b.alloc(4096 * 8)
    state = 0xDEAD
    i = 0
    b.imm("sj_i0", "sq", 0)
    while b.n < n_target:
        sq = (i * 11) % 64
        piece = pieces[i % len(pieces)]
        b.alu("sj_sq", "sq", ["sq"], sq)
        b.load("sj_ld_p", "p", att_base + (piece * 64 + sq) * 8, piece, addr_srcs=["sq"])
        state = _lcg(state ^ (piece << sq))
        b.alu("sj_mix", "h", ["h", "p"] if i else ["p"], state)
        hist = (state >> 20) & 4095
        b.load("sj_ld_h", "hv", hist_base + hist * 8, (state >> 8) & 0xFF, addr_srcs=["h"])
        # Alpha-beta style cutoffs: two correlated-but-noisy branches.
        deep = (state & 7) < 3
        b.branch("sj_deep", taken=deep, target_label="sj_sq", srcs=["hv"])
        if deep:
            cut = (state >> 9) & 1 == 1
            b.branch("sj_cut", taken=cut, target_label="sj_sq", srcs=["hv", "h"])
            if cut:
                b.store("sj_st_h", hist_base + hist * 8, "h", addr_srcs=["h"])
        i += 1
        b.branch("sj_loop", taken=True, target_label="sj_sq", srcs=["sq"])


def h264_kernel(b: TraceBuilder, n_target: int) -> None:
    """Motion-vector refinement: one *predictable* division and one
    *data-dependent* division sit serially on each block's critical path.

    Value prediction removes the predictable half of the chain (the
    constant step division and the strided motion-vector update) and leaves
    the quantisation division alone — a small number of covered µops buys a
    large speedup, the paper's h264 signature (Section 8.2.2)."""
    rng = b.rng
    block = [rng.randrange(256) for _ in range(256)]
    ref = [min(255, v + rng.randrange(-4, 5)) for v in block]
    blk_base = b.alloc(256)
    ref_base = b.alloc(256)
    step_slot = b.alloc(8)
    mv_slot = b.alloc(8)
    out_base = b.alloc(64 * 8)
    mv = 0
    for_block = 0
    while b.n < n_target:
        # Predictable serial recurrence: the motion-vector predictor is
        # reloaded from memory, advanced by a constant step and stored back
        # — a memory-carried strided chain that gates every block.
        step = 8
        b.load("h2_ld_step", "step", step_slot, step)  # constant: all predictors
        b.load("h2_ld_mv", "mv", mv_slot, mv)          # strided: +8 per block
        mv = (mv + step) & 0xFFFF
        b.alu("h2_mv1", "mv", ["mv", "step"], mv)
        lane = mv & 63
        b.alu("h2_mv2", "lane", ["mv"], lane)
        b.store("h2_st_mv", mv_slot, "mv")
        # SAD loop: data-dependent, chained off the (predictable) lane.
        sad = 0
        for k in range(6):
            idx = (lane + k) % 256
            a = block[idx]
            c = ref[idx]
            b.load("h2_ld_a", "pa", blk_base + idx, a, addr_srcs=["lane"], size=1)
            b.load("h2_ld_c", "pc", ref_base + idx, c, addr_srcs=["lane"], size=1)
            sad += abs(a - c)
            b.alu("h2_sad", "sad", ["pa", "pc", "sad"] if k else ["pa", "pc"], sad)
        # Unpredictable quantiser scale off the data-dependent SAD; a cheap
        # multiply, so it does not gate in-order commit (the rare true
        # division is kept for flavour every 16th block).
        quant = (sad * 3) & MASK64
        b.mul("h2_mul_q", "q", ["sad"], quant)
        b.store("h2_st_q", out_base + (for_block % 64) * 8, "q")
        if for_block % 16 == 0:
            b.div("h2_div_q", "qd", ["sad"], sad // 6)
        # Biased improvement test: almost always false, so the late-resolving
        # branch does not swamp the experiment with mispredictions.
        better = sad < 8
        b.branch("h2_cmp", taken=better, target_label="h2_ld_step", srcs=["sad"])
        for_block += 1
        b.alu("h2_blk", "blk", ["blk"] if for_block > 1 else [], for_block)
        b.branch("h2_next", taken=True, target_label="h2_ld_step", srcs=["blk"])
