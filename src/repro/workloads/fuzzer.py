"""Differential scenario/config fuzzer over the three cycle loops.

Since PR 6 the repo carries three interchangeable implementations of the
same scheduler — the legacy sequential :meth:`CoreModel._run`, the
vectorized pure-Python fast loop (:mod:`repro.pipeline.fastsim`) and the
compiled C kernel (:mod:`repro.pipeline.ckernel`) — whose equivalence
was pinned only on a fixed golden grid.  This module is the standing
correctness harness that keeps them honest across the *whole* workload ×
predictor × recovery × knob space:

* :func:`sample_specs` draws jobs from a seed — catalog kernels, random
  scenario knob points (``scenario-c*-e*-l*``) and any ingested traces
  registered in the trace store;
* :func:`run_differential` runs one spec through all three
  implementations, forcing ``REPRO_FAST_SIM`` / ``REPRO_FAST_KERNEL``
  per leg (both are read at call time, so in-process forcing is exact),
  and requires **dataclass-equal** :class:`SimResult`\\ s;
* interesting corners — divergence, extreme accuracy, zero coverage,
  fallback-only configs — are auto-registered under stable names in a
  JSON registry next to the trace store, each with a replayable one-line
  spec (``repro fuzz --replay "<spec>"``).

Every leg builds a *fresh* predictor and model and calls
:func:`~repro.pipeline.core.simulate` directly — deliberately below the
engine layer, whose result cache keys jobs by content (not by
implementation) and would otherwise coalesce the three legs into one
simulation.  The trace itself is shared across legs via the catalog LRU:
traces are immutable once simulated, so sharing is free and exact.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.pipeline.config import CoreConfig, RecoveryMode
from repro.pipeline.core import CoreModel, simulate
from repro.pipeline import fastsim
from repro.util.atomicio import atomic_write_text, file_lock
from repro.workloads import catalog, ingest, scenarios

#: Bump when the spec grammar or sampling distribution changes: a replay
#: line is only meaningful against the grammar that emitted it.
FUZZ_VERSION = 1

#: The three implementation legs and the env forcing that selects each.
LEGS: dict[str, dict[str, str]] = {
    "legacy": {fastsim.FAST_SIM_ENV: "0", fastsim.FAST_KERNEL_ENV: "0"},
    "python": {fastsim.FAST_SIM_ENV: "1", fastsim.FAST_KERNEL_ENV: "0"},
    "kernel": {fastsim.FAST_SIM_ENV: "1", fastsim.FAST_KERNEL_ENV: "1"},
}

_RECOVERIES = ("squash", "reissue")
_ENTRY_SIZES = (512, 1024, 8192)


@dataclass(frozen=True)
class FuzzSpec:
    """One sampled job — the unit the differential check runs on.

    Round-trips exactly through :meth:`line` / :meth:`parse`: the one-line
    form is what failure reports print and ``repro fuzz --replay``
    consumes.
    """

    workload: str
    predictor: str
    recovery: str = "squash"
    fpc: bool = True
    entries: int = 8192
    n_uops: int = 2000
    warmup: int = 500

    def line(self) -> str:
        """The replayable one-line form of this spec."""
        return (
            f"workload={self.workload},predictor={self.predictor},"
            f"recovery={self.recovery},fpc={int(self.fpc)},"
            f"entries={self.entries},uops={self.n_uops},"
            f"warmup={self.warmup}"
        )

    @classmethod
    def parse(cls, line: str) -> "FuzzSpec":
        """Parse a :meth:`line` back into a spec (strict: every field)."""
        fields: dict[str, str] = {}
        for token in line.strip().split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise ValueError(f"malformed spec token {token!r}")
            k, v = token.split("=", 1)
            fields[k.strip()] = v.strip()
        missing = {"workload", "predictor", "recovery", "fpc", "entries",
                   "uops", "warmup"} - set(fields)
        if missing:
            raise ValueError(f"spec line missing {sorted(missing)}")
        return cls(
            workload=fields["workload"],
            predictor=fields["predictor"],
            recovery=fields["recovery"],
            fpc=fields["fpc"] not in ("0", "false", "False"),
            entries=int(fields["entries"]),
            n_uops=int(fields["uops"]),
            warmup=int(fields["warmup"]),
        )


@dataclass
class FuzzOutcome:
    """What one differential run of a spec produced."""

    spec: FuzzSpec
    results: dict = field(default_factory=dict)   # leg -> SimResult
    divergent: bool = False
    divergent_legs: list = field(default_factory=list)
    fallback: str | None = None    # fast-path fallback reason, if any
    corners: list = field(default_factory=list)   # (kind, detail)


@contextlib.contextmanager
def _forced_env(forcing: dict[str, str]):
    saved = {k: os.environ.get(k) for k in forcing}
    os.environ.update(forcing)
    try:
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def run_leg(spec: FuzzSpec, leg: str):
    """Run *spec* on one implementation leg; returns its SimResult."""
    from repro.experiments.runner import make_predictor

    trace = catalog.build_trace(spec.workload, spec.warmup + spec.n_uops)
    predictor = make_predictor(spec.predictor, fpc=spec.fpc,
                               recovery=spec.recovery, entries=spec.entries)
    config = CoreConfig(recovery=RecoveryMode(spec.recovery))
    with _forced_env(LEGS[leg]):
        return simulate(trace, predictor, config=config,
                        warmup=spec.warmup, workload=spec.workload)


def run_differential(spec: FuzzSpec) -> FuzzOutcome:
    """Run *spec* through all three legs and compare dataclass-equal.

    The legacy leg is the reference; any leg whose :class:`SimResult`
    differs marks the outcome divergent.  The fast path's fallback reason
    (if the config is outside the inlined families) is captured from the
    python leg so fallback-only corners are visible.
    """
    from repro.experiments.runner import make_predictor

    outcome = FuzzOutcome(spec=spec)
    predictor = make_predictor(spec.predictor, fpc=spec.fpc,
                               recovery=spec.recovery, entries=spec.entries)
    outcome.fallback = fastsim.fallback_reason(CoreModel(predictor=predictor))
    for leg in LEGS:
        outcome.results[leg] = run_leg(spec, leg)
    reference = outcome.results["legacy"]
    for leg, result in outcome.results.items():
        if result != reference:
            outcome.divergent = True
            outcome.divergent_legs.append(leg)
    outcome.corners = classify_corners(outcome)
    return outcome


def _diff_fields(a, b) -> list[str]:
    """Names of SimResult fields where *a* and *b* disagree."""
    return [
        f.name for f in dataclasses.fields(a)
        if getattr(a, f.name) != getattr(b, f.name)
    ]


def classify_corners(outcome: FuzzOutcome) -> list:
    """The interesting-corner labels this outcome earns.

    Divergence is the fatal one; the rest flag configs worth keeping as
    named regression workloads — the extremes of the accuracy/coverage
    spectrum and configs the fast path cannot take at all.
    """
    corners = []
    ref = outcome.results.get("legacy")
    if outcome.divergent:
        fields = sorted({
            name
            for leg in outcome.divergent_legs
            for name in _diff_fields(outcome.results[leg], ref)
        })
        corners.append(("divergence",
                        f"legs {sorted(outcome.divergent_legs)} differ on "
                        f"{fields}"))
    if ref is None:
        return corners
    if outcome.fallback is not None:
        corners.append(("fallback-only", outcome.fallback))
    if ref.vp_used >= 50 and ref.vp_wrong_used == 0:
        corners.append(("perfect-accuracy",
                        f"{ref.vp_used} used, none wrong"))
    if ref.vp_eligible >= 100 and ref.vp_predicted and ref.vp_used == 0:
        corners.append(("zero-coverage",
                        f"{ref.vp_predicted} predicted, none confident"))
    if ref.vp_eligible and ref.vp_used / ref.vp_eligible >= 0.95:
        corners.append(("saturated-coverage",
                        f"{ref.vp_used}/{ref.vp_eligible} eligible used"))
    return corners


# ---------------------------------------------------------------------------
# Sampling
# ---------------------------------------------------------------------------

def sample_specs(budget: int, seed: int,
                 workloads: tuple[str, ...] | None = None,
                 predictors: tuple[str, ...] | None = None,
                 max_uops: int = 3000) -> list[FuzzSpec]:
    """Draw *budget* specs deterministically from *seed*.

    The workload pool mixes catalog kernels, freshly sampled scenario
    knob points and (when a trace store is configured) every registered
    ingested trace; the predictor pool defaults to the full registry,
    including families the fast path cannot inline — those legs simply
    all run the sequential model, which the differential still checks.
    """
    from repro.experiments.runner import PREDICTOR_NAMES

    rng = random.Random((seed << 8) ^ FUZZ_VERSION)
    predictor_pool = tuple(predictors) if predictors else PREDICTOR_NAMES
    ingested = tuple(
        ingest.registered_names(_default_store())) if workloads is None else ()
    specs = []
    for _ in range(budget):
        if workloads:
            workload = rng.choice(tuple(workloads))
        else:
            roll = rng.random()
            if ingested and roll < 0.2:
                workload = rng.choice(ingested)
            elif roll < 0.6:
                workload = scenarios.ScenarioParams(
                    chase=rng.randrange(0, 10),
                    entropy=rng.randrange(0, 101),
                    locality=rng.randrange(0, 101),
                ).name
            else:
                workload = rng.choice(catalog.ALL_WORKLOADS)
        n_uops = rng.randrange(600, max_uops + 1)
        specs.append(FuzzSpec(
            workload=workload,
            predictor=rng.choice(predictor_pool),
            recovery=rng.choice(_RECOVERIES),
            fpc=rng.random() < 0.8,
            entries=rng.choice(_ENTRY_SIZES),
            n_uops=n_uops,
            warmup=rng.randrange(0, n_uops // 2),
        ))
    return specs


def _default_store():
    from repro.workloads.store import default_trace_store

    return default_trace_store()


# ---------------------------------------------------------------------------
# Corner registry
# ---------------------------------------------------------------------------

class CornerRegistry:
    """A JSON registry of named fuzzer corners.

    Lives next to the trace store by default
    (``<store>/fuzz-corners.json``) so corners accumulate across runs on
    the same plane; every entry records the corner kind, the workload
    name (directly addressable through the catalog — scenario and
    ingested names resolve anywhere a workload name is accepted) and the
    replayable spec line.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)

    @classmethod
    def default(cls) -> "CornerRegistry":
        store = _default_store()
        base = Path(store.directory) if store is not None else Path(".")
        return cls(base / "fuzz-corners.json")

    def load(self) -> dict:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {"version": FUZZ_VERSION, "corners": {}}
        if not isinstance(data, dict) or "corners" not in data:
            return {"version": FUZZ_VERSION, "corners": {}}
        return data

    def register(self, kind: str, detail: str, spec: FuzzSpec,
                 seed: int) -> str:
        """Record one corner under a stable generated name; returns it.

        The whole load → mutate → write cycle runs under the registry's
        :func:`~repro.util.atomicio.file_lock`: concurrent fuzzers (or
        cluster shards sharing one trace store) queue on the lock
        instead of overwriting each other's corners.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with file_lock(self.path):
            data = self.load()
            corners = data["corners"]
            base = f"corner-{kind}-{spec.predictor}-{spec.recovery}"
            name = base
            serial = 1
            while name in corners and corners[name]["spec"] != spec.line():
                serial += 1
                name = f"{base}-{serial}"
            corners[name] = {
                "kind": kind,
                "detail": detail,
                "workload": spec.workload,
                "spec": spec.line(),
                "seed": seed,
            }
            atomic_write_text(self.path,
                              json.dumps(data, sort_keys=True, indent=1))
        return name


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def run_fuzz(budget: int, seed: int,
             workloads: tuple[str, ...] | None = None,
             predictors: tuple[str, ...] | None = None,
             max_uops: int = 3000,
             registry: CornerRegistry | None = None,
             emit=print) -> dict:
    """Run a bounded differential sweep; returns a summary dict.

    The summary's ``divergences`` list carries one replayable spec line
    per failure — the contract the CI smoke job and the replay tests
    lean on.  Corner registration failures never fail the sweep.
    """
    if registry is None:
        registry = CornerRegistry.default()
    specs = sample_specs(budget, seed, workloads=workloads,
                         predictors=predictors, max_uops=max_uops)
    summary = {
        "version": FUZZ_VERSION,
        "budget": budget,
        "seed": seed,
        "ran": 0,
        "divergences": [],
        "corners": [],
        "fallback_only": 0,
    }
    for i, spec in enumerate(specs):
        outcome = run_differential(spec)
        summary["ran"] += 1
        if outcome.fallback is not None:
            summary["fallback_only"] += 1
        for kind, detail in outcome.corners:
            try:
                name = registry.register(kind, detail, spec, seed)
            except OSError:
                name = f"corner-{kind}-(unregistered)"
            summary["corners"].append(
                {"name": name, "kind": kind, "detail": detail,
                 "spec": spec.line()})
            if kind == "divergence":
                summary["divergences"].append(spec.line())
                emit(f"[{i + 1}/{budget}] DIVERGENCE {detail}")
                emit(f"  replay: repro fuzz --replay \"{spec.line()}\"")
        if not outcome.corners:
            continue
    emit(
        f"fuzz: {summary['ran']}/{budget} specs, "
        f"{len(summary['divergences'])} divergence(s), "
        f"{len(summary['corners'])} corner(s) registered, "
        f"{summary['fallback_only']} fallback-only config(s)"
    )
    return summary


def replay(line: str, emit=print) -> FuzzOutcome:
    """Re-run one spec line through the differential check."""
    spec = FuzzSpec.parse(line)
    outcome = run_differential(spec)
    ref = outcome.results["legacy"]
    for leg in LEGS:
        result = outcome.results[leg]
        tag = "==" if result == ref else "!!"
        emit(f"{leg:>6} {tag} cycles={result.cycles} "
             f"vp_used={result.vp_used} vp_wrong={result.vp_wrong_used}")
    if outcome.divergent:
        for leg in outcome.divergent_legs:
            fields = _diff_fields(outcome.results[leg], ref)
            emit(f"divergent leg {leg}: fields {fields}")
    elif outcome.fallback is not None:
        emit(f"note: fast path fell back ({outcome.fallback}); "
             "all legs ran the sequential model")
    return outcome
