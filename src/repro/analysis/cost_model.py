"""Analytic cost models from Sections 3.1 and 4 of the paper.

Two closed-form models the paper uses to motivate its design:

* the **recovery cost model** of Section 3.1.1/3.1.2 — benefit per
  kilo-instruction as a function of coverage, accuracy, per-misprediction
  penalty and the average gain of a correct prediction; reproduces the
  "64 / -86 / -286" and "88 / 83 / 76" cycles-per-Kinstruction examples;
* the **register-file model** of Section 4 — area proportional to
  (R + W)(R + 2W) after Zyuban & Kogge [29], used to size the write-port
  overhead of writing predictions into the PRF.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RecoveryScenario:
    """One recovery mechanism with its average misprediction penalty.

    Section 3.1.1: "Realistic estimations of the average misprediction
    penalty could be 5-7 cycles for selective reissue, 20-30 cycles for
    pipeline squashing at execution time and 40-50 cycles for pipeline
    squashing at commit."  The worked example uses 5, 20 and 40.
    """

    name: str
    penalty_cycles: float


SELECTIVE_REISSUE = RecoveryScenario("selective reissue", 5.0)
SQUASH_AT_EXECUTE = RecoveryScenario("squash at execute", 20.0)
SQUASH_AT_COMMIT = RecoveryScenario("squash at commit", 40.0)

PAPER_SCENARIOS = (SELECTIVE_REISSUE, SQUASH_AT_EXECUTE, SQUASH_AT_COMMIT)


def recovery_benefit_per_kilo_instruction(
    scenario: RecoveryScenario,
    coverage: float,
    accuracy: float,
    benefit_per_correct: float = 0.3,
    used_before_execution: float = 0.5,
) -> float:
    """Net cycles gained per 1000 instructions (positive = faster).

    Mirrors the synthetic example of Section 3.1.1: per Kinstruction,
    ``coverage * 1000`` predictions are used; correct ones save
    ``benefit_per_correct`` cycles each, wrong ones that were consumed
    before execution (fraction ``used_before_execution``) cost the
    scenario's penalty.
    """
    if not 0.0 <= coverage <= 1.0:
        raise ValueError("coverage must lie in [0, 1]")
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError("accuracy must lie in [0, 1]")
    used = coverage * 1000.0
    correct = used * accuracy
    wrong = used * (1.0 - accuracy)
    gain = correct * benefit_per_correct
    loss = wrong * used_before_execution * scenario.penalty_cycles
    return gain - loss


def total_recovery_cost(n_mispredictions: int, penalty_cycles: float) -> float:
    """Section 3.1: ``T_recov = P_value * N_misp``."""
    if n_mispredictions < 0:
        raise ValueError("misprediction count cannot be negative")
    return penalty_cycles * n_mispredictions


def register_file_area(read_ports: int, write_ports: int) -> float:
    """Relative register file area: (R + W)(R + 2W) (Zyuban & Kogge [29]).

    Section 4: with R = 2W, a no-VP file costs 12W²; naively doubling the
    write ports for predictions costs 24W²; limiting the extra ports to
    W/2 costs 35W²/2.
    """
    if read_ports < 0 or write_ports < 0:
        raise ValueError("port counts cannot be negative")
    return (read_ports + write_ports) * (read_ports + 2 * write_ports)


def register_file_energy_factor(read_ports: int, write_ports: int) -> float:
    """Crude Cacti-style energy proxy: linear-ish in total port count.

    The paper reports ~+50 % energy for doubled write ports and ~+25 % for
    the W/2 scheme; energy scales close to the port-count product, so we
    expose the same area expression normalised to the baseline
    configuration for comparisons.
    """
    return register_file_area(read_ports, write_ports)


def vp_register_file_overheads(issue_width: int = 8) -> dict:
    """The three §4 design points for an *issue_width*-wide machine.

    Returns relative areas, normalised to the no-VP register file, for:
    the baseline (R = 2W), naive VP (write ports doubled), and the
    buffered W/2-extra-write-ports scheme the paper recommends.
    """
    w = issue_width
    r = 2 * w
    base = register_file_area(r, w)
    naive = register_file_area(r, 2 * w)
    buffered = register_file_area(r, w + w // 2)
    return {
        "baseline": 1.0,
        "naive_vp": naive / base,
        "buffered_vp": buffered / base,
        "baseline_area_units": base,
        "naive_area_units": naive,
        "buffered_area_units": buffered,
    }
