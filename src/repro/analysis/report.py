"""Plain-text rendering for tables and bar charts.

The benchmark harness regenerates the paper's tables and figures as text:
tables as aligned columns, figures as horizontal ASCII bar charts (one bar
per benchmark, like the paper's speedup plots).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_bar_chart(
    values: dict[str, float],
    title: str | None = None,
    width: int = 50,
    baseline: float = 1.0,
    fmt: str = "{:.2f}",
) -> str:
    """Horizontal bar chart; bars start at *baseline* (e.g. speedup = 1).

    Values below the baseline render as '<' bars (slowdowns), values above
    as '#' bars, matching how the paper's speedup figures read.
    """
    if not values:
        return title or ""
    span = max(abs(v - baseline) for v in values.values()) or 1.0
    label_width = max(len(k) for k in values)
    lines = []
    if title:
        lines.append(title)
    for name, value in values.items():
        delta = value - baseline
        bar_len = int(round(abs(delta) / span * width))
        bar = ("#" if delta >= 0 else "<") * bar_len
        lines.append(f"{name.ljust(label_width)} |{bar:<{width}} {fmt.format(value)}")
    return "\n".join(lines)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the conventional average for speedups)."""
    vals = list(values)
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
