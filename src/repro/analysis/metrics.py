"""Trace-driven predictor evaluation (accuracy/coverage, no timing).

This harness drives a value predictor over a trace exactly as the front-end
would — lookup at fetch with the running branch history, speculative state
update, training at commit — but without the cycle model, which makes it
fast enough for table-size sweeps and unit tests.

The *training delay* parameter emulates the fetch-to-commit distance: the
training for occurrence n is applied only after `delay` further µops have
been fetched, so tight-loop instances observe stale tables, as in the real
pipeline (Section 3.2 / 7.2.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.isa.trace import Trace
from repro.predictors.base import PredictionContext, ValuePredictor
from repro.predictors.oracle import OraclePredictor


@dataclass
class PredictorStats:
    """Accuracy/coverage statistics for one predictor on one trace."""

    predictor: str = ""
    trace: str = ""
    eligible: int = 0
    predicted: int = 0
    used: int = 0
    correct_used: int = 0
    wrong_used: int = 0
    correct_unused: int = 0
    per_pc_used: dict = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of eligible µops whose prediction was actually used."""
        return self.used / self.eligible if self.eligible else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of used predictions that were correct."""
        return self.correct_used / self.used if self.used else 1.0

    @property
    def useful_coverage(self) -> float:
        """Fraction of eligible µops predicted correctly *and* used."""
        return self.correct_used / self.eligible if self.eligible else 0.0


def evaluate_predictor(
    trace: Trace,
    predictor: ValuePredictor,
    warmup: int = 0,
    training_delay: int = 0,
) -> PredictorStats:
    """Measure accuracy and coverage of *predictor* over *trace*."""
    stats = PredictorStats(predictor=predictor.name, trace=trace.name)
    ctx = PredictionContext()
    is_oracle = isinstance(predictor, OraclePredictor)
    pending: deque = deque()
    for i, uop in enumerate(trace.uops):
        if uop.is_cond_branch:
            ctx.push_branch(uop.taken, uop.pc)
        if not uop.produces_value:
            continue
        while pending and pending[0][0] <= i:
            __, key, actual, rec = pending.popleft()
            predictor.train(key, actual, rec)
        key = uop.predictor_key()
        if is_oracle:
            predictor.set_actual(uop.value)
        prediction = predictor.lookup(key, ctx)
        if prediction is not None:
            predictor.speculate(key, prediction)
        if i >= warmup:
            stats.eligible += 1
            if prediction is not None:
                stats.predicted += 1
                correct = prediction.value == uop.value
                if prediction.confident:
                    stats.used += 1
                    if correct:
                        stats.correct_used += 1
                    else:
                        stats.wrong_used += 1
                elif correct:
                    stats.correct_unused += 1
        if training_delay:
            pending.append((i + training_delay, key, uop.value, prediction))
        else:
            predictor.train(key, uop.value, prediction)
    while pending:
        __, key, actual, rec = pending.popleft()
        predictor.train(key, actual, rec)
    return stats
