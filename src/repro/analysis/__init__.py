"""Metrics, analytic models and report rendering."""

from repro.analysis.cost_model import (
    RecoveryScenario,
    recovery_benefit_per_kilo_instruction,
    register_file_area,
    register_file_energy_factor,
)
from repro.analysis.metrics import PredictorStats, evaluate_predictor
from repro.analysis.report import ascii_bar_chart, format_table

__all__ = [
    "PredictorStats",
    "RecoveryScenario",
    "ascii_bar_chart",
    "evaluate_predictor",
    "format_table",
    "recovery_benefit_per_kilo_instruction",
    "register_file_area",
    "register_file_energy_factor",
]
