"""The dynamic µop record.

A :class:`MicroOp` is one dynamic micro-operation on the *correct* execution
path, as a trace-driven simulator sees it.  It carries both architectural
information (PC, operation class, source/destination registers) and oracle
information (its actual result value, actual branch outcome, actual memory
address) that the timing model and the predictors consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

# Architectural register file sizes of the modelled ISA.  Registers live in
# a flat 64-entry space: ids 0-31 are integer registers, ids 32-63 are
# floating-point registers (FP_REG_BASE + k).
INT_REGS = 32
FP_REGS = 32
FP_REG_BASE = 32


class OpClass(enum.IntEnum):
    """Functional classes matching the execution resources of Table 2."""

    INT_ALU = 0       # 8 units, 1 cycle
    INT_MUL = 1       # 4 MulDiv units, 3 cycles, pipelined
    INT_DIV = 2       # 4 MulDiv units, 25 cycles, NOT pipelined
    FP_ADD = 3        # 8 FP units, 3 cycles
    FP_MUL = 4        # 4 FPMulDiv units, 5 cycles
    FP_DIV = 5        # 4 FPMulDiv units, 10 cycles, NOT pipelined
    LOAD = 6          # 4 Ld/Str ports
    STORE = 7         # 4 Ld/Str ports
    BRANCH = 8        # conditional branch, resolves in the INT pool
    JUMP = 9          # unconditional direct jump
    CALL = 10         # direct call (pushes RAS)
    RET = 11          # return (pops RAS)
    NOP = 12


_FP_CLASSES = frozenset({OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV})
_MEM_CLASSES = frozenset({OpClass.LOAD, OpClass.STORE})
_CTRL_CLASSES = frozenset(
    {OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET}
)


def is_fp_class(op_class: OpClass) -> bool:
    """True for µops that execute on the floating-point pools."""
    return op_class in _FP_CLASSES


def is_mem_class(op_class: OpClass) -> bool:
    """True for loads and stores."""
    return op_class in _MEM_CLASSES


@dataclass(slots=True)
class MicroOp:
    """One dynamic µop of the correct-path trace.

    Attributes:
        seq: Dynamic sequence number (position in the trace).
        pc: Address of the parent macro-instruction.
        uop_index: Position of this µop inside its macro-instruction; mixed
            into predictor indices per Section 7.2 of the paper.
        op_class: Functional class, selects execution latency and FU pool.
        srcs: Architectural source register ids (reads).
        dst: Architectural destination register id, or ``None`` when the µop
            produces no register value (stores, branches, nops).
        value: Actual 64-bit result value written to ``dst``.  Meaningless
            when ``dst is None``.
        mem_addr: Effective byte address for loads/stores, else ``None``.
        mem_size: Access size in bytes for loads/stores.
        taken: Actual direction for conditional branches; ``True`` for
            unconditional control µops.
        target: Actual target address for control µops.
        dst_is_fp: Destination (and value) live in the FP register space.
    """

    seq: int
    pc: int
    uop_index: int = 0
    op_class: OpClass = OpClass.INT_ALU
    srcs: tuple[int, ...] = field(default=())
    dst: int | None = None
    value: int = 0
    mem_addr: int | None = None
    mem_size: int = 8
    taken: bool = False
    target: int = 0
    dst_is_fp: bool = False

    @property
    def is_branch(self) -> bool:
        """True for any control-flow µop (conditional or not)."""
        return self.op_class in _CTRL_CLASSES

    @property
    def is_cond_branch(self) -> bool:
        """True only for conditional branches."""
        return self.op_class is OpClass.BRANCH

    @property
    def is_load(self) -> bool:
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class is OpClass.STORE

    @property
    def produces_value(self) -> bool:
        """True when the µop writes an architectural register.

        Only these µops are *eligible* for value prediction: the paper
        predicts "every µ-op producing a register explicitly used by
        subsequent µ-ops" and explicitly excludes predicting branches
        themselves.
        """
        return self.dst is not None and not self.is_branch

    def predictor_key(self) -> int:
        """The (PC, µop-index) mixing key used to index value predictors."""
        return ((self.pc << 2) ^ self.uop_index) & ((1 << 64) - 1)
