"""µop-level instruction model and trace containers.

The paper's evaluation works entirely at µop granularity on gem5-x86 ("all
the width given in Table 2 are in µ-ops").  Our substitute front end is a
trace of :class:`~repro.isa.uop.MicroOp` objects produced by the synthetic
workload kernels (see :mod:`repro.workloads`); each µop carries its actual
computed result value so the value predictors observe real value streams.
"""

from repro.isa.uop import (
    INT_REGS,
    FP_REGS,
    MicroOp,
    OpClass,
    is_fp_class,
    is_mem_class,
)
from repro.isa.trace import (
    COLUMN_SCHEMA,
    TRACE_SCHEMA_VERSION,
    PackedColumns,
    Trace,
    TraceColumns,
    TraceStats,
)

__all__ = [
    "COLUMN_SCHEMA",
    "FP_REGS",
    "INT_REGS",
    "MicroOp",
    "OpClass",
    "PackedColumns",
    "TRACE_SCHEMA_VERSION",
    "Trace",
    "TraceColumns",
    "TraceStats",
    "is_fp_class",
    "is_mem_class",
]
