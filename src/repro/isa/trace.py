"""Trace container and summary statistics.

A :class:`Trace` is an ordered list of correct-path µops plus a little
metadata about the workload that produced it.  Traces support slicing into
warm-up and measurement regions, mirroring the paper's methodology of warming
all structures before collecting statistics (Section 7.3).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.isa.uop import MicroOp, OpClass
from repro.util.bits import MASK64

_LINE_SHIFT = 6  # 64-byte I-cache lines (mirrors pipeline/core.py)

_CTRL_CLASSES = frozenset(
    {OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET}
)


class TraceColumns:
    """Flat parallel arrays of the per-µop fields the scheduler consumes.

    The cycle model's inner loop used to re-derive these per µop — three
    ``predictor_key()`` calls per eligible µop, a property call per flag, a
    shift per I-cache line id.  Columns precompute them *once per cached
    trace* so the hot loop is pure list indexing.  Ops are stored as plain
    ``int``s (not :class:`OpClass` members) so dispatch tables can be flat
    lists.
    """

    __slots__ = (
        "n",
        "seqs",
        "pcs",
        "pc_lines",
        "ops",
        "srcs",
        "dsts",
        "values",
        "mem_addrs",
        "mem_sizes",
        "takens",
        "dst_is_fp",
        "is_branch",
        "is_cond_branch",
        "produces_value",
        "pkeys",
    )

    def __init__(self, uops: list[MicroOp]):
        branch = OpClass.BRANCH
        ctrl = _CTRL_CLASSES
        self.n = len(uops)
        self.seqs = [u.seq for u in uops]
        self.pcs = [u.pc for u in uops]
        self.pc_lines = [u.pc >> _LINE_SHIFT for u in uops]
        self.ops = [int(u.op_class) for u in uops]
        self.srcs = [u.srcs for u in uops]
        self.dsts = [u.dst for u in uops]
        self.values = [u.value for u in uops]
        self.mem_addrs = [u.mem_addr for u in uops]
        self.mem_sizes = [u.mem_size for u in uops]
        self.takens = [u.taken for u in uops]
        self.dst_is_fp = [u.dst_is_fp for u in uops]
        self.is_branch = [u.op_class in ctrl for u in uops]
        self.is_cond_branch = [u.op_class is branch for u in uops]
        self.produces_value = [
            u.dst is not None and u.op_class not in ctrl for u in uops
        ]
        self.pkeys = [((u.pc << 2) ^ u.uop_index) & MASK64 for u in uops]


@dataclass(slots=True)
class TraceStats:
    """Aggregate statistics over a trace (used by reports and tests)."""

    n_uops: int = 0
    n_branches: int = 0
    n_cond_branches: int = 0
    n_taken: int = 0
    n_loads: int = 0
    n_stores: int = 0
    n_value_producers: int = 0
    op_class_counts: Counter = field(default_factory=Counter)

    @property
    def branch_ratio(self) -> float:
        return self.n_branches / self.n_uops if self.n_uops else 0.0

    @property
    def load_ratio(self) -> float:
        return self.n_loads / self.n_uops if self.n_uops else 0.0


class Trace:
    """An ordered, indexable sequence of µops with workload metadata."""

    def __init__(self, uops: list[MicroOp] | None = None, name: str = "anonymous"):
        self.name = name
        self._uops: list[MicroOp] = uops if uops is not None else []
        self._columns: TraceColumns | None = None

    def append(self, uop: MicroOp) -> None:
        self._uops.append(uop)
        self._columns = None

    def extend(self, uops: list[MicroOp]) -> None:
        self._uops.extend(uops)
        self._columns = None

    def columns(self) -> TraceColumns:
        """The columnar view of this trace, built once and cached.

        Mutating the trace through :meth:`append`/:meth:`extend`
        invalidates the cache; mutating µops in place does not (traces are
        treated as immutable once simulated — the workload catalog caches
        them on exactly that assumption).
        """
        cols = self._columns
        if cols is None or cols.n != len(self._uops):
            cols = self._columns = TraceColumns(self._uops)
        return cols

    def __len__(self) -> int:
        return len(self._uops)

    def __iter__(self):
        return iter(self._uops)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return Trace(self._uops[item], name=self.name)
        return self._uops[item]

    @property
    def uops(self) -> list[MicroOp]:
        """Direct access to the underlying µop list (hot paths iterate this)."""
        return self._uops

    def split(self, warmup: int) -> tuple["Trace", "Trace"]:
        """Split into (warm-up slice, measurement slice) at µop *warmup*."""
        if warmup < 0:
            raise ValueError("warm-up length cannot be negative")
        head = Trace(self._uops[:warmup], name=f"{self.name}:warmup")
        tail = Trace(self._uops[warmup:], name=f"{self.name}:measure")
        return head, tail

    def stats(self) -> TraceStats:
        """Compute summary statistics in a single pass."""
        stats = TraceStats()
        stats.n_uops = len(self._uops)
        counts = stats.op_class_counts
        for uop in self._uops:
            counts[uop.op_class] += 1
            if uop.is_branch:
                stats.n_branches += 1
                if uop.op_class is OpClass.BRANCH:
                    stats.n_cond_branches += 1
                if uop.taken:
                    stats.n_taken += 1
            if uop.is_load:
                stats.n_loads += 1
            elif uop.is_store:
                stats.n_stores += 1
            if uop.produces_value:
                stats.n_value_producers += 1
        return stats

    def back_to_back_fraction(self, fetch_width: int = 8) -> float:
        """Fraction of VP-eligible µops whose previous dynamic occurrence sits
        within one fetch group, i.e. would have been fetched the previous
        cycle.

        This reproduces the measurement motivating Section 3.2: "there can be
        as much as 15.3% (3.4% a-mean) fetched instructions eligible for VP
        and for which the previous occurrence was fetched in the previous
        cycle (8-wide Fetch)".
        """
        last_seen: dict[int, int] = {}
        eligible = 0
        back_to_back = 0
        for position, uop in enumerate(self._uops):
            if not uop.produces_value:
                continue
            eligible += 1
            key = uop.predictor_key()
            previous = last_seen.get(key)
            if previous is not None and (position - previous) <= fetch_width:
                back_to_back += 1
            last_seen[key] = position
        return back_to_back / eligible if eligible else 0.0
