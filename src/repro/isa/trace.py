"""Trace container, packed columnar storage and summary statistics.

A :class:`Trace` is an ordered list of correct-path µops plus a little
metadata about the workload that produced it.  Traces support slicing into
warm-up and measurement regions, mirroring the paper's methodology of warming
all structures before collecting statistics (Section 7.3).

PR 5 adds the **packed representation** underneath: every trace can be
lowered to :class:`PackedColumns`, a fixed-schema set of flat numpy arrays
(:data:`COLUMN_SCHEMA`) that fully describes the µop stream.  The packed
form is what the on-disk trace store persists (mmap-able ``.npy`` files,
see :mod:`repro.workloads.store`) and what the shared-memory trace plane
ships to worker processes (:mod:`repro.engine.shm`); µop objects and the
scheduler-facing list columns are *views* derived from it on demand, so a
loaded or attached trace never re-runs its generator.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.isa.uop import MicroOp, OpClass
from repro.util.bits import MASK64

_LINE_SHIFT = 6  # 64-byte I-cache lines (mirrors pipeline/core.py)

_CTRL_CLASSES = frozenset(
    {OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET}
)
_CTRL_INTS = tuple(sorted(int(c) for c in _CTRL_CLASSES))
_BRANCH_INT = int(OpClass.BRANCH)
_LOAD_INT = int(OpClass.LOAD)
_STORE_INT = int(OpClass.STORE)

#: Bump when the packed layout below changes shape or meaning; part of the
#: trace store's content key, so stale on-disk entries are never misread.
TRACE_SCHEMA_VERSION = 1

#: The packed column schema: ``(name, numpy dtype)`` in canonical order.
#: ``src_offsets`` has ``n + 1`` entries (CSR row pointers into
#: ``src_flat``); every other column has one entry per µop.  ``dsts`` uses
#: ``-1`` for "no destination"; ``mem_valid`` distinguishes a real address
#: of 0 from "not a memory op".  Values, PCs, addresses and targets are
#: stored masked to 64 bits (the builders already emit them masked).
COLUMN_SCHEMA = (
    ("seqs", "int64"),
    ("pcs", "uint64"),
    ("uop_indexes", "uint32"),
    ("ops", "uint8"),
    ("dsts", "int16"),
    ("values", "uint64"),
    ("mem_addrs", "uint64"),
    ("mem_valid", "bool"),
    ("mem_sizes", "uint16"),
    ("takens", "bool"),
    ("targets", "uint64"),
    ("dst_is_fp", "bool"),
    ("src_offsets", "int64"),
    ("src_flat", "int16"),
)


class PackedColumns:
    """A trace lowered to the fixed numpy schema of :data:`COLUMN_SCHEMA`.

    This is the canonical at-rest/in-transit form of a trace: a dict of
    flat arrays that round-trips exactly to the µop list (pinned by
    ``tests/unit/test_trace_columns.py``), serialises as plain ``.npy``
    files, and can be laid into one contiguous buffer for shared-memory
    transport (:meth:`buffer_layout` / :meth:`write_into` /
    :meth:`from_buffer`).
    """

    __slots__ = ("n", "arrays")

    def __init__(self, n: int, arrays: dict[str, np.ndarray]):
        self.n = n
        self.arrays = arrays

    # -- construction ----------------------------------------------------

    @classmethod
    def from_uops(cls, uops: list[MicroOp]) -> "PackedColumns":
        """Pack a µop list into the columnar schema."""
        n = len(uops)
        arrays: dict[str, np.ndarray] = {}
        arrays["seqs"] = np.fromiter((u.seq for u in uops),
                                     dtype=np.int64, count=n)
        arrays["pcs"] = np.fromiter((u.pc & MASK64 for u in uops),
                                    dtype=np.uint64, count=n)
        arrays["uop_indexes"] = np.fromiter((u.uop_index for u in uops),
                                            dtype=np.uint32, count=n)
        arrays["ops"] = np.fromiter((int(u.op_class) for u in uops),
                                    dtype=np.uint8, count=n)
        arrays["dsts"] = np.fromiter(
            (u.dst if u.dst is not None else -1 for u in uops),
            dtype=np.int16, count=n)
        arrays["values"] = np.fromiter((u.value & MASK64 for u in uops),
                                       dtype=np.uint64, count=n)
        arrays["mem_addrs"] = np.fromiter(
            ((u.mem_addr & MASK64) if u.mem_addr is not None else 0
             for u in uops),
            dtype=np.uint64, count=n)
        arrays["mem_valid"] = np.fromiter(
            (u.mem_addr is not None for u in uops), dtype=np.bool_, count=n)
        arrays["mem_sizes"] = np.fromiter((u.mem_size for u in uops),
                                          dtype=np.uint16, count=n)
        arrays["takens"] = np.fromiter((u.taken for u in uops),
                                       dtype=np.bool_, count=n)
        arrays["targets"] = np.fromiter((u.target & MASK64 for u in uops),
                                        dtype=np.uint64, count=n)
        arrays["dst_is_fp"] = np.fromiter((u.dst_is_fp for u in uops),
                                          dtype=np.bool_, count=n)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.fromiter((len(u.srcs) for u in uops),
                              dtype=np.int64, count=n),
                  out=offsets[1:])
        arrays["src_offsets"] = offsets
        arrays["src_flat"] = np.fromiter(
            (reg for u in uops for reg in u.srcs),
            dtype=np.int16, count=int(offsets[-1]))
        return cls(n, arrays)

    def to_uops(self) -> list[MicroOp]:
        """Rebuild the µop objects (dataclass-equal to the packed source)."""
        a = self.arrays
        seqs = a["seqs"].tolist()
        pcs = a["pcs"].tolist()
        uop_indexes = a["uop_indexes"].tolist()
        ops = a["ops"].tolist()
        dsts = a["dsts"].tolist()
        values = a["values"].tolist()
        mem_addrs = a["mem_addrs"].tolist()
        mem_valid = a["mem_valid"].tolist()
        mem_sizes = a["mem_sizes"].tolist()
        takens = a["takens"].tolist()
        targets = a["targets"].tolist()
        dst_is_fp = a["dst_is_fp"].tolist()
        offsets = a["src_offsets"].tolist()
        flat = a["src_flat"].tolist()
        return [
            MicroOp(
                seq=seqs[i],
                pc=pcs[i],
                uop_index=uop_indexes[i],
                op_class=OpClass(ops[i]),
                srcs=tuple(flat[offsets[i]:offsets[i + 1]]),
                dst=dsts[i] if dsts[i] >= 0 else None,
                value=values[i],
                mem_addr=mem_addrs[i] if mem_valid[i] else None,
                mem_size=mem_sizes[i],
                taken=takens[i],
                target=targets[i],
                dst_is_fp=dst_is_fp[i],
            )
            for i in range(self.n)
        ]

    # -- buffer transport (shared memory) --------------------------------

    @property
    def nbytes(self) -> int:
        """Total payload bytes across all columns (no alignment padding)."""
        return sum(arr.nbytes for arr in self.arrays.values())

    def buffer_layout(self) -> tuple[list[list], int]:
        """``([[name, dtype, length, offset], ...], total_bytes)`` for one
        contiguous buffer holding every column, offsets 16-byte aligned."""
        layout: list[list] = []
        offset = 0
        for name, dtype in COLUMN_SCHEMA:
            arr = self.arrays[name]
            offset = (offset + 15) & ~15
            layout.append([name, dtype, int(arr.shape[0]), offset])
            offset += arr.nbytes
        return layout, offset

    def write_into(self, buf) -> tuple[list[list], int]:
        """Copy every column into *buf* (a writable buffer); returns the
        layout that :meth:`from_buffer` needs to read it back."""
        layout, total = self.buffer_layout()
        for name, dtype, length, offset in layout:
            view = np.ndarray((length,), dtype=dtype, buffer=buf,
                              offset=offset)
            view[:] = self.arrays[name]
        return layout, total

    @classmethod
    def from_buffer(cls, buf, layout: list, n: int,
                    copy: bool = True) -> "PackedColumns":
        """Reconstruct packed columns from a buffer written by
        :meth:`write_into`.

        With ``copy=True`` (the worker-attach default) each column is
        copied out so the caller may close the underlying segment
        immediately; ``copy=False`` returns zero-copy views whose lifetime
        is the buffer's.
        """
        arrays: dict[str, np.ndarray] = {}
        for name, dtype, length, offset in layout:
            view = np.ndarray((int(length),), dtype=dtype, buffer=buf,
                              offset=int(offset))
            arrays[name] = view.copy() if copy else view
        return cls(int(n), arrays)

    def validate(self) -> None:
        """Check schema integrity; raises ``ValueError`` on any mismatch."""
        names = [name for name, _ in COLUMN_SCHEMA]
        if sorted(self.arrays) != sorted(names):
            raise ValueError("packed columns do not match COLUMN_SCHEMA")
        for name, dtype in COLUMN_SCHEMA:
            arr = self.arrays[name]
            if arr.dtype != np.dtype(dtype):
                raise ValueError(f"column {name}: dtype {arr.dtype} != {dtype}")
            if name == "src_offsets":
                if arr.shape != (self.n + 1,):
                    raise ValueError("src_offsets length != n + 1")
            elif name == "src_flat":
                expected = int(self.arrays["src_offsets"][-1]) if self.n else 0
                if arr.shape != (expected,):
                    raise ValueError("src_flat length != src_offsets[-1]")
            elif arr.shape != (self.n,):
                raise ValueError(f"column {name}: length {arr.shape} != n")


class TraceColumns:
    """Flat parallel lists of the per-µop fields the scheduler consumes.

    The cycle model's inner loop used to re-derive these per µop — three
    ``predictor_key()`` calls per eligible µop, a property call per flag, a
    shift per I-cache line id.  Columns precompute them *once per cached
    trace* so the hot loop is pure list indexing.  Ops are stored as plain
    ``int``s (not :class:`OpClass` members) so dispatch tables can be flat
    lists.

    Since PR 5 the columns are *derived from the packed numpy
    representation* (:class:`PackedColumns`): construction packs first,
    then materialises the list views with vectorised numpy expressions +
    ``tolist()``.  The list-facing API (and every value in it) is
    bit-identical to the original pure-list implementation — pinned
    against a reference reimplementation by
    ``tests/unit/test_trace_columns.py`` and end-to-end by the golden
    grid — so the scheduler loop is unchanged whether a trace was
    generated, mmap-loaded or shared-memory-attached.
    """

    __slots__ = (
        "n",
        "seqs",
        "pcs",
        "pc_lines",
        "ops",
        "srcs",
        "dsts",
        "values",
        "mem_addrs",
        "mem_sizes",
        "takens",
        "targets",
        "dst_is_fp",
        "is_branch",
        "is_cond_branch",
        "produces_value",
        "pkeys",
        "packed",
    )

    def __init__(self, uops: list[MicroOp],
                 packed: PackedColumns | None = None):
        if packed is None:
            packed = PackedColumns.from_uops(uops)
        self.packed = packed
        a = packed.arrays
        self.n = packed.n
        self.seqs = a["seqs"].tolist()
        self.pcs = a["pcs"].tolist()
        self.pc_lines = (a["pcs"] >> np.uint64(_LINE_SHIFT)).tolist()
        self.ops = a["ops"].tolist()
        flat = a["src_flat"].tolist()
        offsets = a["src_offsets"].tolist()
        self.srcs = [tuple(flat[offsets[i]:offsets[i + 1]])
                     for i in range(self.n)]
        dsts = a["dsts"]
        self.dsts = [d if d >= 0 else None for d in dsts.tolist()]
        self.values = a["values"].tolist()
        mem_valid = a["mem_valid"]
        self.mem_addrs = [
            addr if valid else None
            for addr, valid in zip(a["mem_addrs"].tolist(),
                                   mem_valid.tolist())
        ]
        self.mem_sizes = a["mem_sizes"].tolist()
        self.takens = a["takens"].tolist()
        self.targets = a["targets"].tolist()
        self.dst_is_fp = a["dst_is_fp"].tolist()
        ops = a["ops"]
        is_branch = np.isin(ops, _CTRL_INTS)
        self.is_branch = is_branch.tolist()
        self.is_cond_branch = (ops == _BRANCH_INT).tolist()
        self.produces_value = ((dsts >= 0) & ~is_branch).tolist()
        self.pkeys = (
            (a["pcs"] << np.uint64(2)) ^ a["uop_indexes"].astype(np.uint64)
        ).tolist()


@dataclass(slots=True)
class TraceStats:
    """Aggregate statistics over a trace (used by reports and tests)."""

    n_uops: int = 0
    n_branches: int = 0
    n_cond_branches: int = 0
    n_taken: int = 0
    n_loads: int = 0
    n_stores: int = 0
    n_value_producers: int = 0
    op_class_counts: Counter = field(default_factory=Counter)

    @property
    def branch_ratio(self) -> float:
        return self.n_branches / self.n_uops if self.n_uops else 0.0

    @property
    def load_ratio(self) -> float:
        return self.n_loads / self.n_uops if self.n_uops else 0.0


class Trace:
    """An ordered, indexable sequence of µops with workload metadata.

    Backed by either a µop list (freshly generated traces), a
    :class:`PackedColumns` (store-loaded / shared-memory-attached traces,
    see :meth:`from_packed`), or both; whichever half is missing is
    materialised lazily and cached.  Traces are treated as immutable once
    simulated — the workload catalog caches them on exactly that
    assumption — but :meth:`append`/:meth:`extend` stay supported for
    builders and invalidate the derived forms.
    """

    def __init__(self, uops: list[MicroOp] | None = None, name: str = "anonymous"):
        self.name = name
        self._uops: list[MicroOp] | None = uops if uops is not None else []
        self._packed: PackedColumns | None = None
        self._columns: TraceColumns | None = None

    @classmethod
    def from_packed(cls, packed: PackedColumns, name: str = "anonymous") -> "Trace":
        """Wrap an already-packed trace; µops materialise only on demand."""
        trace = cls(uops=None, name=name)
        trace._uops = None
        trace._packed = packed
        return trace

    def append(self, uop: MicroOp) -> None:
        self.uops.append(uop)
        self._packed = None
        self._columns = None

    def extend(self, uops: list[MicroOp]) -> None:
        self.uops.extend(uops)
        self._packed = None
        self._columns = None

    def packed(self) -> PackedColumns:
        """The packed numpy form of this trace, built once and cached."""
        packed = self._packed
        if packed is None or packed.n != len(self):
            packed = self._packed = PackedColumns.from_uops(self._uops)
        return packed

    def columns(self) -> TraceColumns:
        """The columnar view of this trace, built once and cached.

        Mutating the trace through :meth:`append`/:meth:`extend`
        invalidates the cache; mutating µops in place does not (traces are
        treated as immutable once simulated — the workload catalog caches
        them on exactly that assumption).
        """
        cols = self._columns
        if cols is None or cols.n != len(self):
            cols = self._columns = TraceColumns(self._uops,
                                               packed=self.packed())
        return cols

    @property
    def nbytes(self) -> int:
        """Packed size in bytes (the trace cache's budget currency)."""
        return self.packed().nbytes

    def __len__(self) -> int:
        if self._uops is not None:
            return len(self._uops)
        return self._packed.n

    def __iter__(self):
        return iter(self.uops)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return Trace(self.uops[item], name=self.name)
        return self.uops[item]

    @property
    def uops(self) -> list[MicroOp]:
        """The underlying µop list, rebuilding it from the packed columns
        for loaded/attached traces on first access."""
        uops = self._uops
        if uops is None:
            uops = self._uops = self._packed.to_uops()
        return uops

    def split(self, warmup: int) -> tuple["Trace", "Trace"]:
        """Split into (warm-up slice, measurement slice) at µop *warmup*."""
        if warmup < 0:
            raise ValueError("warm-up length cannot be negative")
        head = Trace(self.uops[:warmup], name=f"{self.name}:warmup")
        tail = Trace(self.uops[warmup:], name=f"{self.name}:measure")
        return head, tail

    def stats(self) -> TraceStats:
        """Compute summary statistics (vectorised when already packed)."""
        if self._packed is not None and self._packed.n == len(self):
            return self._stats_packed()
        stats = TraceStats()
        stats.n_uops = len(self.uops)
        counts = stats.op_class_counts
        for uop in self.uops:
            counts[uop.op_class] += 1
            if uop.is_branch:
                stats.n_branches += 1
                if uop.op_class is OpClass.BRANCH:
                    stats.n_cond_branches += 1
                if uop.taken:
                    stats.n_taken += 1
            if uop.is_load:
                stats.n_loads += 1
            elif uop.is_store:
                stats.n_stores += 1
            if uop.produces_value:
                stats.n_value_producers += 1
        return stats

    def _stats_packed(self) -> TraceStats:
        """The same statistics, computed with numpy over packed columns."""
        a = self._packed.arrays
        ops = a["ops"]
        stats = TraceStats()
        stats.n_uops = int(ops.shape[0])
        counts = np.bincount(ops, minlength=len(OpClass))
        for cls in OpClass:
            if counts[int(cls)]:
                stats.op_class_counts[cls] = int(counts[int(cls)])
        is_branch = np.isin(ops, _CTRL_INTS)
        stats.n_branches = int(is_branch.sum())
        stats.n_cond_branches = int(counts[_BRANCH_INT])
        stats.n_taken = int((is_branch & a["takens"]).sum())
        stats.n_loads = int(counts[_LOAD_INT])
        stats.n_stores = int(counts[_STORE_INT])
        stats.n_value_producers = int(((a["dsts"] >= 0) & ~is_branch).sum())
        return stats

    def back_to_back_fraction(self, fetch_width: int = 8) -> float:
        """Fraction of VP-eligible µops whose previous dynamic occurrence sits
        within one fetch group, i.e. would have been fetched the previous
        cycle.

        This reproduces the measurement motivating Section 3.2: "there can be
        as much as 15.3% (3.4% a-mean) fetched instructions eligible for VP
        and for which the previous occurrence was fetched in the previous
        cycle (8-wide Fetch)".
        """
        last_seen: dict[int, int] = {}
        eligible = 0
        back_to_back = 0
        for position, uop in enumerate(self.uops):
            if not uop.produces_value:
                continue
            eligible += 1
            key = uop.predictor_key()
            previous = last_seen.get(key)
            if previous is not None and (position - previous) <= fetch_width:
                back_to_back += 1
            last_seen[key] = position
        return back_to_back / eligible if eligible else 0.0
