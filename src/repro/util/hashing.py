"""Index and tag hashing shared by the predictors.

The paper indexes every value predictor with the macro-op PC mixed with the
µop index (Section 7.2): "we XOR the PC of the x86 instruction left-shifted
by two with the µ-op number inside the x86 instruction".  Tagged components
additionally need a short partial tag computed from the same information
(Section 6 / Table 1).
"""

from repro.util.bits import MASK64

# Large odd multipliers for avalanche mixing; the exact constants are not
# architectural, they only need to spread indices across the tables.
_MIX1 = 0x9E3779B97F4A7C15
_MIX2 = 0xC2B2AE3D27D4EB4F


def mix_pc_uop(pc: int, uop_index: int) -> int:
    """Combine macro-op PC and µop number into a single predictor key."""
    return ((pc << 2) ^ uop_index) & MASK64


def _scramble(key: int) -> int:
    key &= MASK64
    key ^= key >> 33
    key = (key * _MIX1) & MASK64
    key ^= key >> 29
    key = (key * _MIX2) & MASK64
    key ^= key >> 32
    return key


def table_index(key: int, index_bits: int, extra: int = 0) -> int:
    """Hash *key* (optionally mixed with *extra* context) into a table index."""
    if index_bits <= 0:
        raise ValueError("index width must be positive")
    return _scramble(key ^ (extra * _MIX2)) & ((1 << index_bits) - 1)


def tag_hash(key: int, tag_bits: int, extra: int = 0) -> int:
    """Compute a partial tag of *tag_bits* bits, decorrelated from the index.

    The tag uses a different slice of the scrambled key than
    :func:`table_index` so that entries aliasing on the index still usually
    differ in their tags, as required for TAGE-style tagged components.
    """
    if tag_bits <= 0:
        raise ValueError("tag width must be positive")
    scrambled = _scramble((key * 0x2545F4914F6CDD1D) ^ (extra * _MIX1))
    return (scrambled >> 17) & ((1 << tag_bits) - 1)
