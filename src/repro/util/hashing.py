"""Index and tag hashing shared by the predictors.

The paper indexes every value predictor with the macro-op PC mixed with the
µop index (Section 7.2): "we XOR the PC of the x86 instruction left-shifted
by two with the µ-op number inside the x86 instruction".  Tagged components
additionally need a short partial tag computed from the same information
(Section 6 / Table 1).

Fast paths
----------

The scramble is the innermost arithmetic of the whole simulator (hundreds
of thousands of calls per simulated slice), so two bit-identical fast
paths exist alongside the reference implementations:

* *Keyed memoisation* — :func:`scrambled_key` and :func:`scrambled_tag_key`
  cache the scramble of context-free keys.  Predictor keys are static-
  instruction identities, so a trace touches only a few hundred distinct
  keys and the hit rate is effectively 100% after warm-up.
  :func:`table_index` and :func:`tag_hash` route their ``extra == 0`` case
  through these caches automatically.
* *Fused pre-products* — for context-mixed lookups, TAGE/VTAGE fetch the
  per-component ``(extra * _MIX2, extra * _MIX1)`` pre-products from the
  incremental :class:`~repro.util.history.FoldedHistorySet` once per
  branch and inline the remaining scramble arithmetic (see
  ``branch/tage.py`` / ``core/vtage.py``), instead of calling
  :func:`table_index`/:func:`tag_hash` per component per lookup.
"""

import numpy as np

from repro.util.bits import MASK64

# Large odd multipliers for avalanche mixing; the exact constants are not
# architectural, they only need to spread indices across the tables.
_MIX1 = 0x9E3779B97F4A7C15
_MIX2 = 0xC2B2AE3D27D4EB4F

#: Multiplier decorrelating the tag scramble from the index scramble.
TAG_KEY_MULT = 0x2545F4914F6CDD1D

#: Bound on the memoised scramble caches; far above any realistic static
#: key population, it exists only to keep pathological key streams from
#: growing the dictionaries without limit.
_CACHE_LIMIT = 1 << 20

_KEY_CACHE: dict[int, int] = {}
_TAG_KEY_CACHE: dict[int, int] = {}


def mix_pc_uop(pc: int, uop_index: int) -> int:
    """Combine macro-op PC and µop number into a single predictor key."""
    return ((pc << 2) ^ uop_index) & MASK64


def _scramble(key: int) -> int:
    key &= MASK64
    key ^= key >> 33
    key = (key * _MIX1) & MASK64
    key ^= key >> 29
    key = (key * _MIX2) & MASK64
    key ^= key >> 32
    return key


def scrambled_key(key: int) -> int:
    """Memoised ``_scramble(key)`` for context-free table indexing."""
    cached = _KEY_CACHE.get(key)
    if cached is None:
        if len(_KEY_CACHE) >= _CACHE_LIMIT:
            _KEY_CACHE.clear()
        cached = _KEY_CACHE[key] = _scramble(key)
    return cached


def scrambled_tag_key(key: int) -> int:
    """Memoised ``_scramble(key * TAG_KEY_MULT)`` for context-free tags."""
    cached = _TAG_KEY_CACHE.get(key)
    if cached is None:
        if len(_TAG_KEY_CACHE) >= _CACHE_LIMIT:
            _TAG_KEY_CACHE.clear()
        cached = _TAG_KEY_CACHE[key] = _scramble(key * TAG_KEY_MULT)
    return cached


def table_index(key: int, index_bits: int, extra: int = 0) -> int:
    """Hash *key* (optionally mixed with *extra* context) into a table index."""
    if index_bits <= 0:
        raise ValueError("index width must be positive")
    if extra == 0:
        return scrambled_key(key) & ((1 << index_bits) - 1)
    return _scramble(key ^ (extra * _MIX2)) & ((1 << index_bits) - 1)


def tag_hash(key: int, tag_bits: int, extra: int = 0) -> int:
    """Compute a partial tag of *tag_bits* bits, decorrelated from the index.

    The tag uses a different slice of the scrambled key than
    :func:`table_index` so that entries aliasing on the index still usually
    differ in their tags, as required for TAGE-style tagged components.
    """
    if tag_bits <= 0:
        raise ValueError("tag width must be positive")
    if extra == 0:
        return (scrambled_tag_key(key) >> 17) & ((1 << tag_bits) - 1)
    scrambled = _scramble((key * TAG_KEY_MULT) ^ (extra * _MIX1))
    return (scrambled >> 17) & ((1 << tag_bits) - 1)


# ---------------------------------------------------------------------------
# Batched (numpy) variants
#
# The precompute plane (pipeline/precompute.py) hashes whole traces at once:
# one uint64 array of keys, one uint64 array of per-µop context values,
# vectorised over numpy instead of per-key memo dicts.  All three functions
# below are bit-identical to their scalar counterparts (pinned by
# tests/property/test_property_hashing.py); uint64 arithmetic wraps mod 2**64
# exactly like the explicit MASK64 masking of the scalar path.
# ---------------------------------------------------------------------------

_MIX1_U64 = np.uint64(_MIX1)
_MIX2_U64 = np.uint64(_MIX2)
_TAG_KEY_MULT_U64 = np.uint64(TAG_KEY_MULT)


def scramble_array(keys: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_scramble` over a uint64 array (returns a new array)."""
    x = keys.astype(np.uint64, copy=True)
    x ^= x >> np.uint64(33)
    x *= _MIX1_U64
    x ^= x >> np.uint64(29)
    x *= _MIX2_U64
    x ^= x >> np.uint64(32)
    return x


def table_index_array(keys: np.ndarray, index_bits: int,
                      extra: np.ndarray | None = None) -> np.ndarray:
    """Vectorised :func:`table_index`: per-element ``extra`` context array."""
    if index_bits <= 0:
        raise ValueError("index width must be positive")
    if extra is None:
        mixed = keys.astype(np.uint64, copy=False)
    else:
        mixed = keys.astype(np.uint64, copy=False) ^ (
            extra.astype(np.uint64, copy=False) * _MIX2_U64
        )
    return scramble_array(mixed) & np.uint64((1 << index_bits) - 1)


def tag_hash_array(keys: np.ndarray, tag_bits: int,
                   extra: np.ndarray | None = None) -> np.ndarray:
    """Vectorised :func:`tag_hash`: per-element ``extra`` context array."""
    if tag_bits <= 0:
        raise ValueError("tag width must be positive")
    mixed = keys.astype(np.uint64, copy=False) * _TAG_KEY_MULT_U64
    if extra is not None:
        mixed = mixed ^ (extra.astype(np.uint64, copy=False) * _MIX1_U64)
    return (scramble_array(mixed) >> np.uint64(17)) & np.uint64(
        (1 << tag_bits) - 1
    )
