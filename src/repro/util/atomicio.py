"""Crash-consistent small-file writes: tmp file, fsync, rename.

A process killed mid-``write_text`` leaves a torn file at the final
path; a rename after a durable temp-file write cannot.  Every committed
JSON file in the repo (result-cache entries, trace-store metadata) goes
through :func:`atomic_write_text`:

1. write the full payload to ``<name>.tmp.<pid>`` in the target
   directory (same filesystem, so the rename is atomic);
2. ``flush`` + ``fsync`` the temp file — the *bytes* are durable before
   the name is;
3. ``os.replace`` onto the final path — readers see the old file or the
   new file, never a mixture;
4. best-effort ``fsync`` of the parent directory, so the rename itself
   survives a power cut (skipped silently where directories cannot be
   opened, e.g. some network filesystems).

The optional *site* parameter names a fault-injection site
(:mod:`repro.engine.faults`): a ``torn`` fault writes half the payload
to the temp file and raises — simulating a kill mid-write and leaving
exactly the debris a real crash leaves (a ``*.tmp.*`` orphan, never a
torn committed file); ``enospc``/``error`` raise the corresponding
:class:`OSError` before any bytes land.

Rename-atomicity protects *readers* from torn files, but a
read-modify-write of a shared registry (the fuzzer corner registry, the
ingest sidecars — one file updated by any number of concurrent shards,
fuzzers and ingest runs) additionally needs mutual exclusion or two
writers silently drop each other's updates.  :func:`file_lock` provides
it: an advisory ``flock`` on a ``<name>.lock`` sibling, held across the
load → mutate → :func:`atomic_write_text` sequence.  The lock file is a
*separate* path on purpose — locking the data file itself would pin an
fd to a name the rename immediately replaces.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def fsync_file(path: str | os.PathLike) -> None:
    """Flush one already-written file's bytes to stable storage.

    For multi-file transactions (the trace store writes several ``.npy``
    files before renaming the directory in): every payload file is
    fsynced before the rename makes the set visible.
    """
    with open(path, "rb") as fh:
        os.fsync(fh.fileno())


def atomic_write_bytes(path: str | os.PathLike, data: bytes, *,
                       site: str | None = None) -> None:
    """Durably replace *path* with *data* (write-fsync-rename).

    Raises :class:`OSError` on failure; the committed file is untouched
    by a failed write.  *site* threads the fault-injection plane through
    (see module docstring).
    """
    from repro.engine import faults

    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    rule = faults.fire(site) if site else None
    if rule is not None and rule.action in ("enospc", "error"):
        raise faults.io_error(rule, site)
    with open(tmp, "wb") as fh:
        if rule is not None and rule.action == "torn":
            # Simulate a kill mid-write: half the payload reaches the temp
            # file (left behind, exactly like real crash debris) and the
            # rename never happens.
            fh.write(data[:max(1, len(data) // 2)])
            fh.flush()
            raise faults.io_error(rule, site)
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    try:
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


def atomic_write_text(path: str | os.PathLike, text: str, *,
                      site: str | None = None) -> None:
    """:func:`atomic_write_bytes` for UTF-8 text payloads."""
    atomic_write_bytes(path, text.encode(), site=site)


@contextmanager
def file_lock(path: str | os.PathLike):
    """Serialise read-modify-write cycles on the file at *path*.

    Takes a blocking exclusive ``flock`` on the sibling lock file
    ``<name>.lock`` (created on demand; the parent directory must
    exist).  Concurrent processes queue instead of interleaving, so a
    registry updated as load → mutate → :func:`atomic_write_text`
    under this lock never loses a writer's entry.  The lock releases
    with the context (and with the fd on any process death, including
    ``SIGKILL``); the lock file itself is left behind — unlinking it
    would race a waiter that already opened it.  On platforms without
    ``fcntl`` this degrades to no locking (writes stay rename-atomic).
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    path = Path(path)
    lock_path = path.with_name(path.name + ".lock")
    with open(lock_path, "a+") as fh:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
