"""Incrementally-maintained folded branch/path history registers.

TAGE-family predictors index every component with ``fold_value(ghist &
((1 << L) - 1), 16)`` for the component's history length ``L``.  Computing
that fold from scratch costs O(L / 16) per component per *lookup*; real
TAGE hardware instead keeps a circular *folded register* per history
length, updated in O(1) per *branch* — the design this module reproduces.

The mathematics: the XOR-fold of an L-bit history into ``w`` bits is the
history polynomial reduced modulo ``x^w + 1`` over GF(2) (``x^w == 1``).
Pushing a bit ``b`` shifts the history and drops bit ``L-1``::

    h' = ((h << 1) | b) & ((1 << L) - 1)

so the folded value transforms as::

    F(h') = rotl1(F(h)) ^ b ^ (h[L-1] << (L % w))

which :meth:`FoldedHistoryRegister.push` implements in a handful of
integer operations, keeping ``F(h)`` *bit-identical* to the from-scratch
:func:`~repro.util.bits.fold_value` at every point in time.

:class:`FoldedHistorySet` bundles one register per distinct history length
and additionally caches, per length, the two hash pre-products the fused
fast paths in :mod:`repro.util.hashing` consume (``compressed * MIX``
masked to 64 bits).  A set is attached to the shared
:class:`~repro.predictors.base.PredictionContext`, so TAGE and VTAGE
components with equal history lengths share one register.  The set mirrors
the context's ``(ghist, path)`` and transparently resynchronises from
scratch whenever the context was mutated behind its back (tests build
contexts by hand), so correctness never depends on the incremental path
being reachable.
"""

from __future__ import annotations

import numpy as np

from repro.util.bits import MASK64
from repro.util.hashing import _MIX1, _MIX2

#: Fold width used by every TAGE-family component in this codebase.
FOLD_WIDTH = 16

#: :func:`repro.util.bits.fold_value` operates on the unsigned-64 domain:
#: it truncates its input to 64 bits before folding.  A history window of
#: length L therefore contributes only its low ``min(L, 64)`` bits to the
#: seed model's compressed context, and the incremental registers must
#: reproduce exactly that window to stay bit-identical.
FOLD_HORIZON = 64


def compressed_bits(max_length: int) -> int:
    """Bit width of the compressed context for history lengths up to
    *max_length* (``fold ^ (path << 1) ^ (L << 17)``) — what memo keys
    packing a key alongside the compressed value must shift by."""
    return 17 + max(1, max_length).bit_length()


def fold_wide(value: int, width: int) -> int:
    """XOR-fold an arbitrary-width integer down to *width* bits.

    Unlike :func:`repro.util.bits.fold_value` this does *not* truncate to
    64 bits first; it is the mathematical fold the registers maintain.
    """
    if width <= 0:
        raise ValueError("fold width must be positive")
    folded = 0
    mask = (1 << width) - 1
    while value:
        folded ^= value & mask
        value >>= width
    return folded


def fold_array(values: np.ndarray, width: int = FOLD_WIDTH) -> np.ndarray:
    """Vectorised :func:`repro.util.bits.fold_value` over a uint64 array.

    Like ``fold_value`` — and unlike :func:`fold_wide` — this operates on
    the unsigned-64 domain: each element contributes only its low 64 bits
    (the :data:`FOLD_HORIZON`).  Bit-identical to the scalar fold, pinned
    by ``tests/property/test_property_history.py``.
    """
    if width <= 0:
        raise ValueError("fold width must be positive")
    v = values.astype(np.uint64, copy=False)
    mask = np.uint64(min((1 << width) - 1, MASK64))
    folded = v & mask
    for shift in range(width, 64, width):
        folded = folded ^ ((v >> np.uint64(shift)) & mask)
    return folded


class FoldedHistoryRegister:
    """One circular folded register: ``fold_value(ghist & mask_L, width)``.

    Invariant (checked by the property tests): after any sequence of
    :meth:`push` calls mirroring the global history updates, ``folded``
    equals the from-scratch fold of the current L-bit history window.
    """

    __slots__ = ("length", "width", "mask", "outpoint", "folded")

    def __init__(self, length: int, width: int = FOLD_WIDTH, ghist: int = 0):
        if length <= 0:
            raise ValueError("history length must be positive")
        if width <= 0:
            raise ValueError("fold width must be positive")
        self.length = length
        self.width = width
        self.mask = (1 << width) - 1
        self.outpoint = length % width
        self.folded = fold_wide(ghist & ((1 << length) - 1), width)

    def push(self, new_bit: int, out_bit: int) -> int:
        """Shift in *new_bit*; *out_bit* is bit ``length-1`` of the history
        *before* the shift (the bit that falls out of the window)."""
        c = ((self.folded << 1) | new_bit) ^ (out_bit << self.outpoint)
        c ^= c >> self.width
        self.folded = c & self.mask
        return self.folded

    def resync(self, ghist: int) -> int:
        """Recompute from scratch (squash/rewind or external mutation)."""
        self.folded = fold_wide(ghist & ((1 << self.length) - 1), self.width)
        return self.folded


class FoldedHistorySet:
    """All folded registers of one prediction context, plus hash pre-products.

    For each registered history length ``L`` the set maintains the exact
    *compressed context* the seed model computed per lookup::

        compressed = fold_value(ghist & mask_L, 16) ^ (path_L << 1) ^ (L << 17)

    (``path_L`` = low ``min(L, 16)`` bits of the hashed path history) and
    its two 64-bit multiplicative pre-products ``(compressed * MIX2) & M``
    and ``(compressed * MIX1) & M`` that :func:`repro.util.hashing.table_index`
    / :func:`~repro.util.hashing.tag_hash` would fold into the scramble.
    Predictors fetch them once per lookup via :meth:`pairs` and inline the
    remaining scramble arithmetic.

    Layout and update strategy: the per-length folded values live in one
    flat list, regenerated *lazily* — once per branch generation, only when
    a consumer actually asks — by a lane-packed refold.  Because
    ``fold_value``'s 64-bit horizon caps every effective window at
    :data:`FOLD_HORIZON` bits, a single big-integer multiply replicates the
    low-64 history into one 64-bit lane per register::

        B = (ghist & MASK64) * (1 + 2**64 + 2**128 + ...)   # replicate
        B &= lane_windows                                   # mask_L per lane
        B ^= B >> 32; B ^= B >> 16                          # fold all lanes
        folded_k = (B >> 64*k) & 0xFFFF                     # extract

    which is a handful of wide-integer operations for *all* components
    together, instead of an O(components) Python loop per branch.  The
    lane fold is bit-identical to :class:`FoldedHistoryRegister` (and to
    the from-scratch ``fold_value``) — the property tests pin all three
    against each other.  Each consumer lengths-tuple additionally owns a
    flat ``[e2, e1, compressed, ...]`` list rebuilt in place, so the
    steady state allocates nothing per branch.
    """

    __slots__ = (
        "_lens",
        "_kidx",
        "_folded",
        "_ones",
        "_lmask",
        "_gdirty",
        "_plans",
        "_lists",
        "_gen",
        "_ghist",
        "_path",
    )

    def __init__(self, ghist: int = 0, path: int = 0):
        # One lane per distinct effective length (min(L, FOLD_HORIZON)).
        self._lens: list[int] = []
        self._kidx: dict[int, int] = {}  # effective length -> lane index
        self._folded: list[int] = []
        self._ones = 0   # sum of 1 << (64*k): the lane replicator
        self._lmask = 0  # sum of window masks shifted into their lanes
        self._gdirty = False
        # Per-lengths-tuple: build plan [(lane, path_mask, L << 17), ...]
        # and a [stamp, flat-triple-list] entry rewritten in place; a stamp
        # equal to `_gen` marks the list current for this generation.
        self._plans: dict[tuple[int, ...], list[tuple[int, int, int]]] = {}
        self._lists: dict[tuple[int, ...], list] = {}
        self._gen = 0
        self._ghist = ghist
        self._path = path

    # -- history maintenance ------------------------------------------------

    def push(self, bit: int, old_ghist: int, new_ghist: int, new_path: int,
             max_bits: int = 256) -> None:
        """Mirror one ``push_branch``: O(1) — the refold happens lazily.

        The folded values are always regenerated from the *current*
        history, so external mutation of the context needs no special
        handling here (the signature arguments are kept for API symmetry
        with the incremental reference register).
        """
        self._ghist = new_ghist
        self._path = new_path
        self._gdirty = True
        self._gen += 1

    def on_squash(self, ghist: int, path: int) -> None:
        """Rewind to an architectural ``(ghist, path)`` point after a flush."""
        self._resync(ghist, path)

    # -- queries ------------------------------------------------------------

    def pairs(self, lengths: tuple[int, ...], ghist: int,
              path: int) -> list[int]:
        """Flat ``[e2, e1, compressed] * len(lengths)`` list, in order.

        ``compressed`` is the seed model's per-component compressed context
        (also the natural memoisation key for position caches); ``e2`` and
        ``e1`` are its 64-bit pre-products with the index/tag mix constants.
        Component ``i``'s triple sits at offsets ``3*i .. 3*i+2``.  The
        returned list object is stable per lengths-tuple and rewritten in
        place after every history update — consume it immediately, do not
        retain it across branches.

        Verifies the caller's ``(ghist, path)`` against the mirrored state
        and resynchronises when they diverge, so a hand-mutated context
        still hashes exactly like the seed model.
        """
        if ghist != self._ghist or path != self._path:
            self._resync(ghist, path)
        gen = self._gen
        entry = self._lists.get(lengths)
        if entry is not None and entry[0] == gen:
            return entry[1]
        if entry is None:
            entry = self._make_plan(lengths)
        if self._gdirty:
            self._refold()
        folded = self._folded
        p = self._path
        lst = entry[1]
        j = 0
        for k, pmask, lshift in self._plans[lengths]:
            compressed = folded[k] ^ ((p & pmask) << 1) ^ lshift
            lst[j] = (compressed * _MIX2) & MASK64
            lst[j + 1] = (compressed * _MIX1) & MASK64
            lst[j + 2] = compressed
            j += 3
        entry[0] = gen
        return lst

    def folded(self, length: int, ghist: int) -> int:
        """Current fold of the *length*-bit window (registers on demand).

        Mirrors the seed semantics: windows longer than
        :data:`FOLD_HORIZON` fold only their low 64 bits, exactly like
        ``fold_value``.
        """
        if ghist != self._ghist:
            self._resync(ghist, self._path)
        effective = length if length < FOLD_HORIZON else FOLD_HORIZON
        k = self._kidx.get(effective)
        if k is None:
            k = self._register(effective)
        elif self._gdirty:
            self._refold()
        return self._folded[k]

    # -- internals -----------------------------------------------------------

    def _resync(self, ghist: int, path: int) -> None:
        self._ghist = ghist
        self._path = path
        self._gdirty = True
        self._gen += 1

    def _refold(self) -> None:
        """Regenerate every lane's folded value from the current history.

        One replicate-mask-fold over the packed lanes; see the class
        docstring for the lane algebra.
        """
        packed = ((self._ghist & MASK64) * self._ones) & self._lmask
        packed ^= packed >> 32
        packed ^= packed >> FOLD_WIDTH
        folded = self._folded
        shift = 0
        for k in range(len(folded)):
            folded[k] = (packed >> shift) & 0xFFFF
            shift += 64
        self._gdirty = False

    def _register(self, effective: int) -> int:
        k = len(self._lens)
        self._kidx[effective] = k
        self._lens.append(effective)
        self._folded.append(
            fold_wide(self._ghist & ((1 << effective) - 1), FOLD_WIDTH)
        )
        self._ones |= 1 << (64 * k)
        self._lmask |= ((1 << effective) - 1) << (64 * k)
        return k

    def _make_plan(self, lengths: tuple[int, ...]) -> list:
        plan = []
        for length in lengths:
            # fold_value truncates to 64 bits: components with longer
            # windows share the 64-bit register slot (same folded value).
            effective = length if length < FOLD_HORIZON else FOLD_HORIZON
            k = self._kidx.get(effective)
            if k is None:
                k = self._register(effective)
            path_bits = length if length < FOLD_WIDTH else FOLD_WIDTH
            plan.append((k, (1 << path_bits) - 1, length << 17))
        self._plans[lengths] = plan
        entry = [self._gen - 1, [0] * (3 * len(lengths))]
        self._lists[lengths] = entry
        return entry
