"""Linear feedback shift register used as the FPC pseudo-random source.

Section 5 of the paper: "The used pseudo-random generator is a simple Linear
Feedback Shift Register."  We implement a Galois LFSR with a maximal-length
tap polynomial so the bit stream has period ``2**width - 1``.
"""

import numpy as np

# Maximal-length Galois tap masks (taps for x^w + ... + 1 polynomials).
_TAPS = {
    8: 0xB8,
    16: 0xB400,
    24: 0xE10000,
    32: 0xA3000000,
}

# Per-width full state cycle and state->offset lookup, built on first use.
# A maximal-length LFSR visits every nonzero state exactly once per period,
# so the cycle is one shared ring: any seed's future state *sequence* is a
# slice of it starting after the seed's offset.  This is what lets the fast
# paths batch-materialise pseudo-random draws as array indexing
# (pipeline/precompute.py) instead of stepping per event.  Only widths whose
# full period is small enough to tabulate get a table; the wide registers
# fall back to scalar stepping in :meth:`GaloisLFSR.sequence`.
_PERIOD_TABLE_MAX_WIDTH = 16

_PERIOD_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _period_tables(width: int) -> tuple[np.ndarray, np.ndarray] | None:
    if width > _PERIOD_TABLE_MAX_WIDTH:
        return None
    cached = _PERIOD_CACHE.get(width)
    if cached is not None:
        return cached
    taps = _TAPS[width]
    period = (1 << width) - 1
    states = np.empty(period, dtype=np.uint32)
    offsets = np.zeros(period + 1, dtype=np.uint32)
    state = 1
    for k in range(period):
        states[k] = state
        offsets[state] = k
        lsb = state & 1
        state >>= 1
        if lsb:
            state ^= taps
    cached = (states, offsets)
    _PERIOD_CACHE[width] = cached
    return cached


class GaloisLFSR:
    """A Galois linear feedback shift register.

    The register never reaches the all-zero state: a zero seed is promoted
    to 1, matching hardware practice where the LFSR is initialised to a
    non-zero reset value.
    """

    def __init__(self, width: int = 16, seed: int = 0xACE1):
        if width not in _TAPS:
            raise ValueError(f"unsupported LFSR width {width}; pick from {sorted(_TAPS)}")
        self.width = width
        self._taps = _TAPS[width]
        self._mask = (1 << width) - 1
        self.state = (seed & self._mask) or 1

    def step(self) -> int:
        """Advance one step and return the new register state."""
        lsb = self.state & 1
        self.state >>= 1
        if lsb:
            self.state ^= self._taps
        return self.state

    def next_bits(self, n: int) -> int:
        """Return *n* pseudo-random bits (the low bits of the next state)."""
        if not 0 < n <= self.width:
            raise ValueError(f"can draw between 1 and {self.width} bits")
        return self.step() & ((1 << n) - 1)

    def sequence(self, n: int) -> np.ndarray:
        """The next *n* states as a uint32 array, **without** advancing.

        ``sequence(n)[k]`` equals the state after ``k + 1`` calls to
        :meth:`step` from the current state (property-tested bit-identical).
        Consumers that materialise draws up front (the precompute fast
        paths) index this array and finally :meth:`advance` past the draws
        they consumed.  Cost is O(n) indexing off a per-width period table
        built once per process.
        """
        if n < 0:
            raise ValueError("sequence length cannot be negative")
        tables = _period_tables(self.width)
        if tables is None:
            return self._sequence_scalar(n)
        states, offsets = tables
        period = states.shape[0]
        start = int(offsets[self.state]) + 1
        idx = (np.arange(start, start + n, dtype=np.int64)) % period
        return states[idx]

    def _sequence_scalar(self, n: int) -> np.ndarray:
        """Stepping fallback for widths too wide to tabulate."""
        out = np.empty(n, dtype=np.uint32)
        state = self.state
        taps = self._taps
        for k in range(n):
            lsb = state & 1
            state >>= 1
            if lsb:
                state ^= taps
            out[k] = state
        return out

    def advance(self, n: int) -> int:
        """Advance *n* steps (O(1) via the period table when tabulated);
        returns the new state."""
        if n < 0:
            raise ValueError("cannot advance backwards")
        if n:
            tables = _period_tables(self.width)
            if tables is None:
                seq = self._sequence_scalar(n)
                self.state = int(seq[-1])
            else:
                states, offsets = tables
                period = states.shape[0]
                self.state = int(
                    states[(int(offsets[self.state]) + n) % period]
                )
        return self.state

    def chance(self, probability_log2: int) -> bool:
        """Return True with probability ``1 / 2**probability_log2``.

        ``probability_log2 == 0`` always succeeds, matching the leading
        probability of 1 in the paper's FPC probability vectors.
        """
        if probability_log2 < 0:
            raise ValueError("probability exponent must be >= 0")
        if probability_log2 == 0:
            return True
        return self.next_bits(probability_log2) == 0
