"""Linear feedback shift register used as the FPC pseudo-random source.

Section 5 of the paper: "The used pseudo-random generator is a simple Linear
Feedback Shift Register."  We implement a Galois LFSR with a maximal-length
tap polynomial so the bit stream has period ``2**width - 1``.
"""

# Maximal-length Galois tap masks (taps for x^w + ... + 1 polynomials).
_TAPS = {
    8: 0xB8,
    16: 0xB400,
    24: 0xE10000,
    32: 0xA3000000,
}


class GaloisLFSR:
    """A Galois linear feedback shift register.

    The register never reaches the all-zero state: a zero seed is promoted
    to 1, matching hardware practice where the LFSR is initialised to a
    non-zero reset value.
    """

    def __init__(self, width: int = 16, seed: int = 0xACE1):
        if width not in _TAPS:
            raise ValueError(f"unsupported LFSR width {width}; pick from {sorted(_TAPS)}")
        self.width = width
        self._taps = _TAPS[width]
        self._mask = (1 << width) - 1
        self.state = (seed & self._mask) or 1

    def step(self) -> int:
        """Advance one step and return the new register state."""
        lsb = self.state & 1
        self.state >>= 1
        if lsb:
            self.state ^= self._taps
        return self.state

    def next_bits(self, n: int) -> int:
        """Return *n* pseudo-random bits (the low bits of the next state)."""
        if not 0 < n <= self.width:
            raise ValueError(f"can draw between 1 and {self.width} bits")
        return self.step() & ((1 << n) - 1)

    def chance(self, probability_log2: int) -> bool:
        """Return True with probability ``1 / 2**probability_log2``.

        ``probability_log2 == 0`` always succeeds, matching the leading
        probability of 1 in the paper's FPC probability vectors.
        """
        if probability_log2 < 0:
            raise ValueError("probability exponent must be >= 0")
        if probability_log2 == 0:
            return True
        return self.next_bits(probability_log2) == 0
