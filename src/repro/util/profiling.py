"""Opt-in per-phase wall-clock accounting (the ``--profile`` flag).

Perf PRs need first-party numbers for where a run actually spends time —
trace generation, columnization, simulation, store and result-cache IO —
without reaching for an external profiler.  This module is a tiny global
accumulator: the hot layers wrap their coarse phases in :func:`phase`
(one context-manager entry per *job-level* operation, never per µop), and
``repro run --profile`` / ``repro campaign run --profile`` enable it and
print the report.

Disabled (the default) the wrapper is a cheap boolean check, so the
instrumented code paths cost nothing measurable in production.  Phases
record in the *current process only*: with a pool or service backend,
worker-side simulation time does not appear in the parent's report (the
parent still sees trace materialisation, which PR 5 moved parent-side) —
profile with a serial run when you need the full breakdown.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

_enabled = False
_totals: dict[str, float] = {}
_counts: dict[str, int] = {}


def enable(reset: bool = True) -> None:
    """Turn phase accounting on (optionally clearing prior totals)."""
    global _enabled
    if reset:
        _totals.clear()
        _counts.clear()
    _enabled = True


def disable() -> None:
    """Turn phase accounting off (totals are kept until the next enable)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether :func:`phase` is currently recording."""
    return _enabled


@contextmanager
def phase(name: str):
    """Record wall-clock time spent in the ``with`` body under *name*.

    A no-op (one boolean check) while profiling is disabled.  Phases may
    nest; each level accounts its own full span, so nested phases (e.g.
    ``trace-build`` inside ``store-io``) overlap rather than partition.
    """
    if not _enabled:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        _totals[name] = _totals.get(name, 0.0) + elapsed
        _counts[name] = _counts.get(name, 0) + 1


def add(name: str, seconds: float) -> None:
    """Credit *seconds* to phase *name* directly (for pre-measured spans)."""
    if not _enabled:
        return
    _totals[name] = _totals.get(name, 0.0) + seconds
    _counts[name] = _counts.get(name, 0) + 1


def snapshot() -> dict[str, dict]:
    """Per-phase ``{"seconds", "calls"}`` totals recorded so far."""
    return {
        name: {"seconds": _totals[name], "calls": _counts.get(name, 0)}
        for name in sorted(_totals)
    }


def format_report() -> str:
    """Human-readable per-phase table (what ``--profile`` prints)."""
    snap = snapshot()
    if not snap:
        return "profile: no phases recorded"
    width = max(len(name) for name in snap)
    lines = ["profile (wall-clock per phase, this process only):"]
    for name, row in sorted(snap.items(), key=lambda kv: -kv[1]["seconds"]):
        lines.append(
            f"  {name:<{width}}  {row['seconds']:9.3f}s"
            f"  ({row['calls']} call{'s' if row['calls'] != 1 else ''})"
        )
    return "\n".join(lines)
