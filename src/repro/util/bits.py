"""Fixed-width integer helpers.

All architectural values in the model are 64-bit unsigned integers, exactly
like the ``val`` fields of the predictor entries in the paper (Section 6).
Python integers are unbounded, so every arithmetic result that represents a
register value must be masked back to 64 bits.
"""

MASK16 = (1 << 16) - 1
MASK32 = (1 << 32) - 1
MASK64 = (1 << 64) - 1


def to_unsigned64(value: int) -> int:
    """Wrap an arbitrary Python integer into the unsigned 64-bit domain."""
    return value & MASK64


def to_signed64(value: int) -> int:
    """Interpret the low 64 bits of *value* as a two's complement integer."""
    value &= MASK64
    if value >= 1 << 63:
        return value - (1 << 64)
    return value


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low *bits* bits of *value* to a Python integer."""
    if bits <= 0:
        raise ValueError("bit width must be positive")
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        return value - (1 << bits)
    return value


def fold_value(value: int, width: int = 16) -> int:
    """Fold a 64-bit value onto itself down to *width* bits by XOR.

    This is the compression step used by the o4-FCM predictor's history hash
    (Section 7.1.1): "we fold (XOR) each 64-bit history value upon itself to
    obtain a 16-bit index".
    """
    if width <= 0:
        raise ValueError("fold width must be positive")
    value = to_unsigned64(value)
    folded = 0
    mask = (1 << width) - 1
    while value:
        folded ^= value & mask
        value >>= width
    return folded
