"""Shared low-level utilities: LFSRs, bit folding and index hashing.

These helpers model the small pieces of combinational logic that the paper's
hardware structures rely on: the linear feedback shift register driving the
Forward Probabilistic Counters (Section 5), the value-folding hash used by
FCM-style predictors (Section 7.1.1) and the PC/µop-index mixing used to give
every µop of a macro-op its own predictor entry (Section 7.2).
"""

from repro.util.bits import (
    MASK16,
    MASK32,
    MASK64,
    fold_value,
    sign_extend,
    to_signed64,
    to_unsigned64,
)
from repro.util.hashing import mix_pc_uop, tag_hash, table_index
from repro.util.lfsr import GaloisLFSR

__all__ = [
    "MASK16",
    "MASK32",
    "MASK64",
    "GaloisLFSR",
    "fold_value",
    "mix_pc_uop",
    "sign_extend",
    "tag_hash",
    "table_index",
    "to_signed64",
    "to_unsigned64",
]
