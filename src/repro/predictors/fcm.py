"""Finite Context Method predictors (Sazeides & Smith [18]).

An order-n FCM is a two-level structure: the Value History Table (VHT),
indexed by instruction address, records the last n values produced by the
instruction (compressed to 16 bits each); the hash of that history indexes
the Value Prediction Table (VPT), which holds the actual predicted value.

The paper evaluates a generic order-4 FCM (``o4-FCM``, Table 1: 8 K-entry
VHT at 120.8 KB + 8 K-entry VPT at 67.6 KB) with these specifics from
Section 7.1.1:

* the hash folds (XORs) each 64-bit history value onto itself to get 16
  bits, then XORs the most recent with the second most recent left-shifted
  by one bit, and so on;
* the resulting index is XORed with the PC to break VPT conflicts;
* the VPT keeps a 2-bit hysteresis counter to limit replacements (value
  replaced only when the counter is 0);
* the 3-bit confidence counter lives in the VHT entry.

D-FCM (Goeman et al. [9]) stores strides instead of values in both levels
and adds the last value, tightly coupling FCM with Stride prediction.

FCM predictors must track the n last *speculative* occurrences per
instruction for in-flight instances (Section 3.2), which makes real
implementations problematic; we model the idealised behaviour the paper
simulates ("o4-FCM is — unrealistically — able to deliver predictions for
two occurrences ... fetched in two consecutive cycles").
"""

from __future__ import annotations

from repro.core.confidence import ConfidencePolicy
from repro.predictors.base import (
    FULL_TAG_BITS,
    Prediction,
    PredictionContext,
    ValuePredictor,
)
from repro.util.bits import MASK64, fold_value
from repro.util.hashing import table_index

_VALUE_BITS = 64
_FOLD_BITS = 16
_HYSTERESIS_MAX = 3


def fcm_history_hash(history: tuple[int, ...], pc_key: int, index_bits: int) -> int:
    """The o4-FCM VPT index: staggered XOR of folded values, XORed with PC.

    ``history[0]`` is the most recent folded value.  The accumulator is at
    most 20 bits, so for the common VPT widths (>= 10 index bits) the
    final fold collapses to a single shift-XOR — bit-identical to the
    generic ``fold_value`` loop it specialises.
    """
    acc = 0
    for age, folded in enumerate(history):
        acc ^= (folded << age) & 0xFFFFF
    acc ^= pc_key & 0xFFFFF
    if index_bits >= 10:
        return (acc ^ (acc >> index_bits)) & ((1 << index_bits) - 1)
    return fold_value(acc, index_bits)


class FCMPredictor(ValuePredictor):
    """Order-n Finite Context Method predictor with paper-faithful hashing."""

    name = "o4-FCM"

    def __init__(
        self,
        entries: int = 8192,
        order: int = 4,
        confidence: ConfidencePolicy | None = None,
        tag_bits: int = FULL_TAG_BITS,
        vpt_entries: int | None = None,
    ):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("VHT entry count must be a positive power of two")
        if order <= 0:
            raise ValueError("FCM order must be positive")
        self.entries = entries
        self.order = order
        self.index_bits = entries.bit_length() - 1
        self.tag_bits = tag_bits
        self.confidence = confidence if confidence is not None else ConfidencePolicy()
        self.vpt_entries = vpt_entries if vpt_entries is not None else entries
        if self.vpt_entries & (self.vpt_entries - 1):
            raise ValueError("VPT entry count must be a power of two")
        self.vpt_index_bits = self.vpt_entries.bit_length() - 1
        # First level: VHT.
        self._tags: list[int | None] = [None] * entries
        self._hist: list[tuple[int, ...]] = [(0,) * order] * entries
        self._conf = [0] * entries
        # Second level: VPT.
        self._vpt_value = [0] * self.vpt_entries
        self._vpt_hyst = [0] * self.vpt_entries
        # Speculative local histories for in-flight occurrences, reclaimed
        # once every in-flight instance has committed (or on squash).
        self._spec_hist: dict[int, tuple[int, ...]] = {}
        self._inflight: dict[int, int] = {}
        self.name = f"o{order}-FCM"

    # -- helpers ---------------------------------------------------------

    def _vht_index(self, key: int) -> int:
        return table_index(key, self.index_bits)

    def _current_history(self, idx: int) -> tuple[int, ...]:
        return self._spec_hist.get(idx, self._hist[idx])

    # -- ValuePredictor interface ----------------------------------------

    def lookup(self, key: int, ctx: PredictionContext) -> Prediction | None:
        idx = self._vht_index(key)
        if self._tags[idx] != key:
            return None
        history = self._current_history(idx)
        vpt_idx = fcm_history_hash(history, key, self.vpt_index_bits)
        return Prediction(
            value=self._vpt_value[vpt_idx],
            confident=self.confidence.is_confident(self._conf[idx]),
            payload=(idx, vpt_idx, history),
            source=self.name,
        )

    def speculate(self, key: int, prediction: Prediction | None) -> None:
        if prediction is None:
            return
        idx, _, history = prediction.payload
        folded = fold_value(prediction.value, _FOLD_BITS)
        self._spec_hist[idx] = (folded,) + history[: self.order - 1]
        self._inflight[idx] = self._inflight.get(idx, 0) + 1

    def _release_spec(self, idx: int, prediction: Prediction | None) -> None:
        if prediction is None:
            return
        live = self._inflight.get(idx, 0) - 1
        if live <= 0:
            self._inflight.pop(idx, None)
            self._spec_hist.pop(idx, None)
        else:
            self._inflight[idx] = live

    def train(self, key: int, actual: int, prediction: Prediction | None) -> None:
        idx = self._vht_index(key)
        self._release_spec(idx, prediction)
        folded_actual = fold_value(actual, _FOLD_BITS)
        if self._tags[idx] != key:
            self._tags[idx] = key
            self._hist[idx] = (folded_actual,) + (0,) * (self.order - 1)
            self._conf[idx] = 0
            self._spec_hist.pop(idx, None)
            self._inflight.pop(idx, None)
            return
        # Validate the prediction actually emitted at fetch when available;
        # otherwise reconstruct what the committed history would have
        # predicted.  The VPT update below always uses the committed
        # history (training happens in commit order).
        history = self._hist[idx]
        vpt_idx = fcm_history_hash(history, key, self.vpt_index_bits)
        if prediction is not None:
            predicted = prediction.value
        else:
            predicted = self._vpt_value[vpt_idx]
        if predicted == actual:
            self._conf[idx] = self.confidence.on_correct(self._conf[idx])
        else:
            self._conf[idx] = self.confidence.on_incorrect(self._conf[idx])
            # Resynchronise the speculative history: it was extended with a
            # wrong prediction, and chaining further instances off it would
            # never recover (hardware repairs local histories with the
            # executed value at writeback).
            self._spec_hist.pop(idx, None)
        # VPT update with 2-bit hysteresis: replace only when it reaches 0.
        if self._vpt_value[vpt_idx] == actual:
            if self._vpt_hyst[vpt_idx] < _HYSTERESIS_MAX:
                self._vpt_hyst[vpt_idx] += 1
        elif self._vpt_hyst[vpt_idx] == 0:
            self._vpt_value[vpt_idx] = actual
            self._vpt_hyst[vpt_idx] = 1
        else:
            self._vpt_hyst[vpt_idx] -= 1
        # Shift the committed local history.
        self._hist[idx] = (folded_actual,) + history[: self.order - 1]

    def on_squash(self) -> None:
        self._spec_hist.clear()
        self._inflight.clear()

    def storage_bits(self) -> int:
        # Storage follows Table 1: the VHT entry holds the folded history
        # (order x 16 bits) plus tag plus the 3-bit confidence counter; the
        # VPT entry holds the 64-bit value plus 2-bit hysteresis.
        vht_entry = self.order * _FOLD_BITS + self.tag_bits + self.confidence.storage_bits()
        vpt_entry = _VALUE_BITS + 2
        return self.entries * vht_entry + self.vpt_entries * vpt_entry

    def describe(self) -> str:
        return (
            f"{self.name} VHT {self.entries} x {self.order}, "
            f"VPT {self.vpt_entries}, {self.confidence.describe()}"
        )


class DifferentialFCMPredictor(FCMPredictor):
    """D-FCM [9]: the history and the VPT store strides, not values.

    Implemented as the paper describes the concept (Section 2): "tracking
    differences between values in the local history and the VPT instead of
    values themselves", combining FCM pattern detection with Stride-style
    final addition.  The paper leaves a VTAGE-vs-D-FCM comparison to future
    work; we provide D-FCM as an extension for exactly that ablation.
    """

    name = "o4-D-FCM"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._last = [0] * self.entries
        self.name = f"o{self.order}-D-FCM"
        self._spec_last: dict[int, int] = {}

    def lookup(self, key: int, ctx: PredictionContext) -> Prediction | None:
        idx = self._vht_index(key)
        if self._tags[idx] != key:
            return None
        history = self._current_history(idx)
        vpt_idx = fcm_history_hash(history, key, self.vpt_index_bits)
        last = self._spec_last.get(idx, self._last[idx])
        value = (last + self._vpt_value[vpt_idx]) & MASK64
        return Prediction(
            value=value,
            confident=self.confidence.is_confident(self._conf[idx]),
            payload=(idx, vpt_idx, history),
            source=self.name,
        )

    def speculate(self, key: int, prediction: Prediction | None) -> None:
        if prediction is None:
            return
        idx, _, history = prediction.payload
        last = self._spec_last.get(idx, self._last[idx])
        stride = (prediction.value - last) & MASK64
        folded = fold_value(stride, _FOLD_BITS)
        self._spec_hist[idx] = (folded,) + history[: self.order - 1]
        self._spec_last[idx] = prediction.value
        self._inflight[idx] = self._inflight.get(idx, 0) + 1

    def train(self, key: int, actual: int, prediction: Prediction | None) -> None:
        idx = self._vht_index(key)
        self._release_spec(idx, prediction)
        if idx not in self._inflight:
            self._spec_last.pop(idx, None)
        if self._tags[idx] != key:
            self._tags[idx] = key
            self._hist[idx] = (0,) * self.order
            self._conf[idx] = 0
            self._last[idx] = actual
            self._spec_hist.pop(idx, None)
            self._spec_last.pop(idx, None)
            self._inflight.pop(idx, None)
            return
        stride = (actual - self._last[idx]) & MASK64
        history = self._hist[idx]
        vpt_idx = fcm_history_hash(history, key, self.vpt_index_bits)
        if prediction is not None:
            predicted = prediction.value
        else:
            predicted = (self._last[idx] + self._vpt_value[vpt_idx]) & MASK64
        if predicted == actual:
            self._conf[idx] = self.confidence.on_correct(self._conf[idx])
        else:
            self._conf[idx] = self.confidence.on_incorrect(self._conf[idx])
            # Resynchronise the speculative chain with architectural state.
            self._spec_hist.pop(idx, None)
            self._spec_last.pop(idx, None)
        if self._vpt_value[vpt_idx] == stride:
            if self._vpt_hyst[vpt_idx] < _HYSTERESIS_MAX:
                self._vpt_hyst[vpt_idx] += 1
        elif self._vpt_hyst[vpt_idx] == 0:
            self._vpt_value[vpt_idx] = stride
            self._vpt_hyst[vpt_idx] = 1
        else:
            self._vpt_hyst[vpt_idx] -= 1
        self._hist[idx] = (fold_value(stride, _FOLD_BITS),) + history[: self.order - 1]
        self._last[idx] = actual

    def on_squash(self) -> None:
        super().on_squash()
        self._spec_last.clear()

    def storage_bits(self) -> int:
        return super().storage_bits() + self.entries * _VALUE_BITS
