"""Classical value predictors evaluated against VTAGE in the paper.

The taxonomy follows Sazeides & Smith [18]: *computational* predictors (LVP,
Stride, 2-Delta Stride, Per-Path Stride) apply a function to previous values
of the same instruction; *context-based* predictors (order-n FCM, D-FCM)
match patterns in the local value history.  The oracle predictor provides
the Figure 3 upper bound.
"""

from repro.predictors.base import (
    FULL_TAG_BITS,
    Prediction,
    PredictionContext,
    ValuePredictor,
)
from repro.predictors.fcm import DifferentialFCMPredictor, FCMPredictor
from repro.predictors.lvp import LastValuePredictor
from repro.predictors.oracle import OraclePredictor
from repro.predictors.stride import (
    PerPathStridePredictor,
    StridePredictor,
    TwoDeltaStridePredictor,
)

__all__ = [
    "FULL_TAG_BITS",
    "DifferentialFCMPredictor",
    "FCMPredictor",
    "LastValuePredictor",
    "OraclePredictor",
    "PerPathStridePredictor",
    "Prediction",
    "PredictionContext",
    "StridePredictor",
    "TwoDeltaStridePredictor",
    "ValuePredictor",
]

from repro.predictors.gdiff import GDiffPredictor  # noqa: E402

__all__.append("GDiffPredictor")
