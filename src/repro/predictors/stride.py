"""Stride-family computational predictors.

* :class:`StridePredictor` — the classic stride predictor of Gabbay et
  al. [8]: predict ``last + stride`` where ``stride`` is the last observed
  delta.
* :class:`TwoDeltaStridePredictor` — the 2-Delta variant of Eickemeyer and
  Vassiliadis [6] used throughout the paper's evaluation: the predicting
  stride is only updated once the same delta has been observed twice,
  filtering out one-off discontinuities.
* :class:`PerPathStridePredictor` — the per-path stride predictor of Nakra
  et al. [15] (footnote 4 of the paper: performance on par with 2D-Stride);
  the table index mixes in a few bits of the global branch history.

Stride predictors must track the *speculative* last occurrence of each
instruction when several instances are in flight (Section 3.2): the second
pipeline step (the addition) uses the result of the previous — possibly
not-yet-executed — occurrence.  :meth:`speculate` maintains that state and
:meth:`on_squash` discards it on pipeline flushes.
"""

from __future__ import annotations

from repro.core.confidence import ConfidencePolicy
from repro.predictors.base import (
    FULL_TAG_BITS,
    Prediction,
    PredictionContext,
    ValuePredictor,
)
from repro.util.bits import MASK64
from repro.util.hashing import table_index

_VALUE_BITS = 64
_STRIDE_BITS = 64


class StridePredictor(ValuePredictor):
    """Classic stride predictor: value = last + (last delta)."""

    name = "Stride"

    def __init__(
        self,
        entries: int = 8192,
        confidence: ConfidencePolicy | None = None,
        tag_bits: int = FULL_TAG_BITS,
    ):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entry count must be a positive power of two")
        self.entries = entries
        self.index_bits = entries.bit_length() - 1
        self.tag_bits = tag_bits
        self.confidence = confidence if confidence is not None else ConfidencePolicy()
        self._tags: list[int | None] = [None] * entries
        self._last = [0] * entries
        self._stride = [0] * entries
        self._conf = [0] * entries
        # Speculative last value per entry for in-flight occurrences.  An
        # entry's speculative value is live only while at least one
        # occurrence is in flight (fetched, not yet committed); the
        # in-flight counter reclaims it, and squashes clear everything.
        self._spec_last: dict[int, int] = {}
        self._inflight: dict[int, int] = {}

    # -- helpers ---------------------------------------------------------

    def _index(self, key: int) -> int:
        return table_index(key, self.index_bits)

    def _predicting_stride(self, idx: int) -> int:
        return self._stride[idx]

    # -- ValuePredictor interface ----------------------------------------

    def lookup(self, key: int, ctx: PredictionContext) -> Prediction | None:
        idx = self._index(key)
        if self._tags[idx] != key:
            return None
        base = self._spec_last.get(idx, self._last[idx])
        value = (base + self._predicting_stride(idx)) & MASK64
        return Prediction(
            value=value,
            confident=self.confidence.is_confident(self._conf[idx]),
            payload=idx,
            source=self.name,
        )

    def speculate(self, key: int, prediction: Prediction | None) -> None:
        if prediction is None:
            return
        # Track the last speculative occurrence: the next in-flight instance
        # of the same instruction chains its prediction off this value.
        idx = prediction.payload
        self._spec_last[idx] = prediction.value
        self._inflight[idx] = self._inflight.get(idx, 0) + 1

    def set_speculative_last(self, key: int, value: int) -> None:
        """Let an external component (a hybrid) inject the speculative last
        occurrence, per Section 7.1.2: "use the last prediction of VTAGE as
        the next last value for 2D-Stride if VTAGE is confident"."""
        idx = self._index(key)
        if self._tags[idx] == key:
            self._spec_last[idx] = value & MASK64

    def _train_stride(self, idx: int, actual: int) -> None:
        self._stride[idx] = (actual - self._last[idx]) & MASK64

    def train(self, key: int, actual: int, prediction: Prediction | None) -> None:
        idx = self._index(key)
        if prediction is not None:
            # This occurrence leaves the pipeline: release its claim on the
            # speculative last value.
            live = self._inflight.get(idx, 0) - 1
            if live <= 0:
                self._inflight.pop(idx, None)
                self._spec_last.pop(idx, None)
            else:
                self._inflight[idx] = live
        if self._tags[idx] != key:
            self._tags[idx] = key
            self._last[idx] = actual
            self._stride[idx] = 0
            self._conf[idx] = 0
            self._spec_last.pop(idx, None)
            self._inflight.pop(idx, None)
            return
        # Validation compares the prediction actually emitted at fetch (the
        # speculative chain's output) when one exists; the recomputed
        # committed-state prediction covers not-looked-up training.
        if prediction is not None:
            predicted = prediction.value
        else:
            predicted = (self._last[idx] + self._predicting_stride(idx)) & MASK64
        if predicted == actual:
            self._conf[idx] = self.confidence.on_correct(self._conf[idx])
            self._train_stride(idx, actual)
        else:
            self._conf[idx] = self.confidence.on_incorrect(self._conf[idx])
            self._train_stride(idx, actual)
            # Resynchronise the speculative chain: hardware repairs the
            # last-occurrence tracking with the executed value, so younger
            # in-flight occurrences re-predict from the architectural value
            # advanced by one stride per still-in-flight instance.
            inflight = self._inflight.get(idx, 0)
            if inflight > 0:
                stride = self._predicting_stride(idx)
                self._spec_last[idx] = (actual + stride * inflight) & MASK64
            else:
                self._spec_last.pop(idx, None)
        self._last[idx] = actual

    def on_squash(self) -> None:
        self._spec_last.clear()
        self._inflight.clear()

    def _stride_fields(self) -> int:
        return _STRIDE_BITS

    def storage_bits(self) -> int:
        per_entry = (
            _VALUE_BITS
            + self._stride_fields()
            + self.tag_bits
            + self.confidence.storage_bits()
        )
        return self.entries * per_entry

    def describe(self) -> str:
        return f"{self.name} {self.entries} entries, {self.confidence.describe()}"


class TwoDeltaStridePredictor(StridePredictor):
    """2-Delta stride: the predicting stride updates only after the same
    delta is observed twice in a row [6].  This is the paper's ``2D-Stride``
    (Table 1: 8192 entries, 251.9 KB — two 64-bit stride fields)."""

    name = "2D-Stride"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._stride2 = [0] * self.entries  # the predicting stride

    def _predicting_stride(self, idx: int) -> int:
        return self._stride2[idx]

    def _train_stride(self, idx: int, actual: int) -> None:
        delta = (actual - self._last[idx]) & MASK64
        if delta == self._stride[idx]:
            # Same delta twice in a row: promote it to the predicting stride.
            self._stride2[idx] = delta
        self._stride[idx] = delta

    def _stride_fields(self) -> int:
        return 2 * _STRIDE_BITS


class PerPathStridePredictor(TwoDeltaStridePredictor):
    """Per-path stride [15]: index hashed with a few global history bits."""

    name = "PS-Stride"

    def __init__(self, *args, history_bits: int = 4, **kwargs):
        super().__init__(*args, **kwargs)
        self.history_bits = history_bits
        self._ctx_bits = 0

    def lookup(self, key: int, ctx: PredictionContext) -> Prediction | None:
        self._ctx_bits = ctx.ghist & ((1 << self.history_bits) - 1)
        return super().lookup(key, ctx)

    def _index(self, key: int) -> int:
        return table_index(key, self.index_bits, extra=self._ctx_bits)

    def train(self, key: int, actual: int, prediction: Prediction | None) -> None:
        # Recover the path context used at prediction time from the payload;
        # fall back to the most recent context for never-predicted keys.
        if prediction is not None:
            idx = prediction.payload
            live = self._inflight.get(idx, 0) - 1
            if live <= 0:
                self._inflight.pop(idx, None)
                self._spec_last.pop(idx, None)
            else:
                self._inflight[idx] = live
            self._train_at(idx, key, actual)
        else:
            super().train(key, actual, None)

    def _train_at(self, idx: int, key: int, actual: int) -> None:
        if self._tags[idx] != key:
            self._tags[idx] = key
            self._last[idx] = actual
            self._stride[idx] = 0
            self._stride2[idx] = 0
            self._conf[idx] = 0
            return
        predicted = (self._last[idx] + self._stride2[idx]) & MASK64
        if predicted == actual:
            self._conf[idx] = self.confidence.on_correct(self._conf[idx])
        else:
            self._conf[idx] = self.confidence.on_incorrect(self._conf[idx])
        delta = (actual - self._last[idx]) & MASK64
        if delta == self._stride[idx]:
            self._stride2[idx] = delta
        self._stride[idx] = delta
        self._last[idx] = actual
