"""Last Value Predictor (LVP), Lipasti et al. [12, 13].

The simplest computational predictor: predict that an instruction produces
the same value as its previous dynamic instance.  Table 1 of the paper sizes
it at 8192 entries with full 51-bit tags (120.8 KB).

LVP needs no speculative state: "Despite its name, LVP does not require the
previous prediction to predict the current instance as long as the table is
trained" (Section 3.2), which is why — like VTAGE — it can predict
back-to-back occurrences seamlessly.
"""

from __future__ import annotations

from repro.core.confidence import ConfidencePolicy
from repro.predictors.base import (
    FULL_TAG_BITS,
    Prediction,
    PredictionContext,
    ValuePredictor,
)
from repro.util.hashing import table_index

_VALUE_BITS = 64


class LastValuePredictor(ValuePredictor):
    """Direct-mapped last-value table with full tags."""

    name = "LVP"

    def __init__(
        self,
        entries: int = 8192,
        confidence: ConfidencePolicy | None = None,
        tag_bits: int = FULL_TAG_BITS,
    ):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entry count must be a positive power of two")
        self.entries = entries
        self.index_bits = entries.bit_length() - 1
        self.tag_bits = tag_bits
        self.confidence = confidence if confidence is not None else ConfidencePolicy()
        # Full tags: we store the key itself, so aliasing never produces a
        # false hit — exactly the behaviour a 51-bit tag buys at these sizes.
        self._tags: list[int | None] = [None] * entries
        self._values = [0] * entries
        self._conf = [0] * entries

    def lookup(self, key: int, ctx: PredictionContext) -> Prediction | None:
        idx = table_index(key, self.index_bits)
        if self._tags[idx] != key:
            return None
        return Prediction(
            value=self._values[idx],
            confident=self.confidence.is_confident(self._conf[idx]),
            payload=idx,
            source=self.name,
        )

    def train(self, key: int, actual: int, prediction: Prediction | None) -> None:
        idx = table_index(key, self.index_bits)
        if self._tags[idx] != key:
            # Allocate: claim the slot for this static µop.
            self._tags[idx] = key
            self._values[idx] = actual
            self._conf[idx] = 0
            return
        if self._values[idx] == actual:
            self._conf[idx] = self.confidence.on_correct(self._conf[idx])
        else:
            self._conf[idx] = self.confidence.on_incorrect(self._conf[idx])
            self._values[idx] = actual
        return

    def storage_bits(self) -> int:
        return self.entries * (
            _VALUE_BITS + self.tag_bits + self.confidence.storage_bits()
        )

    def describe(self) -> str:
        return f"LVP {self.entries} entries, {self.confidence.describe()}"
