"""Oracle (perfect) value predictor.

Used for the Figure 3 experiment: "We first run simulations to assess the
maximum benefit that could be obtained by a perfect value predictor."  The
oracle predicts every eligible µop's actual value with full confidence, so
performance is limited only by fetch bandwidth, the memory hierarchy, branch
prediction and structure sizes.
"""

from __future__ import annotations

from repro.predictors.base import Prediction, PredictionContext, ValuePredictor


class OraclePredictor(ValuePredictor):
    """Always predicts correctly.

    The simulator primes the oracle with the actual value of the µop being
    looked up via :meth:`set_actual` (a trace-driven simulator knows it);
    this keeps the :class:`ValuePredictor` interface uniform.
    """

    name = "Oracle"

    def __init__(self):
        self._next_value = 0

    def set_actual(self, value: int) -> None:
        """Prime the oracle with the actual result of the next lookup."""
        self._next_value = value

    def lookup(self, key: int, ctx: PredictionContext) -> Prediction | None:
        return Prediction(value=self._next_value, confident=True, source=self.name)

    def train(self, key: int, actual: int, prediction: Prediction | None) -> None:
        return

    def storage_bits(self) -> int:
        return 0

    def describe(self) -> str:
        return "Oracle (perfect prediction)"
