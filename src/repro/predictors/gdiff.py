"""gDiff: global-stride value prediction (Zhou et al. [27], Section 2).

gDiff "computes the difference existing between the result of an
instruction and the results produced by the last n dynamic instructions".
If a stable distance-d stride exists, the instruction's result is predicted
as ``global_history[d] + stride``.  Crucially, gDiff needs a *speculative
global value history* at prediction time, which must itself be filled by
another predictor (or by computed results when available) — "gDiff can be
added on top of any other predictor, including VTAGE" (Section 2).

We implement gDiff as a stacking wrapper: the backing predictor supplies
both its own predictions (used to extend the speculative global history)
and the fallback prediction when gDiff has no stable stride.
"""

from __future__ import annotations

from collections import deque

from repro.core.confidence import ConfidencePolicy
from repro.predictors.base import (
    FULL_TAG_BITS,
    Prediction,
    PredictionContext,
    ValuePredictor,
)
from repro.util.bits import MASK64
from repro.util.hashing import table_index

_VALUE_BITS = 64


class GDiffPredictor(ValuePredictor):
    """Global-stride predictor stacked on a backing predictor."""

    name = "gDiff"

    def __init__(
        self,
        backing: ValuePredictor | None = None,
        entries: int = 4096,
        history_depth: int = 8,
        confidence: ConfidencePolicy | None = None,
        tag_bits: int = FULL_TAG_BITS,
    ):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entry count must be a positive power of two")
        if history_depth < 1:
            raise ValueError("global history depth must be at least 1")
        self.backing = backing
        self.entries = entries
        self.history_depth = history_depth
        self.index_bits = entries.bit_length() - 1
        self.tag_bits = tag_bits
        self.confidence = confidence if confidence is not None else ConfidencePolicy()
        # Per-instruction entry: distance into the global history and the
        # stride relative to that producer.
        self._tags: list[int | None] = [None] * entries
        self._distance = [0] * entries
        self._stride = [0] * entries
        self._conf = [0] * entries
        # The global value history is a sequence of slots: one slot is
        # appended per dynamic result with the best speculative value
        # available, and repaired in place with the architectural value at
        # train time (hardware repairs its history at writeback).
        self._slots: dict[int, int] = {}
        self._next_slot = 0
        self._pending: dict[int, deque[int]] = {}  # key -> outstanding slots
        if backing is not None:
            self.name = f"gDiff+{backing.name}"

    def _history(self) -> tuple[int, ...]:
        """Newest-first window of the global value history."""
        newest = self._next_slot - 1
        return tuple(
            self._slots[slot]
            for slot in range(newest, max(-1, newest - self.history_depth), -1)
            if slot in self._slots
        )

    # -- ValuePredictor interface ----------------------------------------

    def lookup(self, key: int, ctx: PredictionContext) -> Prediction | None:
        backing_pred = self.backing.lookup(key, ctx) if self.backing else None
        idx = table_index(key, self.index_bits)
        history = self._history()
        own = None
        if self._tags[idx] == key and len(history) > self._distance[idx]:
            base = history[self._distance[idx]]
            own = (base + self._stride[idx]) & MASK64
        if own is not None:
            value = own
            confident = self.confidence.is_confident(self._conf[idx])
            source = self.name
        elif backing_pred is not None:
            value = backing_pred.value
            confident = backing_pred.confident
            source = backing_pred.source
        else:
            return None
        return Prediction(
            value=value,
            confident=confident,
            payload=(idx, own, backing_pred),
            source=source,
        )

    def speculate(self, key: int, prediction: Prediction | None) -> None:
        if prediction is None:
            return
        __, __, backing_pred = prediction.payload
        if self.backing is not None:
            self.backing.speculate(key, backing_pred)
        # Claim a history slot with the best speculative value available.
        slot = self._next_slot
        self._next_slot += 1
        self._slots[slot] = prediction.value
        self._pending.setdefault(key, deque()).append(slot)
        self._prune()

    def train(self, key: int, actual: int, prediction: Prediction | None) -> None:
        # The lookup already hashed this key; reuse its index when the
        # payload is available instead of rehashing.
        if prediction is not None:
            idx = prediction.payload[0]
        else:
            idx = table_index(key, self.index_bits)
        backing_pred = prediction.payload[2] if prediction is not None else None
        if self.backing is not None:
            self.backing.train(key, actual, backing_pred)
        # Repair this occurrence's history slot with the architectural
        # value; if no slot was claimed (lookup missed entirely), append.
        pending = self._pending.get(key)
        if pending:
            self._slots[pending.popleft()] = actual
            if not pending:
                del self._pending[key]
        else:
            self._slots[self._next_slot] = actual
            self._next_slot += 1
            self._prune()
        own = prediction.payload[1] if prediction is not None else None
        history_after = self._history()
        # The fit history excludes the slot just written (it precedes the
        # result being trained).
        fit_history = history_after[1:] if history_after else ()
        if self._tags[idx] == key:
            if own is not None and own == actual:
                self._conf[idx] = self.confidence.on_correct(self._conf[idx])
            else:
                self._conf[idx] = self.confidence.on_incorrect(self._conf[idx])
                self._fit(idx, actual, fit_history)
        else:
            self._tags[idx] = key
            self._conf[idx] = 0
            self._fit(idx, actual, fit_history)

    def _fit(self, idx: int, actual: int, history) -> None:
        """Pick the (distance, stride) pair with the smallest |stride|: the
        tightest apparent dataflow relation in the recent global history."""
        best = None
        for distance, base in enumerate(history):
            stride = (actual - base) & MASK64
            magnitude = min(stride, (1 << 64) - stride)
            if best is None or magnitude < best[2]:
                best = (distance, stride, magnitude)
        if best is not None:
            self._distance[idx] = best[0]
            self._stride[idx] = best[1]

    def _prune(self) -> None:
        floor = self._next_slot - 4 * self.history_depth
        if floor > 0 and len(self._slots) > 8 * self.history_depth:
            for slot in [s for s in self._slots if s < floor]:
                del self._slots[slot]

    def on_squash(self) -> None:
        if self.backing is not None:
            self.backing.on_squash()
        # In-flight occurrences are gone; their slots keep the speculative
        # values until overwritten out of the window (harmless), but the
        # pending repairs must be dropped.
        self._pending.clear()

    def storage_bits(self) -> int:
        distance_bits = max(1, (self.history_depth - 1).bit_length())
        per_entry = (
            self.tag_bits
            + distance_bits
            + _VALUE_BITS
            + self.confidence.storage_bits()
        )
        own = self.entries * per_entry + self.history_depth * _VALUE_BITS
        backing = self.backing.storage_bits() if self.backing else 0
        return own + backing
