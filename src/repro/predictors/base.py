"""Common interface for all value predictors.

The simulator drives predictors through four hooks mirroring the hardware
pipeline placement argued for in the paper (prediction in the in-order
front-end, training/validation in the in-order back-end):

* :meth:`ValuePredictor.lookup` — at fetch, with the current speculative
  branch/path history.
* :meth:`ValuePredictor.speculate` — right after lookup, lets predictors
  maintain *speculative* per-instruction state (last value for Stride, local
  value history for FCM) for in-flight occurrences.
* :meth:`ValuePredictor.train` — at commit, with the architectural result.
* :meth:`ValuePredictor.on_squash` — on any pipeline flush; speculative
  state is discarded.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.util.history import FoldedHistorySet

KILOBYTE = 1000  # Table 1 reports sizes with 1 KB = 1000 bytes.

_GHIST_MASK = (1 << 256) - 1  # default global-history window

#: Full tag width used by the paper's untagged-component predictors
#: (Table 1 lists "Full (51)").
FULL_TAG_BITS = 51


@dataclass(slots=True)
class PredictionContext:
    """Front-end context available at prediction time.

    Attributes:
        ghist: Global conditional-branch outcome history; bit 0 is the most
            recent outcome.
        path: Hashed path history (low-order PC bits of recent branches).
        ghist_length: Number of valid bits currently in ``ghist``.
        folds: Lazily-attached :class:`~repro.util.history.FoldedHistorySet`
            of incrementally-maintained folded history registers, shared by
            every TAGE-family predictor indexing off this context.  Kept
            out of equality/repr: it is a cache of ``(ghist, path)``, not
            state of its own.
    """

    ghist: int = 0
    path: int = 0
    ghist_length: int = 0
    folds: FoldedHistorySet | None = field(default=None, compare=False,
                                           repr=False)

    def push_branch(self, taken: bool, pc: int, max_bits: int = 256) -> None:
        """Record one conditional-branch outcome and its path contribution."""
        bit = 1 if taken else 0
        old_ghist = self.ghist
        ghist = ((old_ghist << 1) | bit) & (
            _GHIST_MASK if max_bits == 256 else (1 << max_bits) - 1
        )
        self.ghist = ghist
        path = ((self.path << 3) ^ (pc & 0xFFFF)) & 0xFFFFFFFF
        self.path = path
        if self.ghist_length < max_bits:
            self.ghist_length += 1
        folds = self.folds
        if folds is not None:
            folds.push(bit, old_ghist, ghist, path, max_bits)

    def fold_set(self) -> FoldedHistorySet:
        """The attached folded-register set, created on first use."""
        folds = self.folds
        if folds is None:
            folds = self.folds = FoldedHistorySet(self.ghist, self.path)
        return folds

    def snapshot(self) -> "PredictionContext":
        return PredictionContext(self.ghist, self.path, self.ghist_length)


@dataclass(slots=True)
class Prediction:
    """Outcome of one predictor lookup.

    Attributes:
        value: The predicted 64-bit value.
        confident: True when the confidence counter is saturated; only then
            does the pipeline consume the prediction.
        payload: Opaque predictor-specific record carried from lookup to
            train (table indices, provider component, pre-update history...).
        source: Name of the component that produced the value (useful for
            hybrid attribution and debugging).
    """

    value: int
    confident: bool
    payload: object = None
    source: str = ""


class ValuePredictor(abc.ABC):
    """Abstract value predictor."""

    name = "abstract"

    @abc.abstractmethod
    def lookup(self, key: int, ctx: PredictionContext) -> Prediction | None:
        """Predict the value for predictor-key *key*; None when no entry hits."""

    def speculate(self, key: int, prediction: Prediction | None) -> None:
        """Update speculative fetch-time state after a lookup (optional)."""

    @abc.abstractmethod
    def train(self, key: int, actual: int, prediction: Prediction | None) -> None:
        """Commit-time training with the architectural *actual* value.

        *prediction* is the record returned by the matching ``lookup`` call
        (or None if the lookup was never performed, e.g. during warm-up
        fast-forward).
        """

    def on_squash(self) -> None:
        """Discard speculative state after a pipeline flush (optional)."""

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Total storage the predictor occupies, in bits (for Table 1)."""

    def storage_kb(self) -> float:
        """Storage in kilobytes, using the paper's 1 KB = 1000 B convention."""
        return self.storage_bits() / 8 / KILOBYTE

    def describe(self) -> str:
        return self.name
