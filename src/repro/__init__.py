"""repro — reproduction of Perais & Seznec, "Practical Data Value
Speculation for Future High-end Processors", HPCA 2014.

The package implements the paper's contributions and every substrate its
evaluation depends on:

* :mod:`repro.core` — VTAGE, Forward Probabilistic Counters and the
  VTAGE + 2D-Stride hybrid (the paper's contributions);
* :mod:`repro.predictors` — LVP, Stride, 2-Delta Stride, Per-Path Stride,
  order-n FCM, D-FCM and the oracle baseline;
* :mod:`repro.branch` — TAGE, BTB, return address stack;
* :mod:`repro.memory` — caches, DRAM, stride prefetcher, store sets;
* :mod:`repro.pipeline` — the Table 2 out-of-order core model with
  squash-at-commit and selective-reissue VP recovery;
* :mod:`repro.workloads` — synthetic SPEC-substitute µop traces (Table 3);
* :mod:`repro.analysis` / :mod:`repro.experiments` — metrics, analytic
  cost models, and the per-figure/table reproduction drivers.

Quickstart::

    from repro import quick_run
    result = quick_run("h264ref", predictor="vtage-2dstride")
    print(result.summary_line())
"""

from repro.core import (
    ForwardProbabilisticCounters,
    HybridPredictor,
    VTAGEPredictor,
)
from repro.pipeline import CoreConfig, RecoveryMode, SimResult, simulate
from repro.workloads import build_trace

__version__ = "1.0.0"

__all__ = [
    "CoreConfig",
    "ForwardProbabilisticCounters",
    "HybridPredictor",
    "RecoveryMode",
    "SimResult",
    "VTAGEPredictor",
    "build_trace",
    "quick_run",
    "simulate",
    "__version__",
]


def quick_run(
    workload: str,
    predictor: str = "vtage",
    n_uops: int = 40_000,
    warmup: int = 10_000,
    fpc: bool = True,
    recovery: str = "squash",
) -> SimResult:
    """One-call simulation of a named workload with a named predictor.

    *predictor* accepts the names used throughout the experiments: "none",
    "oracle", "lvp", "2dstride", "fcm", "vtage", "vtage-2dstride",
    "fcm-2dstride".
    """
    from repro.experiments.runner import make_predictor, run_workload

    return run_workload(
        workload,
        make_predictor(predictor, fpc=fpc, recovery=recovery),
        n_uops=n_uops,
        warmup=warmup,
        recovery=recovery,
    )
