"""Experiment drivers: one callable per table/figure of the paper.

* :mod:`repro.experiments.runner` — predictor factories, suite runs,
  baseline caching;
* :mod:`repro.experiments.campaigns` — the declarative campaign spec
  behind each figure sweep (plus ``reproduce`` and ``scenario-sweep``);
* :mod:`repro.experiments.tables` — Tables 1-3;
* :mod:`repro.experiments.figures` — Figures 1, 3, 4, 5, 6, 7;
* :mod:`repro.experiments.reproduce` — the everything driver that
  regenerates EXPERIMENTS.md.
"""

from repro.experiments.campaigns import (
    CAMPAIGNS,
    CampaignDef,
    reproduce_campaign,
    scenario_sweep_campaign,
)
from repro.experiments.figures import (
    FigureResult,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from repro.experiments.runner import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    PREDICTOR_NAMES,
    baseline_result,
    make_confidence,
    make_predictor,
    run_suite,
    run_workload,
    speedups,
)
from repro.experiments.tables import table1, table1_rows, table2, table3

__all__ = [
    "CAMPAIGNS",
    "CampaignDef",
    "DEFAULT_MEASURE",
    "DEFAULT_WARMUP",
    "FigureResult",
    "PREDICTOR_NAMES",
    "baseline_result",
    "reproduce_campaign",
    "scenario_sweep_campaign",
    "figure1",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "make_confidence",
    "make_predictor",
    "run_suite",
    "run_workload",
    "speedups",
    "table1",
    "table1_rows",
    "table2",
    "table3",
]
