"""Reproductions of the paper's tables.

* Table 1 — predictor layout summary: we *recompute* the storage budgets
  from our predictor implementations and compare them with the figures
  printed in the paper (which use 1 KB = 1000 bytes).
* Table 2 — simulator configuration overview, rendered from the live
  :class:`~repro.pipeline.config.CoreConfig` defaults.
* Table 3 — the benchmark suite with reference inputs, rendered from the
  workload catalog.

Unlike the figure drivers, tables perform no simulation, so they are the
one experiment layer that does not submit jobs to the experiment engine
(:mod:`repro.engine`); they recompute storage budgets and render live
defaults directly.  See DESIGN.md's experiment index for the full
figure/table → driver → bench-target map.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.vtage import VTAGEPredictor
from repro.isa.uop import OpClass
from repro.pipeline.config import CoreConfig
from repro.predictors.fcm import FCMPredictor
from repro.predictors.lvp import LastValuePredictor
from repro.predictors.stride import TwoDeltaStridePredictor
from repro.workloads.catalog import WORKLOADS

#: Sizes printed in Table 1 of the paper, in KB (1 KB = 1000 B).
PAPER_TABLE1_KB = {
    "LVP": 120.8,
    "2D-Stride": 251.9,
    "o4-FCM (VHT)": 120.8,
    "o4-FCM (VPT)": 67.6,
    "VTAGE (base)": 68.6,
    "VTAGE (tagged)": 64.1,
}


@dataclass(frozen=True)
class Table1Row:
    predictor: str
    entries: str
    tag: str
    computed_kb: float
    paper_kb: float

    @property
    def relative_error(self) -> float:
        return abs(self.computed_kb - self.paper_kb) / self.paper_kb


def table1_rows() -> list[Table1Row]:
    """Recompute every Table 1 storage budget from the implementations."""
    lvp = LastValuePredictor(entries=8192)
    stride = TwoDeltaStridePredictor(entries=8192)
    fcm = FCMPredictor(entries=8192, order=4)
    vtage = VTAGEPredictor(base_entries=8192, tagged_entries=1024)

    fcm_vht_bits = 8192 * (4 * 16 + 51 + 3)
    fcm_vpt_bits = 8192 * (64 + 2)
    assert fcm.storage_bits() == fcm_vht_bits + fcm_vpt_bits

    vtage_base_bits = 8192 * (64 + 3)
    vtage_tagged_bits = vtage.storage_bits() - vtage_base_bits

    def kb(bits: int) -> float:
        return bits / 8 / 1000

    return [
        Table1Row("LVP", "8192", "Full (51)", kb(lvp.storage_bits()),
                  PAPER_TABLE1_KB["LVP"]),
        Table1Row("2D-Stride", "8192", "Full (51)", kb(stride.storage_bits()),
                  PAPER_TABLE1_KB["2D-Stride"]),
        Table1Row("o4-FCM (VHT)", "8192", "Full (51)", kb(fcm_vht_bits),
                  PAPER_TABLE1_KB["o4-FCM (VHT)"]),
        Table1Row("o4-FCM (VPT)", "8192", "-", kb(fcm_vpt_bits),
                  PAPER_TABLE1_KB["o4-FCM (VPT)"]),
        Table1Row("VTAGE (base)", "8192", "-", kb(vtage_base_bits),
                  PAPER_TABLE1_KB["VTAGE (base)"]),
        Table1Row("VTAGE (tagged)", "6 x 1024", "12 + rank", kb(vtage_tagged_bits),
                  PAPER_TABLE1_KB["VTAGE (tagged)"]),
    ]


def table1() -> str:
    rows = [
        (r.predictor, r.entries, r.tag, f"{r.computed_kb:.1f}",
         f"{r.paper_kb:.1f}", f"{r.relative_error:.1%}")
        for r in table1_rows()
    ]
    return format_table(
        ["Predictor", "#Entries", "Tag", "Computed KB", "Paper KB", "Error"],
        rows,
        title="Table 1: predictor layout summary (KB = 1000 bytes)",
    )


def table2(config: CoreConfig | None = None) -> str:
    """Render the simulated core configuration (Table 2)."""
    cfg = config if config is not None else CoreConfig()
    fu = cfg.fu
    rows = [
        ("Front end",
         f"{cfg.fetch_width}-wide fetch ({cfg.max_taken_per_cycle} taken/cycle), "
         f"{cfg.frontend_depth}-cycle front end, TAGE 1+12 components, "
         f"2-way 4K BTB, 32-entry RAS"),
        ("Execution",
         f"{cfg.rob_entries}-entry ROB, {cfg.iq_entries}-entry IQ, "
         f"{cfg.lq_entries}/{cfg.sq_entries} LQ/SQ, "
         f"{cfg.int_prf}/{cfg.fp_prf} INT/FP registers, "
         f"{cfg.issue_width}-issue, {cfg.commit_width}-wide retire, "
         f"1K-SSID/LFST store sets"),
        ("FUs",
         f"{fu[OpClass.INT_ALU].units} ALU({fu[OpClass.INT_ALU].latency}c), "
         f"{fu[OpClass.INT_MUL].units} MulDiv({fu[OpClass.INT_MUL].latency}c/"
         f"{fu[OpClass.INT_DIV].latency}c*), "
         f"{fu[OpClass.FP_ADD].units} FP({fu[OpClass.FP_ADD].latency}c), "
         f"{fu[OpClass.FP_MUL].units} FPMulDiv({fu[OpClass.FP_MUL].latency}c/"
         f"{fu[OpClass.FP_DIV].latency}c*), "
         f"{fu[OpClass.LOAD].units} Ld/Str  (* = not pipelined)"),
        ("Caches",
         "L1I 4-way 32KB (1c); L1D 4-way 32KB (2c, 64 MSHRs); "
         "unified L2 16-way 2MB (12c), stride prefetcher degree 8 distance 1; "
         "64B lines, LRU"),
        ("Memory",
         "single-channel DDR3-1600-like: 75-cycle row hit, 185-cycle cap, "
         "2 ranks x 8 banks, 8K row buffer"),
        ("Value prediction",
         "predict at fetch, "
         + ("unlimited" if cfg.vp_write_ports is None else str(cfg.vp_write_ports))
         + " PRF write ports for predictions, validation at commit, "
         f"recovery: {cfg.recovery.value}"),
    ]
    return format_table(["Component", "Configuration"], rows,
                        title="Table 2: simulator configuration overview")


def table3() -> str:
    """Render the benchmark suite (Table 3)."""
    rows = [
        (spec.spec_name, spec.suite, spec.spec_input[:58], spec.name)
        for spec in WORKLOADS
    ]
    n_int = sum(1 for spec in WORKLOADS if spec.suite == "INT")
    n_fp = len(WORKLOADS) - n_int
    return format_table(
        ["Program", "Suite", "Input", "Kernel"],
        rows,
        title=(
            f"Table 3: benchmarks used for evaluation "
            f"(INT: {n_int}, FP: {n_fp}, total: {len(WORKLOADS)})"
        ),
    )
