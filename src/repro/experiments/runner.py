"""Experiment plumbing: predictor construction, runs, sweeps and caching.

Every figure driver composes three things: a predictor configuration (by
name), a set of workloads, and the core's recovery mode.  All runs go
through the experiment engine (:mod:`repro.engine`): jobs are declarative
:class:`~repro.engine.job.SimJob` specs, executed serially or on a
``REPRO_JOBS``-sized process pool, and memoised in the engine's result
cache.  Baseline (no-VP) runs are therefore computed once per
(workload, slice, core-config) — the config is part of the content key, so
speedups under a custom :class:`CoreConfig` never compare against a
default-config baseline.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.confidence import (
    ConfidencePolicy,
    ForwardProbabilisticCounters,
    WideConfidence,
)
from repro.core.hybrid import HybridPredictor
from repro.core.vtage import VTAGEPredictor
from repro.engine.api import Engine, default_engine, run_jobs
from repro.engine.job import DEFAULT_MEASURE, DEFAULT_WARMUP, SimJob
from repro.pipeline.config import CoreConfig, RecoveryMode
from repro.pipeline.core import simulate
from repro.pipeline.result import SimResult
from repro.predictors.base import ValuePredictor
from repro.predictors.fcm import DifferentialFCMPredictor, FCMPredictor
from repro.predictors.gdiff import GDiffPredictor
from repro.predictors.lvp import LastValuePredictor
from repro.predictors.oracle import OraclePredictor
from repro.predictors.stride import (
    PerPathStridePredictor,
    StridePredictor,
    TwoDeltaStridePredictor,
)
from repro.workloads.catalog import ALL_WORKLOADS, build_trace

# DEFAULT_WARMUP / DEFAULT_MEASURE are defined canonically next to SimJob
# (repro.engine.job) and re-exported here for the many existing callers.

PREDICTOR_NAMES = (
    "none",
    "oracle",
    "lvp",
    "stride",
    "2dstride",
    "ps-stride",
    "fcm",
    "dfcm",
    "gdiff",
    "vtage",
    "vtage-2dstride",
    "fcm-2dstride",
)


def make_confidence(fpc: bool, recovery: str) -> ConfidencePolicy:
    """The paper's two confidence configurations (Section 5/7.1.1)."""
    if not fpc:
        return ConfidencePolicy(bits=3)
    if recovery == "reissue":
        return ForwardProbabilisticCounters.for_reissue()
    return ForwardProbabilisticCounters.for_squash()


def make_predictor(
    name: str,
    fpc: bool = True,
    recovery: str = "squash",
    entries: int = 8192,
) -> ValuePredictor | None:
    """Build a predictor configuration by its experiment name."""
    if name == "none":
        return None
    if name == "oracle":
        return OraclePredictor()
    if name == "lvp":
        return LastValuePredictor(entries=entries, confidence=make_confidence(fpc, recovery))
    if name == "stride":
        return StridePredictor(entries=entries, confidence=make_confidence(fpc, recovery))
    if name == "2dstride":
        return TwoDeltaStridePredictor(
            entries=entries, confidence=make_confidence(fpc, recovery)
        )
    if name == "ps-stride":
        return PerPathStridePredictor(
            entries=entries, confidence=make_confidence(fpc, recovery)
        )
    if name == "fcm":
        return FCMPredictor(entries=entries, confidence=make_confidence(fpc, recovery))
    if name == "dfcm":
        return DifferentialFCMPredictor(
            entries=entries, confidence=make_confidence(fpc, recovery)
        )
    if name == "gdiff":
        # gDiff needs a backing predictor to fill its speculative global
        # value history (Section 2); 2D-Stride is the paper's cheapest
        # competitive choice.
        return GDiffPredictor(
            backing=TwoDeltaStridePredictor(
                entries=entries, confidence=make_confidence(fpc, recovery)
            ),
            entries=entries // 2,
            confidence=make_confidence(fpc, recovery),
        )
    if name == "vtage":
        return VTAGEPredictor(
            base_entries=entries,
            tagged_entries=max(64, entries // 8),
            confidence=make_confidence(fpc, recovery),
        )
    if name == "vtage-2dstride":
        return HybridPredictor(
            VTAGEPredictor(
                base_entries=entries,
                tagged_entries=max(64, entries // 8),
                confidence=make_confidence(fpc, recovery),
            ),
            TwoDeltaStridePredictor(
                entries=entries, confidence=make_confidence(fpc, recovery)
            ),
            name="VTAGE-2DStr",
        )
    if name == "fcm-2dstride":
        return HybridPredictor(
            FCMPredictor(entries=entries, confidence=make_confidence(fpc, recovery)),
            TwoDeltaStridePredictor(
                entries=entries, confidence=make_confidence(fpc, recovery)
            ),
            name="o4FCM-2DStr",
        )
    raise ValueError(f"unknown predictor {name!r}; pick from {PREDICTOR_NAMES}")


def run_workload(
    workload: str,
    predictor: ValuePredictor | str | None,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    recovery: str = "squash",
    config: CoreConfig | None = None,
    fpc: bool = True,
    entries: int = 8192,
    engine: Engine | None = None,
) -> SimResult:
    """Simulate one workload on a fresh core with *predictor*.

    *predictor* may be a configuration name (or ``None`` for the no-VP
    baseline), in which case the run is a declarative job routed through
    the engine — cached, and parallelisable in batches.  Passing a live
    :class:`ValuePredictor` instance is the escape hatch for custom
    predictor objects; those runs bypass the engine since an arbitrary
    instance has no content key.
    """
    if predictor is None or isinstance(predictor, str):
        job = SimJob.make(
            workload, predictor or "none", fpc=fpc, recovery=recovery,
            entries=entries, n_uops=n_uops, warmup=warmup, config=config,
        )
        return (engine or default_engine()).run_job(job)
    trace = build_trace(workload, warmup + n_uops)
    if config is None:
        config = CoreConfig(
            recovery=RecoveryMode.SELECTIVE_REISSUE
            if recovery == "reissue"
            else RecoveryMode.SQUASH_COMMIT
        )
    return simulate(trace, predictor, config=config, warmup=warmup, workload=workload)


def baseline_job(
    workload: str,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    config: CoreConfig | None = None,
) -> SimJob:
    """The no-VP baseline job every speedup is measured against.

    The job's content key includes the full core configuration, so a
    custom-config run gets a matching custom-config baseline.  Recovery is
    normalised to squash-at-commit: with no predictor the VP recovery
    mechanism never fires, and normalising lets both recovery sweeps share
    one cached baseline per config.
    """
    if config is not None and config.recovery is not RecoveryMode.SQUASH_COMMIT:
        config = replace(config, recovery=RecoveryMode.SQUASH_COMMIT)
    return SimJob.make(workload, "none", recovery="squash",
                       n_uops=n_uops, warmup=warmup, config=config)


def baseline_result(
    workload: str,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    config: CoreConfig | None = None,
    engine: Engine | None = None,
) -> SimResult:
    job = baseline_job(workload, n_uops=n_uops, warmup=warmup, config=config)
    return (engine or default_engine()).run_job(job)


def clear_baseline_cache() -> None:
    """Drop memoised results (baselines included) from the default engine."""
    default_engine().cache.clear(disk=False)


def suite_jobs(
    predictor_name: str,
    workloads: tuple[str, ...],
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    fpc: bool = True,
    recovery: str = "squash",
) -> list[SimJob]:
    """The job list :func:`run_suite` executes, one job per workload.

    Exposed so figure drivers can pre-batch several suites (plus the
    baselines) in a single ``run_jobs`` submission with specs guaranteed
    identical to the per-suite lookups that follow.
    """
    return [
        SimJob.make(workload, predictor_name, fpc=fpc, recovery=recovery,
                    n_uops=n_uops, warmup=warmup)
        for workload in workloads
    ]


def run_suite(
    predictor_name: str,
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    fpc: bool = True,
    recovery: str = "squash",
    engine: Engine | None = None,
) -> dict[str, SimResult]:
    """Run one predictor configuration over a set of workloads (one batch)."""
    jobs = suite_jobs(predictor_name, workloads, n_uops, warmup,
                      fpc=fpc, recovery=recovery)
    results = run_jobs(jobs, engine=engine)
    return dict(zip(workloads, results))


def speedups(
    results: dict[str, SimResult],
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    config: CoreConfig | None = None,
    engine: Engine | None = None,
) -> dict[str, float]:
    """Speedup of each run over the engine-cached no-VP baseline.

    Baselines for all workloads are submitted as one batch so a pool
    executor computes them in parallel on a cold cache.
    """
    jobs = [baseline_job(w, n_uops, warmup, config=config) for w in results]
    baselines = run_jobs(jobs, engine=engine)
    return {
        workload: result.speedup_over(base)
        for (workload, result), base in zip(results.items(), baselines)
    }
