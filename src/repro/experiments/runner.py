"""Experiment plumbing: predictor construction, runs, sweeps and caching.

Every figure driver composes three things: a predictor configuration (by
name), a set of workloads, and the core's recovery mode.  Baseline (no-VP)
runs are cached per (workload, trace-length) pair since every speedup in
the paper is relative to the same baseline core.
"""

from __future__ import annotations

from repro.core.confidence import (
    ConfidencePolicy,
    ForwardProbabilisticCounters,
    WideConfidence,
)
from repro.core.hybrid import HybridPredictor
from repro.core.vtage import VTAGEPredictor
from repro.pipeline.config import CoreConfig, RecoveryMode
from repro.pipeline.core import simulate
from repro.pipeline.result import SimResult
from repro.predictors.base import ValuePredictor
from repro.predictors.fcm import DifferentialFCMPredictor, FCMPredictor
from repro.predictors.lvp import LastValuePredictor
from repro.predictors.oracle import OraclePredictor
from repro.predictors.stride import (
    PerPathStridePredictor,
    StridePredictor,
    TwoDeltaStridePredictor,
)
from repro.workloads.catalog import ALL_WORKLOADS, build_trace

#: Default slice sizes.  The paper warms 50 M µops and measures 50 M; a
#: pure-Python cycle model scales that down (DESIGN.md, "Scaling defaults").
DEFAULT_WARMUP = 12_000
DEFAULT_MEASURE = 36_000

PREDICTOR_NAMES = (
    "none",
    "oracle",
    "lvp",
    "stride",
    "2dstride",
    "ps-stride",
    "fcm",
    "dfcm",
    "vtage",
    "vtage-2dstride",
    "fcm-2dstride",
)


def make_confidence(fpc: bool, recovery: str) -> ConfidencePolicy:
    """The paper's two confidence configurations (Section 5/7.1.1)."""
    if not fpc:
        return ConfidencePolicy(bits=3)
    if recovery == "reissue":
        return ForwardProbabilisticCounters.for_reissue()
    return ForwardProbabilisticCounters.for_squash()


def make_predictor(
    name: str,
    fpc: bool = True,
    recovery: str = "squash",
    entries: int = 8192,
) -> ValuePredictor | None:
    """Build a predictor configuration by its experiment name."""
    if name == "none":
        return None
    if name == "oracle":
        return OraclePredictor()
    if name == "lvp":
        return LastValuePredictor(entries=entries, confidence=make_confidence(fpc, recovery))
    if name == "stride":
        return StridePredictor(entries=entries, confidence=make_confidence(fpc, recovery))
    if name == "2dstride":
        return TwoDeltaStridePredictor(
            entries=entries, confidence=make_confidence(fpc, recovery)
        )
    if name == "ps-stride":
        return PerPathStridePredictor(
            entries=entries, confidence=make_confidence(fpc, recovery)
        )
    if name == "fcm":
        return FCMPredictor(entries=entries, confidence=make_confidence(fpc, recovery))
    if name == "dfcm":
        return DifferentialFCMPredictor(
            entries=entries, confidence=make_confidence(fpc, recovery)
        )
    if name == "vtage":
        return VTAGEPredictor(
            base_entries=entries,
            tagged_entries=max(64, entries // 8),
            confidence=make_confidence(fpc, recovery),
        )
    if name == "vtage-2dstride":
        return HybridPredictor(
            VTAGEPredictor(
                base_entries=entries,
                tagged_entries=max(64, entries // 8),
                confidence=make_confidence(fpc, recovery),
            ),
            TwoDeltaStridePredictor(
                entries=entries, confidence=make_confidence(fpc, recovery)
            ),
            name="VTAGE-2DStr",
        )
    if name == "fcm-2dstride":
        return HybridPredictor(
            FCMPredictor(entries=entries, confidence=make_confidence(fpc, recovery)),
            TwoDeltaStridePredictor(
                entries=entries, confidence=make_confidence(fpc, recovery)
            ),
            name="o4FCM-2DStr",
        )
    raise ValueError(f"unknown predictor {name!r}; pick from {PREDICTOR_NAMES}")


def run_workload(
    workload: str,
    predictor: ValuePredictor | None,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    recovery: str = "squash",
    config: CoreConfig | None = None,
) -> SimResult:
    """Simulate one workload on a fresh core with *predictor*."""
    trace = build_trace(workload, warmup + n_uops)
    if config is None:
        config = CoreConfig(
            recovery=RecoveryMode.SELECTIVE_REISSUE
            if recovery == "reissue"
            else RecoveryMode.SQUASH_COMMIT
        )
    return simulate(trace, predictor, config=config, warmup=warmup, workload=workload)


# Baselines depend only on trace length (no VP, recovery irrelevant).
_BASELINE_CACHE: dict[tuple[str, int, int], SimResult] = {}


def baseline_result(
    workload: str, n_uops: int = DEFAULT_MEASURE, warmup: int = DEFAULT_WARMUP
) -> SimResult:
    key = (workload, n_uops, warmup)
    if key not in _BASELINE_CACHE:
        _BASELINE_CACHE[key] = run_workload(workload, None, n_uops=n_uops, warmup=warmup)
    return _BASELINE_CACHE[key]


def clear_baseline_cache() -> None:
    _BASELINE_CACHE.clear()


def run_suite(
    predictor_name: str,
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    fpc: bool = True,
    recovery: str = "squash",
) -> dict[str, SimResult]:
    """Run one predictor configuration over a set of workloads."""
    results = {}
    for workload in workloads:
        predictor = make_predictor(predictor_name, fpc=fpc, recovery=recovery)
        results[workload] = run_workload(
            workload, predictor, n_uops=n_uops, warmup=warmup, recovery=recovery
        )
    return results


def speedups(
    results: dict[str, SimResult],
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> dict[str, float]:
    """Speedup of each run over the cached no-VP baseline."""
    return {
        workload: result.speedup_over(baseline_result(workload, n_uops, warmup))
        for workload, result in results.items()
    }
