"""Named campaign specs: every paper sweep as a declarative value.

Each builder returns the :class:`~repro.engine.campaign.CampaignSpec` for
one evaluation grid — the predictor/confidence/recovery/workload product a
figure needs *plus* the no-VP baseline block its speedups divide by.  The
figure renderers in :mod:`repro.experiments.figures` execute these specs
and aggregate through :class:`~repro.engine.campaign.CampaignResult`;
``repro campaign run/status/resume`` executes them standalone with a
journal, so a multi-hour sweep survives kills and resumes bit-identically.

``CAMPAIGNS`` is the registry the CLI exposes.  ``reproduce`` is the union
of every figure grid — running it once (checkpointed) makes the whole of
``repro.experiments.reproduce`` a cache replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.report import format_table, geometric_mean
from repro.engine.campaign import AxisBlock, CampaignResult, CampaignSpec
from repro.engine.job import DEFAULT_MEASURE, DEFAULT_WARMUP
from repro.workloads.catalog import ALL_WORKLOADS
from repro.workloads.scenarios import scenario_axis

#: Single-scheme predictors of Figures 4/5 (paper Section 8.2).
SINGLE_SCHEMES = ("lvp", "2dstride", "fcm", "vtage")

#: Hybrid comparison set of Figure 7 (paper Section 8.3).
HYBRID_SCHEMES = ("2dstride", "fcm", "vtage", "fcm-2dstride", "vtage-2dstride")


def _sizes(n_uops: int, warmup: int) -> dict:
    return {"n_uops": n_uops, "warmup": warmup}


def baseline_block(workloads: tuple[str, ...], n_uops: int, warmup: int) -> AxisBlock:
    """The no-VP baselines every figure's speedups divide by.

    Identical by construction to ``runner.baseline_job`` specs (predictor
    ``none``, recovery normalised to squash), so campaign journals, the
    result cache and the legacy per-job API all share one entry per
    (workload, slice).
    """
    return AxisBlock.make(
        {"workload": list(workloads)},
        base={"predictor": "none", "recovery": "squash", **_sizes(n_uops, warmup)},
    )


def figure3_campaign(
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> CampaignSpec:
    """Oracle upper bound (Fig. 3): perfect predictor vs baseline."""
    return CampaignSpec.union(
        "fig3",
        AxisBlock.make(
            {"workload": list(workloads)},
            base={"predictor": "oracle", **_sizes(n_uops, warmup)},
        ),
        baseline_block(workloads, n_uops, warmup),
        meta=_meta(workloads, n_uops, warmup),
    )


def _single_scheme_campaign(
    name: str,
    recovery: str,
    workloads: tuple[str, ...],
    n_uops: int,
    warmup: int,
) -> CampaignSpec:
    return CampaignSpec.union(
        name,
        AxisBlock.make(
            {
                "fpc": [False, True],
                "predictor": list(SINGLE_SCHEMES),
                "workload": list(workloads),
            },
            base={"recovery": recovery, **_sizes(n_uops, warmup)},
        ),
        baseline_block(workloads, n_uops, warmup),
        meta=_meta(workloads, n_uops, warmup),
    )


def figure4_campaign(
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> CampaignSpec:
    """Squash-at-commit grid (Fig. 4): schemes × {3-bit, FPC} × workloads."""
    return _single_scheme_campaign("fig4", "squash", workloads, n_uops, warmup)


def figure5_campaign(
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> CampaignSpec:
    """Selective-reissue grid (Fig. 5): same axes, reissue recovery."""
    return _single_scheme_campaign("fig5", "reissue", workloads, n_uops, warmup)


def figure6_campaign(
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> CampaignSpec:
    """VTAGE ± FPC (Fig. 6)."""
    return CampaignSpec.union(
        "fig6",
        AxisBlock.make(
            {"fpc": [False, True], "workload": list(workloads)},
            base={"predictor": "vtage", "recovery": "squash",
                  **_sizes(n_uops, warmup)},
        ),
        baseline_block(workloads, n_uops, warmup),
        meta=_meta(workloads, n_uops, warmup),
    )


def figure7_campaign(
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> CampaignSpec:
    """Hybrids vs components (Fig. 7), FPC + squash."""
    return CampaignSpec.union(
        "fig7",
        AxisBlock.make(
            {"predictor": list(HYBRID_SCHEMES), "workload": list(workloads)},
            base={"recovery": "squash", **_sizes(n_uops, warmup)},
        ),
        baseline_block(workloads, n_uops, warmup),
        meta=_meta(workloads, n_uops, warmup),
    )


def reproduce_campaign(
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
) -> CampaignSpec:
    """Every simulation the full reproduction needs, as one sweep.

    The union of the Figure 3–7 grids (shared cells — baselines, the
    squash/FPC single-scheme row — dedupe by content key).  Checkpoint
    this one: it is the multi-hour run.
    """
    parts = [
        figure3_campaign(workloads, n_uops, warmup),
        figure4_campaign(workloads, n_uops, warmup),
        figure5_campaign(workloads, n_uops, warmup),
        figure6_campaign(workloads, n_uops, warmup),
        figure7_campaign(workloads, n_uops, warmup),
    ]
    return CampaignSpec.union("reproduce", *parts,
                              meta=_meta(workloads, n_uops, warmup))


def scenario_sweep_campaign(
    workloads: tuple[str, ...] | None = None,
    n_uops: int = 12_000,
    warmup: int = 6_000,
) -> CampaignSpec:
    """Sweep *workload* axes: predictor families across scenario knobs.

    The default grid crosses pointer-chase depth × branch entropy × value
    locality (12 scenario workloads) with four predictor families, plus
    baselines — the design-space exploration the ROADMAP's "as many
    scenarios as you can imagine" asks for.  Pass explicit workloads
    (catalog or scenario names) to resweep a subset.
    """
    if workloads is None:
        workloads = tuple(scenario_axis(chase=(1, 4, 8), entropy=(5, 50),
                                        locality=(90, 40)))
    predictors = ["lvp", "2dstride", "vtage", "vtage-2dstride"]
    return CampaignSpec.union(
        "scenario-sweep",
        AxisBlock.make(
            {"predictor": predictors, "workload": list(workloads)},
            base={"recovery": "squash", **_sizes(n_uops, warmup)},
        ),
        baseline_block(workloads, n_uops, warmup),
        meta=_meta(workloads, n_uops, warmup,
                   predictors=tuple(predictors)),
    )


def _meta(workloads, n_uops, warmup, **extra) -> dict:
    return {"workloads": tuple(workloads), "n_uops": n_uops,
            "warmup": warmup, **extra}


# ---------------------------------------------------------------------------
# Renderers: CampaignResult -> text (the aggregation hooks in action).
# ---------------------------------------------------------------------------


def render_speedup_matrix(
    result: CampaignResult,
    predictors: tuple[str, ...],
    title: str,
    **fixed,
) -> str:
    """Workload × predictor speedup table straight off a campaign result."""
    meta = result.spec.meta_dict()
    workloads = meta["workloads"]
    columns = {
        p: result.speedup_by_workload(predictor=p, **fixed) for p in predictors
    }
    rows = [
        [w] + [f"{columns[p][w]:.3f}" for p in predictors] for w in workloads
    ]
    rows.append(
        ["gmean"]
        + [f"{geometric_mean(columns[p].values()):.3f}" for p in predictors]
    )
    return format_table(["benchmark"] + list(predictors), rows, title=title)


def render_scenario_sweep(result: CampaignResult) -> str:
    predictors = result.spec.meta_dict().get(
        "predictors", ("lvp", "2dstride", "vtage", "vtage-2dstride"))
    return render_speedup_matrix(
        result, tuple(predictors),
        "Scenario sweep: speedup over no-VP baseline "
        "(FPC, squash at commit; scenario-c<chase>-e<entropy>-l<locality>)",
    )


def _render_figure(which: str):
    def render(result: CampaignResult) -> str:
        # Imported lazily — figures imports this module for the specs.
        from repro.experiments import figures

        meta = result.spec.meta_dict()
        fig = getattr(figures, f"figure{which}")(
            workloads=tuple(meta["workloads"]), n_uops=meta["n_uops"],
            warmup=meta["warmup"],
        )
        return fig.text
    return render


@dataclass(frozen=True)
class CampaignDef:
    """Registry entry: how to build (and optionally render) a campaign."""

    name: str
    help: str
    build: Callable[..., CampaignSpec]
    render: Callable[[CampaignResult], str] | None = None


CAMPAIGNS: dict[str, CampaignDef] = {
    d.name: d
    for d in (
        CampaignDef("fig3", "oracle speedup upper bound (Figure 3)",
                    figure3_campaign, _render_figure("3")),
        CampaignDef("fig4", "squash-at-commit predictor grid (Figure 4)",
                    figure4_campaign, _render_figure("4")),
        CampaignDef("fig5", "selective-reissue predictor grid (Figure 5)",
                    figure5_campaign, _render_figure("5")),
        CampaignDef("fig6", "VTAGE with/without FPC (Figure 6)",
                    figure6_campaign, _render_figure("6")),
        CampaignDef("fig7", "hybrid predictors (Figure 7)",
                    figure7_campaign, _render_figure("7")),
        CampaignDef("reproduce", "union of every figure grid (the full run)",
                    reproduce_campaign, None),
        CampaignDef("scenario-sweep",
                    "predictors × scenario workload knobs (chase/entropy/locality)",
                    scenario_sweep_campaign, render_scenario_sweep),
    )
}
