"""Full reproduction driver: regenerate every table and figure.

``python -m repro.experiments.reproduce [n_uops] [warmup] [--jobs N]`` runs
the whole evaluation and writes EXPERIMENTS.md-style output to stdout (the
repository checks in the result as EXPERIMENTS.md).

The whole evaluation is *one campaign*: the union of every figure grid
(:func:`repro.experiments.campaigns.reproduce_campaign`) executes up
front through :func:`~repro.engine.campaign.run_campaign`, after which
the figure renderers are pure cache replays.  With ``--checkpoint-dir``
every completed simulation is journaled as it finishes, so a killed
multi-hour run resumes where it stopped — re-running the same command
produces byte-identical output either way.

Every simulation goes through the experiment engine: ``--jobs``/``-j`` (or
``REPRO_JOBS``) fans the campaign out over a process pool, and
``REPRO_CACHE_DIR`` persists results so a re-run only simulates what
changed.  Output is byte-identical regardless of any of these knobs.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.analysis.cost_model import (
    PAPER_SCENARIOS,
    recovery_benefit_per_kilo_instruction,
    vp_register_file_overheads,
)
from repro.analysis.report import format_table, geometric_mean
from repro.engine.api import configure_default_engine, set_default_engine
from repro.engine.campaign import (
    BACKENDS,
    engine_for_backend,
    progress_printer,
    run_campaign,
)
from repro.engine.checkpoint import default_checkpoint_dir
from repro.engine.client import ServiceError
from repro.experiments import figures, tables
from repro.experiments.campaigns import reproduce_campaign
from repro.experiments.runner import DEFAULT_MEASURE, DEFAULT_WARMUP


def section31_model() -> str:
    """The Section 3.1.1/3.1.2 worked example, recomputed."""
    high_coverage = [
        (s.name, f"{recovery_benefit_per_kilo_instruction(s, 0.40, 0.95):+.0f}")
        for s in PAPER_SCENARIOS
    ]
    high_accuracy = [
        (s.name, f"{recovery_benefit_per_kilo_instruction(s, 0.30, 0.9975):+.0f}")
        for s in PAPER_SCENARIOS
    ]
    lines = [
        format_table(
            ["Recovery", "cycles/Kinsn"],
            high_coverage,
            title="Sec. 3.1.1 model: coverage 40%, accuracy 95% "
                  "(paper: +64 / -86 / -286)",
        ),
        "",
        format_table(
            ["Recovery", "cycles/Kinsn"],
            high_accuracy,
            title="Sec. 3.1.2 model: coverage 30%, accuracy 99.75% "
                  "(paper: +88 / +83 / +76)",
        ),
    ]
    return "\n".join(lines)


def section4_model() -> str:
    """The Section 4 register-file overhead design points."""
    data = vp_register_file_overheads(issue_width=8)
    rows = [
        ("no VP (R=2W)", f"{data['baseline_area_units']:.0f} (12W^2)", "1.00x"),
        ("naive VP (2W write ports)", f"{data['naive_area_units']:.0f} (24W^2)",
         f"{data['naive_vp']:.2f}x"),
        ("buffered VP (W/2 extra ports)",
         f"{data['buffered_area_units']:.0f} (17.5W^2)",
         f"{data['buffered_vp']:.2f}x"),
    ]
    return format_table(
        ["Register file", "area (units)", "vs baseline"],
        rows,
        title="Sec. 4 register file area model, W = 8 "
              "(paper: naive doubles area; W/2 ports save half the overhead)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.reproduce",
        description="Regenerate every table and figure of the reproduction.",
    )
    parser.add_argument("n_uops", nargs="?", type=int, default=DEFAULT_MEASURE)
    parser.add_argument("warmup", nargs="?", type=int, default=DEFAULT_WARMUP)
    parser.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker processes for simulation batches "
             "(default: $REPRO_JOBS or 1; output is identical either way)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent result-cache directory (default: $REPRO_CACHE_DIR "
             "or memory-only)",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="journal every completed simulation under DIR so a killed run "
             "resumes where it stopped (the journal is DIR/reproduce.jsonl; "
             "default: $REPRO_CHECKPOINT_DIR or no journal)",
    )
    parser.add_argument(
        "--backend", default="local", choices=BACKENDS,
        help="where simulations execute: this process ('local') or a "
             "running `repro serve` daemon ('service'); output is "
             "byte-identical either way",
    )
    parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="service socket for --backend service "
             "(default: $REPRO_SERVICE_SOCKET or ./repro-service.sock)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    n_uops, warmup = args.n_uops, args.warmup
    if args.backend == "local":
        engine = configure_default_engine(jobs=args.jobs,
                                          cache_dir=args.cache_dir)
    else:
        # Service backend: batches go to the daemon, and the service
        # engine *becomes* the default so the figure renderers below
        # replay from its (journal-warmed) local cache.
        if args.jobs is not None or args.cache_dir is not None:
            print("note: --jobs/--cache-dir apply to the daemon, not this "
                  "client; they are ignored with --backend service",
                  file=sys.stderr)
        try:
            engine = set_default_engine(
                engine_for_backend(args.backend, args.socket))
        except ServiceError as exc:
            raise SystemExit(f"error: {exc}") from None
    t0 = time.time()

    # Execute the whole evaluation as one (optionally journaled) campaign;
    # the per-figure rendering below then replays it from the result cache.
    spec = reproduce_campaign(n_uops=n_uops, warmup=warmup)
    journal = None
    checkpoint_dir = (Path(args.checkpoint_dir) if args.checkpoint_dir
                      else default_checkpoint_dir())
    if checkpoint_dir is not None:
        journal = checkpoint_dir / f"{spec.name}.jsonl"

    try:
        campaign = run_campaign(spec, engine=engine, journal=journal,
                                progress=progress_printer(spec.name))
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(file=sys.stderr)
    print(f"[{spec.name}] {campaign.stats['total']} jobs: "
          f"{campaign.stats['from_journal']} from journal, "
          f"{campaign.stats['executed']} executed", file=sys.stderr)

    print("# EXPERIMENTS — paper vs. reproduction")
    print()
    print(f"Slice: {warmup} warm-up + {n_uops} measured µops per benchmark "
          f"(paper: 50M + 50M on gem5; see DESIGN.md scaling notes).")
    print(f"<!-- engine: {engine.describe()} -->", file=sys.stderr)
    print()

    print("## Tables")
    print()
    for block in (tables.table1(), tables.table2(), tables.table3()):
        print("```"); print(block); print("```"); print()

    print("## Analytical models (Sections 3.1 and 4)")
    print()
    print("```"); print(section31_model()); print("```"); print()
    print("```"); print(section4_model()); print("```"); print()

    print("## Figures")
    print()
    for fig_fn in (figures.figure1, figures.figure3, figures.figure4,
                   figures.figure5, figures.figure6, figures.figure7):
        if fig_fn is figures.figure1:
            fig = fig_fn()
        else:
            fig = fig_fn(n_uops=n_uops, warmup=warmup)
        print(f"### {fig.figure_id}: {fig.title}")
        print()
        print("```"); print(fig.text); print("```"); print()
        sys.stdout.flush()

    print(FINDINGS)
    elapsed = time.time() - t0
    print(f"_Total reproduction wall time: {elapsed/60:.1f} minutes._")
    return 0


FINDINGS = """\
## Paper vs. measured: findings

Checked shapes (paper claim -> our measurement):

1. **Fig. 3 (oracle headroom).** Paper: up to 3.3x. Ours: up to ~3.3x (mcf),
   with lbm/art/parser/crafty well above 1.5x and milc/namd near 1.1 —
   the same "big headroom on dependence/memory-limited codes, little on
   throughput-bound codes" distribution.
2. **Fig. 4a (plain 3-bit counters + squash-at-commit).** Paper: "fairly
   important slowdowns can be observed" despite 94-100% accuracy.  Ours:
   slowdowns on the almost-stable-value benchmarks (vortex ~0.77-0.83,
   applu/2D-str 0.50, bzip2 0.75, gamess 0.90, crafty 0.91-0.95, gobmk,
   sjeng), while high-accuracy benchmarks keep their gains.
3. **Fig. 4b (FPC + squash-at-commit).** Paper: accuracy > 0.997
   everywhere, no benchmark slowed except milc (< 1%).  Ours: accuracy
   > 0.99 on every covered benchmark, worst case milc 0.985 (-1.5%), all
   other benchmarks >= 0.99x, gains preserved (up to 1.48x).
4. **Fig. 5 vs Fig. 4 (recovery indifference under FPC).** Paper: "the
   recovery mechanism has little impact since the speedups are very
   similar".  Ours: squash vs idealized reissue within a few percent on
   stride-covered benchmarks (wupwise 1.48 vs 1.40); reissue additionally
   rescues the *baseline* counters (its panel shows no slowdowns), exactly
   the paper's Section 8.2.4 observation.  Benchmarks with residual
   confident mispredictions (hmmer) gain more under reissue.
5. **Fig. 6 (VTAGE +- FPC).** FPC trades coverage for accuracy; the largest
   coverage losses land on the lowest-baseline-accuracy benchmarks
   (crafty, vortex, gobmk, sjeng, gamess) — the paper's exact list.
6. **Fig. 7 (hybrids).** Hybrid speedup >= max(component) on every
   benchmark (within noise); hybrid coverage exceeds either component
   (computational and context-based predictors cover different µops);
   VTAGE+2D-Stride posts the best single-benchmark result (1.34x on
   h264ref vs 1.27x for o4-FCM+2D-Stride).
7. **Per-benchmark predictor affinity (Sec. 8.2.3).** wupwise and bzip2
   favour 2D-Stride; gcc and applu favour the context-based predictors
   (gcc: VTAGE 1.17 vs others ~1.06); h264ref pairs small coverage with a
   large gain; namd has ~90+% stride coverage and only marginal speedup.

Known deviations (documented, with causes):

* **Magnitudes are compressed.** Peak speedup 1.48x (wupwise) vs the
  paper's 1.65x (h264); ~6/19 benchmarks gain >= 5% vs the paper's 9/19.
  Causes: 3-4 orders-of-magnitude shorter slices (32K vs 50M µops) mean
  FPC counters (expected 129 consecutive corrects to saturate) spend a
  visible fraction of the run warming, and synthetic kernels concentrate
  each benchmark's signature behaviour rather than the full mix.
* **applu favours o4-FCM over VTAGE** in our version (1.42 vs 1.10): the
  synthetic boundary pattern is a short clean cycle that FCM's local value
  history also captures perfectly.  The paper's direction (VTAGE > FCM on
  applu) relies on value noise that breaks local-history matching; our gcc
  kernel reproduces that separation instead.
* **o4-FCM shows Fig. 4a slowdowns more strongly** (art 0.50, h264 0.54
  with 3-bit counters) because idealised back-to-back FCM chains
  speculative histories; the paper notes the same fragility ("o4-FCM
  suffers mostly from a lack of coverage... needing more time to learn").
* **mcf/lbm/parser real-predictor gains are ~0** here; the paper shows a
  few percent.  Their gains come from broad low-grade value locality that
  a 32K-µop synthetic slice underrepresents; the oracle headroom (3.3x,
  3.6x, 3.1x) confirms the substrate exposes the latency that a better
  predictor could reclaim.
"""


if __name__ == "__main__":
    raise SystemExit(main())
