"""Reproductions of the paper's figures.

Every function returns a :class:`FigureResult`: the raw per-benchmark
series plus a rendered text version (tables + ASCII bar charts).  The
drivers accept slice sizes so benchmarks can run scaled-down versions while
EXPERIMENTS.md records fuller runs.

Each simulation-backed figure is *one campaign*: its job grid comes from
the matching spec in :mod:`repro.experiments.campaigns`, executes through
:func:`~repro.engine.campaign.run_campaign` (so a pool executor sees the
whole grid at once, and an optional ``journal`` makes the figure
resumable after a kill), and the series below are read off the returned
:class:`~repro.engine.campaign.CampaignResult`'s aggregation hooks.

Paper-figure inventory (Section 8):

* Figure 1  — back-to-back prediction critical paths (Section 3.2);
* Figure 3  — speedup upper bound with a perfect predictor;
* Figure 4  — squash-at-commit speedups, baseline 3-bit counters vs FPC;
* Figure 5  — same with idealistic selective reissue;
* Figure 6  — VTAGE speedup and coverage with and without FPC;
* Figure 7  — hybrid predictors (VTAGE+2D-Stride vs o4-FCM+2D-Stride).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import ascii_bar_chart, format_table, geometric_mean
from repro.engine.campaign import run_campaign
from repro.experiments.campaigns import (
    HYBRID_SCHEMES,
    SINGLE_SCHEMES,
    figure3_campaign,
    figure4_campaign,
    figure5_campaign,
    figure6_campaign,
    figure7_campaign,
)
from repro.experiments.runner import DEFAULT_MEASURE, DEFAULT_WARMUP
from repro.workloads.catalog import ALL_WORKLOADS, build_trace


@dataclass
class FigureResult:
    """One reproduced figure: raw series + rendered text."""

    figure_id: str
    title: str
    series: dict = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


# ---------------------------------------------------------------------------
# Figure 1 / Section 3.2: back-to-back occurrences and critical paths.
# ---------------------------------------------------------------------------

#: Critical-path structure of each predictor family (Fig. 1's three flows).
CRITICAL_PATHS = {
    "LVP": {
        "uses_previous_result": False,
        "critical_loop": "none — successive lookups independent "
                         "(table read can span Fetch..Dispatch)",
        "back_to_back_safe": True,
    },
    "2D-Stride": {
        "uses_previous_result": True,
        "critical_loop": "last-value forwarding into the adder "
                         "(1 step; tractable)",
        "back_to_back_safe": True,
    },
    "o4-FCM": {
        "uses_previous_result": True,
        "critical_loop": "hash -> VPT read -> forward to next index hash "
                         "(2 dependent steps; must fit in 1 cycle)",
        "back_to_back_safe": False,
    },
    "VTAGE": {
        "uses_previous_result": False,
        "critical_loop": "none — indexed by PC + branch/path history only",
        "back_to_back_safe": True,
    },
}


def figure1(
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    n_uops: int = DEFAULT_MEASURE,
    fetch_width: int = 8,
) -> FigureResult:
    """Back-to-back fractions (Section 3.2's 15.3 % max / 3.4 % amean) plus
    the Figure 1 critical-path comparison."""
    fractions = {
        name: build_trace(name, n_uops).back_to_back_fraction(fetch_width)
        for name in workloads
    }
    amean = sum(fractions.values()) / len(fractions)
    peak = max(fractions.values())
    path_rows = [
        (name, "yes" if info["uses_previous_result"] else "no",
         "yes" if info["back_to_back_safe"] else "NO",
         info["critical_loop"])
        for name, info in CRITICAL_PATHS.items()
    ]
    text = "\n\n".join(
        [
            format_table(
                ["Predictor", "Needs last value", "Back-to-back OK", "Critical loop"],
                path_rows,
                title="Figure 1: prediction critical paths",
            ),
            ascii_bar_chart(
                fractions,
                title=(
                    "Eligible uops whose previous occurrence is within one "
                    f"fetch group (paper: max 15.3%, amean 3.4%) — "
                    f"measured max {peak:.1%}, amean {amean:.1%}"
                ),
                baseline=0.0,
                fmt="{:.3f}",
            ),
        ]
    )
    return FigureResult(
        "fig1", "Back-to-back prediction feasibility",
        series={"fractions": fractions, "amean": amean, "max": peak,
                "critical_paths": CRITICAL_PATHS},
        text=text,
    )


# ---------------------------------------------------------------------------
# Figure 3: oracle upper bound.
# ---------------------------------------------------------------------------

def figure3(
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    journal=None,
) -> FigureResult:
    """Speedup upper bound: an oracle predicts all results (Fig. 3)."""
    res = run_campaign(figure3_campaign(workloads, n_uops, warmup),
                       journal=journal)
    series = res.speedup_by_workload(predictor="oracle")
    text = ascii_bar_chart(
        series,
        title="Figure 3: speedup upper bound (perfect value predictor)",
    )
    return FigureResult("fig3", "Oracle speedup upper bound",
                        series={"speedup": series}, text=text)


# ---------------------------------------------------------------------------
# Figures 4 & 5: single-scheme predictors, two recovery mechanisms.
# ---------------------------------------------------------------------------
# SINGLE_SCHEMES / HYBRID_SCHEMES are defined next to the campaign specs
# (repro.experiments.campaigns) and re-exported here for existing callers.


def _predictor_grid(
    recovery: str,
    workloads: tuple[str, ...],
    n_uops: int,
    warmup: int,
    journal=None,
) -> dict:
    """Run the Fig. 4/5 campaign and pivot it into the legacy grid shape."""
    spec = (figure4_campaign if recovery == "squash" else figure5_campaign)(
        workloads, n_uops, warmup
    )
    res = run_campaign(spec, journal=journal)
    grid: dict = {}
    for fpc in (False, True):
        label = "FPC" if fpc else "baseline"
        grid[label] = {}
        for scheme in SINGLE_SCHEMES:
            results = res.by("workload", predictor=scheme, fpc=fpc,
                             recovery=recovery)
            grid[label][scheme] = {
                "speedup": res.speedup_by_workload(predictor=scheme, fpc=fpc,
                                                   recovery=recovery),
                "coverage": {w: r.coverage for w, r in results.items()},
                "accuracy": {w: r.accuracy for w, r in results.items()},
                "squashes": {w: r.vp_squashes for w, r in results.items()},
                "reissues": {w: r.vp_reissues for w, r in results.items()},
            }
    return grid


def _render_grid(figure_id: str, title: str, grid: dict) -> str:
    blocks = [title]
    for conf_label, by_scheme in grid.items():
        workloads = next(iter(by_scheme.values()))["speedup"].keys()
        rows = []
        for workload in workloads:
            row = [workload]
            for scheme in SINGLE_SCHEMES:
                row.append(f"{by_scheme[scheme]['speedup'][workload]:.3f}")
            rows.append(row)
        gmeans = ["gmean"] + [
            f"{geometric_mean(by_scheme[s]['speedup'].values()):.3f}"
            for s in SINGLE_SCHEMES
        ]
        rows.append(gmeans)
        blocks.append(
            format_table(
                ["benchmark"] + list(SINGLE_SCHEMES),
                rows,
                title=f"({figure_id}) speedup over no-VP baseline — "
                      f"{conf_label} confidence counters",
            )
        )
    return "\n\n".join(blocks)


def figure4(
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    journal=None,
) -> FigureResult:
    """Fig. 4: speedups with squash-at-commit recovery, (a) baseline 3-bit
    counters, (b) FPC."""
    grid = _predictor_grid("squash", workloads, n_uops, warmup, journal)
    text = _render_grid(
        "fig4", "Figure 4: squashing at commit on value misprediction", grid
    )
    return FigureResult("fig4", "Squash-at-commit speedups", series=grid, text=text)


def figure5(
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    journal=None,
) -> FigureResult:
    """Fig. 5: speedups with idealistic selective reissue."""
    grid = _predictor_grid("reissue", workloads, n_uops, warmup, journal)
    text = _render_grid(
        "fig5", "Figure 5: idealistic selective reissue on value misprediction",
        grid,
    )
    return FigureResult("fig5", "Selective-reissue speedups", series=grid, text=text)


# ---------------------------------------------------------------------------
# Figure 6: VTAGE speedup and coverage, with and without FPC.
# ---------------------------------------------------------------------------

def figure6(
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    journal=None,
) -> FigureResult:
    res = run_campaign(figure6_campaign(workloads, n_uops, warmup),
                       journal=journal)
    series: dict = {}
    for fpc in (False, True):
        label = "FPC" if fpc else "baseline"
        results = res.by("workload", predictor="vtage", fpc=fpc)
        series[label] = {
            "speedup": res.speedup_by_workload(predictor="vtage", fpc=fpc),
            "coverage": {w: r.coverage for w, r in results.items()},
            "accuracy": {w: r.accuracy for w, r in results.items()},
        }
    rows = [
        (
            w,
            f"{series['baseline']['speedup'][w]:.3f}",
            f"{series['FPC']['speedup'][w]:.3f}",
            f"{series['baseline']['coverage'][w]:.2f}",
            f"{series['FPC']['coverage'][w]:.2f}",
            f"{series['baseline']['accuracy'][w]:.4f}",
            f"{series['FPC']['accuracy'][w]:.4f}",
        )
        for w in workloads
    ]
    text = format_table(
        ["benchmark", "speedup(base)", "speedup(FPC)",
         "cov(base)", "cov(FPC)", "acc(base)", "acc(FPC)"],
        rows,
        title="Figure 6: VTAGE speedup and coverage, with/without FPC "
              "(squash at commit)",
    )
    return FigureResult("fig6", "VTAGE with/without FPC", series=series, text=text)


# ---------------------------------------------------------------------------
# Figure 7: hybrids.
# ---------------------------------------------------------------------------


def figure7(
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    n_uops: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    journal=None,
) -> FigureResult:
    res = run_campaign(figure7_campaign(workloads, n_uops, warmup),
                       journal=journal)
    series: dict = {}
    for scheme in HYBRID_SCHEMES:
        results = res.by("workload", predictor=scheme)
        series[scheme] = {
            "speedup": res.speedup_by_workload(predictor=scheme),
            "coverage": {w: r.coverage for w, r in results.items()},
        }
    speed_rows = []
    cov_rows = []
    for w in workloads:
        speed_rows.append([w] + [f"{series[s]['speedup'][w]:.3f}" for s in HYBRID_SCHEMES])
        cov_rows.append([w] + [f"{series[s]['coverage'][w]:.2f}" for s in HYBRID_SCHEMES])
    speed_rows.append(
        ["gmean"] + [
            f"{geometric_mean(series[s]['speedup'].values()):.3f}"
            for s in HYBRID_SCHEMES
        ]
    )
    text = "\n\n".join(
        [
            format_table(["benchmark"] + list(HYBRID_SCHEMES), speed_rows,
                         title="Figure 7a: hybrid speedups (FPC, squash at commit)"),
            format_table(["benchmark"] + list(HYBRID_SCHEMES), cov_rows,
                         title="Figure 7b: coverage"),
        ]
    )
    return FigureResult("fig7", "Hybrid predictors", series=series, text=text)
