"""DDR3-1600 latency model (Table 2).

"Single channel DDR3-1600 (11-11-11), 2 ranks, 8 banks/rank, 8K row-buffer
... Min. Read Lat.: 75 cycles, Max. 185 cycles" (CPU cycles at 4 GHz).

The model keeps an open row per bank and a single shared data channel:

* row-buffer hit: base latency (75 cycles);
* row-buffer conflict: precharge + activate penalty on top;
* channel occupancy: one 64 B transfer occupies the bus for a fixed number
  of cycles, and a request cannot complete earlier than the channel allows;
* the total is clamped to the paper's 185-cycle maximum, which stands in
  for scheduling fairness mechanisms we do not model.
"""

from __future__ import annotations


class DRAMModel:
    def __init__(
        self,
        base_latency: int = 75,
        row_miss_penalty: int = 40,
        max_latency: int = 185,
        ranks: int = 2,
        banks_per_rank: int = 8,
        row_bytes: int = 8192,
        channel_cycles_per_transfer: int = 4,
    ):
        self.base_latency = base_latency
        self.row_miss_penalty = row_miss_penalty
        self.max_latency = max_latency
        self.n_banks = ranks * banks_per_rank
        self.row_bytes = row_bytes
        self.channel_cycles = channel_cycles_per_transfer
        self._open_rows: dict[int, int] = {}
        self._bank_free = [0] * self.n_banks
        self._channel_free = 0
        self.requests = 0
        self.row_hits = 0

    def _map(self, addr: int) -> tuple[int, int]:
        """Address interleaving: consecutive rows rotate across banks."""
        row = addr // self.row_bytes
        bank = row % self.n_banks
        return bank, row

    def read(self, addr: int, cycle: int) -> int:
        """Return the completion cycle of a 64 B read issued at *cycle*."""
        self.requests += 1
        bank, row = self._map(addr)
        start = max(cycle, self._bank_free[bank], self._channel_free)
        latency = self.base_latency
        if self._open_rows.get(bank) == row:
            self.row_hits += 1
        else:
            latency += self.row_miss_penalty
            self._open_rows[bank] = row
        done = start + latency
        # Clamp the total observed latency per the paper's bounds.
        done = min(done, cycle + self.max_latency)
        done = max(done, cycle + self.base_latency)
        self._bank_free[bank] = done
        self._channel_free = max(self._channel_free, start) + self.channel_cycles
        return done

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.requests if self.requests else 0.0
