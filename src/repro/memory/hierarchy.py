"""Two-level cache hierarchy + DRAM, wired per Table 2.

``MemoryHierarchy`` is the single entry point the pipeline uses for data
and instruction accesses.  It returns *data-ready cycles*; the pipeline
derives load-to-use latencies from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.cache import Cache, CacheConfig
from repro.memory.dram import DRAMModel
from repro.memory.prefetcher import StridePrefetcher


@dataclass(slots=True)
class AccessResult:
    """Timing outcome of one memory access."""

    ready_cycle: int
    l1_hit: bool
    l2_hit: bool


@dataclass
class HierarchyConfig:
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L1I", size_bytes=32 * 1024, ways=4, hit_latency=1, mshrs=64
        )
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L1D", size_bytes=32 * 1024, ways=4, hit_latency=2, mshrs=64
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L2", size_bytes=2 * 1024 * 1024, ways=16, hit_latency=12, mshrs=64
        )
    )
    prefetch_degree: int = 8
    prefetch_distance: int = 1


class MemoryHierarchy:
    def __init__(self, config: HierarchyConfig | None = None):
        self.config = config if config is not None else HierarchyConfig()
        self.l1i = Cache(self.config.l1i)
        self.l1d = Cache(self.config.l1d)
        self.l2 = Cache(self.config.l2)
        self.dram = DRAMModel()
        self.prefetcher = StridePrefetcher(
            degree=self.config.prefetch_degree,
            distance=self.config.prefetch_distance,
        )
        self._last_access: AccessResult | None = None
        # The L1 miss handler needs the access PC (for prefetcher
        # training); it is a persistent bound method reading `_fill_pc`
        # rather than a closure allocated per access — miss handlers only
        # run on the miss path, but the closure used to be built per hit.
        self._fill_pc = 0

    # -- internal fill path ------------------------------------------------

    def _l2_fill(self, line_addr: int, cycle: int) -> int:
        return self.dram.read(line_addr, cycle)

    def _l1_fill_handler(self, line_addr: int, cycle: int) -> int:
        """L1-miss handler: go to L2 and train the prefetcher."""
        l2 = self.l2
        hits_before = l2.hits
        ready = l2.access(line_addr, cycle, self._l2_fill)
        self._l2_was_hit = l2.hits > hits_before
        for pf_addr in self.prefetcher.observe(self._fill_pc, line_addr):
            # Prefetches fill the L2 with DRAM-like latency; they do not
            # consume MSHRs in this model (documented simplification).
            l2.install_prefetch(pf_addr, cycle + self.dram.base_latency)
        return ready

    # -- public API ----------------------------------------------------------

    def load(self, pc: int, addr: int, cycle: int) -> AccessResult:
        """Data load at *cycle*; returns data-ready timing."""
        self._l2_was_hit = True
        self._fill_pc = pc
        l1d = self.l1d
        hits_before = l1d.hits
        ready = l1d.access(addr, cycle, self._l1_fill_handler)
        result = AccessResult(ready_cycle=ready, l1_hit=l1d.hits > hits_before,
                              l2_hit=self._l2_was_hit)
        self._last_access = result
        return result

    def store(self, pc: int, addr: int, cycle: int) -> AccessResult:
        """Stores allocate on write; completion is not on the critical path
        (write buffers drain in the background) but the line movement is."""
        return self.load(pc, addr, cycle)

    def fetch(self, pc: int, cycle: int) -> int:
        """Instruction fetch: returns the cycle the fetch group is available."""
        self._l2_was_hit = True
        self._fill_pc = pc
        return self.l1i.access(pc, cycle, self._l1_fill_handler)
