"""Memory system substrate matching Table 2 of the paper.

L1D 4-way 32 KB (2 cycles, 64 MSHRs), unified L2 16-way 2 MB (12 cycles,
stride prefetcher of degree 8 / distance 1), single-channel DDR3-1600 with
75-185 cycle read latency, and the Store Sets memory dependence predictor
of Chrysos & Emer [5].
"""

from repro.memory.cache import Cache, CacheConfig
from repro.memory.dram import DRAMModel
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.prefetcher import StridePrefetcher
from repro.memory.storesets import StoreSets

__all__ = [
    "AccessResult",
    "Cache",
    "CacheConfig",
    "DRAMModel",
    "MemoryHierarchy",
    "StridePrefetcher",
    "StoreSets",
]
