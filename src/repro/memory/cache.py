"""Set-associative cache timing model with MSHR-limited outstanding misses.

The model tracks tags and in-flight line fills, not data: a trace-driven
simulator only needs hit/miss latencies.  Miss Status Holding Registers cap
the number of outstanding misses (Table 2: 64 per cache); accesses to a
line already being filled merge with the pending fill.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


@dataclass(slots=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str = "L1D"
    size_bytes: int = 32 * 1024
    ways: int = 4
    line_bytes: int = 64
    hit_latency: int = 2
    mshrs: int = 64

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    def __post_init__(self):
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(f"{self.name}: set count {sets} must be a power of two")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")


class Cache:
    """One cache level.

    ``access`` returns the cycle at which the requested data is available,
    calling *miss_handler(line_addr, cycle)* to obtain the fill-completion
    time from the next level when needed.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.sets - 1
        self._hit_latency = config.hit_latency
        # Per-set list of line addresses; front = MRU.
        self._sets: list[list[int]] = [[] for _ in range(config.sets)]
        # In-flight or recent fills: line -> ready cycle.
        self._fill_ready: dict[int, int] = {}
        # Outstanding-miss completion times, capped by #MSHRs.
        self._mshr_heap: list[int] = []
        self.hits = 0
        self.misses = 0
        self.mshr_stalls = 0

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def _set_for(self, line: int) -> list[int]:
        return self._sets[line & self._set_mask]

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU or statistics."""
        return self.line_of(addr) in self._set_for(self.line_of(addr))

    def access(self, addr: int, cycle: int, miss_handler) -> int:
        """Access *addr* at *cycle*; returns the data-ready cycle."""
        line = addr >> self._line_shift
        ways = self._sets[line & self._set_mask]
        if line in ways:
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            self.hits += 1
            pending = self._fill_ready.get(line)
            if pending is not None and pending > cycle:
                # Line is present but still being filled (prefetch or an
                # earlier miss): wait for the remainder of the fill.
                return pending + 1
            return cycle + self._hit_latency
        self.misses += 1
        start = self._mshr_admit(cycle)
        ready = miss_handler(line << self._line_shift, start + self._hit_latency)
        self._install(line, ready)
        heapq.heappush(self._mshr_heap, ready)
        return ready

    def install_prefetch(self, addr: int, ready_cycle: int) -> bool:
        """Install a prefetched line; returns False if it was already here."""
        line = self.line_of(addr)
        ways = self._set_for(line)
        if line in ways:
            return False
        self._install(line, ready_cycle)
        return True

    def _install(self, line: int, ready_cycle: int) -> None:
        ways = self._set_for(line)
        ways.insert(0, line)
        if len(ways) > self.config.ways:
            victim = ways.pop()
            self._fill_ready.pop(victim, None)
        self._fill_ready[line] = ready_cycle

    def _mshr_admit(self, cycle: int) -> int:
        """Delay the miss if all MSHRs are busy at *cycle*."""
        heap = self._mshr_heap
        while heap and heap[0] <= cycle:
            heapq.heappop(heap)
        if len(heap) >= self.config.mshrs:
            self.mshr_stalls += 1
            return heapq.heappop(heap)
        return cycle

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
