"""Stride prefetcher at the L2 (Table 2: "Stride prefetcher, degree 8,
distance 1").

A PC-indexed reference prediction table detects constant-stride access
streams; once a stream is confirmed, the prefetcher pushes ``degree`` lines
ahead of the demand access into the L2.
"""

from __future__ import annotations

from repro.util.hashing import table_index


class StridePrefetcher:
    def __init__(self, table_entries: int = 256, degree: int = 8, distance: int = 1):
        if table_entries & (table_entries - 1):
            raise ValueError("prefetch table entries must be a power of two")
        self.degree = degree
        self.distance = distance
        self._index_bits = table_entries.bit_length() - 1
        self._pcs = [-1] * table_entries
        self._last_addr = [0] * table_entries
        self._stride = [0] * table_entries
        self._conf = [0] * table_entries
        self.issued = 0
        self.useful_hint = 0

    def observe(self, pc: int, addr: int) -> list[int]:
        """Observe one demand access; return line addresses to prefetch."""
        idx = table_index(pc, self._index_bits)
        if self._pcs[idx] != pc:
            self._pcs[idx] = pc
            self._last_addr[idx] = addr
            self._stride[idx] = 0
            self._conf[idx] = 0
            return []
        stride = addr - self._last_addr[idx]
        prefetches: list[int] = []
        if stride != 0 and stride == self._stride[idx]:
            if self._conf[idx] < 3:
                self._conf[idx] += 1
        elif stride != self._stride[idx]:
            self._conf[idx] = max(0, self._conf[idx] - 1)
        if self._conf[idx] >= 2 and stride:
            base = addr + self.distance * stride
            prefetches = [base + i * stride for i in range(self.degree)]
            self.issued += len(prefetches)
        self._stride[idx] = stride
        self._last_addr[idx] = addr
        return prefetches
