"""Store Sets memory dependence predictor (Chrysos & Emer [5]).

Table 2: "1K-SSID/LFST Store Sets".  Loads and stores that have conflicted
in the past are placed in a common *store set*; a load predicted dependent
waits for the last in-flight store of its set instead of issuing blindly
out of order.

Two tables:

* SSIT — Store Set ID Table, indexed by instruction PC, holds the set id;
* LFST — Last Fetched Store Table, indexed by set id, holds the sequence
  number of the most recent in-flight store of that set.
"""

from __future__ import annotations

from repro.util.hashing import table_index


class StoreSets:
    def __init__(self, ssit_entries: int = 1024, lfst_entries: int = 1024):
        if ssit_entries & (ssit_entries - 1) or lfst_entries & (lfst_entries - 1):
            raise ValueError("table sizes must be powers of two")
        self._ssit_bits = ssit_entries.bit_length() - 1
        self.lfst_entries = lfst_entries
        self._ssit: dict[int, int] = {}
        self._lfst: dict[int, int] = {}  # ssid -> store seq
        self._next_ssid = 0
        self.violations_trained = 0

    def _ssit_index(self, pc: int) -> int:
        return table_index(pc, self._ssit_bits)

    def predicted_store(self, load_pc: int) -> int | None:
        """Sequence number of the in-flight store this load should wait for."""
        ssid = self._ssit.get(self._ssit_index(load_pc))
        if ssid is None:
            return None
        return self._lfst.get(ssid)

    def store_fetched(self, store_pc: int, seq: int) -> None:
        """A store enters the window: it becomes its set's last store."""
        ssid = self._ssit.get(self._ssit_index(store_pc))
        if ssid is not None:
            self._lfst[ssid] = seq

    def store_retired(self, store_pc: int, seq: int) -> None:
        """Invalidate the LFST entry if this store still owns it."""
        ssid = self._ssit.get(self._ssit_index(store_pc))
        if ssid is not None and self._lfst.get(ssid) == seq:
            del self._lfst[ssid]

    def train_violation(self, load_pc: int, store_pc: int) -> None:
        """A memory-order violation merges both µops into one store set."""
        self.violations_trained += 1
        load_idx = self._ssit_index(load_pc)
        store_idx = self._ssit_index(store_pc)
        load_ssid = self._ssit.get(load_idx)
        store_ssid = self._ssit.get(store_idx)
        if load_ssid is None and store_ssid is None:
            ssid = self._next_ssid
            self._next_ssid = (self._next_ssid + 1) % self.lfst_entries
            self._ssit[load_idx] = ssid
            self._ssit[store_idx] = ssid
        elif load_ssid is None:
            self._ssit[load_idx] = store_ssid
        elif store_ssid is None:
            self._ssit[store_idx] = load_ssid
        else:
            # Both already have sets: merge into the smaller id (the paper's
            # "declarative" merge rule).
            winner = min(load_ssid, store_ssid)
            self._ssit[load_idx] = winner
            self._ssit[store_idx] = winner

    def flush_inflight(self) -> None:
        """Pipeline squash: no stores remain in flight."""
        self._lfst.clear()
