"""Build, load, and drive the optional compiled cycle-loop kernel.

``_ckernel.c`` (same directory) is a C transliteration of the pure-Python
fast loop in :mod:`repro.pipeline.fastsim`.  This module owns everything on
the Python side of that boundary:

* **Build on demand** — the shared object is compiled with the system C
  compiler (``$CC`` or ``cc``) into a cache directory keyed by the source
  hash, so editing the C source transparently rebuilds.  No compiler, a
  failed build, or a failed load simply disables the kernel for the
  process; nothing is ever a hard dependency.
* **Eligibility** — beyond :func:`fastsim.try_run`'s checks, the kernel
  requires a *fresh* memory hierarchy and store-set predictor (it rebuilds
  their state from flat arrays), a stock/Wide/FPC confidence policy, and
  addresses/PCs below 2**62 (so int64 arithmetic in C is exact, including
  the negative intermediate strides the L2 prefetcher can produce).
* **State marshalling** — predictor tables are *copied* into flat numpy
  arrays before the call and written back into the live model objects only
  on success, so a kernel error (or ineligibility discovered late) falls
  back to the pure-Python loop with the model untouched.

The kernel returns counters through a single ``out`` array; this module
assembles the :class:`~repro.pipeline.result.SimResult` exactly as the
Python loop does.  Bit-identical results in both modes are pinned by the
golden grid (``REPRO_FAST_KERNEL=0`` vs default) and the equivalence tests.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.core.confidence import (
    ConfidencePolicy,
    ForwardProbabilisticCounters,
    WideConfidence,
)
from repro.isa.uop import OpClass
from repro.pipeline.config import RecoveryMode
from repro.pipeline.result import SimResult
from repro.util.bits import MASK64

#: Where compiled kernels are cached (one ``.so`` per source hash).
CACHE_ENV = "REPRO_CKERNEL_CACHE"

_ABI_VERSION = 1
_BW_WINDOW = 1 << 17
_ADDR_LIMIT = 1 << 62
_MAX_COMPONENTS = 16

_SOURCE = Path(__file__).with_name("_ckernel.c")

# Module-level build state: None = not attempted, False = unavailable.
_lib = None
_load_attempted = False

# out[] slot indices — must mirror the enum in _ckernel.c.
(
    _O_ERROR, _O_N_UOPS, _O_CYCLES,
    _O_COND_BRANCHES, _O_BRANCH_MISP, _O_BTB_REDIRECTS,
    _O_VP_ELIGIBLE, _O_VP_PREDICTED, _O_VP_USED, _O_VP_CORRECT_USED,
    _O_VP_WRONG_USED, _O_VP_SQUASHES, _O_VP_HARMLESS, _O_VP_REISSUES,
    _O_VP_WRITE_DELAYED, _O_MEM_VIOLATIONS,
    _O_ROB_STALLS, _O_IQ_STALLS,
    _O_L1I_HITS, _O_L1I_MISSES, _O_L1I_MSHR_STALLS, _O_L1I_MSHR_N,
    _O_L1D_HITS, _O_L1D_MISSES, _O_L1D_MSHR_STALLS, _O_L1D_MSHR_N,
    _O_L2_HITS, _O_L2_MISSES, _O_L2_MSHR_STALLS, _O_L2_MSHR_N,
    _O_DRAM_REQUESTS, _O_DRAM_ROW_HITS, _O_DRAM_CHANNEL_FREE,
    _O_PF_ISSUED,
    _O_SS_VIOLATIONS, _O_SS_NEXT_SSID,
    _O_VT_ALLOCATIONS,
    _O_FPC_STATE, _O_VT_STATE,
) = range(39)
_N_OUT = 39

_I64 = ctypes.c_int64
_U64 = ctypes.c_uint64
_PTR = ctypes.c_void_p  # every pointer field is 8 bytes; numpy owns memory


class _KernelArgs(ctypes.Structure):
    """Field-for-field mirror of ``KernelArgs`` in ``_ckernel.c``."""

    _fields_ = [
        ("abi_version", _I64),
        # trace columns
        ("n", _I64), ("warmup", _I64),
        ("seqs", _PTR), ("pcs", _PTR), ("ops", _PTR), ("dsts", _PTR),
        ("values", _PTR), ("mem_addrs", _PTR), ("mem_sizes", _PTR),
        ("takens", _PTR), ("dst_is_fp", _PTR),
        ("src_offsets", _PTR), ("src_flat", _PTR),
        # trace plane
        ("redirect", _PTR), ("scr_pkey", _PTR), ("pkeys", _PTR),
        # core config
        ("fetch_width", _I64), ("taken_width", _I64),
        ("issue_width", _I64), ("commit_width", _I64),
        ("frontend", _I64), ("backend", _I64),
        ("redirect_extra", _I64), ("decode_redirect_depth", _I64),
        ("fq_size", _I64), ("rob_size", _I64), ("iq_size", _I64),
        ("lq_size", _I64), ("sq_size", _I64),
        ("int_prf_size", _I64), ("fp_prf_size", _I64),
        ("vp_write_ports", _I64), ("vp_all_scope", _I64),
        ("reissue", _I64), ("lookahead_cap", _I64), ("sbuf_capacity", _I64),
        # functional units
        ("fu_lat", _PTR), ("fu_occ", _PTR), ("fu_pool", _PTR),
        ("pool_units", _PTR), ("n_pools", _I64), ("pool_heap", _PTR),
        # bandwidth limiter windows
        ("bw_fetch_stamp", _PTR), ("bw_fetch_count", _PTR),
        ("bw_taken_stamp", _PTR), ("bw_taken_count", _PTR),
        ("bw_issue_stamp", _PTR), ("bw_issue_count", _PTR),
        ("bw_vpw_stamp", _PTR), ("bw_vpw_count", _PTR),
        # window rings
        ("fq_ring", _PTR), ("rob_ring", _PTR), ("lq_ring", _PTR),
        ("sq_ring", _PTR), ("int_prf_ring", _PTR), ("fp_prf_ring", _PTR),
        ("iq_heap", _PTR),
        # store buffer
        ("sb_seq", _PTR), ("sb_start", _PTR), ("sb_end", _PTR),
        ("sb_ready", _PTR), ("sb_commit", _PTR), ("sb_pc", _PTR),
        # train queue
        ("tq_commit", _PTR), ("tq_i", _PTR), ("tq_value", _PTR),
        ("tq_provider", _PTR), ("tq_eff", _PTR), ("tq_has", _PTR),
        # memory hierarchy
        ("l1i_sets", _I64), ("l1i_ways", _I64), ("l1i_shift", _I64),
        ("l1i_lat", _I64), ("l1i_mshrs", _I64),
        ("l1i_lines", _PTR), ("l1i_fill", _PTR), ("l1i_count", _PTR),
        ("l1i_mshr", _PTR),
        ("l1d_sets", _I64), ("l1d_ways", _I64), ("l1d_shift", _I64),
        ("l1d_lat", _I64), ("l1d_mshrs", _I64),
        ("l1d_lines", _PTR), ("l1d_fill", _PTR), ("l1d_count", _PTR),
        ("l1d_mshr", _PTR),
        ("l2_sets", _I64), ("l2_ways", _I64), ("l2_shift", _I64),
        ("l2_lat", _I64), ("l2_mshrs", _I64),
        ("l2_lines", _PTR), ("l2_fill", _PTR), ("l2_count", _PTR),
        ("l2_mshr", _PTR),
        ("dram_base", _I64), ("dram_row_penalty", _I64), ("dram_max", _I64),
        ("dram_banks", _I64), ("dram_row_bytes", _I64),
        ("dram_channel_cycles", _I64),
        ("dram_open_rows", _PTR), ("dram_bank_free", _PTR),
        ("pf_index_bits", _I64), ("pf_degree", _I64), ("pf_distance", _I64),
        ("pf_pcs", _PTR), ("pf_last", _PTR), ("pf_stride", _PTR),
        ("pf_conf", _PTR),
        # store sets
        ("ssit_bits", _I64), ("lfst_entries", _I64),
        ("ssit", _PTR), ("lfst", _PTR),
        # predictor
        ("ptype", _I64), ("conf_kind", _I64), ("conf_max_level", _I64),
        ("fpc_prob", _PTR), ("fpc_taps", _U64), ("fpc_state", _U64),
        ("tbl_mask", _I64), ("tbl_tags", _PTR), ("tbl_tag_valid", _PTR),
        ("tbl_values", _PTR), ("tbl_conf", _PTR),
        ("two_delta", _I64), ("st_stride", _PTR), ("st_stride2", _PTR),
        ("st_spec_value", _PTR), ("st_spec_has", _PTR), ("st_inflight", _PTR),
        ("vt_ncomp", _I64), ("vt_entries", _I64), ("vt_base_mask", _I64),
        ("vt_base_values", _PTR), ("vt_base_conf", _PTR),
        ("vt_tags", _PTR), ("vt_values", _PTR), ("vt_conf", _PTR),
        ("vt_useful", _PTR),
        ("vp_idx", _PTR), ("vp_tag", _PTR),
        ("vt_taps", _U64), ("vt_state", _U64),
        # outputs
        ("out", _PTR),
    ]


# ---------------------------------------------------------------------------
# Build + load


def _cache_dir() -> Path:
    override = os.environ.get(CACHE_ENV, "").strip()
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-ckernel"


def _build(source: Path, target: Path) -> bool:
    cc = os.environ.get("CC", "cc")
    tmp = target.with_name(target.name + f".tmp{os.getpid()}")
    cmd = [cc, "-O2", "-shared", "-fPIC", "-o", str(tmp), str(source)]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
    except (OSError, subprocess.TimeoutExpired):
        return False
    if proc.returncode != 0:
        tmp.unlink(missing_ok=True)
        return False
    os.replace(tmp, target)
    return True


def _load():
    """The loaded kernel library, building it on first use.

    Returns ``None`` (and remembers the failure for the process) when no
    compiler is available, the build fails, or the ABI does not match.
    """
    global _lib, _load_attempted
    if _load_attempted:
        return _lib or None
    _load_attempted = True
    _lib = False
    try:
        source = _SOURCE.read_bytes()
    except OSError:
        return None
    digest = hashlib.sha256(source).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"_ckernel-{digest}.so"
    if not so_path.exists():
        try:
            cache.mkdir(parents=True, exist_ok=True)
        except OSError:
            return None
        if not _build(_SOURCE, so_path):
            return None
    try:
        lib = ctypes.CDLL(str(so_path))
        lib.repro_kernel_abi_version.restype = _I64
        lib.repro_kernel_abi_version.argtypes = []
        lib.repro_kernel_run.restype = _I64
        lib.repro_kernel_run.argtypes = [ctypes.POINTER(_KernelArgs)]
        if lib.repro_kernel_abi_version() != _ABI_VERSION:
            return None
    except OSError:
        return None
    _lib = lib
    return lib


def kernel_available() -> bool:
    """Whether the compiled kernel can be (or has been) loaded."""
    return _load() is not None


# ---------------------------------------------------------------------------
# Eligibility


def _policy_fields(policy):
    """``(conf_kind, max_level, prob_array, taps, state)`` or ``None``.

    Exact type checks: any confidence subclass that overrides transition or
    saturation behaviour must take the pure-Python path.
    """
    kind = type(policy)
    if kind is ConfidencePolicy or kind is WideConfidence:
        return 0, policy.max_level, np.zeros(1, dtype=np.int64), 0, 0
    if kind is ForwardProbabilisticCounters:
        prob = np.asarray(policy.probability_log2, dtype=np.int64)
        lfsr = policy.lfsr
        return 1, policy.max_level, prob, lfsr._taps, lfsr.state
    return None


def _memory_is_fresh(memory) -> bool:
    for cache in (memory.l1i, memory.l1d, memory.l2):
        if cache.hits or cache.misses or cache.mshr_stalls:
            return False
        if cache._fill_ready or cache._mshr_heap:
            return False
        if any(cache._sets):
            return False
    dram = memory.dram
    if dram.requests or dram.row_hits or dram._open_rows:
        return False
    if dram._channel_free or any(dram._bank_free):
        return False
    pf = memory.prefetcher
    if pf.issued or any(pc != -1 for pc in pf._pcs):
        return False
    return True


def _store_sets_fresh(store_sets) -> bool:
    return (
        not store_sets._ssit
        and not store_sets._lfst
        and store_sets._next_ssid == 0
        and store_sets.violations_trained == 0
    )


# ---------------------------------------------------------------------------
# Entry point


def try_run(model, trace, warmup, workload, ptype, plane, vplane):
    """Run the compiled kernel, or return ``None`` to use the Python loop.

    The caller (:func:`fastsim.try_run`) has already verified the predictor
    family and the default branch state; this adds the kernel-specific
    checks and performs the array round-trip.
    """
    lib = _load()
    if lib is None:
        return None
    cfg = model.config
    predictor = model.predictor
    memory = model.memory
    store_sets = model.store_sets

    if not _memory_is_fresh(memory) or not _store_sets_fresh(store_sets):
        return None

    packed = trace.packed()
    a = packed.arrays
    n = packed.n
    if n == 0:
        return None
    pcs = a["pcs"]
    mem_addrs = a["mem_addrs"]
    dsts = a["dsts"]
    src_flat = a["src_flat"]
    seqs = a["seqs"]
    if int(pcs.max()) >= _ADDR_LIMIT or int(mem_addrs.max()) >= _ADDR_LIMIT:
        return None
    if int(seqs.min()) < 0:
        return None
    if int(dsts.max(initial=0)) >= 64:
        return None
    if src_flat.size and int(src_flat.max()) >= 64:
        return None

    keep = []  # arrays that must stay alive across the C call

    def arr(data, dtype):
        out = np.ascontiguousarray(data, dtype=dtype)
        keep.append(out)
        return out

    def ptr(array):
        return array.ctypes.data

    args = _KernelArgs()
    args.abi_version = _ABI_VERSION
    args.n = n
    args.warmup = warmup

    # ---- trace columns + plane ------------------------------------------
    takens = arr(a["takens"].view(np.uint8), np.uint8)
    dst_is_fp = arr(a["dst_is_fp"].view(np.uint8), np.uint8)
    pkeys = arr(
        (pcs.astype(np.uint64) << np.uint64(2))
        ^ a["uop_indexes"].astype(np.uint64),
        np.uint64,
    )
    col = {
        "seqs": arr(seqs, np.int64),
        "pcs": arr(pcs, np.uint64),
        "ops": arr(a["ops"], np.uint8),
        "dsts": arr(dsts, np.int16),
        "values": arr(a["values"], np.uint64),
        "mem_addrs": arr(mem_addrs, np.uint64),
        "mem_sizes": arr(a["mem_sizes"], np.uint16),
        "src_offsets": arr(a["src_offsets"], np.int64),
        "src_flat": arr(src_flat, np.int16),
        "redirect": arr(plane.redirect, np.uint8),
        "scr_pkey": arr(plane.scr_pkey, np.uint64),
    }
    for name, array in col.items():
        setattr(args, name, ptr(array))
    args.takens = ptr(takens)
    args.dst_is_fp = ptr(dst_is_fp)
    args.pkeys = ptr(pkeys)

    # ---- core config -----------------------------------------------------
    args.fetch_width = cfg.fetch_width
    args.taken_width = cfg.max_taken_per_cycle
    args.issue_width = cfg.issue_width
    args.commit_width = cfg.commit_width
    args.frontend = cfg.frontend_depth
    args.backend = cfg.backend_depth
    args.redirect_extra = cfg.redirect_extra
    args.decode_redirect_depth = cfg.decode_redirect_depth
    args.fq_size = cfg.fetch_queue
    args.rob_size = cfg.rob_entries
    args.iq_size = cfg.iq_entries
    args.lq_size = cfg.lq_entries
    args.sq_size = cfg.sq_entries
    args.int_prf_size = max(1, cfg.int_prf - cfg.arch_regs)
    args.fp_prf_size = max(1, cfg.fp_prf - cfg.arch_regs)
    args.vp_write_ports = (
        cfg.vp_write_ports if cfg.vp_write_ports is not None else -1
    )
    args.vp_all_scope = 1 if cfg.vp_scope == "all" else 0
    args.reissue = 1 if cfg.recovery is RecoveryMode.SELECTIVE_REISSUE else 0
    args.lookahead_cap = cfg.squash_lookahead
    sbuf_capacity = cfg.sq_entries + 16
    args.sbuf_capacity = sbuf_capacity

    # ---- functional units ------------------------------------------------
    n_classes = len(OpClass)
    pool_of = {
        OpClass.INT_ALU: 0, OpClass.INT_MUL: 1, OpClass.INT_DIV: 1,
        OpClass.FP_ADD: 2, OpClass.FP_MUL: 3, OpClass.FP_DIV: 3,
        OpClass.LOAD: 4, OpClass.STORE: 4,
        OpClass.BRANCH: 0, OpClass.JUMP: 0, OpClass.CALL: 0,
        OpClass.RET: 0, OpClass.NOP: 0,
    }
    fu_lat = arr([cfg.fu[OpClass(c)].latency for c in range(n_classes)],
                 np.int64)
    fu_occ = arr([cfg.fu[OpClass(c)].occupancy for c in range(n_classes)],
                 np.int64)
    fu_pool = arr([pool_of[OpClass(c)] for c in range(n_classes)], np.int64)
    pool_classes = (OpClass.INT_ALU, OpClass.INT_MUL, OpClass.FP_ADD,
                    OpClass.FP_MUL, OpClass.LOAD)
    pool_units = arr([cfg.fu[c].units for c in pool_classes], np.int64)
    pool_heap = arr(np.zeros(int(pool_units.sum()), dtype=np.int64), np.int64)
    args.fu_lat = ptr(fu_lat)
    args.fu_occ = ptr(fu_occ)
    args.fu_pool = ptr(fu_pool)
    args.pool_units = ptr(pool_units)
    args.n_pools = len(pool_classes)
    args.pool_heap = ptr(pool_heap)

    # ---- bandwidth limiter windows --------------------------------------
    def bw_window():
        stamp = arr(np.full(_BW_WINDOW, -1, dtype=np.int64), np.int64)
        count = arr(np.zeros(_BW_WINDOW, dtype=np.int64), np.int64)
        return stamp, count

    fetch_stamp, fetch_count = bw_window()
    taken_stamp, taken_count = bw_window()
    issue_stamp, issue_count = bw_window()
    args.bw_fetch_stamp = ptr(fetch_stamp)
    args.bw_fetch_count = ptr(fetch_count)
    args.bw_taken_stamp = ptr(taken_stamp)
    args.bw_taken_count = ptr(taken_count)
    args.bw_issue_stamp = ptr(issue_stamp)
    args.bw_issue_count = ptr(issue_count)
    if cfg.vp_write_ports is not None:
        vpw_stamp, vpw_count = bw_window()
        args.bw_vpw_stamp = ptr(vpw_stamp)
        args.bw_vpw_count = ptr(vpw_count)
    else:
        args.bw_vpw_stamp = None
        args.bw_vpw_count = None

    # ---- rings + store buffer + train queue -----------------------------
    def ring(size):
        out = arr(np.zeros(max(1, size), dtype=np.int64), np.int64)
        return out

    args.fq_ring = ptr(ring(cfg.fetch_queue))
    args.rob_ring = ptr(ring(cfg.rob_entries))
    args.lq_ring = ptr(ring(cfg.lq_entries))
    args.sq_ring = ptr(ring(cfg.sq_entries))
    args.int_prf_ring = ptr(ring(args.int_prf_size))
    args.fp_prf_ring = ptr(ring(args.fp_prf_size))
    args.iq_heap = ptr(ring(cfg.iq_entries + 1))
    for name in ("sb_seq", "sb_start", "sb_end", "sb_ready", "sb_commit",
                 "sb_pc"):
        setattr(args, name, ptr(ring(sbuf_capacity)))
    args.tq_commit = ptr(ring(n))
    tq_i = arr(np.zeros(n, dtype=np.int32), np.int32)
    args.tq_i = ptr(tq_i)
    args.tq_value = ptr(arr(np.zeros(n, dtype=np.uint64), np.uint64))
    for name in ("tq_provider", "tq_eff", "tq_has"):
        setattr(args, name, ptr(arr(np.zeros(n, dtype=np.int8), np.int8)))

    # ---- memory hierarchy (fresh state, rebuilt on success) --------------
    cache_arrays = {}
    for prefix, cache in (("l1i", memory.l1i), ("l1d", memory.l1d),
                          ("l2", memory.l2)):
        sets = cache.config.sets
        ways = cache.config.ways
        lines = arr(np.full(sets * ways, -1, dtype=np.int64), np.int64)
        fill = arr(np.zeros(sets * ways, dtype=np.int64), np.int64)
        count = arr(np.zeros(sets, dtype=np.int64), np.int64)
        mshr = arr(np.zeros(cache.config.mshrs + 1, dtype=np.int64), np.int64)
        cache_arrays[prefix] = (cache, lines, fill, count, mshr)
        setattr(args, f"{prefix}_sets", sets)
        setattr(args, f"{prefix}_ways", ways)
        setattr(args, f"{prefix}_shift", cache._line_shift)
        setattr(args, f"{prefix}_lat", cache._hit_latency)
        setattr(args, f"{prefix}_mshrs", cache.config.mshrs)
        setattr(args, f"{prefix}_lines", ptr(lines))
        setattr(args, f"{prefix}_fill", ptr(fill))
        setattr(args, f"{prefix}_count", ptr(count))
        setattr(args, f"{prefix}_mshr", ptr(mshr))

    dram = memory.dram
    args.dram_base = dram.base_latency
    args.dram_row_penalty = dram.row_miss_penalty
    args.dram_max = dram.max_latency
    args.dram_banks = dram.n_banks
    args.dram_row_bytes = dram.row_bytes
    args.dram_channel_cycles = dram.channel_cycles
    open_rows = arr(np.full(dram.n_banks, -1, dtype=np.int64), np.int64)
    bank_free = arr(np.zeros(dram.n_banks, dtype=np.int64), np.int64)
    args.dram_open_rows = ptr(open_rows)
    args.dram_bank_free = ptr(bank_free)

    pf = memory.prefetcher
    args.pf_index_bits = pf._index_bits
    args.pf_degree = pf.degree
    args.pf_distance = pf.distance
    pf_n = len(pf._pcs)
    pf_pcs = arr(np.full(pf_n, -1, dtype=np.int64), np.int64)
    pf_last = arr(np.zeros(pf_n, dtype=np.int64), np.int64)
    pf_stride = arr(np.zeros(pf_n, dtype=np.int64), np.int64)
    pf_conf = arr(np.zeros(pf_n, dtype=np.int64), np.int64)
    args.pf_pcs = ptr(pf_pcs)
    args.pf_last = ptr(pf_last)
    args.pf_stride = ptr(pf_stride)
    args.pf_conf = ptr(pf_conf)

    args.ssit_bits = store_sets._ssit_bits
    args.lfst_entries = store_sets.lfst_entries
    ssit = arr(np.full(1 << store_sets._ssit_bits, -1, dtype=np.int64),
               np.int64)
    lfst = arr(np.full(store_sets.lfst_entries, -1, dtype=np.int64), np.int64)
    args.ssit = ptr(ssit)
    args.lfst = ptr(lfst)

    # ---- predictor state (copied; written back only on success) ----------
    args.ptype = ptype
    dummy_i64 = arr(np.zeros(1, dtype=np.int64), np.int64)
    dummy_u64 = arr(np.zeros(1, dtype=np.uint64), np.uint64)
    dummy_u8 = arr(np.zeros(1, dtype=np.uint8), np.uint8)
    dummy_i8 = arr(np.zeros(1, dtype=np.int8), np.int8)
    args.conf_kind = 0
    args.conf_max_level = 0
    args.fpc_prob = ptr(dummy_i64)
    args.fpc_taps = 0
    args.fpc_state = 0
    args.tbl_mask = 0
    args.tbl_tags = ptr(dummy_u64)
    args.tbl_tag_valid = ptr(dummy_u8)
    args.tbl_values = ptr(dummy_u64)
    args.tbl_conf = ptr(dummy_i64)
    args.two_delta = 0
    args.st_stride = ptr(dummy_u64)
    args.st_stride2 = ptr(dummy_u64)
    args.st_spec_value = ptr(dummy_u64)
    args.st_spec_has = ptr(dummy_u8)
    args.st_inflight = ptr(dummy_i64)
    args.vt_ncomp = 0
    args.vt_entries = 0
    args.vt_base_mask = 0
    args.vt_base_values = ptr(dummy_u64)
    args.vt_base_conf = ptr(dummy_i64)
    args.vt_tags = ptr(dummy_i64)
    args.vt_values = ptr(dummy_u64)
    args.vt_conf = ptr(dummy_i64)
    args.vt_useful = ptr(dummy_i8)
    args.vp_idx = ptr(dummy_i64)
    args.vp_tag = ptr(dummy_i64)
    args.vt_taps = 0
    args.vt_state = 0

    tbl = None
    vt_state_arrays = None
    from repro.pipeline.fastsim import (  # local import: avoid cycle at load
        _P_LVP,
        _P_STRIDE,
        _P_VTAGE,
    )

    if ptype in (_P_LVP, _P_STRIDE):
        fields = _policy_fields(predictor.confidence)
        if fields is None:
            return None
        args.conf_kind, args.conf_max_level, prob, taps, state = fields
        keep.append(prob)
        args.fpc_prob = ptr(prob)
        args.fpc_taps = taps
        args.fpc_state = state
        entries = predictor.entries
        args.tbl_mask = entries - 1
        raw_tags = predictor._tags
        tag_valid = arr([t is not None for t in raw_tags], np.uint8)
        tags = arr([t if t is not None else 0 for t in raw_tags], np.uint64)
        args.tbl_tags = ptr(tags)
        args.tbl_tag_valid = ptr(tag_valid)
        if ptype == _P_LVP:
            values = arr(predictor._values, np.uint64)
            conf = arr(predictor._conf, np.int64)
            args.tbl_values = ptr(values)
            args.tbl_conf = ptr(conf)
            tbl = ("lvp", tags, tag_valid, values, conf)
        else:
            from repro.predictors.stride import TwoDeltaStridePredictor

            two_delta = type(predictor) is TwoDeltaStridePredictor
            last = arr(predictor._last, np.uint64)
            conf = arr(predictor._conf, np.int64)
            stride = arr(predictor._stride, np.uint64)
            stride2 = (
                arr(predictor._stride2, np.uint64) if two_delta else stride
            )
            spec_value = arr(np.zeros(entries, dtype=np.uint64), np.uint64)
            spec_has = arr(np.zeros(entries, dtype=np.uint8), np.uint8)
            inflight = arr(np.zeros(entries, dtype=np.int64), np.int64)
            for idx, value in predictor._spec_last.items():
                spec_value[idx] = value
                spec_has[idx] = 1
            for idx, live in predictor._inflight.items():
                inflight[idx] = live
            args.tbl_values = ptr(last)
            args.tbl_conf = ptr(conf)
            args.two_delta = 1 if two_delta else 0
            args.st_stride = ptr(stride)
            args.st_stride2 = ptr(stride2)
            args.st_spec_value = ptr(spec_value)
            args.st_spec_has = ptr(spec_has)
            args.st_inflight = ptr(inflight)
            tbl = ("stride", tags, tag_valid, last, conf, stride, stride2,
                   two_delta, spec_value, spec_has, inflight)
    elif ptype == _P_VTAGE:
        vt = predictor
        if vt._conf_threshold is None:
            return None
        fields = _policy_fields(vt.confidence)
        if fields is None:
            return None
        args.conf_kind, args.conf_max_level, prob, taps, state = fields
        keep.append(prob)
        args.fpc_prob = ptr(prob)
        args.fpc_taps = taps
        args.fpc_state = state
        comps = vt.components
        ncomp = len(comps)
        if ncomp == 0 or ncomp > _MAX_COMPONENTS:
            return None
        entries = comps[0].entries
        if any(c.entries != entries for c in comps):
            return None
        vt_tags = arr(np.concatenate(
            [np.asarray(c.tags, dtype=np.int64) for c in comps]), np.int64)
        vt_values = arr(np.concatenate(
            [np.asarray(c.values, dtype=np.uint64) for c in comps]),
            np.uint64)
        vt_conf = arr(np.concatenate(
            [np.asarray(c.conf, dtype=np.int64) for c in comps]), np.int64)
        vt_useful = arr(np.concatenate(
            [np.asarray(c.useful, dtype=np.int8) for c in comps]), np.int8)
        base_values = arr(vt._base_values, np.uint64)
        base_conf = arr(vt._base_conf, np.int64)
        vp_idx = arr(np.concatenate(vplane.idx), np.int32)
        vp_tag = arr(np.concatenate(vplane.tag), np.int32)
        args.vt_ncomp = ncomp
        args.vt_entries = entries
        args.vt_base_mask = vt._base_index_mask
        args.vt_base_values = ptr(base_values)
        args.vt_base_conf = ptr(base_conf)
        args.vt_tags = ptr(vt_tags)
        args.vt_values = ptr(vt_values)
        args.vt_conf = ptr(vt_conf)
        args.vt_useful = ptr(vt_useful)
        args.vp_idx = ptr(vp_idx)
        args.vp_tag = ptr(vp_tag)
        args.vt_taps = vt._lfsr._taps
        args.vt_state = vt._lfsr.state
        vt_state_arrays = (vt_tags, vt_values, vt_conf, vt_useful,
                           base_values, base_conf, ncomp, entries)

    out = arr(np.zeros(_N_OUT, dtype=np.int64), np.int64)
    args.out = ptr(out)

    ret = lib.repro_kernel_run(ctypes.byref(args))
    if ret != 0 or out[_O_ERROR] != 0:
        return None

    # ---- write state back into the live model objects --------------------
    for prefix, (cache, lines, fill, count, mshr) in cache_arrays.items():
        ways = cache.config.ways
        sets = cache.config.sets
        lines2 = lines.reshape(sets, ways)
        fill2 = fill.reshape(sets, ways)
        fill_ready = {}
        cache_sets = cache._sets
        for s in range(sets):
            cnt = int(count[s])
            if not cnt:
                cache_sets[s] = []
                continue
            row = lines2[s, :cnt].tolist()
            cache_sets[s] = row
            for line, ready in zip(row, fill2[s, :cnt].tolist()):
                fill_ready[line] = ready
        cache._fill_ready = fill_ready
        mshr_n = int(out[
            {"l1i": _O_L1I_MSHR_N, "l1d": _O_L1D_MSHR_N,
             "l2": _O_L2_MSHR_N}[prefix]
        ])
        cache._mshr_heap = mshr[:mshr_n].tolist()
        hits_slot, miss_slot, stall_slot = {
            "l1i": (_O_L1I_HITS, _O_L1I_MISSES, _O_L1I_MSHR_STALLS),
            "l1d": (_O_L1D_HITS, _O_L1D_MISSES, _O_L1D_MSHR_STALLS),
            "l2": (_O_L2_HITS, _O_L2_MISSES, _O_L2_MSHR_STALLS),
        }[prefix]
        cache.hits = int(out[hits_slot])
        cache.misses = int(out[miss_slot])
        cache.mshr_stalls = int(out[stall_slot])

    dram.requests = int(out[_O_DRAM_REQUESTS])
    dram.row_hits = int(out[_O_DRAM_ROW_HITS])
    dram._channel_free = int(out[_O_DRAM_CHANNEL_FREE])
    dram._bank_free = bank_free.tolist()
    dram._open_rows = {
        bank: int(row) for bank, row in enumerate(open_rows.tolist())
        if row != -1
    }

    pf._pcs = pf_pcs.tolist()
    pf._last_addr = pf_last.tolist()
    pf._stride = pf_stride.tolist()
    pf._conf = pf_conf.tolist()
    pf.issued = int(out[_O_PF_ISSUED])

    store_sets._ssit = {
        i: int(v) for i, v in enumerate(ssit.tolist()) if v != -1
    }
    store_sets._lfst = {
        i: int(v) for i, v in enumerate(lfst.tolist()) if v != -1
    }
    store_sets._next_ssid = int(out[_O_SS_NEXT_SSID])
    store_sets.violations_trained = int(out[_O_SS_VIOLATIONS])

    if tbl is not None:
        if tbl[0] == "lvp":
            __, tags, tag_valid, values, conf = tbl
            predictor._tags[:] = [
                int(t) if v else None
                for t, v in zip(tags.tolist(), tag_valid.tolist())
            ]
            predictor._values[:] = values.tolist()
            predictor._conf[:] = conf.tolist()
        else:
            (__, tags, tag_valid, last, conf, stride, stride2, two_delta,
             spec_value, spec_has, inflight) = tbl
            predictor._tags[:] = [
                int(t) if v else None
                for t, v in zip(tags.tolist(), tag_valid.tolist())
            ]
            predictor._last[:] = last.tolist()
            predictor._conf[:] = conf.tolist()
            predictor._stride[:] = stride.tolist()
            if two_delta:
                predictor._stride2[:] = stride2.tolist()
            predictor._spec_last.clear()
            predictor._inflight.clear()
            for idx in np.flatnonzero(spec_has).tolist():
                predictor._spec_last[idx] = int(spec_value[idx])
            for idx in np.flatnonzero(inflight).tolist():
                predictor._inflight[idx] = int(inflight[idx])
    elif vt_state_arrays is not None:
        (vt_tags, vt_values, vt_conf, vt_useful, base_values, base_conf,
         ncomp, entries) = vt_state_arrays
        vt = predictor
        for c, comp in enumerate(vt.components):
            lo, hi = c * entries, (c + 1) * entries
            comp.tags[:] = vt_tags[lo:hi].tolist()
            comp.values[:] = vt_values[lo:hi].tolist()
            comp.conf[:] = vt_conf[lo:hi].tolist()
            comp.useful[:] = vt_useful[lo:hi].tolist()
        vt._base_values[:] = base_values.tolist()
        vt._base_conf[:] = base_conf.tolist()
        vt._tags_gen += int(out[_O_VT_ALLOCATIONS])
        vt._lfsr.state = int(out[_O_VT_STATE]) & MASK64
    if args.conf_kind == 1:
        predictor.confidence.lfsr.state = int(out[_O_FPC_STATE]) & MASK64

    # ---- assemble the SimResult -----------------------------------------
    result = SimResult(
        workload=workload if workload is not None else trace.name,
        predictor=predictor.name if ptype != 0 else "none",
        recovery=cfg.recovery.value,
    )
    result.n_uops = int(out[_O_N_UOPS])
    result.cycles = int(out[_O_CYCLES])
    result.cond_branches = int(out[_O_COND_BRANCHES])
    result.branch_mispredicts = int(out[_O_BRANCH_MISP])
    result.btb_redirects = int(out[_O_BTB_REDIRECTS])
    result.vp_eligible = int(out[_O_VP_ELIGIBLE])
    result.vp_predicted = int(out[_O_VP_PREDICTED])
    result.vp_used = int(out[_O_VP_USED])
    result.vp_correct_used = int(out[_O_VP_CORRECT_USED])
    result.vp_wrong_used = int(out[_O_VP_WRONG_USED])
    result.vp_squashes = int(out[_O_VP_SQUASHES])
    result.vp_harmless_wrong = int(out[_O_VP_HARMLESS])
    result.vp_reissues = int(out[_O_VP_REISSUES])
    result.vp_write_delayed = int(out[_O_VP_WRITE_DELAYED])
    result.mem_violations = int(out[_O_MEM_VIOLATIONS])
    result.rob_stalls = int(out[_O_ROB_STALLS])
    result.iq_stalls = int(out[_O_IQ_STALLS])
    result.l1d_misses = int(out[_O_L1D_MISSES])
    result.l1d_accesses = int(out[_O_L1D_HITS]) + int(out[_O_L1D_MISSES])
    result.l2_misses = int(out[_O_L2_MISSES])
    result.l2_accesses = int(out[_O_L2_HITS]) + int(out[_O_L2_MISSES])
    return result
