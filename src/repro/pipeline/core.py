"""Cycle-level trace-driven model of the Table 2 out-of-order core.

The model processes the correct-path µop trace in program order and computes
for every µop its fetch, dispatch, issue, completion and commit cycles,
subject to:

* fetch bandwidth (8 µops/cycle, 2 taken branches/cycle, L1I);
* the 15-cycle in-order front end and 4-cycle in-order back end;
* finite ROB/IQ/LQ/SQ/physical-register resources;
* issue width and functional-unit pools (non-pipelined dividers);
* the cache hierarchy, DRAM, store-set-predicted memory dependences;
* TAGE branch mispredictions (resolved at execute) and BTB misses
  (resolved at decode);
* value prediction: predictions are made at fetch, written into the PRF
  through a limited number of extra write ports before dispatch
  (Section 4), validated at commit, and recovered via either pipeline
  squashing at commit or idealistic selective reissue (Section 7.2.1).

Scheduling model notes (see DESIGN.md for the full discussion):

* This is a *one-pass interval scheduler*: each µop's stage times are
  computed once, in program order.  Wrong-path execution is not simulated;
  mispredictions charge their redirect/refill latency instead.
* The squash-avoidance rule ("squashing can be avoided if the predicted
  result has not been used yet") is evaluated with a bounded lookahead that
  estimates whether the first in-window consumer would have issued before
  the producer executed.  The estimate errs toward squashing, which is the
  conservative direction for the paper's claims.
* Value predictors are trained *at commit*: training events are queued with
  their commit cycle and applied only once the fetch clock passes that
  cycle, so closely-spaced occurrences of an instruction see stale tables
  and confidence counters, exactly like in-flight occurrences in hardware
  (this reproduces the tight-loop repeated-misprediction pathology of
  Section 7.2.1).

Implementation notes (DESIGN.md, "Performance architecture"):

* The scheduler iterates the trace's *columnar* arrays
  (:meth:`~repro.isa.trace.Trace.columns`) — flat lists of predictor keys,
  I-cache line ids, op-class ints and eligibility flags precomputed once
  per cached trace — instead of touching µop attributes and properties per
  iteration.
* Every per-µop resource interaction (bandwidth limiters, in-order
  windows, the issue-queue heap, functional-unit pools) is inlined over
  locals-bound containers; the resource classes in
  :mod:`repro.pipeline.resources` remain the single source of truth for
  the semantics, and the loop mirrors them operation for operation.
* The hot loop allocates nothing on the common path: no
  :class:`~repro.predictors.base.Prediction` objects without a predictor,
  no per-µop tuples except the training-queue entries that genuinely
  outlive the iteration.
* All of this is *observationally invisible*: results are bit-identical
  to the straightforward seed model (pinned by the golden-equivalence
  grid in ``tests/unit/test_golden.py``).
"""

from __future__ import annotations

import gc
from collections import deque
from heapq import heappop, heappush, heapreplace

from repro.branch.unit import BranchUnit
from repro.isa.trace import Trace
from repro.isa.uop import OpClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.storesets import StoreSets
from repro.pipeline.config import CoreConfig, RecoveryMode
from repro.pipeline.resources import (
    BandwidthLimiter,
    InOrderWindow,
    OutOfOrderWindow,
    UnitPool,
)
from repro.pipeline.result import SimResult
from repro.predictors.base import ValuePredictor
from repro.predictors.oracle import OraclePredictor
from repro.util import profiling

_LINE_SHIFT = 6  # 64-byte I-cache lines

_N_OP_CLASSES = len(OpClass)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)

#: Watermark-advance period of the inlined scheduler loop (µops).  Between
#: advances each bandwidth limiter accumulates at most a few thousand
#: per-cycle entries; see BandwidthLimiter.advance_watermark.
_PRUNE_PERIOD_MASK = 4095


class CoreModel:
    """One simulation instance; use :func:`simulate` for the common path."""

    def __init__(
        self,
        config: CoreConfig | None = None,
        predictor: ValuePredictor | None = None,
    ):
        self.config = config if config is not None else CoreConfig()
        self.predictor = predictor
        self.memory = MemoryHierarchy()
        self.branch_unit = BranchUnit()
        self.store_sets = StoreSets()

    # ------------------------------------------------------------------

    def run(
        self,
        trace: Trace,
        warmup: int = 0,
        workload: str | None = None,
        stage_trace: list | None = None,
    ) -> SimResult:
        """Run the model over *trace*.

        When *stage_trace* is a list, one ``(seq, fetch, dispatch, ready,
        issue, complete, commit)`` tuple per µop is appended to it — the
        hook the timing tests and debugging tools use.
        """
        # The hot loop allocates short-lived tuples at a rate that makes
        # generation-0 cycle collections a measurable tax; nothing in the
        # loop creates reference cycles, so pause the collector for the
        # duration (reference counting still reclaims everything).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            with profiling.phase("simulate"):
                from repro.pipeline import fastsim

                mode = fastsim.fast_sim_mode()
                if stage_trace is not None:
                    if mode != "off":
                        fastsim.record_fallback("stage-trace-hook")
                        if mode == "require":
                            raise fastsim.FastPathRequired("stage-trace-hook")
                elif mode != "off":
                    result = fastsim.try_run(self, trace, warmup, workload)
                    if result is not None:
                        return result
                    if mode == "require":
                        raise fastsim.FastPathRequired(
                            fastsim.last_fallback() or "unknown")
                else:
                    fastsim.record_fallback("disabled-by-env")
                return self._run(trace, warmup, workload, stage_trace)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run(
        self,
        trace: Trace,
        warmup: int,
        workload: str | None,
        stage_trace: list | None,
    ) -> SimResult:
        cfg = self.config
        predictor = self.predictor
        have_predictor = predictor is not None
        is_oracle = isinstance(predictor, OraclePredictor)
        reissue = cfg.recovery is RecoveryMode.SELECTIVE_REISSUE

        result = SimResult(
            workload=workload if workload is not None else trace.name,
            predictor=predictor.name if have_predictor else "none",
            recovery=cfg.recovery.value,
        )

        # Bandwidth resources.  The loop below inlines their grant fast
        # path over direct references to the per-cycle count dicts; the
        # limiter objects stay authoritative for pruning and stats.
        fetch_bw = BandwidthLimiter(cfg.fetch_width)
        taken_bw = BandwidthLimiter(cfg.max_taken_per_cycle)
        issue_bw = BandwidthLimiter(cfg.issue_width)
        vp_write_bw = (
            BandwidthLimiter(cfg.vp_write_ports)
            if cfg.vp_write_ports is not None
            else None
        )
        fetch_counts = fetch_bw._counts
        taken_counts = taken_bw._counts
        issue_counts = issue_bw._counts
        fetch_width = cfg.fetch_width
        taken_width = cfg.max_taken_per_cycle
        issue_width = cfg.issue_width
        commit_width = cfg.commit_width
        # Dispatch and commit requests are *monotone* (both are clamped to
        # last_dispatch/last_commit before the grant), so their limiters
        # reduce to a (current cycle, used slots) pair: cycles before the
        # current one are provably full once the grant pointer passed them,
        # and no future request can probe them.  Equivalent to
        # BandwidthLimiter.grant under monotone requests, with zero
        # retained state.
        dbw_cycle = -1
        dbw_used = 0
        cbw_cycle = -1
        cbw_used = 0

        # Window resources (inlined below; objects kept for stats).
        fetch_queue = InOrderWindow(cfg.fetch_queue)
        rob = InOrderWindow(cfg.rob_entries)
        iq = OutOfOrderWindow(cfg.iq_entries)
        lq = InOrderWindow(cfg.lq_entries)
        sq = InOrderWindow(cfg.sq_entries)
        int_prf = InOrderWindow(max(1, cfg.int_prf - cfg.arch_regs))
        fp_prf = InOrderWindow(max(1, cfg.fp_prf - cfg.arch_regs))
        fq_rel = fetch_queue._releases
        fq_size = fetch_queue.size
        rob_rel = rob._releases
        rob_size = rob.size
        iq_rel = iq._releases
        iq_size = iq.size
        lq_rel = lq._releases
        lq_size = lq.size
        sq_rel = sq._releases
        sq_size = sq.size
        int_prf_rel = int_prf._releases
        int_prf_size = int_prf.size
        fp_prf_rel = fp_prf._releases
        fp_prf_size = fp_prf.size
        rob_stalls = iq_stalls = 0
        # Window occupancy mirrors: every container mutation below adjusts
        # its counter, so the full-window checks are integer compares
        # rather than len() calls.
        fq_len = rob_len = iq_len = lq_len = sq_len = 0
        int_prf_len = fp_prf_len = 0

        # Functional units: per-op-class free-server heaps and timings,
        # flattened to int-indexed lists.  Aliasing preserves the shared
        # pools (dividers ride the multipliers, stores the load ports,
        # control the INT ALUs).
        pools = {
            OpClass.INT_ALU: UnitPool(cfg.fu[OpClass.INT_ALU].units),
            OpClass.INT_MUL: UnitPool(cfg.fu[OpClass.INT_MUL].units),
            OpClass.FP_ADD: UnitPool(cfg.fu[OpClass.FP_ADD].units),
            OpClass.FP_MUL: UnitPool(cfg.fu[OpClass.FP_MUL].units),
            OpClass.LOAD: UnitPool(cfg.fu[OpClass.LOAD].units),
        }
        pools[OpClass.INT_DIV] = pools[OpClass.INT_MUL]
        pools[OpClass.FP_DIV] = pools[OpClass.FP_MUL]
        pools[OpClass.STORE] = pools[OpClass.LOAD]
        for cls in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET, OpClass.NOP):
            pools[cls] = pools[OpClass.INT_ALU]
        pool_free = [pools[OpClass(c)]._free for c in range(_N_OP_CLASSES)]
        lats = [cfg.fu[OpClass(c)].latency for c in range(_N_OP_CLASSES)]
        occs = [cfg.fu[OpClass(c)].occupancy for c in range(_N_OP_CLASSES)]

        # Per-architectural-register operand state over the flat 64-entry
        # register space (0-31 integer, 32-63 floating point): the cycle the
        # value is ready for a consumer to issue, and (for reissue-mode IQ
        # pressure) the commit cycle of a speculatively-predicted producer.
        reg_ready = [0] * 64
        reg_spec_commit = [0] * 64

        # In-flight stores for dependence/forwarding checks:
        # (seq, start, end, data_ready, commit, pc).
        store_buffer: deque = deque(maxlen=cfg.sq_entries + 16)

        # Commit-time predictor training queue: (commit_cycle, key, actual,
        # prediction-record).
        train_queue: deque = deque()

        branch_unit = self.branch_unit
        process_branch = branch_unit.process_scalar
        store_sets = self.store_sets
        predicted_store = store_sets.predicted_store
        store_fetched = store_sets.store_fetched
        memory = self.memory
        memory_fetch = memory.fetch
        memory_store = memory.store
        ctx = branch_unit.context
        if have_predictor:
            predictor_lookup = predictor.lookup
            predictor_train = predictor.train
            # speculate() is a no-op unless the predictor overrides it
            # (VTAGE holds no speculative per-instruction state); skip the
            # call entirely in that case.
            predictor_speculate = (
                predictor.speculate
                if type(predictor).speculate is not ValuePredictor.speculate
                else None
            )
        cols = trace.columns()
        n_uops = cols.n
        col_seq = cols.seqs
        col_pc = cols.pcs
        col_line = cols.pc_lines
        col_op = cols.ops
        col_srcs = cols.srcs
        col_dst = cols.dsts
        col_value = cols.values
        col_addr = cols.mem_addrs
        col_size = cols.mem_sizes
        col_taken = cols.takens
        col_target = cols.targets
        col_fp = cols.dst_is_fp
        col_is_branch = cols.is_branch
        col_is_cond = cols.is_cond_branch
        col_produces = cols.produces_value
        col_pkey = cols.pkeys

        frontend = cfg.frontend_depth
        backend = cfg.backend_depth
        redirect_extra = cfg.redirect_extra
        decode_redirect_depth = cfg.decode_redirect_depth
        lookahead_cap = cfg.squash_lookahead
        load_timing = self._load_timing
        consumer_before = self._consumer_before

        fetch_resume = 0
        line_ready = 0
        current_line = -1
        last_fetch = 0
        last_dispatch = 0
        last_commit = 0
        measure_start_commit = None
        vp_all_scope = cfg.vp_scope == "all"

        # Measurement tallies kept in locals; folded into `result` once
        # after the loop (attribute stores are not free at this call rate).
        n_uops_meas = 0
        cond_branches = 0
        branch_mispredicts = 0
        btb_redirects = 0
        vp_eligible_n = vp_predicted_n = vp_used_n = 0
        vp_correct_used = vp_wrong_used = 0
        vp_squashes = vp_harmless_wrong = vp_reissues = 0

        # Earliest queued training commit cycle (sentinel when empty): one
        # int compare per µop instead of a deque peek.
        _NEVER = 1 << 62
        next_train = _NEVER

        # One fused iterator over the always-consumed columns: a single
        # tuple unpack per µop instead of a subscript per field.  Rarely
        # consumed columns (memory operands, values, predictor keys,
        # sequence numbers) stay indexed on demand.
        rows = zip(
            col_op, col_pc, col_line, col_srcs, col_dst,
            col_fp, col_is_branch, col_is_cond, col_produces,
        )
        for i, (op, pc, pc_line, srcs, dst,
                dst_fp, is_branch, is_cond, produces) in enumerate(rows):
            measured = i >= warmup
            is_load = op == _LOAD
            is_store = op == _STORE

            # ---- Fetch ------------------------------------------------
            if pc_line != current_line:
                current_line = pc_line
                floor = fetch_resume if fetch_resume > last_fetch else last_fetch
                line_ready = memory_fetch(pc, floor)
                if line_ready <= floor + 1:
                    line_ready = 0  # L1I hit: no extra constraint
            # The fetch queue provides front-end backpressure: fetch stalls
            # once `fetch_queue` µops are in flight between fetch and
            # dispatch, instead of racing arbitrarily far ahead.
            fetch = fetch_resume if fetch_resume > line_ready else line_ready
            if fq_len >= fq_size:
                oldest = fq_rel.popleft()
                fq_len -= 1
                if oldest > fetch:
                    fetch_queue.stalls += 1
                    fetch = oldest
            used = fetch_counts.get(fetch, 0)
            while used >= fetch_width:
                fetch += 1
                used = fetch_counts.get(fetch, 0)
            fetch_counts[fetch] = used + 1
            if is_branch and col_taken[i]:
                used = taken_counts.get(fetch, 0)
                while used >= taken_width:
                    fetch += 1
                    used = taken_counts.get(fetch, 0)
                taken_counts[fetch] = used + 1
            last_fetch = fetch

            # ---- Apply predictor trainings that have committed by now --
            while next_train <= fetch:
                __, key, actual, pred_rec = train_queue.popleft()
                predictor_train(key, actual, pred_rec)
                next_train = train_queue[0][0] if train_queue else _NEVER

            # ---- Branch prediction (and shared history maintenance) ----
            branch_redirect = 0
            if is_branch:
                # Scalar columns instead of the µop object: store-loaded
                # and shm-attached traces never materialise MicroOps here.
                bres = process_branch(op, pc, col_taken[i], col_target[i])
                if bres.direction_mispredict:
                    branch_redirect = 1  # resolved at execute
                elif bres.target_mispredict:
                    branch_redirect = 2  # resolved at decode

            # ---- Value prediction at fetch ------------------------------
            prediction = None
            vp_used = False
            vp_wrong = False
            eligible = (
                have_predictor
                and produces
                and (vp_all_scope or is_load)
            )
            if eligible:
                pkey = col_pkey[i]
                if is_oracle:
                    predictor.set_actual(col_value[i])
                prediction = predictor_lookup(pkey, ctx)
                if prediction is not None:
                    if predictor_speculate is not None:
                        predictor_speculate(pkey, prediction)
                    if prediction.confident:
                        vp_used = True
                        vp_wrong = prediction.value != col_value[i]
                if measured:
                    vp_eligible_n += 1
                    if prediction is not None:
                        vp_predicted_n += 1
                    if vp_used:
                        vp_used_n += 1
                        if vp_wrong:
                            vp_wrong_used += 1
                        else:
                            vp_correct_used += 1

            # ---- Dispatch (rename + window allocation) ------------------
            dispatch = fetch + frontend
            if vp_used and vp_write_bw is not None:
                # Predicted value written to the PRF through a limited
                # number of extra write ports before dispatch (Section 4
                # ablation; unlimited in the paper's baseline methodology).
                write_cycle = vp_write_bw.grant(fetch + 2)
                if write_cycle + 1 > dispatch:
                    if measured:
                        result.vp_write_delayed += 1
                    dispatch = write_cycle + 1
            # Dispatch is in order: a window-stalled µop stalls everything
            # behind it.
            if last_dispatch > dispatch:
                dispatch = last_dispatch
            if rob_len >= rob_size:
                oldest = rob_rel.popleft()
                rob_len -= 1
                if oldest > dispatch:
                    rob_stalls += 1
                    dispatch = oldest
            if iq_len >= iq_size:
                soonest = heappop(iq_rel)
                iq_len -= 1
                if soonest > dispatch:
                    iq_stalls += 1
                    dispatch = soonest
            if is_load:
                if lq_len >= lq_size:
                    oldest = lq_rel.popleft()
                    lq_len -= 1
                    if oldest > dispatch:
                        lq.stalls += 1
                        dispatch = oldest
            elif is_store:
                if sq_len >= sq_size:
                    oldest = sq_rel.popleft()
                    sq_len -= 1
                    if oldest > dispatch:
                        sq.stalls += 1
                        dispatch = oldest
            if dst is not None:
                if dst_fp:
                    if fp_prf_len >= fp_prf_size:
                        oldest = fp_prf_rel.popleft()
                        fp_prf_len -= 1
                        if oldest > dispatch:
                            fp_prf.stalls += 1
                            dispatch = oldest
                elif int_prf_len >= int_prf_size:
                    oldest = int_prf_rel.popleft()
                    int_prf_len -= 1
                    if oldest > dispatch:
                        int_prf.stalls += 1
                        dispatch = oldest
            if dispatch > dbw_cycle:
                dbw_cycle = dispatch
                dbw_used = 1
            elif dbw_used < fetch_width:
                dispatch = dbw_cycle
                dbw_used += 1
            else:
                dbw_cycle += 1
                dispatch = dbw_cycle
                dbw_used = 1
            last_dispatch = dispatch
            fq_rel.append(dispatch)
            fq_len += 1

            # ---- Operand readiness --------------------------------------
            ready = dispatch + 1
            spec_until = 0
            if reissue:
                for src in srcs:
                    src_ready = reg_ready[src]
                    if src_ready > ready:
                        ready = src_ready
                    sc = reg_spec_commit[src]
                    if sc > spec_until:
                        spec_until = sc
            else:
                # Squash-at-commit mode never marks speculative producers
                # (reg_spec_commit stays all-zero), so skip those reads.
                for src in srcs:
                    src_ready = reg_ready[src]
                    if src_ready > ready:
                        ready = src_ready

            # Store-set-predicted memory dependence: the load waits for the
            # predicted store's data.
            wait_store_seq = -1
            if is_load:
                predicted = predicted_store(pc)
                if predicted is not None:
                    for entry in reversed(store_buffer):
                        if entry[0] == predicted:
                            if entry[3] > ready:
                                ready = entry[3]
                            wait_store_seq = predicted
                            break

            # ---- Issue + execute ----------------------------------------
            free = pool_free[op]
            start = free[0]
            if ready > start:
                start = ready
            heapreplace(free, start + occs[op])
            issue = start
            used = issue_counts.get(issue, 0)
            while used >= issue_width:
                issue += 1
                used = issue_counts.get(issue, 0)
            issue_counts[issue] = used + 1
            if is_load:
                complete = load_timing(
                    pc, col_addr[i], col_size[i], issue,
                    store_buffer, wait_store_seq, result, measured,
                )
                if complete < 0:  # memory-order violation: squash younger
                    complete = -complete
                    resume = complete + redirect_extra
                    if resume > fetch_resume:
                        fetch_resume = resume
            elif is_store:
                complete = issue + 1
            else:
                complete = issue + lats[op]

            # ---- Commit ---------------------------------------------------
            commit = complete + backend
            if last_commit > commit:
                commit = last_commit
            if commit > cbw_cycle:
                cbw_cycle = commit
                cbw_used = 1
            elif cbw_used < commit_width:
                commit = cbw_cycle
                cbw_used += 1
            else:
                cbw_cycle += 1
                commit = cbw_cycle
                cbw_used = 1
            last_commit = commit

            # ---- Branch redirect -----------------------------------------
            if branch_redirect:
                if branch_redirect == 1:  # execute-resolved mispredict
                    resume = complete + redirect_extra
                    if measured:
                        branch_mispredicts += 1
                else:  # decode-resolved BTB redirect
                    resume = fetch + decode_redirect_depth
                    if measured:
                        btb_redirects += 1
                if resume > fetch_resume:
                    fetch_resume = resume
            if measured and is_cond:
                cond_branches += 1

            # ---- Value prediction outcome --------------------------------
            consumer_ready = complete
            producer_spec_commit = 0
            if eligible:
                if prediction is not None:
                    if vp_used and not vp_wrong:
                        # Correct used prediction: consumers got the value
                        # from the PRF at their own dispatch; no operand
                        # constraint.  Under selective reissue, value-
                        # speculative consumers hold their IQ entry until
                        # the producer executes and validates (Section
                        # 7.2.1's IQ pressure).
                        consumer_ready = 0
                        producer_spec_commit = complete if reissue else 0
                    elif vp_used:
                        if reissue:
                            # Idealistic selective reissue: dependents
                            # replay and see the correct value at
                            # execution time.
                            consumer_ready = complete
                            producer_spec_commit = complete
                            if measured:
                                vp_reissues += 1
                        else:
                            consumed_early = consumer_before(
                                col_srcs, col_dst, i, fetch, complete,
                                frontend, fetch_width, lookahead_cap,
                            )
                            if consumed_early:
                                # Squash at commit: flush everything younger.
                                resume = commit + redirect_extra
                                if resume > fetch_resume:
                                    fetch_resume = resume
                                predictor.on_squash()
                                store_sets.flush_inflight()
                                store_buffer.clear()
                                if measured:
                                    vp_squashes += 1
                            else:
                                # Prediction replaced at execute before any
                                # consumer issued: no recovery needed.
                                if measured:
                                    vp_harmless_wrong += 1
                    if next_train == _NEVER:
                        next_train = commit
                    train_queue.append((commit, pkey, col_value[i], prediction))
                else:
                    # Lookup missed: still train (allocation path).
                    if next_train == _NEVER:
                        next_train = commit
                    train_queue.append((commit, pkey, col_value[i], None))

            # ---- Register state update ------------------------------------
            if dst is not None:
                reg_ready[dst] = consumer_ready
                if reissue:
                    reg_spec_commit[dst] = producer_spec_commit

            # ---- Window releases ------------------------------------------
            rob_rel.append(commit)
            rob_len += 1
            heappush(iq_rel, max(issue, spec_until) if reissue else issue)
            iq_len += 1
            if is_load:
                lq_rel.append(commit)
                lq_len += 1
            elif is_store:
                sq_rel.append(commit)
                sq_len += 1
                addr = col_addr[i]
                store_buffer.append(
                    (col_seq[i], addr, addr + col_size[i], complete, commit, pc)
                )
                store_fetched(pc, col_seq[i])
                memory_store(pc, addr, commit)
            if dst is not None:
                if dst_fp:
                    fp_prf_rel.append(commit)
                    fp_prf_len += 1
                else:
                    int_prf_rel.append(commit)
                    int_prf_len += 1

            # ---- Measurement bookkeeping ----------------------------------
            if stage_trace is not None:
                stage_trace.append((col_seq[i], fetch, dispatch, ready, issue, complete, commit))
            if measured:
                if measure_start_commit is None:
                    # Cycles are counted commit-to-commit over the
                    # measurement region, immune to transient front-end
                    # backlog at the region boundary.
                    measure_start_commit = commit
                n_uops_meas += 1

            # ---- Retire per-cycle bandwidth bookkeeping -------------------
            if not (i & _PRUNE_PERIOD_MASK):
                # Cheap watermarks: issue requests are monotone in
                # last_dispatch.  (Dispatch/commit bandwidth is tracked by
                # the dict-free monotone pairs above.)  Fetch-side probes
                # are bounded below by fetch_resume and — once the fetch
                # queue has filled, which is permanent since it pops only
                # when full and pushes every µop — by the queue's oldest
                # pending release (a dispatch cycle fq_size µops back,
                # monotone), so pruning advances even on redirect-free
                # stretches where fetch_resume never moves.
                issue_bw.advance_watermark(last_dispatch)
                fetch_floor = fetch_resume
                if fq_len >= fq_size and fq_rel[0] > fetch_floor:
                    fetch_floor = fq_rel[0]
                fetch_bw.advance_watermark(fetch_floor)
                taken_bw.advance_watermark(fetch_floor)
                if vp_write_bw is not None:
                    vp_write_bw.advance_watermark(fetch_floor)

        # Flush remaining trainings (end of trace).
        while train_queue:
            __, key, actual, pred_rec = train_queue.popleft()
            predictor.train(key, actual, pred_rec)

        if measure_start_commit is None:
            measure_start_commit = 0
        rob.stalls = rob_stalls
        iq.stalls = iq_stalls
        result.n_uops = n_uops_meas
        result.cond_branches = cond_branches
        result.branch_mispredicts = branch_mispredicts
        result.btb_redirects = btb_redirects
        result.vp_eligible = vp_eligible_n
        result.vp_predicted = vp_predicted_n
        result.vp_used = vp_used_n
        result.vp_correct_used = vp_correct_used
        result.vp_wrong_used = vp_wrong_used
        result.vp_squashes = vp_squashes
        result.vp_harmless_wrong = vp_harmless_wrong
        result.vp_reissues = vp_reissues
        result.cycles = max(1, last_commit - measure_start_commit)
        result.rob_stalls = rob_stalls
        result.iq_stalls = iq_stalls
        result.l1d_misses = memory.l1d.misses
        result.l1d_accesses = memory.l1d.hits + memory.l1d.misses
        result.l2_misses = memory.l2.misses
        result.l2_accesses = memory.l2.hits + memory.l2.misses
        return result

    # ------------------------------------------------------------------

    def _load_timing(
        self,
        pc: int,
        addr: int,
        size: int,
        issue: int,
        store_buffer: deque,
        waited_seq: int,
        result: SimResult,
        measured: bool,
    ) -> int:
        """Completion cycle of a load; negative => violation squash at |value|."""
        end = addr + size
        agu_done = issue + 1
        # Youngest older in-flight store overlapping this access.  Commit
        # cycles are non-decreasing in append order, so the first retired
        # entry seen scanning youngest-first means every older entry is
        # retired too — stop there instead of walking the whole buffer.
        for entry in reversed(store_buffer):
            seq, s_start, s_end, data_ready, s_commit, s_pc = entry
            if s_commit <= agu_done:
                break  # this store and everything older has retired
            if s_start < end and addr < s_end:
                if data_ready <= agu_done or seq == waited_seq:
                    # Store-to-load forwarding from the store queue.
                    return max(agu_done, data_ready) + 1
                # The load executed before an older conflicting store it was
                # not predicted to depend on: memory-order violation.
                self.store_sets.train_violation(pc, s_pc)
                if measured:
                    result.mem_violations += 1
                return -(data_ready + 2)
        access = self.memory.load(pc, addr, agu_done)
        return access.ready_cycle

    @staticmethod
    def _consumer_before(
        col_srcs,
        col_dst,
        i: int,
        fetch: int,
        complete: int,
        frontend: int,
        fetch_width: int,
        cap: int,
    ) -> bool:
        """Would any consumer of µop *i*'s destination have issued before
        *complete*?

        Estimates the earliest possible issue cycle (its dispatch) of the
        first in-window reader of the destination register, stopping at the
        first redefinition.  See module docstring for the approximation
        direction.
        """
        dst = col_dst[i]
        n = len(col_dst)
        limit = min(n, i + 1 + cap)
        for j in range(i + 1, limit):
            est_dispatch = fetch + (j - i + fetch_width - 1) // fetch_width + frontend
            if est_dispatch >= complete:
                return False  # every later consumer dispatches after execute
            if dst in col_srcs[j]:
                return True
            if col_dst[j] == dst:
                return False  # redefined before any read
        return False


def simulate(
    trace: Trace,
    predictor: ValuePredictor | None = None,
    config: CoreConfig | None = None,
    warmup: int = 0,
    workload: str | None = None,
) -> SimResult:
    """Convenience wrapper: build a :class:`CoreModel` and run *trace*."""
    model = CoreModel(config=config, predictor=predictor)
    return model.run(trace, warmup=warmup, workload=workload)
