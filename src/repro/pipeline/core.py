"""Cycle-level trace-driven model of the Table 2 out-of-order core.

The model processes the correct-path µop trace in program order and computes
for every µop its fetch, dispatch, issue, completion and commit cycles,
subject to:

* fetch bandwidth (8 µops/cycle, 2 taken branches/cycle, L1I);
* the 15-cycle in-order front end and 4-cycle in-order back end;
* finite ROB/IQ/LQ/SQ/physical-register resources;
* issue width and functional-unit pools (non-pipelined dividers);
* the cache hierarchy, DRAM, store-set-predicted memory dependences;
* TAGE branch mispredictions (resolved at execute) and BTB misses
  (resolved at decode);
* value prediction: predictions are made at fetch, written into the PRF
  through a limited number of extra write ports before dispatch
  (Section 4), validated at commit, and recovered via either pipeline
  squashing at commit or idealistic selective reissue (Section 7.2.1).

Scheduling model notes (see DESIGN.md for the full discussion):

* This is a *one-pass interval scheduler*: each µop's stage times are
  computed once, in program order.  Wrong-path execution is not simulated;
  mispredictions charge their redirect/refill latency instead.
* The squash-avoidance rule ("squashing can be avoided if the predicted
  result has not been used yet") is evaluated with a bounded lookahead that
  estimates whether the first in-window consumer would have issued before
  the producer executed.  The estimate errs toward squashing, which is the
  conservative direction for the paper's claims.
* Value predictors are trained *at commit*: training events are queued with
  their commit cycle and applied only once the fetch clock passes that
  cycle, so closely-spaced occurrences of an instruction see stale tables
  and confidence counters, exactly like in-flight occurrences in hardware
  (this reproduces the tight-loop repeated-misprediction pathology of
  Section 7.2.1).
"""

from __future__ import annotations

from collections import deque

from repro.branch.unit import BranchUnit
from repro.isa.trace import Trace
from repro.isa.uop import OpClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.storesets import StoreSets
from repro.pipeline.config import CoreConfig, RecoveryMode
from repro.pipeline.resources import (
    BandwidthLimiter,
    InOrderWindow,
    OutOfOrderWindow,
    UnitPool,
)
from repro.pipeline.result import SimResult
from repro.predictors.base import ValuePredictor
from repro.predictors.oracle import OraclePredictor

_LINE_SHIFT = 6  # 64-byte I-cache lines


class CoreModel:
    """One simulation instance; use :func:`simulate` for the common path."""

    def __init__(
        self,
        config: CoreConfig | None = None,
        predictor: ValuePredictor | None = None,
    ):
        self.config = config if config is not None else CoreConfig()
        self.predictor = predictor
        self.memory = MemoryHierarchy()
        self.branch_unit = BranchUnit()
        self.store_sets = StoreSets()

    # ------------------------------------------------------------------

    def run(
        self,
        trace: Trace,
        warmup: int = 0,
        workload: str | None = None,
        stage_trace: list | None = None,
    ) -> SimResult:
        """Run the model over *trace*.

        When *stage_trace* is a list, one ``(seq, fetch, dispatch, ready,
        issue, complete, commit)`` tuple per µop is appended to it — the
        hook the timing tests and debugging tools use.
        """
        cfg = self.config
        predictor = self.predictor
        is_oracle = isinstance(predictor, OraclePredictor)
        reissue = cfg.recovery is RecoveryMode.SELECTIVE_REISSUE

        result = SimResult(
            workload=workload if workload is not None else trace.name,
            predictor=predictor.name if predictor is not None else "none",
            recovery=cfg.recovery.value,
        )

        # Bandwidth resources.
        fetch_bw = BandwidthLimiter(cfg.fetch_width)
        taken_bw = BandwidthLimiter(cfg.max_taken_per_cycle)
        dispatch_bw = BandwidthLimiter(cfg.fetch_width)
        issue_bw = BandwidthLimiter(cfg.issue_width)
        commit_bw = BandwidthLimiter(cfg.commit_width)
        vp_write_bw = (
            BandwidthLimiter(cfg.vp_write_ports)
            if cfg.vp_write_ports is not None
            else None
        )
        # Window resources.
        fetch_queue = InOrderWindow(cfg.fetch_queue)
        rob = InOrderWindow(cfg.rob_entries)
        iq = OutOfOrderWindow(cfg.iq_entries)
        lq = InOrderWindow(cfg.lq_entries)
        sq = InOrderWindow(cfg.sq_entries)
        int_prf = InOrderWindow(max(1, cfg.int_prf - cfg.arch_regs))
        fp_prf = InOrderWindow(max(1, cfg.fp_prf - cfg.arch_regs))
        # Functional units.
        pools = {
            OpClass.INT_ALU: UnitPool(cfg.fu[OpClass.INT_ALU].units),
            OpClass.INT_MUL: UnitPool(cfg.fu[OpClass.INT_MUL].units),
            OpClass.FP_ADD: UnitPool(cfg.fu[OpClass.FP_ADD].units),
            OpClass.FP_MUL: UnitPool(cfg.fu[OpClass.FP_MUL].units),
            OpClass.LOAD: UnitPool(cfg.fu[OpClass.LOAD].units),
        }
        pools[OpClass.INT_DIV] = pools[OpClass.INT_MUL]
        pools[OpClass.FP_DIV] = pools[OpClass.FP_MUL]
        pools[OpClass.STORE] = pools[OpClass.LOAD]
        for cls in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET, OpClass.NOP):
            pools[cls] = pools[OpClass.INT_ALU]
        fu_timing = cfg.fu

        # Per-architectural-register operand state over the flat 64-entry
        # register space (0-31 integer, 32-63 floating point): the cycle the
        # value is ready for a consumer to issue, and (for reissue-mode IQ
        # pressure) the commit cycle of a speculatively-predicted producer.
        reg_ready = [0] * 64
        reg_spec_commit = [0] * 64

        # In-flight stores for dependence/forwarding checks:
        # (seq, start, end, data_ready, commit, pc).
        store_buffer: deque = deque(maxlen=cfg.sq_entries + 16)

        # Commit-time predictor training queue: (commit_cycle, key, actual,
        # prediction-record).
        train_queue: deque = deque()

        branch_unit = self.branch_unit
        store_sets = self.store_sets
        memory = self.memory
        ctx = branch_unit.context
        uops = trace.uops
        n_uops = len(uops)
        frontend = cfg.frontend_depth
        backend = cfg.backend_depth
        redirect_extra = cfg.redirect_extra
        fetch_width = cfg.fetch_width
        lookahead_cap = cfg.squash_lookahead

        fetch_resume = 0
        line_ready = 0
        current_line = -1
        last_fetch = 0
        last_dispatch = 0
        last_commit = 0
        measure_start_commit = None
        vp_all_scope = cfg.vp_scope == "all"

        for i, uop in enumerate(uops):
            measured = i >= warmup
            op = uop.op_class

            # ---- Fetch ------------------------------------------------
            pc_line = uop.pc >> _LINE_SHIFT
            if pc_line != current_line:
                current_line = pc_line
                line_ready = memory.fetch(uop.pc, max(fetch_resume, last_fetch))
                if line_ready <= max(fetch_resume, last_fetch) + 1:
                    line_ready = 0  # L1I hit: no extra constraint
            # The fetch queue provides front-end backpressure: fetch stalls
            # once `fetch_queue` µops are in flight between fetch and
            # dispatch, instead of racing arbitrarily far ahead.
            fetch = fetch_queue.acquire(max(fetch_resume, line_ready))
            fetch = fetch_bw.grant(fetch)
            if uop.is_branch and uop.taken:
                fetch = taken_bw.grant(fetch)
            last_fetch = fetch

            # ---- Apply predictor trainings that have committed by now --
            while train_queue and train_queue[0][0] <= fetch:
                __, key, actual, pred_rec = train_queue.popleft()
                predictor.train(key, actual, pred_rec)

            # ---- Branch prediction (and shared history maintenance) ----
            branch_redirect = None
            if uop.is_branch:
                bres = branch_unit.process(uop)
                if bres.direction_mispredict:
                    branch_redirect = "execute"
                elif bres.target_mispredict:
                    branch_redirect = "decode"

            # ---- Value prediction at fetch ------------------------------
            prediction = None
            vp_used = False
            vp_wrong = False
            eligible = (
                predictor is not None
                and uop.produces_value
                and (vp_all_scope or op is OpClass.LOAD)
            )
            if eligible:
                if is_oracle:
                    predictor.set_actual(uop.value)
                prediction = predictor.lookup(uop.predictor_key(), ctx)
                if prediction is not None:
                    predictor.speculate(uop.predictor_key(), prediction)
                    if prediction.confident:
                        vp_used = True
                        vp_wrong = prediction.value != uop.value
                if measured:
                    result.vp_eligible += 1
                    if prediction is not None:
                        result.vp_predicted += 1
                    if vp_used:
                        result.vp_used += 1
                        if vp_wrong:
                            result.vp_wrong_used += 1
                        else:
                            result.vp_correct_used += 1

            # ---- Dispatch (rename + window allocation) ------------------
            dispatch = fetch + frontend
            if vp_used and vp_write_bw is not None:
                # Predicted value written to the PRF through a limited
                # number of extra write ports before dispatch (Section 4
                # ablation; unlimited in the paper's baseline methodology).
                write_cycle = vp_write_bw.grant(fetch + 2)
                if write_cycle + 1 > dispatch:
                    if measured:
                        result.vp_write_delayed += 1
                    dispatch = write_cycle + 1
            # Dispatch is in order: a window-stalled µop stalls everything
            # behind it.
            dispatch = max(dispatch, last_dispatch)
            dispatch = rob.acquire(dispatch)
            dispatch = iq.acquire(dispatch)
            if op is OpClass.LOAD:
                dispatch = lq.acquire(dispatch)
            elif op is OpClass.STORE:
                dispatch = sq.acquire(dispatch)
            if uop.dst is not None:
                prf = fp_prf if uop.dst_is_fp else int_prf
                dispatch = prf.acquire(dispatch)
            dispatch = dispatch_bw.grant(dispatch)
            last_dispatch = dispatch
            fetch_queue.push_release(dispatch)

            # ---- Operand readiness --------------------------------------
            ready = dispatch + 1
            spec_until = 0
            for src in uop.srcs:
                src_ready = reg_ready[src]
                if src_ready > ready:
                    ready = src_ready
                sc = reg_spec_commit[src]
                if sc > spec_until:
                    spec_until = sc

            # Store-set-predicted memory dependence: the load waits for the
            # predicted store's data.
            wait_store_seq = -1
            if op is OpClass.LOAD:
                predicted = store_sets.predicted_store(uop.pc)
                if predicted is not None:
                    for entry in reversed(store_buffer):
                        if entry[0] == predicted:
                            if entry[3] > ready:
                                ready = entry[3]
                            wait_store_seq = predicted
                            break

            # ---- Issue + execute ----------------------------------------
            timing = fu_timing[op]
            start = pools[op].grant(ready, timing.occupancy)
            issue = issue_bw.grant(start)
            complete = issue + timing.latency

            if op is OpClass.LOAD:
                complete = self._load_timing(
                    uop, issue, store_buffer, wait_store_seq, result, measured
                )
                if complete < 0:  # memory-order violation: squash younger
                    complete = -complete
                    fetch_resume = max(fetch_resume, complete + redirect_extra)
            elif op is OpClass.STORE:
                complete = issue + 1

            # ---- Commit ---------------------------------------------------
            commit = commit_bw.grant(max(complete + backend, last_commit))
            last_commit = commit

            # ---- Branch redirect -----------------------------------------
            if branch_redirect == "execute":
                fetch_resume = max(fetch_resume, complete + redirect_extra)
                if measured:
                    result.branch_mispredicts += 1
            elif branch_redirect == "decode":
                fetch_resume = max(fetch_resume, fetch + cfg.decode_redirect_depth)
                if measured:
                    result.btb_redirects += 1
            if measured and uop.is_cond_branch:
                result.cond_branches += 1

            # ---- Value prediction outcome --------------------------------
            consumer_ready = complete
            producer_spec_commit = 0
            if eligible and prediction is not None:
                if vp_used and not vp_wrong:
                    # Correct used prediction: consumers got the value from
                    # the PRF at their own dispatch; no operand constraint.
                    # Under selective reissue, value-speculative consumers
                    # hold their IQ entry until the producer executes and
                    # validates (Section 7.2.1's IQ pressure).
                    consumer_ready = 0
                    producer_spec_commit = complete if reissue else 0
                elif vp_used and vp_wrong:
                    if reissue:
                        # Idealistic selective reissue: dependents replay
                        # and see the correct value at execution time.
                        consumer_ready = complete
                        producer_spec_commit = complete
                        if measured:
                            result.vp_reissues += 1
                    else:
                        consumed_early = self._consumer_before(
                            uops, i, fetch, complete, frontend, fetch_width, lookahead_cap
                        )
                        if consumed_early:
                            # Squash at commit: flush everything younger.
                            fetch_resume = max(fetch_resume, commit + redirect_extra)
                            predictor.on_squash()
                            store_sets.flush_inflight()
                            store_buffer.clear()
                            if measured:
                                result.vp_squashes += 1
                        else:
                            # Prediction replaced at execute before any
                            # consumer issued: no recovery needed.
                            if measured:
                                result.vp_harmless_wrong += 1
                train_queue.append((commit, uop.predictor_key(), uop.value, prediction))
            elif eligible:
                # Lookup missed: still train (allocation path).
                train_queue.append((commit, uop.predictor_key(), uop.value, None))

            # ---- Register state update ------------------------------------
            if uop.dst is not None:
                reg_ready[uop.dst] = consumer_ready
                reg_spec_commit[uop.dst] = producer_spec_commit

            # ---- Window releases ------------------------------------------
            rob.push_release(commit)
            iq.push_release(max(issue, spec_until) if reissue else issue)
            if op is OpClass.LOAD:
                lq.push_release(commit)
            elif op is OpClass.STORE:
                sq.push_release(commit)
                store_buffer.append(
                    (uop.seq, uop.mem_addr, uop.mem_addr + uop.mem_size, complete, commit, uop.pc)
                )
                store_sets.store_fetched(uop.pc, uop.seq)
                memory.store(uop.pc, uop.mem_addr, commit)
            if uop.dst is not None:
                (fp_prf if uop.dst_is_fp else int_prf).push_release(commit)

            # ---- Measurement bookkeeping ----------------------------------
            if stage_trace is not None:
                stage_trace.append((uop.seq, fetch, dispatch, ready, issue, complete, commit))
            if measured:
                if measure_start_commit is None:
                    # Cycles are counted commit-to-commit over the
                    # measurement region, immune to transient front-end
                    # backlog at the region boundary.
                    measure_start_commit = commit
                result.n_uops += 1

        # Flush remaining trainings (end of trace).
        while train_queue:
            __, key, actual, pred_rec = train_queue.popleft()
            predictor.train(key, actual, pred_rec)

        if measure_start_commit is None:
            measure_start_commit = 0
        result.cycles = max(1, last_commit - measure_start_commit)
        result.rob_stalls = rob.stalls
        result.iq_stalls = iq.stalls
        result.l1d_misses = memory.l1d.misses
        result.l1d_accesses = memory.l1d.hits + memory.l1d.misses
        result.l2_misses = memory.l2.misses
        result.l2_accesses = memory.l2.hits + memory.l2.misses
        return result

    # ------------------------------------------------------------------

    def _load_timing(
        self,
        uop,
        issue: int,
        store_buffer: deque,
        waited_seq: int,
        result: SimResult,
        measured: bool,
    ) -> int:
        """Completion cycle of a load; negative => violation squash at |value|."""
        addr = uop.mem_addr
        end = addr + uop.mem_size
        agu_done = issue + 1
        # Youngest older in-flight store overlapping this access.
        for entry in reversed(store_buffer):
            seq, s_start, s_end, data_ready, s_commit, s_pc = entry
            if s_commit <= agu_done:
                continue  # already retired when the load executes
            if s_start < end and addr < s_end:
                if data_ready <= agu_done or seq == waited_seq:
                    # Store-to-load forwarding from the store queue.
                    return max(agu_done, data_ready) + 1
                # The load executed before an older conflicting store it was
                # not predicted to depend on: memory-order violation.
                self.store_sets.train_violation(uop.pc, s_pc)
                if measured:
                    result.mem_violations += 1
                return -(data_ready + 2)
        access = self.memory.load(uop.pc, addr, agu_done)
        return access.ready_cycle

    @staticmethod
    def _consumer_before(
        uops,
        i: int,
        fetch: int,
        complete: int,
        frontend: int,
        fetch_width: int,
        cap: int,
    ) -> bool:
        """Would any consumer of uops[i].dst have issued before *complete*?

        Estimates the earliest possible issue cycle (its dispatch) of the
        first in-window reader of the destination register, stopping at the
        first redefinition.  See module docstring for the approximation
        direction.
        """
        uop = uops[i]
        dst = uop.dst
        n = len(uops)
        limit = min(n, i + 1 + cap)
        for j in range(i + 1, limit):
            est_dispatch = fetch + (j - i + fetch_width - 1) // fetch_width + frontend
            if est_dispatch >= complete:
                return False  # every later consumer dispatches after execute
            other = uops[j]
            if dst in other.srcs:
                return True
            if other.dst == dst:
                return False  # redefined before any read
        return False


def simulate(
    trace: Trace,
    predictor: ValuePredictor | None = None,
    config: CoreConfig | None = None,
    warmup: int = 0,
    workload: str | None = None,
) -> SimResult:
    """Convenience wrapper: build a :class:`CoreModel` and run *trace*."""
    model = CoreModel(config=config, predictor=predictor)
    return model.run(trace, warmup=warmup, workload=workload)
