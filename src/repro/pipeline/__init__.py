"""Cycle-level out-of-order core model (the gem5 substitute).

See DESIGN.md for the substitution argument: the paper measures value
prediction on a gem5-x86 cycle-accurate core; we reproduce the same
structural configuration (Table 2) with a trace-driven one-pass interval
scheduler, which exposes the same dependence-breaking mechanism value
prediction exploits.
"""

from repro.pipeline.config import CoreConfig, FUTiming, RecoveryMode
from repro.pipeline.core import CoreModel, simulate
from repro.pipeline.resources import (
    BandwidthLimiter,
    InOrderWindow,
    OutOfOrderWindow,
    UnitPool,
)
from repro.pipeline.result import SimResult

__all__ = [
    "BandwidthLimiter",
    "CoreConfig",
    "CoreModel",
    "FUTiming",
    "InOrderWindow",
    "OutOfOrderWindow",
    "RecoveryMode",
    "SimResult",
    "UnitPool",
    "simulate",
]
