/* Compiled cycle-loop kernel for the precompute-driven fast path.
 *
 * This is a C transliteration of pipeline/fastsim.py's `_run_python` (which
 * is itself a fork of pipeline/core.py's `CoreModel._run`): the sequential
 * dispatch/commit/recovery state machine over the packed trace plane, with
 * the memory hierarchy, store sets, and the supported value predictors
 * (LVP / stride / 2D-stride / VTAGE / oracle) implemented over flat arrays.
 * Branch prediction is NOT here: redirect codes and scrambled keys come
 * precomputed on the trace plane.
 *
 * Bit-exactness contract: every arithmetic statement mirrors the Python
 * model.  Cycles and addresses are int64 (the Python caller refuses traces
 * whose pc/addr reach 2^62, so int64 arithmetic is exact, including the
 * negative intermediate strides the prefetcher can produce); predictor
 * values and hash keys are uint64 (Python masks to 64 bits, so C wraparound
 * is identical).  Python floor division/modulo on possibly-negative
 * operands is reproduced by pydiv/pymod.
 *
 * The kernel touches ONLY caller-provided arrays (no allocation): Python
 * owns every buffer, imports live predictor state before the call, and
 * writes the arrays back into the model objects afterwards, so post-run
 * observable state matches the pure-Python path.
 *
 * Failure is always safe: any unsupported situation the Python-side guards
 * missed returns a nonzero error before results are consumed, and the
 * caller falls back to the pure-Python loop (predictor arrays are copies).
 *
 * Build: cc -O2 -shared -fPIC -o _ckernel.so _ckernel.c   (see ckernel.py)
 */

#include <stdint.h>
#include <string.h>

#define KERNEL_ABI_VERSION 1

/* Per-cycle bandwidth counts live in stamped circular windows instead of
 * dicts; BW_WINDOW bounds how far ahead of the watermark a grant may probe
 * (error 2 if exceeded -- impossible in practice, see fastsim notes). */
#define BW_WINDOW_BITS 17
#define BW_WINDOW ((int64_t)1 << BW_WINDOW_BITS)
#define BW_MASK (BW_WINDOW - 1)

#define ERR_OK 0
#define ERR_ABI 1
#define ERR_BW_WINDOW 2
#define ERR_BAD_ARG 3

/* Op classes (repro.isa.uop.OpClass; pinned by ckernel.py at load time). */
#define OP_LOAD 6
#define OP_STORE 7
#define N_CLASSES 13

#define NEVER ((int64_t)1 << 62)
#define PRUNE_MASK 4095

typedef struct {
    int64_t abi_version;

    /* ---- trace columns (packed schema dtypes) ---- */
    int64_t n;
    int64_t warmup;
    const int64_t *seqs;
    const uint64_t *pcs;
    const uint8_t *ops;
    const int16_t *dsts;       /* -1 = no destination */
    const uint64_t *values;
    const uint64_t *mem_addrs;
    const uint16_t *mem_sizes;
    const uint8_t *takens;
    const uint8_t *dst_is_fp;
    const int64_t *src_offsets; /* CSR, n + 1 entries */
    const int16_t *src_flat;

    /* ---- trace plane ---- */
    const uint8_t *redirect;   /* 0 none / 1 execute / 2 decode */
    const uint64_t *scr_pkey;  /* scramble(pkey) per uop */
    const uint64_t *pkeys;

    /* ---- core config ---- */
    int64_t fetch_width, taken_width, issue_width, commit_width;
    int64_t frontend, backend, redirect_extra, decode_redirect_depth;
    int64_t fq_size, rob_size, iq_size, lq_size, sq_size;
    int64_t int_prf_size, fp_prf_size;
    int64_t vp_write_ports;    /* -1 = unlimited */
    int64_t vp_all_scope;
    int64_t reissue;
    int64_t lookahead_cap;
    int64_t sbuf_capacity;     /* sq_entries + 16 (deque maxlen) */

    /* ---- functional units ---- */
    const int64_t *fu_lat;     /* [N_CLASSES] */
    const int64_t *fu_occ;     /* [N_CLASSES] */
    const int64_t *fu_pool;    /* [N_CLASSES] -> pool id */
    const int64_t *pool_units; /* [n_pools] */
    int64_t n_pools;
    int64_t *pool_heap;        /* concatenated free-server heaps, zeroed */

    /* ---- bandwidth limiter windows (stamps init -1, counts 0) ---- */
    int64_t *bw_fetch_stamp, *bw_fetch_count;
    int64_t *bw_taken_stamp, *bw_taken_count;
    int64_t *bw_issue_stamp, *bw_issue_count;
    int64_t *bw_vpw_stamp, *bw_vpw_count;   /* NULL unless vp_write_ports */

    /* ---- window rings (capacity = size) ---- */
    int64_t *fq_ring, *rob_ring, *lq_ring, *sq_ring;
    int64_t *int_prf_ring, *fp_prf_ring;
    int64_t *iq_heap;

    /* ---- store buffer ring: 6 parallel arrays of sbuf_capacity ---- */
    int64_t *sb_seq, *sb_start, *sb_end, *sb_ready, *sb_commit, *sb_pc;

    /* ---- train queue (n entries, never wraps) ---- */
    int64_t *tq_commit;
    int32_t *tq_i;
    uint64_t *tq_value;
    int8_t *tq_provider;       /* VTAGE provider rank */
    int8_t *tq_eff;            /* VTAGE effective rank */
    int8_t *tq_has;            /* lookup hit flag (stride/LVP) */

    /* ---- memory hierarchy (fresh; arrays init by caller) ---- */
    /* per cache: lines init -1 [sets*ways], fill [sets*ways],
       count [sets], mshr heap [mshrs + 1] */
    int64_t l1i_sets, l1i_ways, l1i_shift, l1i_lat, l1i_mshrs;
    int64_t *l1i_lines, *l1i_fill, *l1i_count, *l1i_mshr;
    int64_t l1d_sets, l1d_ways, l1d_shift, l1d_lat, l1d_mshrs;
    int64_t *l1d_lines, *l1d_fill, *l1d_count, *l1d_mshr;
    int64_t l2_sets, l2_ways, l2_shift, l2_lat, l2_mshrs;
    int64_t *l2_lines, *l2_fill, *l2_count, *l2_mshr;
    int64_t dram_base, dram_row_penalty, dram_max;
    int64_t dram_banks, dram_row_bytes, dram_channel_cycles;
    int64_t *dram_open_rows;   /* [banks] init -1 */
    int64_t *dram_bank_free;   /* [banks] init 0 */
    int64_t pf_index_bits, pf_degree, pf_distance;
    int64_t *pf_pcs;           /* init -1 */
    int64_t *pf_last, *pf_stride, *pf_conf;

    /* ---- store sets (fresh; -1-filled) ---- */
    int64_t ssit_bits, lfst_entries;
    int64_t *ssit, *lfst;

    /* ---- predictor ---- */
    int64_t ptype;             /* 0 none 1 oracle 2 lvp 3 stride 4 vtage */
    int64_t conf_kind;         /* 0 stock saturating, 1 FPC */
    int64_t conf_max_level;
    const int64_t *fpc_prob;   /* [conf_max_level] */
    uint64_t fpc_taps, fpc_state;
    /* LVP / stride table (entries = tbl_mask + 1) */
    int64_t tbl_mask;
    uint64_t *tbl_tags;
    uint8_t *tbl_tag_valid;
    uint64_t *tbl_values;      /* LVP values / stride last */
    int64_t *tbl_conf;
    int64_t two_delta;
    uint64_t *st_stride;       /* last delta */
    uint64_t *st_stride2;      /* predicting delta (= st_stride if classic) */
    uint64_t *st_spec_value;
    uint8_t *st_spec_has;
    int64_t *st_inflight;
    /* VTAGE (flattened comp-major: comp c entry e at c*entries + e) */
    int64_t vt_ncomp, vt_entries, vt_base_mask;
    uint64_t *vt_base_values;
    int64_t *vt_base_conf;
    int64_t *vt_tags;          /* init -1 */
    uint64_t *vt_values;
    int64_t *vt_conf;
    int8_t *vt_useful;
    const int32_t *vp_idx;     /* [ncomp * n] plane indices */
    const int32_t *vp_tag;     /* [ncomp * n] plane tags */
    uint64_t vt_taps, vt_state;

    /* ---- outputs ---- */
    int64_t *out;              /* [N_OUT] */
} KernelArgs;

/* out[] slots (mirrored in ckernel.py) */
enum {
    O_ERROR = 0,
    O_N_UOPS, O_CYCLES,
    O_COND_BRANCHES, O_BRANCH_MISP, O_BTB_REDIRECTS,
    O_VP_ELIGIBLE, O_VP_PREDICTED, O_VP_USED, O_VP_CORRECT_USED,
    O_VP_WRONG_USED, O_VP_SQUASHES, O_VP_HARMLESS, O_VP_REISSUES,
    O_VP_WRITE_DELAYED, O_MEM_VIOLATIONS,
    O_ROB_STALLS, O_IQ_STALLS,
    O_L1I_HITS, O_L1I_MISSES, O_L1I_MSHR_STALLS, O_L1I_MSHR_N,
    O_L1D_HITS, O_L1D_MISSES, O_L1D_MSHR_STALLS, O_L1D_MSHR_N,
    O_L2_HITS, O_L2_MISSES, O_L2_MSHR_STALLS, O_L2_MSHR_N,
    O_DRAM_REQUESTS, O_DRAM_ROW_HITS, O_DRAM_CHANNEL_FREE,
    O_PF_ISSUED,
    O_SS_VIOLATIONS, O_SS_NEXT_SSID,
    O_VT_ALLOCATIONS,
    O_FPC_STATE, O_VT_STATE,
    N_OUT
};

/* ---------------------------------------------------------------------- */

static inline uint64_t scramble64(uint64_t x) {
    x ^= x >> 33;
    x *= 0x9E3779B97F4A7C15ULL;
    x ^= x >> 29;
    x *= 0xC2B2AE3D27D4EB4FULL;
    x ^= x >> 32;
    return x;
}

static inline uint64_t lfsr_step(uint64_t state, uint64_t taps) {
    uint64_t lsb = state & 1;
    state >>= 1;
    if (lsb)
        state ^= taps;
    return state;
}

/* Python floor division / modulo for possibly-negative operands. */
static inline int64_t pydiv(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        q -= 1;
    return q;
}

static inline int64_t pymod(int64_t a, int64_t b) {
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0)))
        r += b;
    return r;
}

static inline int64_t imax(int64_t a, int64_t b) { return a > b ? a : b; }

/* ---- int64 min-heap ---------------------------------------------------- */

static void heap_push(int64_t *h, int64_t *n, int64_t v) {
    int64_t i = (*n)++;
    h[i] = v;
    while (i > 0) {
        int64_t p = (i - 1) >> 1;
        if (h[p] <= h[i])
            break;
        int64_t t = h[p]; h[p] = h[i]; h[i] = t;
        i = p;
    }
}

static void heap_siftdown(int64_t *h, int64_t n) {
    int64_t i = 0;
    for (;;) {
        int64_t l = 2 * i + 1, r = l + 1, m = i;
        if (l < n && h[l] < h[m]) m = l;
        if (r < n && h[r] < h[m]) m = r;
        if (m == i)
            break;
        int64_t t = h[m]; h[m] = h[i]; h[i] = t;
        i = m;
    }
}

static int64_t heap_pop(int64_t *h, int64_t *n) {
    int64_t top = h[0];
    h[0] = h[--(*n)];
    heap_siftdown(h, *n);
    return top;
}

static inline void heap_replace(int64_t *h, int64_t n, int64_t v) {
    h[0] = v;
    heap_siftdown(h, n);
}

/* ---- caches ------------------------------------------------------------ */

typedef struct {
    int64_t set_mask, ways, shift, lat, mshrs;
    int64_t *lines, *fill, *count, *mshr;
    int64_t mshr_n;
    int64_t hits, misses, mshr_stalls;
} CCache;

typedef struct KCtx KCtx;

struct KCtx {
    const KernelArgs *a;
    CCache l1i, l1d, l2;
    /* DRAM */
    int64_t channel_free;
    int64_t dram_requests, dram_row_hits;
    /* prefetcher */
    int64_t pf_mask, pf_issued;
    /* store sets */
    int64_t ssit_mask, next_ssid, ss_violations;
    /* confidence + LFSRs */
    uint64_t fpc_state, vt_state;
    int64_t vt_allocations;
    int64_t mem_violations_measured;
    int64_t error;
};

/* Probe for a hit with LRU move-to-front; -2 = miss. */
static int64_t cache_try_hit(CCache *c, int64_t line, int64_t cycle) {
    int64_t s = line & c->set_mask;
    int64_t *ws = c->lines + s * c->ways;
    int64_t *fs = c->fill + s * c->ways;
    int64_t cnt = c->count[s];
    for (int64_t w = 0; w < cnt; w++) {
        if (ws[w] == line) {
            int64_t fv = fs[w];
            if (w != 0) {
                for (int64_t k = w; k > 0; k--) {
                    ws[k] = ws[k - 1];
                    fs[k] = fs[k - 1];
                }
                ws[0] = line;
                fs[0] = fv;
            }
            c->hits++;
            if (fv > cycle)
                return fv + 1;   /* line still being filled */
            return cycle + c->lat;
        }
    }
    return -2;
}

static void cache_install(CCache *c, int64_t line, int64_t ready) {
    int64_t s = line & c->set_mask;
    int64_t *ws = c->lines + s * c->ways;
    int64_t *fs = c->fill + s * c->ways;
    int64_t cnt = c->count[s];
    int64_t top = cnt < c->ways ? cnt : c->ways - 1;
    for (int64_t k = top; k > 0; k--) {
        ws[k] = ws[k - 1];
        fs[k] = fs[k - 1];
    }
    ws[0] = line;
    fs[0] = ready;
    if (cnt < c->ways)
        c->count[s] = cnt + 1;
}

static int cache_present(CCache *c, int64_t line) {
    int64_t s = line & c->set_mask;
    int64_t *ws = c->lines + s * c->ways;
    int64_t cnt = c->count[s];
    for (int64_t w = 0; w < cnt; w++)
        if (ws[w] == line)
            return 1;
    return 0;
}

static int64_t mshr_admit(CCache *c, int64_t cycle) {
    while (c->mshr_n && c->mshr[0] <= cycle)
        heap_pop(c->mshr, &c->mshr_n);
    if (c->mshr_n >= c->mshrs) {
        c->mshr_stalls++;
        return heap_pop(c->mshr, &c->mshr_n);
    }
    return cycle;
}

static int64_t dram_read(KCtx *x, int64_t addr, int64_t cycle) {
    const KernelArgs *a = x->a;
    x->dram_requests++;
    int64_t row = pydiv(addr, a->dram_row_bytes);
    int64_t bank = pymod(row, a->dram_banks);
    int64_t start = cycle;
    if (a->dram_bank_free[bank] > start) start = a->dram_bank_free[bank];
    if (x->channel_free > start) start = x->channel_free;
    int64_t latency = a->dram_base;
    if (a->dram_open_rows[bank] == row) {
        x->dram_row_hits++;
    } else {
        latency += a->dram_row_penalty;
        a->dram_open_rows[bank] = row;
    }
    int64_t done = start + latency;
    if (done > cycle + a->dram_max) done = cycle + a->dram_max;
    if (done < cycle + a->dram_base) done = cycle + a->dram_base;
    a->dram_bank_free[bank] = done;
    x->channel_free = imax(x->channel_free, start) + a->dram_channel_cycles;
    return done;
}

static int64_t l2_access(KCtx *x, int64_t addr, int64_t cycle) {
    CCache *c = &x->l2;
    int64_t line = addr >> c->shift;
    int64_t hit = cache_try_hit(c, line, cycle);
    if (hit != -2)
        return hit;
    c->misses++;
    int64_t start = mshr_admit(c, cycle);
    int64_t ready = dram_read(x, line << c->shift, start + c->lat);
    cache_install(c, line, ready);
    heap_push(c->mshr, &c->mshr_n, ready);
    return ready;
}

/* MemoryHierarchy._l1_fill_handler: L2 access + prefetcher training. */
static int64_t l1_fill(KCtx *x, int64_t line_addr, int64_t cycle, int64_t pc) {
    const KernelArgs *a = x->a;
    int64_t ready = l2_access(x, line_addr, cycle);
    int64_t idx = (int64_t)(scramble64((uint64_t)pc) & (uint64_t)x->pf_mask);
    if (a->pf_pcs[idx] != pc) {
        a->pf_pcs[idx] = pc;
        a->pf_last[idx] = line_addr;
        a->pf_stride[idx] = 0;
        a->pf_conf[idx] = 0;
        return ready;
    }
    int64_t stride = line_addr - a->pf_last[idx];
    if (stride != 0 && stride == a->pf_stride[idx]) {
        if (a->pf_conf[idx] < 3)
            a->pf_conf[idx]++;
    } else if (stride != a->pf_stride[idx]) {
        if (a->pf_conf[idx] > 0)
            a->pf_conf[idx]--;
    }
    if (a->pf_conf[idx] >= 2 && stride != 0) {
        int64_t base = line_addr + a->pf_distance * stride;
        int64_t fill_ready = cycle + a->dram_base;
        for (int64_t k = 0; k < a->pf_degree; k++) {
            int64_t pf_addr = base + k * stride;
            x->pf_issued++;
            int64_t pf_line = pf_addr >> x->l2.shift;
            if (!cache_present(&x->l2, pf_line))
                cache_install(&x->l2, pf_line, fill_ready);
        }
    }
    a->pf_stride[idx] = stride;
    a->pf_last[idx] = line_addr;
    return ready;
}

static int64_t l1_access(KCtx *x, CCache *c, int64_t addr, int64_t cycle,
                         int64_t pc) {
    int64_t line = addr >> c->shift;
    int64_t hit = cache_try_hit(c, line, cycle);
    if (hit != -2)
        return hit;
    c->misses++;
    int64_t start = mshr_admit(c, cycle);
    int64_t ready = l1_fill(x, line << c->shift, start + c->lat, pc);
    cache_install(c, line, ready);
    heap_push(c->mshr, &c->mshr_n, ready);
    return ready;
}

/* ---- store sets -------------------------------------------------------- */

static inline int64_t ssit_index(KCtx *x, int64_t pc) {
    return (int64_t)(scramble64((uint64_t)pc) & (uint64_t)x->ssit_mask);
}

static void train_violation(KCtx *x, int64_t load_pc, int64_t store_pc) {
    const KernelArgs *a = x->a;
    x->ss_violations++;
    int64_t li = ssit_index(x, load_pc);
    int64_t si = ssit_index(x, store_pc);
    int64_t ls = a->ssit[li], ss = a->ssit[si];
    if (ls < 0 && ss < 0) {
        int64_t ssid = x->next_ssid;
        x->next_ssid = pymod(x->next_ssid + 1, a->lfst_entries);
        a->ssit[li] = ssid;
        a->ssit[si] = ssid;
    } else if (ls < 0) {
        a->ssit[li] = ss;
    } else if (ss < 0) {
        a->ssit[si] = ls;
    } else {
        int64_t winner = ls < ss ? ls : ss;
        a->ssit[li] = winner;
        a->ssit[si] = winner;
    }
}

/* ---- confidence -------------------------------------------------------- */

static inline int64_t conf_on_correct(KCtx *x, int64_t level) {
    const KernelArgs *a = x->a;
    if (level >= a->conf_max_level)
        return level;
    if (a->conf_kind == 0)
        return level + 1;
    int64_t p = a->fpc_prob[level];
    if (p == 0)
        return level + 1;           /* chance(0): no LFSR step */
    x->fpc_state = lfsr_step(x->fpc_state, a->fpc_taps);
    if ((x->fpc_state & ((1ULL << p) - 1)) == 0)
        return level + 1;
    return level;
}

/* on_incorrect is 0 for all supported policies. */

/* ---- bandwidth limiters ------------------------------------------------ */

static inline int64_t bw_grant(KCtx *x, int64_t *stamp, int64_t *count,
                               int64_t width, int64_t cycle, int64_t floor_v) {
    for (;;) {
        if (cycle - floor_v >= BW_WINDOW) {
            x->error = ERR_BW_WINDOW;
            return cycle;
        }
        int64_t slot = cycle & BW_MASK;
        int64_t cnt = (stamp[slot] == cycle) ? count[slot] : 0;
        if (cnt < width) {
            stamp[slot] = cycle;
            count[slot] = cnt + 1;
            return cycle;
        }
        cycle++;
    }
}

/* ---- VTAGE helpers ----------------------------------------------------- */

static void vt_train_tagged(KCtx *x, int64_t c, int64_t idx, uint64_t actual) {
    const KernelArgs *a = x->a;
    int64_t e = c * a->vt_entries + idx;
    if (a->vt_values[e] == actual) {
        a->vt_conf[e] = conf_on_correct(x, a->vt_conf[e]);
        a->vt_useful[e] = 1;
    } else {
        if (a->vt_conf[e] == 0)
            a->vt_values[e] = actual;
        a->vt_conf[e] = 0;          /* on_incorrect */
        a->vt_useful[e] = 0;
    }
}

static void vt_train_base(KCtx *x, int64_t base_idx, uint64_t actual) {
    const KernelArgs *a = x->a;
    if (a->vt_base_values[base_idx] == actual) {
        a->vt_base_conf[base_idx] = conf_on_correct(x, a->vt_base_conf[base_idx]);
    } else {
        if (a->vt_base_conf[base_idx] == 0)
            a->vt_base_values[base_idx] = actual;
        a->vt_base_conf[base_idx] = 0;
    }
}

/* ---------------------------------------------------------------------- */

int64_t repro_kernel_abi_version(void) { return KERNEL_ABI_VERSION; }

int64_t repro_kernel_run(const KernelArgs *a) {
    if (a->abi_version != KERNEL_ABI_VERSION) {
        a->out[O_ERROR] = ERR_ABI;
        return ERR_ABI;
    }
    if (a->n_pools > 8 || a->vt_ncomp > 16 || a->n < 1) {
        a->out[O_ERROR] = ERR_BAD_ARG;
        return ERR_BAD_ARG;
    }
    KCtx ctx;
    KCtx *x = &ctx;
    memset(x, 0, sizeof(*x));
    x->a = a;
    x->l1i = (CCache){a->l1i_sets - 1, a->l1i_ways, a->l1i_shift, a->l1i_lat,
                      a->l1i_mshrs, a->l1i_lines, a->l1i_fill, a->l1i_count,
                      a->l1i_mshr, 0, 0, 0, 0};
    x->l1d = (CCache){a->l1d_sets - 1, a->l1d_ways, a->l1d_shift, a->l1d_lat,
                      a->l1d_mshrs, a->l1d_lines, a->l1d_fill, a->l1d_count,
                      a->l1d_mshr, 0, 0, 0, 0};
    x->l2 = (CCache){a->l2_sets - 1, a->l2_ways, a->l2_shift, a->l2_lat,
                     a->l2_mshrs, a->l2_lines, a->l2_fill, a->l2_count,
                     a->l2_mshr, 0, 0, 0, 0};
    x->pf_mask = ((int64_t)1 << a->pf_index_bits) - 1;
    x->ssit_mask = ((int64_t)1 << a->ssit_bits) - 1;
    x->fpc_state = a->fpc_state;
    x->vt_state = a->vt_state;

    const int64_t n = a->n;
    const int64_t warmup = a->warmup;
    const int64_t fetch_width = a->fetch_width;
    const int64_t taken_width = a->taken_width;
    const int64_t issue_width = a->issue_width;
    const int64_t commit_width = a->commit_width;
    const int64_t frontend = a->frontend;
    const int64_t backend = a->backend;
    const int64_t redirect_extra = a->redirect_extra;
    const int64_t decode_redirect_depth = a->decode_redirect_depth;
    const int64_t fq_size = a->fq_size, rob_size = a->rob_size;
    const int64_t iq_size = a->iq_size, lq_size = a->lq_size;
    const int64_t sq_size = a->sq_size;
    const int64_t int_prf_size = a->int_prf_size;
    const int64_t fp_prf_size = a->fp_prf_size;
    const int64_t lookahead_cap = a->lookahead_cap;
    const int64_t sbuf_cap = a->sbuf_capacity;
    const int reissue = (int)a->reissue;
    const int vp_all_scope = (int)a->vp_all_scope;
    const int64_t ptype = a->ptype;
    const int have_predictor = ptype != 0;

    /* dispatch/commit bandwidth: monotone (cycle, used) pairs */
    int64_t dbw_cycle = -1, dbw_used = 0, cbw_cycle = -1, cbw_used = 0;

    /* window rings */
    int64_t fq_head = 0, fq_len = 0;
    int64_t rob_head = 0, rob_len = 0;
    int64_t lq_head = 0, lq_len = 0;
    int64_t sq_head = 0, sq_len = 0;
    int64_t ipr_head = 0, ipr_len = 0;
    int64_t fpr_head = 0, fpr_len = 0;
    int64_t iq_len = 0;
    int64_t rob_stalls = 0, iq_stalls = 0;

    /* functional-unit pool heaps (concatenated; zero-initialised) */
    int64_t *pool_base[8];
    int64_t pool_n[8];
    {
        int64_t off = 0;
        for (int64_t p = 0; p < a->n_pools; p++) {
            pool_base[p] = a->pool_heap + off;
            pool_n[p] = a->pool_units[p];
            off += a->pool_units[p];
        }
    }

    int64_t reg_ready[64] = {0};
    int64_t reg_spec_commit[64] = {0};

    /* store buffer ring */
    int64_t sb_head = 0, sb_len = 0;

    /* train queue */
    int64_t tq_head = 0, tq_tail = 0;
    int64_t next_train = NEVER;

    int64_t fetch_resume = 0, line_ready = 0, current_line = -1;
    int64_t last_fetch = 0, last_dispatch = 0, last_commit = 0;
    int64_t measure_start_commit = -1;

    int64_t n_uops_meas = 0, cond_branches = 0;
    int64_t branch_mispredicts = 0, btb_redirects = 0;
    int64_t vp_eligible_n = 0, vp_predicted_n = 0, vp_used_n = 0;
    int64_t vp_correct_used = 0, vp_wrong_used = 0;
    int64_t vp_squashes = 0, vp_harmless_wrong = 0, vp_reissues = 0;
    int64_t vp_write_delayed = 0;

    /* limiter floors (for the BW_WINDOW safety check only) */
    int64_t fetch_floor_v = 0, issue_floor_v = 0;

    for (int64_t i = 0; i < n; i++) {
        const int64_t op = a->ops[i];
        const int64_t pc = (int64_t)a->pcs[i];
        const int64_t pc_line = pc >> 6;   /* isa.trace._LINE_SHIFT */
        const int64_t dst = a->dsts[i];
        const int is_load = op == OP_LOAD;
        const int is_store = op == OP_STORE;
        const int measured = i >= warmup;
        const int64_t branch_redirect = a->redirect[i];

        /* ---- Fetch -------------------------------------------------- */
        if (pc_line != current_line) {
            current_line = pc_line;
            int64_t floor_ = fetch_resume > last_fetch ? fetch_resume
                                                       : last_fetch;
            line_ready = l1_access(x, &x->l1i, pc, floor_, pc);
            if (line_ready <= floor_ + 1)
                line_ready = 0;
        }
        int64_t fetch = fetch_resume > line_ready ? fetch_resume : line_ready;
        if (fq_len >= fq_size) {
            int64_t oldest = a->fq_ring[fq_head];
            fq_head = (fq_head + 1) % fq_size;
            fq_len--;
            if (oldest > fetch)
                fetch = oldest;
        }
        fetch = bw_grant(x, a->bw_fetch_stamp, a->bw_fetch_count, fetch_width,
                         fetch, fetch_floor_v);
        /* is_branch == control classes 8..11 (trace._CTRL_INTS) */
        if (op >= 8 && op <= 11 && a->takens[i]) {
            fetch = bw_grant(x, a->bw_taken_stamp, a->bw_taken_count,
                             taken_width, fetch, fetch_floor_v);
        }
        if (x->error)
            break;
        last_fetch = fetch;

        /* ---- Drain committed trainings ------------------------------ */
        while (next_train <= fetch) {
            int64_t t = tq_head++;
            next_train = tq_head < tq_tail ? a->tq_commit[tq_head] : NEVER;
            const int64_t ti = a->tq_i[t];
            const uint64_t actual = a->values[ti];
            if (ptype == 2) {                       /* LVP */
                const uint64_t key = a->pkeys[ti];
                int64_t idx = (int64_t)(a->scr_pkey[ti] &
                                        (uint64_t)a->tbl_mask);
                if (!a->tbl_tag_valid[idx] || a->tbl_tags[idx] != key) {
                    a->tbl_tag_valid[idx] = 1;
                    a->tbl_tags[idx] = key;
                    a->tbl_values[idx] = actual;
                    a->tbl_conf[idx] = 0;
                } else if (a->tbl_values[idx] == actual) {
                    a->tbl_conf[idx] = conf_on_correct(x, a->tbl_conf[idx]);
                } else {
                    a->tbl_conf[idx] = 0;
                    a->tbl_values[idx] = actual;
                }
            } else if (ptype == 3) {                /* stride family */
                const uint64_t key = a->pkeys[ti];
                int64_t idx = (int64_t)(a->scr_pkey[ti] &
                                        (uint64_t)a->tbl_mask);
                const int has_pred = a->tq_has[t];
                if (has_pred) {
                    int64_t live = a->st_inflight[idx] - 1;
                    if (live <= 0) {
                        a->st_inflight[idx] = 0;
                        a->st_spec_has[idx] = 0;
                    } else {
                        a->st_inflight[idx] = live;
                    }
                }
                if (!a->tbl_tag_valid[idx] || a->tbl_tags[idx] != key) {
                    a->tbl_tag_valid[idx] = 1;
                    a->tbl_tags[idx] = key;
                    a->tbl_values[idx] = actual;   /* last */
                    a->st_stride[idx] = 0;
                    a->tbl_conf[idx] = 0;
                    a->st_spec_has[idx] = 0;
                    a->st_inflight[idx] = 0;
                } else {
                    uint64_t predicted =
                        has_pred ? a->tq_value[t]
                                 : a->tbl_values[idx] + a->st_stride2[idx];
                    if (predicted == actual)
                        a->tbl_conf[idx] = conf_on_correct(x, a->tbl_conf[idx]);
                    else
                        a->tbl_conf[idx] = 0;
                    /* _train_stride */
                    uint64_t delta = actual - a->tbl_values[idx];
                    if (a->two_delta) {
                        if (delta == a->st_stride[idx])
                            a->st_stride2[idx] = delta;
                        a->st_stride[idx] = delta;
                    } else {
                        a->st_stride[idx] = delta;   /* st_stride2 aliases */
                    }
                    if (predicted != actual) {
                        int64_t live = a->st_inflight[idx];
                        if (live > 0) {
                            a->st_spec_value[idx] =
                                actual + a->st_stride2[idx] * (uint64_t)live;
                            a->st_spec_has[idx] = 1;
                        } else {
                            a->st_spec_has[idx] = 0;
                        }
                    }
                    a->tbl_values[idx] = actual;
                }
            } else if (ptype == 4) {                /* VTAGE */
                const int64_t provider = a->tq_provider[t];
                const int64_t eff = a->tq_eff[t];
                const int64_t base_idx =
                    (int64_t)(a->scr_pkey[ti] & (uint64_t)a->vt_base_mask);
                const uint64_t predicted = a->tq_value[t];
                if (provider == 0) {
                    vt_train_base(x, base_idx, actual);
                } else {
                    int64_t c = provider - 1;
                    int64_t idx = a->vp_idx[c * n + ti];
                    int64_t e = c * a->vt_entries + idx;
                    int was_weak = a->vt_conf[e] == 0;
                    vt_train_tagged(x, c, idx, actual);
                    if (was_weak) {
                        if (eff != 0 && eff != provider) {
                            int64_t ac = eff - 1;
                            vt_train_tagged(x, ac, a->vp_idx[ac * n + ti],
                                            actual);
                        }
                        vt_train_base(x, base_idx, actual);
                    }
                }
                if (predicted != actual && provider < a->vt_ncomp) {
                    /* _allocate */
                    int64_t cands[16];
                    int64_t ncand = 0;
                    for (int64_t c = provider; c < a->vt_ncomp; c++) {
                        int64_t idx = a->vp_idx[c * n + ti];
                        if (a->vt_useful[c * a->vt_entries + idx] == 0)
                            cands[ncand++] = c;
                    }
                    if (ncand == 0) {
                        for (int64_t c = provider; c < a->vt_ncomp; c++) {
                            int64_t idx = a->vp_idx[c * n + ti];
                            a->vt_useful[c * a->vt_entries + idx] = 0;
                        }
                    } else {
                        x->vt_state = lfsr_step(x->vt_state, a->vt_taps);
                        int64_t c = cands[(int64_t)(x->vt_state %
                                                    (uint64_t)ncand)];
                        int64_t idx = a->vp_idx[c * n + ti];
                        int64_t e = c * a->vt_entries + idx;
                        a->vt_tags[e] = a->vp_tag[c * n + ti];
                        a->vt_values[e] = actual;
                        a->vt_conf[e] = 0;
                        a->vt_useful[e] = 0;
                        x->vt_allocations++;
                    }
                }
            }
            /* ptype 1 (oracle): train is a no-op; nothing queued. */
        }

        /* ---- Value prediction at fetch ------------------------------- */
        const int produces = dst >= 0 && !(op >= 8 && op <= 11);
        int prediction = 0, vp_used = 0, vp_wrong = 0;
        const int eligible =
            have_predictor && produces && (vp_all_scope || is_load);
        int64_t vt_provider = 0, vt_eff = 0;
        uint64_t vp_value = 0;
        if (eligible) {
            if (ptype == 4) {
                prediction = 1;
                const uint64_t scr = a->scr_pkey[i];
                const int64_t base_idx =
                    (int64_t)(scr & (uint64_t)a->vt_base_mask);
                int64_t provider = 0, alt = 0;
                for (int64_t c = 0; c < a->vt_ncomp; c++) {
                    int64_t idx = a->vp_idx[c * n + i];
                    if (a->vt_tags[c * a->vt_entries + idx] ==
                        a->vp_tag[c * n + i]) {
                        alt = provider;
                        provider = c + 1;
                    }
                }
                int64_t conf, eff;
                uint64_t value;
                if (provider == 0) {
                    value = a->vt_base_values[base_idx];
                    conf = a->vt_base_conf[base_idx];
                    eff = 0;
                } else {
                    int64_t c = provider - 1;
                    int64_t pidx = a->vp_idx[c * n + i];
                    int64_t e = c * a->vt_entries + pidx;
                    if (a->vt_conf[e] == 0 && a->vt_useful[e] == 0)
                        eff = alt;
                    else
                        eff = provider;
                    if (eff == 0) {
                        value = a->vt_base_values[base_idx];
                        conf = a->vt_base_conf[base_idx];
                    } else {
                        int64_t ec = eff - 1;
                        int64_t eidx = a->vp_idx[ec * n + i];
                        value = a->vt_values[ec * a->vt_entries + eidx];
                        conf = a->vt_conf[ec * a->vt_entries + eidx];
                    }
                }
                vt_provider = provider;
                vt_eff = eff;
                vp_value = value;
                if (conf >= a->conf_max_level) {
                    vp_used = 1;
                    vp_wrong = value != a->values[i];
                }
            } else if (ptype == 1) {                /* oracle */
                prediction = 1;
                vp_used = 1;
            } else {                                /* LVP / stride */
                int64_t idx = (int64_t)(a->scr_pkey[i] &
                                        (uint64_t)a->tbl_mask);
                const uint64_t key = a->pkeys[i];
                if (a->tbl_tag_valid[idx] && a->tbl_tags[idx] == key) {
                    prediction = 1;
                    uint64_t value;
                    if (ptype == 2) {
                        value = a->tbl_values[idx];
                    } else {
                        uint64_t base = a->st_spec_has[idx]
                                            ? a->st_spec_value[idx]
                                            : a->tbl_values[idx];
                        value = base + a->st_stride2[idx];
                    }
                    vp_value = value;
                    if (a->tbl_conf[idx] >= a->conf_max_level) {
                        vp_used = 1;
                        vp_wrong = value != a->values[i];
                    }
                    if (ptype == 3) {               /* speculate() */
                        a->st_spec_value[idx] = value;
                        a->st_spec_has[idx] = 1;
                        a->st_inflight[idx]++;
                    }
                }
            }
            if (measured) {
                vp_eligible_n++;
                if (prediction)
                    vp_predicted_n++;
                if (vp_used) {
                    vp_used_n++;
                    if (vp_wrong)
                        vp_wrong_used++;
                    else
                        vp_correct_used++;
                }
            }
        }

        /* ---- Dispatch ------------------------------------------------ */
        int64_t dispatch = fetch + frontend;
        if (vp_used && a->vp_write_ports >= 0) {
            int64_t write_cycle = bw_grant(x, a->bw_vpw_stamp, a->bw_vpw_count,
                                           a->vp_write_ports, fetch + 2,
                                           fetch_floor_v);
            if (x->error)
                break;
            if (write_cycle + 1 > dispatch) {
                if (measured)
                    vp_write_delayed++;
                dispatch = write_cycle + 1;
            }
        }
        if (last_dispatch > dispatch)
            dispatch = last_dispatch;
        if (rob_len >= rob_size) {
            int64_t oldest = a->rob_ring[rob_head];
            rob_head = (rob_head + 1) % rob_size;
            rob_len--;
            if (oldest > dispatch) {
                rob_stalls++;
                dispatch = oldest;
            }
        }
        if (iq_len >= iq_size) {
            int64_t soonest = heap_pop(a->iq_heap, &iq_len);
            if (soonest > dispatch) {
                iq_stalls++;
                dispatch = soonest;
            }
        }
        if (is_load) {
            if (lq_len >= lq_size) {
                int64_t oldest = a->lq_ring[lq_head];
                lq_head = (lq_head + 1) % lq_size;
                lq_len--;
                if (oldest > dispatch)
                    dispatch = oldest;
            }
        } else if (is_store) {
            if (sq_len >= sq_size) {
                int64_t oldest = a->sq_ring[sq_head];
                sq_head = (sq_head + 1) % sq_size;
                sq_len--;
                if (oldest > dispatch)
                    dispatch = oldest;
            }
        }
        if (dst >= 0) {
            if (a->dst_is_fp[i]) {
                if (fpr_len >= fp_prf_size) {
                    int64_t oldest = a->fp_prf_ring[fpr_head];
                    fpr_head = (fpr_head + 1) % fp_prf_size;
                    fpr_len--;
                    if (oldest > dispatch)
                        dispatch = oldest;
                }
            } else if (ipr_len >= int_prf_size) {
                int64_t oldest = a->int_prf_ring[ipr_head];
                ipr_head = (ipr_head + 1) % int_prf_size;
                ipr_len--;
                if (oldest > dispatch)
                    dispatch = oldest;
            }
        }
        if (dispatch > dbw_cycle) {
            dbw_cycle = dispatch;
            dbw_used = 1;
        } else if (dbw_used < fetch_width) {
            dispatch = dbw_cycle;
            dbw_used++;
        } else {
            dbw_cycle++;
            dispatch = dbw_cycle;
            dbw_used = 1;
        }
        last_dispatch = dispatch;
        a->fq_ring[(fq_head + fq_len) % fq_size] = dispatch;
        fq_len++;

        /* ---- Operand readiness --------------------------------------- */
        int64_t ready = dispatch + 1;
        int64_t spec_until = 0;
        const int64_t s0 = a->src_offsets[i], s1 = a->src_offsets[i + 1];
        if (reissue) {
            for (int64_t s = s0; s < s1; s++) {
                int64_t r = reg_ready[a->src_flat[s]];
                if (r > ready)
                    ready = r;
                int64_t sc = reg_spec_commit[a->src_flat[s]];
                if (sc > spec_until)
                    spec_until = sc;
            }
        } else {
            for (int64_t s = s0; s < s1; s++) {
                int64_t r = reg_ready[a->src_flat[s]];
                if (r > ready)
                    ready = r;
            }
        }

        int64_t wait_store_seq = -1;
        if (is_load) {
            int64_t ssid = a->ssit[ssit_index(x, pc)];
            if (ssid >= 0) {
                int64_t predicted = a->lfst[ssid];
                if (predicted >= 0) {
                    for (int64_t k = sb_len - 1; k >= 0; k--) {
                        int64_t e = (sb_head + k) % sbuf_cap;
                        if (a->sb_seq[e] == predicted) {
                            if (a->sb_ready[e] > ready)
                                ready = a->sb_ready[e];
                            wait_store_seq = predicted;
                            break;
                        }
                    }
                }
            }
        }

        /* ---- Issue + execute ----------------------------------------- */
        const int64_t pool = a->fu_pool[op];
        int64_t *free_heap = pool_base[pool];
        int64_t start = free_heap[0];
        if (ready > start)
            start = ready;
        heap_replace(free_heap, pool_n[pool], start + a->fu_occ[op]);
        int64_t issue = bw_grant(x, a->bw_issue_stamp, a->bw_issue_count,
                                 issue_width, start, issue_floor_v);
        if (x->error)
            break;
        int64_t complete;
        if (is_load) {
            /* _load_timing */
            const int64_t addr = (int64_t)a->mem_addrs[i];
            const int64_t end = addr + a->mem_sizes[i];
            const int64_t agu_done = issue + 1;
            complete = NEVER;   /* sentinel: fall through to cache */
            for (int64_t k = sb_len - 1; k >= 0; k--) {
                int64_t e = (sb_head + k) % sbuf_cap;
                if (a->sb_commit[e] <= agu_done)
                    break;
                if (a->sb_start[e] < end && addr < a->sb_end[e]) {
                    if (a->sb_ready[e] <= agu_done ||
                        a->sb_seq[e] == wait_store_seq) {
                        complete = imax(agu_done, a->sb_ready[e]) + 1;
                    } else {
                        train_violation(x, pc, a->sb_pc[e]);
                        if (measured)
                            x->mem_violations_measured++;
                        complete = -(a->sb_ready[e] + 2);
                    }
                    break;
                }
            }
            if (complete == NEVER)
                complete = l1_access(x, &x->l1d, addr, agu_done, pc);
            if (complete < 0) {
                complete = -complete;
                int64_t resume = complete + redirect_extra;
                if (resume > fetch_resume)
                    fetch_resume = resume;
            }
        } else if (is_store) {
            complete = issue + 1;
        } else {
            complete = issue + a->fu_lat[op];
        }

        /* ---- Commit -------------------------------------------------- */
        int64_t commit = complete + backend;
        if (last_commit > commit)
            commit = last_commit;
        if (commit > cbw_cycle) {
            cbw_cycle = commit;
            cbw_used = 1;
        } else if (cbw_used < commit_width) {
            commit = cbw_cycle;
            cbw_used++;
        } else {
            cbw_cycle++;
            commit = cbw_cycle;
            cbw_used = 1;
        }
        last_commit = commit;

        /* ---- Branch redirect ----------------------------------------- */
        if (branch_redirect) {
            int64_t resume;
            if (branch_redirect == 1) {
                resume = complete + redirect_extra;
                if (measured)
                    branch_mispredicts++;
            } else {
                resume = fetch + decode_redirect_depth;
                if (measured)
                    btb_redirects++;
            }
            if (resume > fetch_resume)
                fetch_resume = resume;
        }
        if (measured && op == 8)   /* BRANCH: conditional */
            cond_branches++;

        /* ---- Value prediction outcome -------------------------------- */
        int64_t consumer_ready = complete;
        int64_t producer_spec_commit = 0;
        if (eligible) {
            if (prediction) {
                if (vp_used && !vp_wrong) {
                    consumer_ready = 0;
                    producer_spec_commit = reissue ? complete : 0;
                } else if (vp_used) {
                    if (reissue) {
                        consumer_ready = complete;
                        producer_spec_commit = complete;
                        if (measured)
                            vp_reissues++;
                    } else {
                        /* _consumer_before */
                        int consumed_early = 0;
                        int64_t limit = i + 1 + lookahead_cap;
                        if (limit > n)
                            limit = n;
                        for (int64_t j = i + 1; j < limit; j++) {
                            int64_t est = fetch +
                                (j - i + fetch_width - 1) / fetch_width +
                                frontend;
                            if (est >= complete)
                                break;
                            int found = 0;
                            for (int64_t s = a->src_offsets[j];
                                 s < a->src_offsets[j + 1]; s++) {
                                if (a->src_flat[s] == dst) {
                                    found = 1;
                                    break;
                                }
                            }
                            if (found) {
                                consumed_early = 1;
                                break;
                            }
                            if (a->dsts[j] == dst)
                                break;
                        }
                        if (consumed_early) {
                            int64_t resume = commit + redirect_extra;
                            if (resume > fetch_resume)
                                fetch_resume = resume;
                            if (ptype == 3) {       /* stride on_squash */
                                int64_t entries = a->tbl_mask + 1;
                                memset(a->st_spec_has, 0, (size_t)entries);
                                memset(a->st_inflight, 0,
                                       (size_t)entries * sizeof(int64_t));
                            }
                            /* store_sets.flush_inflight() */
                            for (int64_t k = 0; k < a->lfst_entries; k++)
                                a->lfst[k] = -1;
                            sb_len = 0;             /* store_buffer.clear() */
                            sb_head = 0;
                            if (measured)
                                vp_squashes++;
                        } else if (measured) {
                            vp_harmless_wrong++;
                        }
                    }
                }
            }
            if (ptype != 1) {   /* oracle trains are no-ops: not queued */
                if (next_train == NEVER)
                    next_train = commit;
                a->tq_commit[tq_tail] = commit;
                a->tq_i[tq_tail] = (int32_t)i;
                a->tq_value[tq_tail] = vp_value;
                a->tq_provider[tq_tail] = (int8_t)vt_provider;
                a->tq_eff[tq_tail] = (int8_t)vt_eff;
                a->tq_has[tq_tail] = (int8_t)prediction;
                tq_tail++;
            }
        }

        /* ---- Register state update ----------------------------------- */
        if (dst >= 0) {
            reg_ready[dst] = consumer_ready;
            if (reissue)
                reg_spec_commit[dst] = producer_spec_commit;
        }

        /* ---- Window releases ----------------------------------------- */
        a->rob_ring[(rob_head + rob_len) % rob_size] = commit;
        rob_len++;
        heap_push(a->iq_heap, &iq_len,
                  reissue && spec_until > issue ? spec_until : issue);
        if (is_load) {
            a->lq_ring[(lq_head + lq_len) % lq_size] = commit;
            lq_len++;
        } else if (is_store) {
            a->sq_ring[(sq_head + sq_len) % sq_size] = commit;
            sq_len++;
            const int64_t addr = (int64_t)a->mem_addrs[i];
            const int64_t seq = a->seqs[i];
            if (sb_len == sbuf_cap) {   /* deque maxlen drops oldest */
                sb_head = (sb_head + 1) % sbuf_cap;
                sb_len--;
            }
            int64_t e = (sb_head + sb_len) % sbuf_cap;
            a->sb_seq[e] = seq;
            a->sb_start[e] = addr;
            a->sb_end[e] = addr + a->mem_sizes[i];
            a->sb_ready[e] = complete;
            a->sb_commit[e] = commit;
            a->sb_pc[e] = pc;
            sb_len++;
            /* store_sets.store_fetched */
            int64_t ssid = a->ssit[ssit_index(x, pc)];
            if (ssid >= 0)
                a->lfst[ssid] = seq;
            /* memory.store == memory.load for line movement */
            l1_access(x, &x->l1d, addr, commit, pc);
        }
        if (dst >= 0) {
            if (a->dst_is_fp[i]) {
                a->fp_prf_ring[(fpr_head + fpr_len) % fp_prf_size] = commit;
                fpr_len++;
            } else {
                a->int_prf_ring[(ipr_head + ipr_len) % int_prf_size] = commit;
                ipr_len++;
            }
        }

        if (measured) {
            if (measure_start_commit < 0)
                measure_start_commit = commit;
            n_uops_meas++;
        }

        /* ---- Limiter watermark advance ------------------------------- */
        if (!(i & PRUNE_MASK)) {
            if (last_dispatch > issue_floor_v)
                issue_floor_v = last_dispatch;
            int64_t ff = fetch_resume;
            if (fq_len >= fq_size) {
                int64_t oldest = a->fq_ring[fq_head];
                if (oldest > ff)
                    ff = oldest;
            }
            if (ff > fetch_floor_v)
                fetch_floor_v = ff;
        }
    }

    if (x->error) {
        a->out[O_ERROR] = x->error;
        return x->error;
    }

    /* Flush remaining trainings: re-run the drain with fetch = +inf. */
    while (tq_head < tq_tail) {
        int64_t t = tq_head++;
        const int64_t ti = a->tq_i[t];
        const uint64_t actual = a->values[ti];
        if (ptype == 2) {
            const uint64_t key = a->pkeys[ti];
            int64_t idx = (int64_t)(a->scr_pkey[ti] & (uint64_t)a->tbl_mask);
            if (!a->tbl_tag_valid[idx] || a->tbl_tags[idx] != key) {
                a->tbl_tag_valid[idx] = 1;
                a->tbl_tags[idx] = key;
                a->tbl_values[idx] = actual;
                a->tbl_conf[idx] = 0;
            } else if (a->tbl_values[idx] == actual) {
                a->tbl_conf[idx] = conf_on_correct(x, a->tbl_conf[idx]);
            } else {
                a->tbl_conf[idx] = 0;
                a->tbl_values[idx] = actual;
            }
        } else if (ptype == 3) {
            const uint64_t key = a->pkeys[ti];
            int64_t idx = (int64_t)(a->scr_pkey[ti] & (uint64_t)a->tbl_mask);
            const int has_pred = a->tq_has[t];
            if (has_pred) {
                int64_t live = a->st_inflight[idx] - 1;
                if (live <= 0) {
                    a->st_inflight[idx] = 0;
                    a->st_spec_has[idx] = 0;
                } else {
                    a->st_inflight[idx] = live;
                }
            }
            if (!a->tbl_tag_valid[idx] || a->tbl_tags[idx] != key) {
                a->tbl_tag_valid[idx] = 1;
                a->tbl_tags[idx] = key;
                a->tbl_values[idx] = actual;
                a->st_stride[idx] = 0;
                a->tbl_conf[idx] = 0;
                a->st_spec_has[idx] = 0;
                a->st_inflight[idx] = 0;
            } else {
                uint64_t predicted =
                    has_pred ? a->tq_value[t]
                             : a->tbl_values[idx] + a->st_stride2[idx];
                if (predicted == actual)
                    a->tbl_conf[idx] = conf_on_correct(x, a->tbl_conf[idx]);
                else
                    a->tbl_conf[idx] = 0;
                uint64_t delta = actual - a->tbl_values[idx];
                if (a->two_delta) {
                    if (delta == a->st_stride[idx])
                        a->st_stride2[idx] = delta;
                    a->st_stride[idx] = delta;
                } else {
                    a->st_stride[idx] = delta;
                }
                if (predicted != actual) {
                    int64_t live = a->st_inflight[idx];
                    if (live > 0) {
                        a->st_spec_value[idx] =
                            actual + a->st_stride2[idx] * (uint64_t)live;
                        a->st_spec_has[idx] = 1;
                    } else {
                        a->st_spec_has[idx] = 0;
                    }
                }
                a->tbl_values[idx] = actual;
            }
        } else if (ptype == 4) {
            const int64_t provider = a->tq_provider[t];
            const int64_t eff = a->tq_eff[t];
            const int64_t base_idx =
                (int64_t)(a->scr_pkey[ti] & (uint64_t)a->vt_base_mask);
            const uint64_t predicted = a->tq_value[t];
            if (provider == 0) {
                vt_train_base(x, base_idx, actual);
            } else {
                int64_t c = provider - 1;
                int64_t idx = a->vp_idx[c * n + ti];
                int64_t e = c * a->vt_entries + idx;
                int was_weak = a->vt_conf[e] == 0;
                vt_train_tagged(x, c, idx, actual);
                if (was_weak) {
                    if (eff != 0 && eff != provider) {
                        int64_t ac = eff - 1;
                        vt_train_tagged(x, ac, a->vp_idx[ac * n + ti], actual);
                    }
                    vt_train_base(x, base_idx, actual);
                }
            }
            if (predicted != actual && provider < a->vt_ncomp) {
                int64_t cands[16];
                int64_t ncand = 0;
                for (int64_t c = provider; c < a->vt_ncomp; c++) {
                    int64_t idx = a->vp_idx[c * n + ti];
                    if (a->vt_useful[c * a->vt_entries + idx] == 0)
                        cands[ncand++] = c;
                }
                if (ncand == 0) {
                    for (int64_t c = provider; c < a->vt_ncomp; c++) {
                        int64_t idx = a->vp_idx[c * n + ti];
                        a->vt_useful[c * a->vt_entries + idx] = 0;
                    }
                } else {
                    x->vt_state = lfsr_step(x->vt_state, a->vt_taps);
                    int64_t c =
                        cands[(int64_t)(x->vt_state % (uint64_t)ncand)];
                    int64_t idx = a->vp_idx[c * n + ti];
                    int64_t e = c * a->vt_entries + idx;
                    a->vt_tags[e] = a->vp_tag[c * n + ti];
                    a->vt_values[e] = actual;
                    a->vt_conf[e] = 0;
                    a->vt_useful[e] = 0;
                    x->vt_allocations++;
                }
            }
        }
    }

    int64_t *out = a->out;
    out[O_ERROR] = ERR_OK;
    out[O_N_UOPS] = n_uops_meas;
    if (measure_start_commit < 0)
        measure_start_commit = 0;
    int64_t cycles = last_commit - measure_start_commit;
    out[O_CYCLES] = cycles > 1 ? cycles : 1;
    out[O_COND_BRANCHES] = cond_branches;
    out[O_BRANCH_MISP] = branch_mispredicts;
    out[O_BTB_REDIRECTS] = btb_redirects;
    out[O_VP_ELIGIBLE] = vp_eligible_n;
    out[O_VP_PREDICTED] = vp_predicted_n;
    out[O_VP_USED] = vp_used_n;
    out[O_VP_CORRECT_USED] = vp_correct_used;
    out[O_VP_WRONG_USED] = vp_wrong_used;
    out[O_VP_SQUASHES] = vp_squashes;
    out[O_VP_HARMLESS] = vp_harmless_wrong;
    out[O_VP_REISSUES] = vp_reissues;
    out[O_VP_WRITE_DELAYED] = vp_write_delayed;
    out[O_MEM_VIOLATIONS] = x->mem_violations_measured;
    out[O_ROB_STALLS] = rob_stalls;
    out[O_IQ_STALLS] = iq_stalls;
    out[O_L1I_HITS] = x->l1i.hits;
    out[O_L1I_MISSES] = x->l1i.misses;
    out[O_L1I_MSHR_STALLS] = x->l1i.mshr_stalls;
    out[O_L1I_MSHR_N] = x->l1i.mshr_n;
    out[O_L1D_HITS] = x->l1d.hits;
    out[O_L1D_MISSES] = x->l1d.misses;
    out[O_L1D_MSHR_STALLS] = x->l1d.mshr_stalls;
    out[O_L1D_MSHR_N] = x->l1d.mshr_n;
    out[O_L2_HITS] = x->l2.hits;
    out[O_L2_MISSES] = x->l2.misses;
    out[O_L2_MSHR_STALLS] = x->l2.mshr_stalls;
    out[O_L2_MSHR_N] = x->l2.mshr_n;
    out[O_DRAM_REQUESTS] = x->dram_requests;
    out[O_DRAM_ROW_HITS] = x->dram_row_hits;
    out[O_DRAM_CHANNEL_FREE] = x->channel_free;
    out[O_PF_ISSUED] = x->pf_issued;
    out[O_SS_VIOLATIONS] = x->ss_violations;
    out[O_SS_NEXT_SSID] = x->next_ssid;
    out[O_VT_ALLOCATIONS] = x->vt_allocations;
    out[O_FPC_STATE] = (int64_t)x->fpc_state;
    out[O_VT_STATE] = (int64_t)x->vt_state;
    return ERR_OK;
}
