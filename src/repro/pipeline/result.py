"""Simulation result record and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class SimResult:
    """Aggregate outcome of one simulation run (measurement region only)."""

    workload: str = ""
    predictor: str = "none"
    recovery: str = "squash"
    n_uops: int = 0
    cycles: int = 0
    # Value prediction accounting.
    vp_eligible: int = 0
    vp_predicted: int = 0      # lookups that returned a prediction
    vp_used: int = 0           # confident predictions consumed by the pipeline
    vp_correct_used: int = 0
    vp_wrong_used: int = 0
    vp_squashes: int = 0       # squash-at-commit events
    vp_harmless_wrong: int = 0  # wrong but replaced before any consumer issued
    vp_reissues: int = 0       # wrong predictions repaired by selective reissue
    vp_write_delayed: int = 0  # predictions delayed by PRF write-port pressure
    # Branch prediction accounting.
    cond_branches: int = 0
    branch_mispredicts: int = 0
    btb_redirects: int = 0
    mem_violations: int = 0
    # Memory accounting.
    l1d_misses: int = 0
    l1d_accesses: int = 0
    l2_misses: int = 0
    l2_accesses: int = 0
    # Structure pressure.
    rob_stalls: int = 0
    iq_stalls: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.n_uops / self.cycles if self.cycles else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of VP-eligible µops whose prediction was used."""
        return self.vp_used / self.vp_eligible if self.vp_eligible else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of used predictions that were correct."""
        return self.vp_correct_used / self.vp_used if self.vp_used else 1.0

    @property
    def branch_mpki(self) -> float:
        return 1000.0 * self.branch_mispredicts / self.n_uops if self.n_uops else 0.0

    def speedup_over(self, baseline: "SimResult") -> float:
        """IPC ratio against a baseline run of the same workload."""
        if baseline.workload != self.workload:
            raise ValueError(
                f"speedup compares the same workload; got {self.workload!r} "
                f"vs {baseline.workload!r}"
            )
        if not baseline.ipc:
            return 0.0
        return self.ipc / baseline.ipc

    def to_dict(self) -> dict:
        """Lossless, JSON-safe view of every field.

        Used by the experiment engine for the persistent result cache and
        for shipping results back from pool-executor worker processes, so
        ``from_dict(to_dict(r)) == r`` must hold for *every* field.
        """
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = dict(value) if f.name == "extra" else value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        kwargs = {f.name: data[f.name] for f in fields(cls) if f.name in data}
        if "extra" in kwargs:
            kwargs["extra"] = dict(kwargs["extra"])
        return cls(**kwargs)

    def summary_line(self) -> str:
        return (
            f"{self.workload:<12} {self.predictor:<14} IPC {self.ipc:5.2f}  "
            f"cov {self.coverage:5.1%}  acc {self.accuracy:7.3%}  "
            f"squash {self.vp_squashes:5d}  brMPKI {self.branch_mpki:5.2f}"
        )
