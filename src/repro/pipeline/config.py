"""Core configuration mirroring Table 2 of the paper.

"4GHz, 8-wide superscalar, out-of-order processor with a latency of 19
cycles.  We chose a slow front-end (15 cycles) coupled to a swift back-end
(4 cycles) to obtain a realistic misprediction penalty."
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field, fields

from repro.isa.uop import OpClass


class RecoveryMode(enum.Enum):
    """Value misprediction recovery mechanisms compared in the paper."""

    #: Pipeline squashing at commit time (Section 3.1.1): cheap hardware,
    #: high per-event penalty (~40-50 cycles).
    SQUASH_COMMIT = "squash"
    #: Idealistic 0-cycle selective reissue (Section 7.2.1): dependents are
    #: replayed for free when the correct value shows up.
    SELECTIVE_REISSUE = "reissue"


@dataclass(slots=True)
class FUTiming:
    """Latency/occupancy of one functional-unit pool."""

    units: int
    latency: int
    pipelined: bool = True

    @property
    def occupancy(self) -> int:
        return 1 if self.pipelined else self.latency

    def to_dict(self) -> dict:
        return {"units": self.units, "latency": self.latency,
                "pipelined": self.pipelined}

    @classmethod
    def from_dict(cls, data: dict) -> "FUTiming":
        return cls(units=data["units"], latency=data["latency"],
                   pipelined=data.get("pipelined", True))


@dataclass
class CoreConfig:
    """Structural parameters of the simulated core (Table 2 defaults)."""

    # Front end.
    fetch_width: int = 8
    max_taken_per_cycle: int = 2
    frontend_depth: int = 15  # fetch -> dispatch, in cycles
    fetch_queue: int = 128  # decoupling buffer: fetch stalls when dispatch backs up
    decode_redirect_depth: int = 5  # BTB-miss redirect resolved at decode
    redirect_extra: int = 2  # squash/redirect bubble on top of refill
    # Window.
    rob_entries: int = 256
    iq_entries: int = 128
    lq_entries: int = 48
    sq_entries: int = 48
    int_prf: int = 256
    fp_prf: int = 256
    arch_regs: int = 32
    # Back end.
    issue_width: int = 8
    commit_width: int = 8
    backend_depth: int = 4  # complete -> commit, in cycles
    # Functional units (Table 2: 8 ALU(1c), 4 MulDiv(3c/25c*), 8 FP(3c),
    # 4 FPMulDiv(5c/10c*), 4 Ld/Str; * = not pipelined).
    fu: dict = field(
        default_factory=lambda: {
            OpClass.INT_ALU: FUTiming(units=8, latency=1),
            OpClass.INT_MUL: FUTiming(units=4, latency=3),
            OpClass.INT_DIV: FUTiming(units=4, latency=25, pipelined=False),
            OpClass.FP_ADD: FUTiming(units=8, latency=3),
            OpClass.FP_MUL: FUTiming(units=4, latency=5),
            OpClass.FP_DIV: FUTiming(units=4, latency=10, pipelined=False),
            OpClass.LOAD: FUTiming(units=4, latency=1),
            OpClass.STORE: FUTiming(units=4, latency=1),
            OpClass.BRANCH: FUTiming(units=8, latency=1),
            OpClass.JUMP: FUTiming(units=8, latency=1),
            OpClass.CALL: FUTiming(units=8, latency=1),
            OpClass.RET: FUTiming(units=8, latency=1),
            OpClass.NOP: FUTiming(units=8, latency=1),
        }
    )
    # Value prediction plumbing (Section 4).  The paper's simulations do
    # NOT throttle prediction writes ("We assume that the predictor can
    # deliver as many predictions as requested", Section 7.2); the finite
    # write-port configuration exists for the Section 4 cost analysis and
    # as an ablation (None = unlimited, the paper's methodology).
    vp_write_ports: int | None = None
    # Which µops are predicted: "all" register-producing µops (the paper's
    # methodology: "we do not try to estimate criticality or focus only on
    # load instructions") or "loads" only, as earlier VP work did — exposed
    # as an ablation.
    vp_scope: str = "all"
    recovery: RecoveryMode = RecoveryMode.SQUASH_COMMIT
    # How far ahead (in µops) the commit-time validator looks when deciding
    # whether a wrong used prediction was consumed before execution
    # ("squashing can be avoided if the predicted result has not been used
    # yet").  Bounded by the ROB size.
    squash_lookahead: int = 256

    def min_branch_penalty(self) -> int:
        """Minimum branch misprediction penalty (Table 2 targets 20)."""
        return self.redirect_extra + self.frontend_depth + 3

    # ------------------------------------------------------------------
    # Serialisation and content addressing (used by the experiment engine
    # for job specs, the on-disk result cache and multiprocessing
    # transport; see DESIGN.md, "Experiment engine").

    def to_dict(self) -> dict:
        """Lossless, JSON-safe view of every structural parameter."""
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "fu":
                out["fu"] = {op.name: timing.to_dict()
                             for op, timing in value.items()}
            elif f.name == "recovery":
                out["recovery"] = value.value
            else:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CoreConfig":
        kwargs = dict(data)
        kwargs["fu"] = {OpClass[name]: FUTiming.from_dict(timing)
                        for name, timing in data["fu"].items()}
        kwargs["recovery"] = RecoveryMode(data["recovery"])
        return cls(**kwargs)

    def canonical_json(self) -> str:
        """Deterministic JSON rendering (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def content_key(self) -> str:
        """Short stable digest of the full configuration.

        Two configs share a key iff every structural parameter matches, so
        the key is safe to use in result-cache keys (the baseline-cache
        bug this fixes: speedups under a custom config must never compare
        against a default-config baseline).
        """
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]
