"""Batch front-end precompute over the packed trace plane.

The paper's central observation — prediction is computed early, in order,
from fetch-time information only — makes most of the simulator's front-end
work *data-parallel over the instruction stream*: branch outcomes, folded
global/path history, predictor indices and tags depend on trace columns
alone, never on the out-of-order timing the cycle loop resolves.  This
module materialises all of it once per trace as numpy arrays the fast
paths (:mod:`repro.pipeline.fastsim`, the compiled kernel) index into:

* :class:`TracePlane` — per-µop branch redirect codes (a fresh
  :class:`~repro.branch.unit.BranchUnit` walked over the control µops,
  exactly the objects the sequential model trains), the post-branch
  ``(ghist & 2^64-1, path & 0xFFFF)`` context every value-predictor lookup
  would observe, and the scrambled PC / predictor-key hashes.
* :class:`VTAGEPlane` — per-component VTAGE indices and tags for every
  µop, vectorised with the batched fold/hash primitives
  (:func:`repro.util.history.fold_array`,
  :func:`repro.util.hashing.table_index_array`) instead of per-key memo
  dicts.  Bit-identical to the scalar ``_TaggedComponent.index_and_tag``
  (pinned by ``tests/unit/test_precompute.py``).

Planes are cached on the trace object (the catalog's LRU byte accounting
includes them, see ``workloads/catalog.py``) and the Python-expensive
:class:`TracePlane` is additionally persisted into the on-disk trace store
next to the packed columns, keyed by :data:`PRECOMPUTE_VERSION`.
"""

from __future__ import annotations

import numpy as np

from repro.branch.tage import TAGEConfig
from repro.branch.unit import BranchUnit
from repro.isa.trace import Trace
from repro.isa.uop import OpClass
from repro.util import profiling
from repro.util.bits import MASK64
from repro.util.hashing import scramble_array, table_index_array, tag_hash_array
from repro.util.history import FOLD_WIDTH, fold_array

#: Bump whenever the plane layout *or* anything feeding it (branch unit
#: semantics, hashing, fold) changes; part of the on-disk aux key, so stale
#: persisted planes are regenerated instead of misread.
PRECOMPUTE_VERSION = 1

_CTRL_INTS = tuple(sorted(
    int(c) for c in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET)
))
_BRANCH_INT = int(OpClass.BRANCH)

#: Name of the per-trace plane cache attribute (also inspected by the
#: catalog's byte accounting, which must not import this module).
PLANE_CACHE_ATTR = "_plane_cache"


class TracePlane:
    """Stream-deterministic per-µop front-end state for one trace."""

    __slots__ = (
        "n",
        "redirect",
        "ghist64",
        "path16",
        "scr_pc",
        "scr_pkey",
        "cond_branches",
        "direction_mispredicts",
        "target_mispredicts",
        "final_ghist",
        "final_path",
        "final_ghist_length",
        "_lists",
    )

    def __init__(self, n, redirect, ghist64, path16, scr_pc, scr_pkey,
                 cond_branches, direction_mispredicts, target_mispredicts,
                 final_ghist, final_path, final_ghist_length):
        self.n = n
        self.redirect = redirect
        self.ghist64 = ghist64
        self.path16 = path16
        self.scr_pc = scr_pc
        self.scr_pkey = scr_pkey
        self.cond_branches = cond_branches
        self.direction_mispredicts = direction_mispredicts
        self.target_mispredicts = target_mispredicts
        self.final_ghist = final_ghist
        self.final_path = final_path
        self.final_ghist_length = final_ghist_length
        self._lists = None

    @property
    def nbytes(self) -> int:
        return (self.redirect.nbytes + self.ghist64.nbytes +
                self.path16.nbytes + self.scr_pc.nbytes + self.scr_pkey.nbytes)

    def lists(self) -> tuple[list, list, list]:
        """``(redirect, scr_pc, scr_pkey)`` as plain lists (cached) — the
        representation the pure-Python fast loop indexes per µop."""
        lists = self._lists
        if lists is None:
            lists = self._lists = (
                self.redirect.tolist(),
                self.scr_pc.tolist(),
                self.scr_pkey.tolist(),
            )
        return lists


class VTAGEPlane:
    """Per-component VTAGE (index, tag) for every µop of one trace."""

    __slots__ = ("n", "idx", "tag", "_lists")

    def __init__(self, n: int, idx: list[np.ndarray], tag: list[np.ndarray]):
        self.n = n
        self.idx = idx
        self.tag = tag
        self._lists = None

    @property
    def nbytes(self) -> int:
        return (sum(a.nbytes for a in self.idx) +
                sum(a.nbytes for a in self.tag))

    def lists(self) -> tuple[list[list[int]], list[list[int]]]:
        lists = self._lists
        if lists is None:
            lists = self._lists = (
                [a.tolist() for a in self.idx],
                [a.tolist() for a in self.tag],
            )
        return lists


# ---------------------------------------------------------------------------
# Plane construction
# ---------------------------------------------------------------------------

def build_trace_plane(trace: Trace) -> TracePlane:
    """Walk a fresh default :class:`BranchUnit` over the control µops and
    vectorise everything else.

    The walk is the one genuinely sequential front-end computation (TAGE
    tables train branch by branch); it touches only the ~15-20% of µops
    that are control transfers, and its result is cached per trace and
    persisted to the trace store.
    """
    packed = trace.packed()
    a = packed.arrays
    n = packed.n
    ops = a["ops"]
    redirect = np.zeros(n, dtype=np.uint8)
    ghist64 = np.zeros(n, dtype=np.uint64)
    path16 = np.zeros(n, dtype=np.uint16)

    unit = BranchUnit()
    ctx = unit.context
    process = unit.process_scalar
    ctrl = np.flatnonzero(np.isin(ops, _CTRL_INTS))
    if ctrl.shape[0]:
        ctrl_list = ctrl.tolist()
        op_l = ops[ctrl].tolist()
        pc_l = a["pcs"][ctrl].tolist()
        taken_l = a["takens"][ctrl].tolist()
        target_l = a["targets"][ctrl].tolist()
        codes = []
        codes_append = codes.append
        cond_pos: list[int] = []
        g_vals: list[int] = []
        p_vals: list[int] = []
        for j in range(len(ctrl_list)):
            op = op_l[j]
            bres = process(op, pc_l[j], taken_l[j], target_l[j])
            codes_append(
                1 if bres.direction_mispredict
                else (2 if bres.target_mispredict else 0)
            )
            if op == _BRANCH_INT:
                # Only conditional branches move the (ghist, path) context.
                cond_pos.append(ctrl_list[j])
                g_vals.append(ctx.ghist & MASK64)
                p_vals.append(ctx.path & 0xFFFF)
        redirect[ctrl] = codes
        if cond_pos:
            # Context at µop i is the state *after* the branch at i (the
            # model processes the branch before the value-predictor lookup
            # of the same µop): segment-fill from each branch position up
            # to (excluding) the next one.
            starts = np.array(cond_pos, dtype=np.int64)
            lengths = np.diff(np.append(starts, n))
            ghist64[starts[0]:] = np.repeat(
                np.array(g_vals, dtype=np.uint64), lengths)
            path16[starts[0]:] = np.repeat(
                np.array(p_vals, dtype=np.uint16), lengths)

    pkeys = (a["pcs"] << np.uint64(2)) ^ a["uop_indexes"].astype(np.uint64)
    plane = TracePlane(
        n=n,
        redirect=redirect,
        ghist64=ghist64,
        path16=path16,
        scr_pc=scramble_array(a["pcs"]),
        scr_pkey=scramble_array(pkeys),
        cond_branches=unit.cond_branches,
        direction_mispredicts=unit.direction_mispredicts,
        target_mispredicts=unit.target_mispredicts,
        final_ghist=ctx.ghist,
        final_path=ctx.path,
        final_ghist_length=ctx.ghist_length,
    )
    return plane


def build_vtage_plane(trace: Trace, signature: tuple) -> VTAGEPlane:
    """Vectorised per-component positions for a VTAGE signature.

    *signature* is ``((history_length, index_bits, tag_bits), ...)`` per
    tagged component, as produced by :func:`vtage_signature`.
    """
    plane = trace_plane(trace)
    packed = trace.packed()
    a = packed.arrays
    pkeys = (a["pcs"] << np.uint64(2)) ^ a["uop_indexes"].astype(np.uint64)
    ghist64 = plane.ghist64
    path16 = plane.path16.astype(np.uint64, copy=False)
    idx_arrays: list[np.ndarray] = []
    tag_arrays: list[np.ndarray] = []
    for length, index_bits, tag_bits in signature:
        eff = length if length < 64 else 64
        window = np.uint64(min((1 << eff) - 1, MASK64))
        path_bits = min(length, FOLD_WIDTH)
        pmask = np.uint64((1 << path_bits) - 1)
        compressed = (
            fold_array(ghist64 & window, FOLD_WIDTH)
            ^ ((path16 & pmask) << np.uint64(1))
            ^ np.uint64(length << 17)
        )
        idx_arrays.append(
            table_index_array(pkeys, index_bits, compressed)
            .astype(np.int32)
        )
        tag_arrays.append(
            tag_hash_array(pkeys, tag_bits, compressed).astype(np.int32)
        )
    return VTAGEPlane(packed.n, idx_arrays, tag_arrays)


def vtage_signature(predictor) -> tuple:
    """The plane cache key of a VTAGE predictor's component geometry."""
    return tuple(
        (comp.history_length, comp.index_bits, comp.tag_bits)
        for comp in predictor.components
    )


# ---------------------------------------------------------------------------
# Per-trace caching + store persistence
# ---------------------------------------------------------------------------

def _plane_cache(trace: Trace) -> dict:
    cache = getattr(trace, PLANE_CACHE_ATTR, None)
    if cache is None:
        cache = {}
        setattr(trace, PLANE_CACHE_ATTR, cache)
    return cache


def precompute_nbytes(trace: Trace) -> int:
    """Bytes of precompute planes currently attached to *trace*."""
    cache = getattr(trace, PLANE_CACHE_ATTR, None)
    if not cache:
        return 0
    return sum(plane.nbytes for plane in cache.values())


def trace_plane(trace: Trace) -> TracePlane:
    """The :class:`TracePlane` for *trace*: attached cache, then the trace
    store (for catalog-built traces), then a fresh build (persisted back)."""
    cache = _plane_cache(trace)
    plane = cache.get("trace")
    if plane is not None:
        return plane
    with profiling.phase("precompute"):
        store, identity = _store_identity(trace)
        if store is not None:
            plane = _plane_from_store(store, identity, len(trace))
        if plane is None:
            plane = build_trace_plane(trace)
            if store is not None:
                _plane_to_store(store, identity, plane)
    cache["trace"] = plane
    return plane


_AUX_KIND = "plane"


def _plane_from_store(store, identity, n: int) -> TracePlane | None:
    loaded = store.get_aux(*identity, _AUX_KIND, PRECOMPUTE_VERSION)
    if loaded is None:
        return None
    meta, arrays = loaded
    try:
        plane = TracePlane(
            n=int(meta["n"]),
            redirect=arrays["redirect"],
            ghist64=arrays["ghist64"],
            path16=arrays["path16"],
            scr_pc=arrays["scr_pc"],
            scr_pkey=arrays["scr_pkey"],
            cond_branches=int(meta["cond_branches"]),
            direction_mispredicts=int(meta["direction_mispredicts"]),
            target_mispredicts=int(meta["target_mispredicts"]),
            final_ghist=int(meta["final_ghist"], 16),
            final_path=int(meta["final_path"]),
            final_ghist_length=int(meta["final_ghist_length"]),
        )
    except (KeyError, ValueError, TypeError):
        return None
    if plane.n != n:
        return None
    return plane


def _plane_to_store(store, identity, plane: TracePlane) -> None:
    meta = {
        "n": plane.n,
        "cond_branches": plane.cond_branches,
        "direction_mispredicts": plane.direction_mispredicts,
        "target_mispredicts": plane.target_mispredicts,
        # The ghist window is 256 bits wide — too big for a JSON number.
        "final_ghist": f"{plane.final_ghist:x}",
        "final_path": plane.final_path,
        "final_ghist_length": plane.final_ghist_length,
    }
    arrays = {
        "redirect": plane.redirect,
        "ghist64": plane.ghist64,
        "path16": plane.path16,
        "scr_pc": plane.scr_pc,
        "scr_pkey": plane.scr_pkey,
    }
    store.put_aux(*identity, _AUX_KIND, PRECOMPUTE_VERSION, arrays, meta)


def vtage_plane(trace: Trace, predictor) -> VTAGEPlane:
    """The cached :class:`VTAGEPlane` for (trace, predictor geometry)."""
    signature = vtage_signature(predictor)
    cache = _plane_cache(trace)
    key = ("vtage", signature)
    plane = cache.get(key)
    if plane is None:
        with profiling.phase("precompute"):
            plane = build_vtage_plane(trace, signature)
        cache[key] = plane
    return plane


def _store_identity(trace: Trace):
    """(store, (name, n_uops, seed)) when *trace* came from the catalog and
    a trace store is configured; (None, None) otherwise."""
    identity = getattr(trace, "store_identity", None)
    if identity is None:
        return None, None
    from repro.workloads.store import default_trace_store

    store = default_trace_store()
    if store is None:
        return None, None
    return store, identity


def default_branch_state(model) -> bool:
    """Whether *model*'s branch unit is a fresh, default-configured
    :class:`BranchUnit` — the state :func:`build_trace_plane` assumed.

    The fast paths refuse to run (and fall back to the sequential model)
    when a test pre-warmed or reconfigured the unit.
    """
    unit = model.branch_unit
    ctx = unit.context
    return (
        unit.tage.config == TAGEConfig()
        and unit.tage.lookups == 0
        and unit.tage._updates == 0
        and unit.cond_branches == 0
        and unit.direction_mispredicts == 0
        and unit.target_mispredicts == 0
        and ctx.ghist == 0
        and ctx.path == 0
        and ctx.ghist_length == 0
        and unit.ras._top == 0
        and unit.ras._depth == 0
        and not any(unit.btb._sets)
    )


def apply_branch_state(model, plane: TracePlane) -> None:
    """Write the walk's end-of-trace branch state back onto *model* so a
    fast run leaves the same externally visible unit state as the
    sequential model (counters + shared history context)."""
    unit = model.branch_unit
    unit.cond_branches = plane.cond_branches
    unit.direction_mispredicts = plane.direction_mispredicts
    unit.target_mispredicts = plane.target_mispredicts
    ctx = unit.context
    ctx.ghist = plane.final_ghist
    ctx.path = plane.final_path
    ctx.ghist_length = plane.final_ghist_length
